// Command metricstudy runs the full SC'05 reproduction and prints every
// table and figure of the paper's evaluation section: Table 4 (error per
// metric), Table 5 (error per system), the balanced-rating experiment,
// Figures 1 and 3-7, and the appendix observed-time tables.
//
// With -trace it also instruments the run: every phase becomes a span,
// the worker pool reports occupancy and queue wait, and a flame-style
// per-phase time table plus the run-metrics table are printed after the
// study sections. -spans and -manifest export the span log (JSONL) and
// the run manifest; -cpuprofile, -memprofile, and -tracefile wire the
// standard Go profilers in.
//
// Robustness controls: -max-attempts and -cell-timeout give every
// probe/trace/observe unit a retry budget and a per-attempt deadline;
// -checkpoint journals completed work so a cancelled or crashed study
// can be re-run with -resume and pick up where it left off; -faults and
// -fault-seed arm the deterministic chaos injector (internal/faults).
//
// Distributed runs (see README "Distributed runs"): -shard-count with
// -shard-index runs one tagged slice of the grid into its own journal;
// -checkpoint-dir merges a directory of shard journals and finishes the
// study from them; -coordinator spawns -shards N shard workers as child
// processes, supervises them (crash-restart with -resume, work stealing
// past -straggle-timeout, quarantine of corrupt journals), and then
// runs the merge itself. -checkpoint-info triages any journal without
// touching it. The -chaos-* knobs inject coordinator-level failures for
// the distributed chaos suite.
//
// Usage:
//
//	metricstudy [-csv] [-quiet] [-only <section>] [-ablate <ingredient>]
//	            [-apps a,b] [-targets x,y] [-workers n]
//	            [-max-attempts n] [-cell-timeout d]
//	            [-checkpoint f.ckpt] [-resume]
//	            [-faults rules] [-fault-seed n]
//	            [-trace] [-spans f.jsonl] [-manifest f.json] [-prom f.txt]
//	            [-cpuprofile f] [-memprofile f] [-tracefile f]
//	metricstudy -shard-index i -shard-count n [-shard-name s] [-shard-tail]
//	            [-shard-slot k] -checkpoint f.ckpt [...]
//	metricstudy -checkpoint-dir dir [...]
//	metricstudy -coordinator -shards n -checkpoint-dir dir
//	            [-straggle-timeout d] [-max-restarts n]
//	            [-chaos-kill name@recs] [-chaos-stop name@recs]
//	            [-chaos-corrupt name] [...]
//	metricstudy -checkpoint-info f.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"syscall"
	"time"

	"hpcmetrics"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/report"
	"hpcmetrics/internal/study"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricstudy:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run() error {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	only := flag.String("only", "", "print only one section: table4, table5, figures, observed, probes, balanced, correlation, ranking, skips, phases")
	ablate := flag.String("ablate", "", "ablation: noise, loadedmem, or dep (runs the study with that model ingredient disabled)")
	appsFlag := flag.String("apps", "", "comma-separated test cases to study (default all, e.g. avus-standard)")
	targetsFlag := flag.String("targets", "", "comma-separated target systems to study (default all, e.g. ARL_Opteron)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	traceOn := flag.Bool("trace", false, "instrument the run: spans, pool metrics, and a per-phase time table")
	spansPath := flag.String("spans", "", "write the span log (JSONL) to this path (implies -trace)")
	manifestPath := flag.String("manifest", "", "write the run manifest (JSON) to this path (implies -trace)")
	promPath := flag.String("prom", "", "write the metrics registry (Prometheus text format) to this path (implies -trace)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	tracefile := flag.String("tracefile", "", "write a runtime/trace execution trace to this path")
	maxAttempts := flag.Int("max-attempts", 0, "per-unit retry budget (0 or 1 = single attempt)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-attempt deadline for each probe/trace/observe unit (0 = none)")
	checkpoint := flag.String("checkpoint", "", "journal completed work to this checkpoint file")
	resume := flag.Bool("resume", false, "resume from an existing -checkpoint journal instead of starting fresh")
	faultsSpec := flag.String("faults", "", "chaos fault rules, comma-separated kind:point:rate[:burst[:stall[:match]]]")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault injector")
	shardIndex := flag.Int("shard-index", 0, "this worker's slice of the grid (with -shard-count)")
	shardCount := flag.Int("shard-count", 0, "total shard count; > 1 runs only this worker's slice")
	shardName := flag.String("shard-name", "", "label for this shard's journal, span log, and manifest (default shard<index>)")
	shardTail := flag.Bool("shard-tail", false, "process this shard's cells tail-first (work-stealer order)")
	shardSlot := flag.Int("shard-slot", -1, "coordinator-assigned span-id slot for this process (default: shard index)")
	checkpointDir := flag.String("checkpoint-dir", "", "merge a directory of shard journals and finish the study from them (coordinator campaign dir with -coordinator)")
	coordinator := flag.Bool("coordinator", false, "spawn and supervise -shards shard workers, then merge (needs -checkpoint-dir)")
	shards := flag.Int("shards", 0, "shard worker count for -coordinator")
	straggleTimeout := flag.Duration("straggle-timeout", 30*time.Second, "journal-growth silence after which the coordinator steals a shard's remaining work")
	maxRestarts := flag.Int("max-restarts", 3, "per-shard crash-restart budget before the coordinator abandons the shard to the merge")
	checkpointInfo := flag.String("checkpoint-info", "", "inspect a checkpoint journal (version, tag, records, last unit, integrity) and exit")
	chaosKill := flag.String("chaos-kill", "", "coordinator chaos: SIGKILL worker name@records (comma-separated)")
	chaosStop := flag.String("chaos-stop", "", "coordinator chaos: SIGSTOP worker name@records to fake a straggler (comma-separated)")
	chaosCorrupt := flag.String("chaos-corrupt", "", "coordinator chaos: corrupt the named shard's covering journal mid-file after it completes, dropping any other journal of the shard (comma-separated)")
	flag.Parse()

	if *checkpointInfo != "" {
		return printCheckpointInfo(*checkpointInfo)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	opts := study.Options{
		Progress:       progress,
		Apps:           splitList(*appsFlag),
		Targets:        splitList(*targetsFlag),
		Workers:        *workers,
		MaxAttempts:    *maxAttempts,
		CellTimeout:    *cellTimeout,
		CheckpointPath: *checkpoint,
		CheckpointDir:  *checkpointDir,
		Resume:         *resume,
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	if *shardCount > 0 {
		opts.Shard = study.Shard{Index: *shardIndex, Count: *shardCount, Name: *shardName, Tail: *shardTail}
	}
	if *faultsSpec != "" {
		rules, err := hpcmetrics.ParseFaultRules(*faultsSpec)
		if err != nil {
			return err
		}
		opts.Faults = hpcmetrics.NewFaultInjector(*faultSeed, rules...)
		fmt.Fprintf(os.Stderr, "metricstudy: chaos active — %d fault rule(s), seed %d\n", len(rules), *faultSeed)
	}
	switch *ablate {
	case "":
	case "noise":
		opts.DisableNoise = true
	case "loadedmem":
		opts.IdleMemory = true
	case "dep":
		opts.NoDependencyFlags = true
	default:
		return fmt.Errorf("unknown ablation %q", *ablate)
	}
	if *ablate != "" {
		fmt.Fprintf(os.Stderr, "metricstudy: ablation %q active — results intentionally deviate from the reproduction\n", *ablate)
	}
	if *spansPath != "" || *manifestPath != "" || *promPath != "" {
		*traceOn = true
	}
	if *traceOn {
		opts.Obs = obs.New()
		if opts.Shard.Enabled() {
			// A shard worker stamps its spans and offsets its span IDs
			// into a coordinator-assigned slot so any set of worker logs
			// concatenates without collisions.
			slot := *shardSlot
			if slot < 0 {
				slot = *shardIndex
			}
			opts.Obs.Tracer.SetShard(opts.Shard.Label(), slot)
		}
	}

	// A signal-cancelled root: ^C or SIGTERM cancels the study's worker
	// pool instead of killing workers mid-write, so checkpoints stay
	// consistent and a -resume run can pick up cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator {
		// Supervise a fleet of shard workers into -checkpoint-dir, then
		// fall through to the normal study path: the merge run below
		// replays their journals and prints the tables.
		c := &coord{
			dir:         *checkpointDir,
			shards:      *shards,
			workersPer:  *workers,
			straggle:    *straggleTimeout,
			maxRestarts: *maxRestarts,
			traced:      *traceOn,
			workerArgs:  workerArgs(flag.CommandLine),
		}
		var err error
		if c.chaosKill, err = parseChaosAt(*chaosKill); err != nil {
			return err
		}
		if c.chaosStop, err = parseChaosAt(*chaosStop); err != nil {
			return err
		}
		c.chaosCorrupt = make(map[string]bool)
		for _, name := range splitList(*chaosCorrupt) {
			c.chaosCorrupt[name] = true
		}
		if err := c.run(ctx); err != nil {
			return err
		}
		opts.CheckpointDir = c.dir
	}

	res, err := study.RunContext(ctx, opts)
	if err != nil {
		return err
	}
	// Quarantined shard journals and uncovered slices are routed around
	// (their units recomputed), but the operator must hear about them —
	// even under -quiet.
	for _, q := range res.Quarantined {
		fmt.Fprintf(os.Stderr, "metricstudy: quarantined shard journal %s: %s\n", q.Path, q.Reason)
	}
	if len(res.MissingShards) > 0 {
		fmt.Fprintf(os.Stderr, "metricstudy: no journal covered shard slice(s) %v; their units were recomputed\n", res.MissingShards)
	}

	emit := func(t *hpcmetrics.ReportTable) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	section := func(name string) bool { return *only == "" || *only == name }

	if section("probes") {
		emit(hpcmetrics.ProbeTable(res))
		var prs []*hpcmetrics.ProbeResults
		for _, name := range []string{hpcmetrics.NAVO655, hpcmetrics.ARLAltix, hpcmetrics.ARLOpteron} {
			if pr, ok := res.Probes[name]; ok {
				prs = append(prs, pr)
			}
		}
		emit(report.MAPSCurveTable(prs))
	}
	if section("table4") {
		emit(hpcmetrics.Table4(res))
	}
	if section("balanced") {
		emit(hpcmetrics.BalancedTable(res))
	}
	if section("table5") {
		emit(hpcmetrics.Table5(res))
	}
	if section("figures") {
		for _, tc := range hpcmetrics.TestCases() {
			if !wantsApp(opts, tc.ID()) {
				continue
			}
			t, err := hpcmetrics.FigureTable(res, tc.ID())
			if err != nil {
				return err
			}
			emit(t)
		}
	}
	if section("observed") {
		for _, tc := range hpcmetrics.TestCases() {
			if !wantsApp(opts, tc.ID()) {
				continue
			}
			t, err := hpcmetrics.ObservedTable(res, tc.ID())
			if err != nil {
				return err
			}
			emit(t)
		}
	}
	if section("correlation") {
		t, err := report.CorrelationTable(res)
		if err != nil {
			return err
		}
		emit(t)
	}
	if section("ranking") {
		fmt.Println("Application-performance ranking (best first, observed vs base):")
		for i, name := range hpcmetrics.Ranking(res) {
			fmt.Printf("  %2d. %s\n", i+1, name)
		}
	}
	if section("skips") && len(res.Skips) > 0 {
		emit(report.SkipTable(res))
	}
	if *traceOn && section("phases") {
		emit(report.PhaseTable(opts.Obs.Tracer.PhaseStats()))
		emit(report.RegistryTable(opts.Obs.Metrics.Snapshot()))
	}

	if err := exportObs(opts, *spansPath, *manifestPath, *promPath, *ablate); err != nil {
		return err
	}
	if *memprofile != "" {
		// Written after the study so the heap profile reflects the run's
		// live set rather than flag parsing.
		return writeTo(*memprofile, func(w io.Writer) error {
			runtime.GC()
			return pprof.WriteHeapProfile(w)
		})
	}
	return nil
}

// writeTo creates path, streams write into it, and returns the first
// error among create, write, and close.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// wantsApp mirrors the study's app filter so sections skip apps outside
// a -apps slice instead of erroring on their missing cells.
func wantsApp(opts study.Options, id string) bool {
	if len(opts.Apps) == 0 {
		return true
	}
	for _, a := range opts.Apps {
		if a == id {
			return true
		}
	}
	return false
}

// exportObs writes the span log, run manifest, and Prometheus dump for a
// traced run.
func exportObs(opts study.Options, spansPath, manifestPath, promPath, ablate string) error {
	if opts.Obs == nil {
		return nil
	}
	if spansPath != "" {
		if err := writeTo(spansPath, opts.Obs.Tracer.WriteJSONL); err != nil {
			return err
		}
	}
	if promPath != "" {
		if err := writeTo(promPath, opts.Obs.Metrics.WriteProm); err != nil {
			return err
		}
	}
	if manifestPath != "" {
		m := obs.NewManifest()
		m.Seed = fmt.Sprintf("fnv1a-noise-amp=%g", study.NoiseAmplitude)
		m.Options = map[string]any{
			"apps":         opts.Apps,
			"targets":      opts.Targets,
			"workers":      opts.Workers,
			"ablate":       ablate,
			"max_attempts": opts.MaxAttempts,
			"cell_timeout": opts.CellTimeout.String(),
			"checkpoint":   opts.CheckpointPath,
			"resume":       opts.Resume,
			"chaos":        opts.Faults != nil,
			"faults":       opts.Faults.Fingerprint(),
		}
		if opts.Shard.Enabled() {
			m.Shard = opts.Shard.Label()
		}
		m.FaultPlan = opts.Faults.Fingerprint()
		m.SpanFile = spansPath
		if err := m.WriteFile(manifestPath); err != nil {
			return err
		}
	}
	return nil
}
