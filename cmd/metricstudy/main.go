// Command metricstudy runs the full SC'05 reproduction and prints every
// table and figure of the paper's evaluation section: Table 4 (error per
// metric), Table 5 (error per system), the balanced-rating experiment,
// Figures 1 and 3-7, and the appendix observed-time tables.
//
// Usage:
//
//	metricstudy [-csv] [-quiet] [-only table4|table5|figures|observed|probes|balanced|ranking]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hpcmetrics"
	"hpcmetrics/internal/report"
	"hpcmetrics/internal/study"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	only := flag.String("only", "", "print only one section: table4, table5, figures, observed, probes, balanced, correlation, ranking")
	ablate := flag.String("ablate", "", "ablation: noise, loadedmem, or dep (runs the study with that model ingredient disabled)")
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	opts := study.Options{Progress: progress}
	switch *ablate {
	case "":
	case "noise":
		opts.DisableNoise = true
	case "loadedmem":
		opts.IdleMemory = true
	case "dep":
		opts.NoDependencyFlags = true
	default:
		fmt.Fprintf(os.Stderr, "metricstudy: unknown ablation %q\n", *ablate)
		os.Exit(2)
	}
	if *ablate != "" {
		fmt.Fprintf(os.Stderr, "metricstudy: ablation %q active — results intentionally deviate from the reproduction\n", *ablate)
	}
	res, err := study.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricstudy:", err)
		os.Exit(1)
	}

	emit := func(t *hpcmetrics.ReportTable) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	section := func(name string) bool { return *only == "" || *only == name }

	if section("probes") {
		emit(hpcmetrics.ProbeTable(res))
		prs := []*hpcmetrics.ProbeResults{
			res.Probes[hpcmetrics.NAVO655],
			res.Probes[hpcmetrics.ARLAltix],
			res.Probes[hpcmetrics.ARLOpteron],
		}
		emit(report.MAPSCurveTable(prs))
	}
	if section("table4") {
		emit(hpcmetrics.Table4(res))
	}
	if section("balanced") {
		emit(hpcmetrics.BalancedTable(res))
	}
	if section("table5") {
		emit(hpcmetrics.Table5(res))
	}
	if section("figures") {
		for _, tc := range hpcmetrics.TestCases() {
			t, err := hpcmetrics.FigureTable(res, tc.ID())
			if err != nil {
				fmt.Fprintln(os.Stderr, "metricstudy:", err)
				os.Exit(1)
			}
			emit(t)
		}
	}
	if section("observed") {
		for _, tc := range hpcmetrics.TestCases() {
			t, err := hpcmetrics.ObservedTable(res, tc.ID())
			if err != nil {
				fmt.Fprintln(os.Stderr, "metricstudy:", err)
				os.Exit(1)
			}
			emit(t)
		}
	}
	if section("correlation") {
		t, err := report.CorrelationTable(res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricstudy:", err)
			os.Exit(1)
		}
		emit(t)
	}
	if section("ranking") {
		fmt.Println("Application-performance ranking (best first, observed vs base):")
		for i, name := range hpcmetrics.Ranking(res) {
			fmt.Printf("  %2d. %s\n", i+1, name)
		}
	}
}
