// The self-healing coordinator for distributed study campaigns.
//
// `metricstudy -coordinator -shards N -checkpoint-dir dir` spawns N
// shard workers as child processes — each a `metricstudy -shard-index i
// -shard-count N` run journaling its slice into dir/shard<i>.ckpt — and
// supervises them to completion:
//
//   - Heartbeats are journal growth. The journal is the shard's product,
//     so "the file stopped growing" is the only liveness signal that
//     matters; there is no side channel to lie on.
//   - A crashed or killed worker is restarted with -resume (a fresh
//     process slot, the same journal), re-doing only unjournaled cells,
//     up to -max-restarts per shard.
//   - A shard whose journal is silent past -straggle-timeout gets its
//     remaining work stolen: the journal is snapshot-copied (atomic
//     renames make the copy a consistent prefix) and a stealer worker
//     with the same shard identity resumes it tail-first into
//     dir/shard<i>-steal.ckpt. Whichever process finishes first wins;
//     the loser is killed, and merge-time first-record-wins dedup makes
//     any overlap harmless.
//   - A journal corrupted beyond a torn tail is quarantined (renamed
//     *.quarantined, reported by shard name on stderr) instead of being
//     restarted into or aborting the campaign; the merge run recomputes
//     the missing units.
//
// When every shard is done or abandoned, the coordinator becomes the
// merge run: main() continues into study.RunContext with CheckpointDir,
// which folds the shard journals and computes predictions and tables —
// bit-identical to a single-process run of the same options.
//
// The -chaos-* flags make the failure modes reproducible: -chaos-kill
// SIGKILLs a worker once its journal reaches a record count, -chaos-stop
// SIGSTOPs one (a true straggler), and -chaos-corrupt flips a checksum
// bit mid-journal after the shard completes. The distributed chaos suite
// drives all three and still demands byte-identical Table 4.

package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hpcmetrics/internal/persist"
)

// coord supervises one distributed campaign.
type coord struct {
	dir         string
	shards      int
	workersPer  int
	straggle    time.Duration
	maxRestarts int
	traced      bool
	workerArgs  []string // flags forwarded verbatim to every worker

	chaosKill    map[string]int // shard name → journal record count that triggers SIGKILL
	chaosStop    map[string]int // shard name → record count that triggers SIGSTOP
	chaosCorrupt map[string]bool

	exe       string
	nextSlot  int
	killFired map[string]bool
	stopFired map[string]bool
}

// workerProc is one spawned shard process (initial, restart, or
// stealer).
type workerProc struct {
	slot    int
	journal string
	cmd     *exec.Cmd
	exit    chan error

	exited        bool
	err           error
	handled       bool
	killedByCoord bool
}

// shardState tracks one slice of the grid across worker generations.
type shardState struct {
	index   int
	name    string
	journal string

	primary *workerProc
	stealer *workerProc
	winner  *workerProc // the process whose journal covers the slice

	done       bool
	abandoned  bool
	stolen     bool
	restarts   int
	corrupted  bool
	lastSize   int64
	lastGrowth time.Time
}

// workerArgs collects the explicitly-set flags a shard worker inherits
// from the coordinator's command line: the study shape (apps, targets,
// budgets, fault plan) is forwarded verbatim; coordinator-only flags,
// output selection, and per-worker identity are excluded because the
// coordinator decides those itself per spawn.
func workerArgs(fs *flag.FlagSet) []string {
	excluded := map[string]bool{
		"coordinator": true, "shards": true, "checkpoint-dir": true,
		"straggle-timeout": true, "max-restarts": true, "checkpoint-info": true,
		"chaos-kill": true, "chaos-stop": true, "chaos-corrupt": true,
		"shard-index": true, "shard-count": true, "shard-name": true,
		"shard-tail": true, "shard-slot": true,
		"checkpoint": true, "resume": true, "workers": true,
		"csv": true, "quiet": true, "only": true,
		"trace": true, "spans": true, "manifest": true, "prom": true,
		"cpuprofile": true, "memprofile": true, "tracefile": true,
	}
	var out []string
	fs.Visit(func(f *flag.Flag) {
		if excluded[f.Name] {
			return
		}
		out = append(out, "-"+f.Name+"="+f.Value.String())
	})
	return out
}

// parseChaosAt parses "name@records" pairs, comma-separated.
func parseChaosAt(spec string) (map[string]int, error) {
	out := make(map[string]int)
	for _, part := range splitList(spec) {
		name, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos trigger %q: want name@records", part)
		}
		n, err := strconv.Atoi(at)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("chaos trigger %q: bad record count", part)
		}
		out[name] = n
	}
	return out, nil
}

func (c *coord) logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricstudy: coordinator: "+format+"\n", args...)
}

func (c *coord) run(ctx context.Context) error {
	if c.dir == "" {
		return fmt.Errorf("-coordinator needs -checkpoint-dir")
	}
	if c.shards < 2 {
		return fmt.Errorf("-coordinator needs -shards >= 2 (got %d)", c.shards)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	c.exe = exe
	c.killFired = make(map[string]bool)
	c.stopFired = make(map[string]bool)
	if c.workersPer <= 0 {
		// Split the machine across the fleet rather than letting every
		// worker default to a full GOMAXPROCS pool.
		c.workersPer = runtime.GOMAXPROCS(0) / c.shards
		if c.workersPer < 1 {
			c.workersPer = 1
		}
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	// A coordinator campaign starts fresh: stale shard artifacts from a
	// previous campaign under a different tag would poison the merge.
	for _, pat := range []string{"*.ckpt", "*.ckpt.quarantined", "*.spans.jsonl", "*.manifest.json", "*.log"} {
		matches, err := filepath.Glob(filepath.Join(c.dir, pat))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				return err
			}
		}
	}

	states := make([]*shardState, c.shards)
	for i := range states {
		s := &shardState{index: i, name: fmt.Sprintf("shard%d", i)}
		s.journal = filepath.Join(c.dir, s.name+".ckpt")
		w, err := c.spawn(ctx, s, s.journal, false, false)
		if err != nil {
			return err
		}
		s.primary = w
		s.lastGrowth = time.Now()
		states[i] = s
	}
	c.logf("spawned %d shard workers into %s", c.shards, c.dir)

	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		allSettled := true
		for _, s := range states {
			if err := c.supervise(ctx, s); err != nil {
				return err
			}
			settled := s.abandoned || (s.done && (!c.chaosCorrupt[s.name] || s.corrupted))
			if !settled {
				allSettled = false
			}
		}
		if allSettled {
			var abandoned []string
			for _, s := range states {
				if s.abandoned {
					abandoned = append(abandoned, s.name)
				}
			}
			if len(abandoned) > 0 {
				c.logf("campaign settled with abandoned shard(s) %v; the merge recomputes their units", abandoned)
			} else {
				c.logf("all %d shards complete; merging", c.shards)
			}
			return nil
		}
	}
}

// supervise advances one shard's state machine by one tick: reap exits,
// fire chaos triggers, detect stragglers.
func (c *coord) supervise(ctx context.Context, s *shardState) error {
	if s.abandoned {
		return nil
	}
	pollExit(s.primary)
	pollExit(s.stealer)
	if s.done {
		c.applyCorruptChaos(s)
		return nil
	}

	if w := s.primary; w != nil && w.exited && !w.handled {
		w.handled = true
		switch {
		case w.killedByCoord:
			// The loser of a completed steal; the shard is already done.
		case w.err == nil:
			c.completeShard(s, w, s.stealer)
		default:
			if err := c.handleCrash(ctx, s, w); err != nil {
				return err
			}
		}
	}
	if w := s.stealer; w != nil && w.exited && !w.handled {
		w.handled = true
		switch {
		case w.killedByCoord:
		case w.err == nil:
			c.completeShard(s, w, s.primary)
		default:
			// A dead stealer costs nothing: its journal is a valid
			// partial, and the victim (or its restarts) still owns the
			// slice.
			c.logf("stealer for %s exited with %v; victim keeps the slice", s.name, w.err)
		}
	}
	if s.done || s.abandoned {
		return nil
	}

	c.fireChaos(s)

	// Heartbeat: journal growth. Stat size is enough — every append is
	// an atomic whole-file rewrite, so any progress changes the size.
	if st, err := os.Stat(s.journal); err == nil && st.Size() != s.lastSize {
		s.lastSize = st.Size()
		s.lastGrowth = time.Now()
	}
	// A shard is a straggler only once it has journaled at least one
	// record and then gone silent: before the first record, silence is
	// indistinguishable from startup, and an empty snapshot would hand a
	// stealer the whole slice anyway (dead-at-start workers are the
	// crash-restart path's job).
	if !s.stolen && s.primary != nil && !s.primary.exited &&
		time.Since(s.lastGrowth) > c.straggle && countRecords(s.journal) >= 1 {
		if err := c.steal(ctx, s); err != nil {
			return err
		}
	}
	return nil
}

// signalProc delivers sig to a worker, tolerating the one race
// supervision invites: the process finishing right before the signal.
func (c *coord) signalProc(w *workerProc, sig syscall.Signal) {
	if w.cmd.Process == nil {
		return
	}
	if err := w.cmd.Process.Signal(sig); err != nil && !errors.Is(err, os.ErrProcessDone) {
		c.logf("signaling worker slot %d with %v: %v", w.slot, sig, err)
	}
}

// pollExit drains a worker's exit notification without blocking.
func pollExit(w *workerProc) {
	if w == nil || w.exited {
		return
	}
	select {
	case err := <-w.exit:
		w.exited = true
		w.err = err
	default:
	}
}

// completeShard marks s done and kills the losing process (if any).
// The -chaos-corrupt knob is applied later, once every process of the
// shard has exited (applyCorruptChaos) — a dying loser could otherwise
// rewrite a journal after the knob touched it.
func (c *coord) completeShard(s *shardState, winner, loser *workerProc) {
	s.done = true
	s.winner = winner
	if loser != nil && !loser.exited {
		loser.killedByCoord = true
		c.signalProc(loser, syscall.SIGKILL)
		c.logf("shard %s finished; killed the redundant worker (slot %d)", s.name, loser.slot)
	}
}

// applyCorruptChaos applies a pending -chaos-corrupt trigger for a
// completed shard: the journal that covers the slice (the winner's) is
// corrupted mid-file and the shard's other journal, if any, removed, so
// the merge run provably has to quarantine the slice and recompute it —
// even when an opportunistic steal left a second snapshot behind.
func (c *coord) applyCorruptChaos(s *shardState) {
	if !c.chaosCorrupt[s.name] || s.corrupted {
		return
	}
	if (s.primary != nil && !s.primary.exited) || (s.stealer != nil && !s.stealer.exited) {
		return // a live process could still rewrite a journal; wait
	}
	s.corrupted = true
	target := s.journal
	if s.winner != nil {
		target = s.winner.journal
	}
	for _, other := range []string{s.journal, filepath.Join(c.dir, s.name+"-steal.ckpt")} {
		if other == target {
			continue
		}
		if err := os.Remove(other); err != nil && !os.IsNotExist(err) {
			c.logf("chaos: removing %s: %v", other, err)
		}
	}
	if err := corruptJournal(target); err != nil {
		c.logf("chaos: could not corrupt %s: %v", target, err)
	} else {
		c.logf("chaos: corrupted %s mid-file and dropped any other journal of %s", target, s.name)
	}
}

// handleCrash triages a dead primary worker: quarantine a corrupt
// journal, restart within budget, or abandon the shard to the merge.
func (c *coord) handleCrash(ctx context.Context, s *shardState, w *workerProc) error {
	info, ierr := persist.Inspect(s.journal)
	if ierr == nil && info.Status == persist.JournalCorrupt {
		quarantined := s.journal + ".quarantined"
		if err := os.Rename(s.journal, quarantined); err != nil {
			return fmt.Errorf("quarantining %s: %w", s.journal, err)
		}
		fmt.Fprintf(os.Stderr, "metricstudy: quarantined shard journal %s: corrupt record at line %d with %d intact records stranded after it\n",
			s.journal, info.BadLine, info.Stranded)
		s.abandoned = true
		if st := s.stealer; st != nil && !st.exited {
			st.killedByCoord = true
			c.signalProc(st, syscall.SIGKILL)
		}
		return nil
	}
	if s.restarts >= c.maxRestarts {
		c.logf("shard %s exceeded %d restarts; abandoning the slice to the merge", s.name, c.maxRestarts)
		s.abandoned = true
		return nil
	}
	s.restarts++
	c.logf("shard %s worker (slot %d) exited with %v; restarting with -resume (attempt %d/%d)",
		s.name, w.slot, w.err, s.restarts, c.maxRestarts)
	nw, err := c.spawn(ctx, s, s.journal, true, false)
	if err != nil {
		return err
	}
	s.primary = nw
	s.lastGrowth = time.Now()
	return nil
}

// steal snapshots a straggler's journal and spawns a tail-first stealer
// with the same shard identity on the copy.
func (c *coord) steal(ctx context.Context, s *shardState) error {
	snapshot, err := os.ReadFile(s.journal)
	if err != nil {
		// No journal yet: the worker never journaled a unit. Restart
		// pressure comes from the crash path; just wait.
		return nil
	}
	stealPath := filepath.Join(c.dir, s.name+"-steal.ckpt")
	if err := os.WriteFile(stealPath, snapshot, 0o644); err != nil {
		return err
	}
	s.stolen = true
	w, err := c.spawn(ctx, s, stealPath, true, true)
	if err != nil {
		return err
	}
	s.stealer = w
	c.logf("shard %s silent for %s; stealing its remaining work (slot %d, tail-first)", s.name, c.straggle, w.slot)
	return nil
}

// fireChaos applies pending -chaos-kill/-chaos-stop triggers for s.
func (c *coord) fireChaos(s *shardState) {
	w := s.primary
	if w == nil || w.exited {
		return
	}
	if at, ok := c.chaosKill[s.name]; ok && !c.killFired[s.name] && countRecords(s.journal) >= at {
		c.killFired[s.name] = true
		c.signalProc(w, syscall.SIGKILL)
		c.logf("chaos: SIGKILLed shard %s worker (slot %d) at %d journal records", s.name, w.slot, at)
	}
	if at, ok := c.chaosStop[s.name]; ok && !c.stopFired[s.name] && countRecords(s.journal) >= at {
		c.stopFired[s.name] = true
		c.signalProc(w, syscall.SIGSTOP)
		c.logf("chaos: SIGSTOPped shard %s worker (slot %d) at %d journal records", s.name, w.slot, at)
	}
}

// spawn starts one shard worker process journaling into journal.
func (c *coord) spawn(ctx context.Context, s *shardState, journal string, resume, tail bool) (*workerProc, error) {
	slot := c.nextSlot
	c.nextSlot++
	args := []string{
		"-quiet", "-csv", "-only", "none",
		"-shard-index", strconv.Itoa(s.index),
		"-shard-count", strconv.Itoa(c.shards),
		"-shard-name", s.name,
		"-shard-slot", strconv.Itoa(slot),
		"-checkpoint", journal,
		"-workers", strconv.Itoa(c.workersPer),
	}
	if resume {
		args = append(args, "-resume")
	}
	if tail {
		args = append(args, "-shard-tail")
	}
	if c.traced {
		stem := filepath.Join(c.dir, fmt.Sprintf("%s.slot%d", s.name, slot))
		args = append(args,
			"-spans", stem+".spans.jsonl",
			"-manifest", stem+".manifest.json",
		)
	}
	args = append(args, c.workerArgs...)

	logf, err := os.OpenFile(filepath.Join(c.dir, s.name+".log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, c.exe, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	startErr := cmd.Start()
	// After Start the child holds its own descriptor; the coordinator's
	// copy is closed either way.
	if cerr := logf.Close(); cerr != nil && startErr == nil {
		c.logf("closing %s log: %v", s.name, cerr)
	}
	if startErr != nil {
		return nil, fmt.Errorf("spawning %s worker: %w", s.name, startErr)
	}
	w := &workerProc{slot: slot, journal: journal, cmd: cmd, exit: make(chan error, 1)}
	go func() {
		err := cmd.Wait()
		select {
		case w.exit <- err:
		default:
		}
	}()
	return w, nil
}

// countRecords returns how many record lines a journal holds (0 when
// unreadable or empty).
func countRecords(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := -1 // discount the header
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// corruptJournal flips one checksum hex digit on the journal's first
// record line, leaving later records stranded beyond the bad line — the
// signature MergeCheckpoints must quarantine (a torn tail would merely
// be truncated).
func corruptJournal(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := bytes.Split(raw, []byte("\n"))
	if len(lines) < 3 || len(bytes.TrimSpace(lines[2])) == 0 {
		return fmt.Errorf("%s: need at least two records to corrupt mid-file", path)
	}
	const marker = `"crc":"`
	i := bytes.Index(lines[1], []byte(marker))
	if i < 0 {
		return fmt.Errorf("%s: first record has no checksum field", path)
	}
	pos := i + len(marker)
	line := append([]byte{}, lines[1]...)
	if line[pos] == '0' {
		line[pos] = 'f'
	} else {
		line[pos] = '0'
	}
	lines[1] = line
	return os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644)
}

// printCheckpointInfo renders a journal inspection report — the
// -checkpoint-info triage view.
func printCheckpointInfo(path string) error {
	info, err := persist.Inspect(path)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint: %s\n", info.Path)
	fmt.Printf("format: %s, version %d\n", info.Format, info.Version)
	fmt.Printf("options tag: %s\n", info.BaseTag)
	if info.Sharded {
		fmt.Printf("shard: %s\n", info.Shard)
	}
	fmt.Printf("records: %d (%d probes, %d cells)\n", info.Records, info.Probes, info.Cells)
	if info.LastKey != "" {
		fmt.Printf("last unit: %s\n", info.LastKey)
	}
	switch info.Status {
	case persist.JournalClean:
		fmt.Println("status: clean")
	case persist.JournalTornTail:
		fmt.Printf("status: torn tail (undecodable line %d; a resume truncates it)\n", info.BadLine)
	case persist.JournalCorrupt:
		fmt.Printf("status: corrupt (bad record at line %d, %d intact records stranded after it; a merge quarantines this journal)\n",
			info.BadLine, info.Stranded)
	}
	return nil
}
