package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"hpcmetrics/internal/persist"
)

// The end-to-end distributed chaos suite: it builds the real metricstudy
// and tracecheck binaries, runs a coordinator campaign with workers
// being SIGKILLed, SIGSTOPped (stolen), and corrupted, and demands the
// merged Table 4 be byte-identical to a sequential single-process run.

var binDir string

func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Short() {
		dir, err := os.MkdirTemp("", "metricstudy-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := exec.Command("go", "build", "-o", dir,
			"hpcmetrics/cmd/metricstudy", "hpcmetrics/cmd/tracecheck").CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "building e2e binaries: %v\n%s", err, out)
			os.Exit(1)
		}
		binDir = dir
	}
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// sliceArgs restrict every run to the chaos slice: one app, two target
// systems — a grid small enough for subprocess campaigns, big enough to
// shard three ways.
var sliceArgs = []string{"-apps", "avus-standard", "-targets", "ARL_Opteron,MHPCC_P3"}

// runBin runs a built binary and fails the test on a non-zero exit.
func runBin(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", bin, args, err, errb.String())
	}
	return out.String(), errb.String()
}

var (
	goldenOnce   sync.Once
	goldenTable4 string
)

// golden returns the sequential single-process Table 4 CSV the merged
// campaigns must reproduce byte for byte.
func golden(t *testing.T) string {
	t.Helper()
	goldenOnce.Do(func() {
		args := append([]string{"-quiet", "-csv", "-only", "table4"}, sliceArgs...)
		goldenTable4, _ = runBin(t, "metricstudy", args...)
	})
	if goldenTable4 == "" {
		t.Fatal("no golden Table 4 (sequential run failed earlier)")
	}
	return goldenTable4
}

// TestDistributedChaosCampaignConverges is the acceptance run: a
// three-shard coordinator campaign where shard0's worker is SIGKILLed
// mid-slice (crash-restart), shard1's worker is SIGSTOPped past the
// straggler threshold (work stealing), and shard2's journal is
// corrupted mid-file after it completes (quarantine + recompute). The
// campaign must still exit 0 and print a Table 4 byte-identical to the
// sequential run, and the surviving workers' span logs must pass
// tracecheck -shards.
func TestDistributedChaosCampaignConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess campaign; skipped in -short")
	}
	want := golden(t)

	dir := t.TempDir()
	args := append([]string{
		"-quiet", "-csv", "-only", "table4", "-trace",
		"-coordinator", "-shards", "3", "-checkpoint-dir", dir,
		"-straggle-timeout", "5s",
		"-chaos-kill", "shard0@1",
		"-chaos-stop", "shard1@1",
		"-chaos-corrupt", "shard2",
	}, sliceArgs...)
	stdout, stderr := runBin(t, "metricstudy", args...)

	if stdout != want {
		t.Errorf("merged Table 4 differs from the sequential run:\n--- got\n%s--- want\n%s", stdout, want)
	}
	for _, event := range []string{
		"chaos: SIGKILLed shard shard0",
		"restarting with -resume",
		"chaos: SIGSTOPped shard shard1",
		"stealing its remaining work",
		"chaos: corrupted",
		"no journal covered shard slice(s) [2]",
	} {
		if !strings.Contains(stderr, event) {
			t.Errorf("campaign stderr missing %q:\n%s", event, stderr)
		}
	}
	// The corrupt shard is quarantined by name, whichever of its
	// journals ended up covering the slice.
	if !regexp.MustCompile(`quarantined shard journal \S*shard2\S*\.ckpt`).MatchString(stderr) {
		t.Errorf("campaign stderr does not quarantine a shard2 journal:\n%s", stderr)
	}

	// The victim of the steal was SIGKILLed before it could export spans,
	// so the directory holds logs only from workers that finished — and
	// those must be a consistent multi-shard trace.
	tcOut, _ := runBin(t, "tracecheck", "-shards", dir)
	for _, name := range []string{"shard0", "shard1", "shard2"} {
		if !strings.Contains(tcOut, name) {
			t.Errorf("tracecheck output missing %s: %s", name, tcOut)
		}
	}

	// The corrupt journal was quarantined by the merge report, not
	// rewritten or deleted — it's still on disk for post-mortems.
	if m, _ := filepath.Glob(filepath.Join(dir, "shard2*.ckpt")); len(m) != 1 {
		t.Errorf("want exactly the corrupt shard2 journal on disk, got %v", m)
	}
	// The stolen shard left both the victim's journal and the stealer's.
	for _, f := range []string{"shard1.ckpt", "shard1-steal.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("steal artifact %s missing: %v", f, err)
		}
	}
}

// TestCoordinatorCleanCampaign: no chaos, two shards — the plain
// distributed path also converges byte-identically.
func TestCoordinatorCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess campaign; skipped in -short")
	}
	want := golden(t)
	dir := t.TempDir()
	args := append([]string{
		"-quiet", "-csv", "-only", "table4",
		"-coordinator", "-shards", "2", "-checkpoint-dir", dir,
	}, sliceArgs...)
	stdout, stderr := runBin(t, "metricstudy", args...)
	if stdout != want {
		t.Errorf("merged Table 4 differs from the sequential run:\n--- got\n%s--- want\n%s", stdout, want)
	}
	if strings.Contains(stderr, "quarantined") || strings.Contains(stderr, "no journal covered") {
		t.Errorf("clean campaign reported damage:\n%s", stderr)
	}
}

// TestCheckpointInfo exercises the journal triage view over a clean and
// a mid-file-corrupted shard journal.
func TestCheckpointInfo(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the built binary; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "shard0.ckpt")
	tag := persist.ShardTag("opts=x", persist.ShardSpec{Index: 0, Count: 2, Name: "shard0"})
	ckpt, err := persist.CreateCheckpoint(path, tag)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ckpt.Append(persist.CellRecord{Stage: "cell", Key: fmt.Sprintf("unit%d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	stdout, _ := runBin(t, "metricstudy", "-checkpoint-info", path)
	for _, want := range []string{
		"shard: 0/2 (shard0)",
		"records: 3 (0 probes, 3 cells)",
		"last unit: cell unit2",
		"status: clean",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("checkpoint-info missing %q:\n%s", want, stdout)
		}
	}

	if err := corruptJournal(path); err != nil {
		t.Fatal(err)
	}
	stdout, _ = runBin(t, "metricstudy", "-checkpoint-info", path)
	if !strings.Contains(stdout, "status: corrupt (bad record at line 2, 2 intact records stranded after it") {
		t.Errorf("corrupt journal not triaged:\n%s", stdout)
	}
}
