// Command probes runs the synthetic benchmark suite on one machine (or
// all presets) and prints the results, including the MAPS
// bandwidth-versus-size curves behind the paper's Figure 1.
//
// Usage:
//
//	probes [-machine NAME] [-maps] [-enhanced] [-csv]
//
// Without -machine, every preset is probed (summary only).
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcmetrics"
	"hpcmetrics/internal/probes"
)

func main() {
	name := flag.String("machine", "", "preset machine name (empty: all presets, summary only)")
	maps := flag.Bool("maps", false, "print MAPS curves (with -machine)")
	enhanced := flag.Bool("enhanced", false, "print ENHANCED MAPS (dependency) curves too")
	flag.Parse()

	if *name == "" {
		fmt.Printf("%-16s %10s %12s %12s %10s %11s\n",
			"machine", "HPL(GF/s)", "STREAM(GB/s)", "GUPS(Mref/s)", "lat(us)", "bw(MB/s)")
		for _, n := range hpcmetrics.MachineNames() {
			pr := measure(n)
			fmt.Printf("%-16s %10.2f %12.2f %12.1f %10.1f %11.0f\n", n,
				pr.HPLFlopsPerSec/1e9, pr.StreamBytesPerSec/1e9, pr.GUPSRefsPerSec/1e6,
				pr.Net.LatencySeconds*1e6, pr.Net.BandwidthBytesPerSec/1e6)
		}
		return
	}

	pr := measure(*name)
	fmt.Printf("machine:   %s\n", pr.Machine)
	fmt.Printf("HPL:       %.2f GF/s per processor\n", pr.HPLFlopsPerSec/1e9)
	fmt.Printf("STREAM:    %.2f GB/s\n", pr.StreamBytesPerSec/1e9)
	fmt.Printf("GUPS:      %.1f Mref/s\n", pr.GUPSRefsPerSec/1e6)
	fmt.Printf("NETBENCH:  latency %.1f us, bandwidth %.0f MB/s, allreduce(8B,64p) %.1f us\n",
		pr.Net.LatencySeconds*1e6, pr.Net.BandwidthBytesPerSec/1e6, pr.Net.AllReduce8At64*1e6)

	if *maps || *enhanced {
		fmt.Printf("\n%-8s %14s %14s", "size", "unit(GB/s)", "random(Mref/s)")
		if *enhanced {
			fmt.Printf(" %14s %14s", "depU(GB/s)", "depR(Mref/s)")
		}
		fmt.Println()
		for i, size := range pr.MAPSUnit.SizesBytes {
			fmt.Printf("%-8s %14.2f %14.1f", sizeLabel(size),
				pr.MAPSUnit.RefsPerSec[i]*8/1e9, pr.MAPSRandom.RefsPerSec[i]/1e6)
			if *enhanced {
				fmt.Printf(" %14.2f %14.1f",
					pr.DepUnit.RefsPerSec[i]*8/1e9, pr.DepRandom.RefsPerSec[i]/1e6)
			}
			fmt.Println()
		}
	}
}

func measure(name string) *probes.Results {
	cfg, err := hpcmetrics.LookupMachine(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "probes:", err)
		os.Exit(1)
	}
	pr, err := hpcmetrics.MeasureProbes(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "probes:", err)
		os.Exit(1)
	}
	return pr
}

func sizeLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
