// Command tracer traces one application test case on the base system and
// dumps its signature: per-block operation counts, stride classification,
// working-set estimates, ILP flags, and the MPI event profile — what
// MetaSim Tracer, the stride detector, MPIDTRACE, and the static analyzer
// deliver in the paper's tool chain.
//
// Usage:
//
//	tracer -app avus [-case standard] [-procs 64] [-base NAVO_690]
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcmetrics"
	"hpcmetrics/internal/persist"
)

func main() {
	appName := flag.String("app", "", "application name (avus, hycom, overflow2, rfcth)")
	caseName := flag.String("case", "", "test case (standard, large; default: first registered)")
	procs := flag.Int("procs", 0, "processor count (default: the test case's middle count)")
	baseName := flag.String("base", hpcmetrics.BaseSystem, "base system to trace on")
	out := flag.String("o", "", "also write the trace as JSON to this path (reusable by predict -trace)")
	flag.Parse()

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "tracer: -app is required; known test cases:")
		for _, tc := range hpcmetrics.TestCases() {
			fmt.Fprintf(os.Stderr, "  %s (CPUs %v)\n", tc.ID(), tc.CPUCounts)
		}
		os.Exit(2)
	}

	tc, err := hpcmetrics.LookupTestCase(*appName, *caseName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
	if *procs == 0 {
		*procs, err = tc.DefaultProcs()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
	}
	app, err := tc.Instance(*procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
	base, err := hpcmetrics.LookupMachine(*baseName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}

	tr, err := hpcmetrics.CollectTrace(base, app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}

	fmt.Printf("trace of %s at %d CPUs on %s\n", tr.ID(), tr.Procs, tr.BaseSystem)
	fmt.Printf("totals: %.3g flops, %.3g memory references per rank\n\n",
		tr.TotalFlops(), tr.TotalMemOps())
	fmt.Printf("%-12s %12s %10s %8s %8s %8s %10s %6s\n",
		"block", "iters", "flops/it", "unit", "short", "random", "workset", "ILP")
	for _, bt := range tr.Blocks {
		fmt.Printf("%-12s %12.3g %10.0f %7.1f%% %7.1f%% %7.1f%% %10s %6v\n",
			bt.Name, bt.Iters, bt.FlopsPerIter,
			bt.Mix.Unit*100, bt.Mix.Short*100, bt.Mix.Random*100,
			sizeLabel(bt.WorkingSetBytes), bt.ILPLimited)
	}

	fmt.Println("\nMPI event profile (per rank, whole run):")
	for _, ev := range tr.Comm {
		fmt.Printf("  %-10s %10.0f events x %8d bytes\n", ev.Op, ev.Count, ev.Bytes)
	}

	if *out != "" {
		if err := persist.SaveTrace(*out, tr); err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *out)
	}
}

func sizeLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
