// Command tracecheck validates trace-smoke artifacts: it parses a span
// log (JSONL) and a run manifest, and fails unless the span log is
// well-formed, covers the study's phases, and the manifest is complete.
// CI runs it after a traced -short study to catch export regressions.
//
// Usage:
//
//	tracecheck spans.jsonl manifest.json
package main

import (
	"fmt"
	"os"

	"hpcmetrics/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

// requiredPhases are the span names every traced study run must emit.
var requiredPhases = []string{"study", "probe", "observe", "trace", "predict", "convolve", "balanced"}

func run() error {
	if len(os.Args) != 3 {
		return fmt.Errorf("usage: tracecheck spans.jsonl manifest.json")
	}
	spansPath, manifestPath := os.Args[1], os.Args[2]

	f, err := os.Open(spansPath)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no spans", spansPath)
	}
	byID := make(map[uint64]bool, len(recs))
	names := make(map[string]int)
	for _, rec := range recs {
		if rec.ID == 0 {
			return fmt.Errorf("%s: span with zero id", spansPath)
		}
		if byID[rec.ID] {
			return fmt.Errorf("%s: duplicate span id %d", spansPath, rec.ID)
		}
		byID[rec.ID] = true
		if rec.Name == "" || rec.Path == "" {
			return fmt.Errorf("%s: span %d missing name/path", spansPath, rec.ID)
		}
		if rec.DurNs < 0 {
			return fmt.Errorf("%s: span %d has negative duration", spansPath, rec.ID)
		}
		names[rec.Name]++
	}
	for _, rec := range recs {
		if rec.Parent != 0 && !byID[rec.Parent] {
			return fmt.Errorf("%s: span %d references unknown parent %d", spansPath, rec.ID, rec.Parent)
		}
	}
	for _, want := range requiredPhases {
		if names[want] == 0 {
			return fmt.Errorf("%s: no %q span", spansPath, want)
		}
	}

	m, err := obs.ReadManifest(manifestPath)
	if err != nil {
		return err
	}
	if err := m.Complete(); err != nil {
		return fmt.Errorf("%s: %w", manifestPath, err)
	}

	fmt.Printf("tracecheck: %d spans across %d phase names, manifest complete (%s, GOMAXPROCS=%d)\n",
		len(recs), len(names), m.GoVersion, m.GOMAXPROCS)
	return nil
}
