// Command tracecheck validates trace-smoke artifacts: it parses a span
// log (JSONL) and a run manifest, and fails unless the span log is
// well-formed, covers the study's phases, and the manifest is complete.
// With an optional third argument — the Prometheus metrics dump — it
// also checks the retry/fault counter algebra: retries, timeouts, and
// give-ups can never exceed attempts, and the per-kind fault counters
// must sum to the total. CI runs it after the traced -short study and
// the chaos run to catch export regressions.
//
// With -serve it instead validates the predictd serving pair — a span
// log plus an access log: every access record joins a root span by trace
// ID (with matching endpoint and status), parentage is acyclic, and
// every coalesced wait span references its leader's trace.
// -require-outcomes additionally demands the run demonstrated specific
// cache outcomes, which is how CI proves a smoke run exercised the
// cold/cached/coalesced triple.
//
// With -shards it instead validates a distributed study's concatenated
// multi-shard span log against the shard workers' manifests:
// shard-prefixed span IDs must be globally unique, every span's shard
// field must match a manifest, and parentage must never cross worker
// processes. Arguments may be span logs (*.jsonl), manifests (*.json),
// or directories (globbed for *.spans.jsonl and *.manifest.json).
//
// Usage:
//
//	tracecheck spans.jsonl manifest.json [metrics.prom]
//	tracecheck -serve [-require-outcomes cold,cached,coalesced] spans.jsonl access.jsonl
//	tracecheck -shards <dir | spans.jsonl | manifest.json>...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hpcmetrics/internal/obs"
)

func main() {
	serveMode := flag.Bool("serve", false, "validate a predictd span log + access log pair instead of study artifacts")
	shardMode := flag.Bool("shards", false, "validate a distributed study's concatenated span logs against its shard manifests")
	requireOutcomes := flag.String("require-outcomes", "", "comma-separated cache outcomes the serve logs must demonstrate (with -serve)")
	flag.Parse()
	var err error
	switch {
	case *serveMode:
		err = runServe(flag.Args(), *requireOutcomes)
	case *shardMode:
		err = runShards(flag.Args())
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

// runShards validates a multi-shard span log set against its worker
// manifests (obs.CheckShardedSpans). Directory arguments are globbed
// for *.spans.jsonl and *.manifest.json.
func runShards(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracecheck -shards <dir | spans.jsonl | manifest.json>...")
	}
	var spanPaths, manifestPaths []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return err
		}
		switch {
		case st.IsDir():
			sp, err := filepath.Glob(filepath.Join(arg, "*.spans.jsonl"))
			if err != nil {
				return err
			}
			mp, err := filepath.Glob(filepath.Join(arg, "*.manifest.json"))
			if err != nil {
				return err
			}
			sort.Strings(sp)
			sort.Strings(mp)
			spanPaths = append(spanPaths, sp...)
			manifestPaths = append(manifestPaths, mp...)
		case strings.HasSuffix(arg, ".jsonl"):
			spanPaths = append(spanPaths, arg)
		case strings.HasSuffix(arg, ".json"):
			manifestPaths = append(manifestPaths, arg)
		default:
			return fmt.Errorf("%s: not a directory, span log (.jsonl), or manifest (.json)", arg)
		}
	}
	if len(spanPaths) == 0 {
		return fmt.Errorf("no span logs among the arguments")
	}
	if len(manifestPaths) == 0 {
		return fmt.Errorf("no manifests among the arguments")
	}

	var spans []obs.SpanRecord
	for _, path := range spanPaths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		recs, err := obs.ReadJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, recs...)
	}
	var manifests []obs.Manifest
	for _, path := range manifestPaths {
		m, err := obs.ReadManifest(path)
		if err != nil {
			return err
		}
		if err := m.Complete(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		manifests = append(manifests, m)
	}

	stats, err := obs.CheckShardedSpans(spans, manifests)
	if err != nil {
		return err
	}
	var shards []string
	for name, n := range stats.Shards {
		shards = append(shards, fmt.Sprintf("%s:%d", name, n))
	}
	sort.Strings(shards)
	fmt.Printf("tracecheck: %d spans across %d shards in %d process slots, parentage shard-local (%s)\n",
		stats.Spans, len(stats.Shards), stats.Slots, strings.Join(shards, " "))
	return nil
}

// runServe cross-validates a predictd span log against its access log.
func runServe(args []string, requireOutcomes string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: tracecheck -serve [-require-outcomes a,b] spans.jsonl access.jsonl")
	}
	spansPath, accessPath := args[0], args[1]

	sf, err := os.Open(spansPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	spans, err := obs.ReadJSONL(sf)
	if err != nil {
		return err
	}
	af, err := os.Open(accessPath)
	if err != nil {
		return err
	}
	defer af.Close()
	accs, err := obs.ReadAccessLog(af)
	if err != nil {
		return err
	}
	if len(accs) == 0 {
		return fmt.Errorf("%s: no access records", accessPath)
	}

	stats, err := obs.CheckServeLogs(spans, accs)
	if err != nil {
		return err
	}
	if requireOutcomes != "" {
		for _, outcome := range strings.Split(requireOutcomes, ",") {
			outcome = strings.TrimSpace(outcome)
			if outcome == "" {
				continue
			}
			if stats.Outcomes[outcome] < 1 {
				return fmt.Errorf("serve logs demonstrate no %q outcome (saw %v)", outcome, stats.OutcomeNames())
			}
		}
	}
	fmt.Printf("tracecheck: %d access records joined to %d root spans (%d spans total), %d coalesced waits verified, outcomes %v\n",
		stats.AccessRecords, stats.RootSpans, len(spans), stats.CoalescedSpans, stats.OutcomeNames())
	return nil
}

// requiredPhases are the span names every traced study run must emit.
var requiredPhases = []string{"study", "probe", "observe", "trace", "predict", "convolve", "balanced"}

func run() error {
	if len(os.Args) != 3 && len(os.Args) != 4 {
		return fmt.Errorf("usage: tracecheck spans.jsonl manifest.json [metrics.prom]")
	}
	spansPath, manifestPath := os.Args[1], os.Args[2]

	f, err := os.Open(spansPath)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no spans", spansPath)
	}
	byID := make(map[uint64]bool, len(recs))
	names := make(map[string]int)
	for _, rec := range recs {
		if rec.ID == 0 {
			return fmt.Errorf("%s: span with zero id", spansPath)
		}
		if byID[rec.ID] {
			return fmt.Errorf("%s: duplicate span id %d", spansPath, rec.ID)
		}
		byID[rec.ID] = true
		if rec.Name == "" || rec.Path == "" {
			return fmt.Errorf("%s: span %d missing name/path", spansPath, rec.ID)
		}
		if rec.DurNs < 0 {
			return fmt.Errorf("%s: span %d has negative duration", spansPath, rec.ID)
		}
		names[rec.Name]++
	}
	for _, rec := range recs {
		if rec.Parent != 0 && !byID[rec.Parent] {
			return fmt.Errorf("%s: span %d references unknown parent %d", spansPath, rec.ID, rec.Parent)
		}
	}
	for _, want := range requiredPhases {
		if names[want] == 0 {
			return fmt.Errorf("%s: no %q span", spansPath, want)
		}
	}

	m, err := obs.ReadManifest(manifestPath)
	if err != nil {
		return err
	}
	if err := m.Complete(); err != nil {
		return fmt.Errorf("%s: %w", manifestPath, err)
	}

	if len(os.Args) == 4 {
		if err := checkCounters(os.Args[3]); err != nil {
			return err
		}
	}

	fmt.Printf("tracecheck: %d spans across %d phase names, manifest complete (%s, GOMAXPROCS=%d)\n",
		len(recs), len(names), m.GoVersion, m.GOMAXPROCS)
	return nil
}

// checkCounters reads a Prometheus text dump and validates the retry and
// fault-injection counter algebra.
func checkCounters(path string) error {
	counters, err := readProm(path)
	if err != nil {
		return err
	}
	attempts := counters["retry_attempts_total"]
	for _, name := range []string{"retry_retries_total", "retry_timeouts_total", "retry_giveups_total"} {
		if counters[name] > attempts {
			return fmt.Errorf("%s: %s=%d exceeds retry_attempts_total=%d", path, name, counters[name], attempts)
		}
	}
	var perKind int64
	for _, kind := range []string{"transient", "stall", "permanent"} {
		perKind += counters["faults_injected_"+kind+"_total"]
	}
	if total := counters["faults_injected_total"]; total != perKind {
		return fmt.Errorf("%s: faults_injected_total=%d but per-kind counters sum to %d", path, total, perKind)
	}
	fmt.Printf("tracecheck: counters consistent (%d retry attempts, %d faults injected)\n",
		attempts, counters["faults_injected_total"])
	return nil
}

// readProm collects the plain name/value samples of a Prometheus text
// dump (labeled and histogram series are skipped — the counter algebra
// above only needs the scalars).
func readProm(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(f)
	// Three-clause form: the scan advances in the loop header, so the
	// loop's termination (end of file) is structural.
	for ok := sc.Scan(); ok; ok = sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64); err == nil {
			out[name] = v
		}
	}
	return out, sc.Err()
}
