package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"hpcmetrics"
	"hpcmetrics/internal/persist"
	"hpcmetrics/internal/predictor"
	"hpcmetrics/internal/trace"
)

// TestObserveTargetTooLarge: a job exceeding the machine's processor
// count is a missing observation, not an error — the prediction still
// prints, just without a ground-truth comparison.
func TestObserveTargetTooLarge(t *testing.T) {
	var eng predictor.Engine
	cfg := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
	tc, err := hpcmetrics.LookupTestCase("avus", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(cfg.TotalProcs + 1)
	if err != nil {
		t.Fatal(err)
	}
	seconds, fits, err := observeTarget(context.Background(), eng, cfg, app)
	if err != nil {
		t.Fatalf("too-large job reported as error: %v", err)
	}
	if fits || seconds != 0 {
		t.Fatalf("too-large job observed: fits=%v seconds=%g", fits, seconds)
	}
}

// TestObserveTargetRealError is the regression test for the discarded
// Execute error: any failure other than a too-large job must surface,
// not silently leave the observation at zero.
func TestObserveTargetRealError(t *testing.T) {
	var eng predictor.Engine
	tc, err := hpcmetrics.LookupTestCase("avus", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(32)
	if err != nil {
		t.Fatal(err)
	}
	bad := &hpcmetrics.MachineConfig{} // fails validation inside Execute
	if _, _, err := observeTarget(context.Background(), eng, bad, app); err == nil {
		t.Fatal("execution failure swallowed")
	}
}

// TestObserveTargetFits: a job that fits returns its observed time.
func TestObserveTargetFits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-fidelity execution")
	}
	var eng predictor.Engine
	cfg := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
	tc, err := hpcmetrics.LookupTestCase("rfcth", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(16)
	if err != nil {
		t.Fatal(err)
	}
	seconds, fits, err := observeTarget(context.Background(), eng, cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if !fits || seconds <= 0 {
		t.Fatalf("fitting job not observed: fits=%v seconds=%g", fits, seconds)
	}
}

// TestValidateTraceRejectsCaseMismatch is the regression test for the
// trust gap where a reused trace was validated by application and
// processor count but not by test case: an avus-standard trace must not
// silently drive an avus-large prediction.
func TestValidateTraceRejectsCaseMismatch(t *testing.T) {
	tc, err := hpcmetrics.LookupTestCase("avus", "large")
	if err != nil {
		t.Fatal(err)
	}
	tr := &hpcmetrics.Trace{App: "avus", Case: "standard", Procs: 128}
	err = validateTrace(tr, tc, 128)
	if err == nil {
		t.Fatal("case-mismatched trace accepted")
	}
	if !strings.Contains(err.Error(), "avus-standard@128") || !strings.Contains(err.Error(), "avus-large@128") {
		t.Errorf("mismatch error %q does not name both cells", err)
	}

	// The matching identity still passes, and app/procs mismatches are
	// still caught.
	if err := validateTrace(&hpcmetrics.Trace{App: "avus", Case: "large", Procs: 128}, tc, 128); err != nil {
		t.Errorf("matching trace rejected: %v", err)
	}
	if err := validateTrace(&hpcmetrics.Trace{App: "hycom", Case: "large", Procs: 128}, tc, 128); err == nil {
		t.Error("app-mismatched trace accepted")
	}
	if err := validateTrace(&hpcmetrics.Trace{App: "avus", Case: "large", Procs: 64}, tc, 128); err == nil {
		t.Error("procs-mismatched trace accepted")
	}
}

// TestTraceFlagRejectsCaseMismatch drives the full CLI against a
// persisted trace of the wrong test case and expects exit code 1 with
// both cell identities in the diagnostic.
func TestTraceFlagRejectsCaseMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("probes two machines and runs a base execution")
	}
	path := filepath.Join(t.TempDir(), "avus-standard.trace")
	// One block keeps persist.LoadTrace from rejecting the file as empty,
	// so the run reaches the identity validation under test.
	tr := &trace.Trace{App: "avus", Case: "standard", Procs: 128, Blocks: make([]trace.BlockTrace, 1)}
	if err := persist.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-app", "avus", "-case", "large", "-procs", "128", "-target", "ARL_Opteron", "-trace", path},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "avus-standard@128") {
		t.Errorf("stderr %q does not identify the mismatched trace", stderr.String())
	}
}

// TestMetricAndAllMutuallyExclusive: -metric alongside -all used to
// silently ignore -metric; now the combination is a usage error, before
// any probing or tracing runs.
func TestMetricAndAllMutuallyExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-app", "avus", "-target", "ARL_Opteron", "-metric", "5", "-all"},
		&stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr %q does not explain the flag conflict", stderr.String())
	}
	// -all with the -metric default left unset stays valid usage (it
	// would run the full prediction, so only the flag layer is checked
	// here via a missing -app).
	stderr.Reset()
	if code := run(context.Background(), []string{"-target", "ARL_Opteron", "-all"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -app exit code %d, want 2", code)
	}
	if strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("-all without explicit -metric wrongly reported as a conflict: %q", stderr.String())
	}
}
