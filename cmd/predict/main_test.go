package main

import (
	"testing"

	"hpcmetrics"
)

// TestObserveTargetTooLarge: a job exceeding the machine's processor
// count is a missing observation, not an error — the prediction still
// prints, just without a ground-truth comparison.
func TestObserveTargetTooLarge(t *testing.T) {
	cfg := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
	tc, err := hpcmetrics.LookupTestCase("avus", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(cfg.TotalProcs + 1)
	if err != nil {
		t.Fatal(err)
	}
	seconds, fits, err := observeTarget(cfg, app)
	if err != nil {
		t.Fatalf("too-large job reported as error: %v", err)
	}
	if fits || seconds != 0 {
		t.Fatalf("too-large job observed: fits=%v seconds=%g", fits, seconds)
	}
}

// TestObserveTargetRealError is the regression test for the discarded
// Execute error: any failure other than a too-large job must surface,
// not silently leave the observation at zero.
func TestObserveTargetRealError(t *testing.T) {
	tc, err := hpcmetrics.LookupTestCase("avus", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(32)
	if err != nil {
		t.Fatal(err)
	}
	bad := &hpcmetrics.MachineConfig{} // fails validation inside Execute
	if _, _, err := observeTarget(bad, app); err == nil {
		t.Fatal("execution failure swallowed")
	}
}

// TestObserveTargetFits: a job that fits returns its observed time.
func TestObserveTargetFits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-fidelity execution")
	}
	cfg := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
	tc, err := hpcmetrics.LookupTestCase("rfcth", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(16)
	if err != nil {
		t.Fatal(err)
	}
	seconds, fits, err := observeTarget(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if !fits || seconds <= 0 {
		t.Fatalf("fitting job not observed: fits=%v seconds=%g", fits, seconds)
	}
}
