// Command predict makes one prediction: the runtime of an application
// test case on a target machine, using a chosen metric (1-9), and — when
// the job fits on the simulated target — compares it against the
// ground-truth observed time, reporting the paper's Equation 2 error.
//
// Usage:
//
//	predict -app hycom -target ARL_Opteron [-metric 9] [-procs 96] [-all]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hpcmetrics"
	"hpcmetrics/internal/persist"
)

func main() {
	appName := flag.String("app", "", "application name (avus, hycom, overflow2, rfcth)")
	caseName := flag.String("case", "", "test case (standard, large)")
	procs := flag.Int("procs", 0, "processor count (default: the test case's middle count)")
	target := flag.String("target", "", "target machine preset")
	metricID := flag.Int("metric", 9, "metric number 1-9 (paper Table 3)")
	all := flag.Bool("all", false, "apply all nine metrics")
	tracePath := flag.String("trace", "", "reuse a trace written by tracer -o instead of tracing now")
	flag.Parse()

	if *appName == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "predict: -app and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	tc, err := hpcmetrics.LookupTestCase(*appName, *caseName)
	check(err)
	if *procs == 0 {
		*procs, err = tc.DefaultProcs()
		check(err)
	}
	app, err := tc.Instance(*procs)
	check(err)

	base := hpcmetrics.BaseMachine()
	targetCfg, err := hpcmetrics.LookupMachine(*target)
	check(err)

	fmt.Fprintf(os.Stderr, "probing %s and %s...\n", base.Name, targetCfg.Name)
	basePr, err := hpcmetrics.MeasureProbes(base)
	check(err)
	targetPr, err := hpcmetrics.MeasureProbes(targetCfg)
	check(err)

	fmt.Fprintf(os.Stderr, "running %s at %d CPUs on the base system...\n", tc.ID(), *procs)
	baseRun, err := hpcmetrics.Execute(base, app)
	check(err)

	var tr *hpcmetrics.Trace
	if *tracePath != "" {
		fmt.Fprintf(os.Stderr, "loading trace from %s...\n", *tracePath)
		tr, err = persist.LoadTrace(*tracePath)
		check(err)
		if tr.App != tc.Name || tr.Procs != *procs {
			fmt.Fprintf(os.Stderr, "predict: trace is %s-%s@%d, requested %s@%d\n",
				tr.App, tr.Case, tr.Procs, tc.ID(), *procs)
			os.Exit(1)
		}
	} else {
		fmt.Fprintln(os.Stderr, "tracing on the base system...")
		tr, err = hpcmetrics.CollectTrace(base, app)
		check(err)
	}

	actual, fits, err := observeTarget(targetCfg, app)
	check(err)

	fmt.Printf("%s at %d CPUs: base (%s) observed %.0f s\n",
		tc.ID(), *procs, base.Name, baseRun.Seconds)

	ids := []int{*metricID}
	if *all {
		ids = []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	}
	for _, id := range ids {
		m, err := hpcmetrics.MetricByID(id)
		check(err)
		pred, err := m.Predict(hpcmetrics.MetricContext{
			Trace: tr, Base: basePr, Target: targetPr, BaseSeconds: baseRun.Seconds,
		})
		check(err)
		fmt.Printf("metric %-4s %-20s predicts %8.0f s on %s",
			m.Label(), m.Name, pred, targetCfg.Name)
		if fits {
			fmt.Printf("  (observed %.0f s, error %+.0f%%)",
				actual, hpcmetrics.SignedError(pred, actual))
		}
		fmt.Println()
	}
	if !fits {
		fmt.Printf("(job does not fit on %s's %d processors; no observed time)\n",
			targetCfg.Name, targetCfg.TotalProcs)
	}
}

// observeTarget runs the app on the target machine for ground truth. A
// job too large for the machine is not a failure — there is simply no
// observation, like the blank cells in the paper's appendix — but every
// other execution error is real and must not be swallowed.
func observeTarget(cfg *hpcmetrics.MachineConfig, app *hpcmetrics.App) (seconds float64, fits bool, err error) {
	run, err := hpcmetrics.Execute(cfg, app)
	if errors.Is(err, hpcmetrics.ErrJobTooLarge) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return run.Seconds, true, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}
