// Command predict makes one prediction: the runtime of an application
// test case on a target machine, using a chosen metric (1-9), and — when
// the job fits on the simulated target — compares it against the
// ground-truth observed time, reporting the paper's Equation 2 error.
//
// The computation runs through the shared internal/predictor Engine —
// the same facade the study harness and the predictd server use — so a
// number printed here is byte-identical to theirs for the same cell.
//
// Usage:
//
//	predict -app hycom -target ARL_Opteron [-metric 9] [-procs 96] [-all]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"hpcmetrics"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/persist"
	"hpcmetrics/internal/predictor"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the whole CLI, factored from main so tests can drive it with
// arbitrary flags and capture both streams. Returns the process exit
// code: 0 on success, 1 on runtime errors, 2 on usage errors.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "", "application name (avus, hycom, overflow2, rfcth)")
	caseName := fs.String("case", "", "test case (standard, large)")
	procs := fs.Int("procs", 0, "processor count (default: the test case's middle count)")
	target := fs.String("target", "", "target machine preset")
	metricID := fs.Int("metric", 9, "metric number 1-9 (paper Table 3)")
	all := fs.Bool("all", false, "apply all nine metrics")
	tracePath := fs.String("trace", "", "reuse a trace written by tracer -o instead of tracing now")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *appName == "" || *target == "" {
		fmt.Fprintln(stderr, "predict: -app and -target are required")
		fs.Usage()
		return 2
	}
	// -all applies every metric; a -metric given alongside it would be
	// silently ignored, so the combination is rejected rather than
	// guessed at.
	metricSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "metric" {
			metricSet = true
		}
	})
	if metricSet && *all {
		fmt.Fprintln(stderr, "predict: -metric and -all are mutually exclusive (drop one)")
		return 2
	}

	if err := predict(ctx, *appName, *caseName, *procs, *target, *metricID, *all, *tracePath, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "predict:", err)
		return 1
	}
	return 0
}

func predict(ctx context.Context, appName, caseName string, procs int, target string, metricID int, all bool, tracePath string, stdout, stderr io.Writer) error {
	var eng predictor.Engine

	tc, err := hpcmetrics.LookupTestCase(appName, caseName)
	if err != nil {
		return err
	}
	if procs == 0 {
		if procs, err = tc.DefaultProcs(); err != nil {
			return err
		}
	}
	app, err := tc.Instance(procs)
	if err != nil {
		return err
	}

	base := hpcmetrics.BaseMachine()
	targetCfg, err := hpcmetrics.LookupMachine(target)
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "probing %s and %s...\n", base.Name, targetCfg.Name)
	basePr, err := eng.Probes(ctx, base)
	if err != nil {
		return err
	}
	targetPr, err := eng.Probes(ctx, targetCfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "running %s at %d CPUs on the base system...\n", tc.ID(), procs)
	baseRun, err := eng.Execute(ctx, base, app)
	if err != nil {
		return err
	}

	var tr *hpcmetrics.Trace
	if tracePath != "" {
		fmt.Fprintf(stderr, "loading trace from %s...\n", tracePath)
		tr, err = persist.LoadTrace(tracePath)
		if err != nil {
			return err
		}
		if err := validateTrace(tr, tc, procs); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(stderr, "tracing on the base system...")
		tr, err = eng.Trace(ctx, base, app)
		if err != nil {
			return err
		}
	}

	actual, fits, err := observeTarget(ctx, eng, targetCfg, app)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s at %d CPUs: base (%s) observed %.0f s\n",
		tc.ID(), procs, base.Name, baseRun.Seconds)

	ids := []int{metricID}
	if all {
		ids = []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	}
	for _, id := range ids {
		m, err := hpcmetrics.MetricByID(id)
		if err != nil {
			return err
		}
		pred, err := eng.PredictMetric(ctx, m, metrics.Context{
			Trace: tr, Base: basePr, Target: targetPr, BaseSeconds: baseRun.Seconds,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "metric %-4s %-20s predicts %8.0f s on %s",
			m.Label(), m.Name, pred, targetCfg.Name)
		if fits {
			fmt.Fprintf(stdout, "  (observed %.0f s, error %+.0f%%)",
				actual, hpcmetrics.SignedError(pred, actual))
		}
		fmt.Fprintln(stdout)
	}
	if !fits {
		fmt.Fprintf(stdout, "(job does not fit on %s's %d processors; no observed time)\n",
			targetCfg.Name, targetCfg.TotalProcs)
	}
	return nil
}

// validateTrace rejects a reused trace that was collected for a
// different cell. All three identity fields are checked — a trace of the
// right application and processor count but the wrong test case (a
// "standard" trace driving a "large" prediction) is as wrong as a
// different application.
func validateTrace(tr *hpcmetrics.Trace, tc hpcmetrics.AppTestCase, procs int) error {
	if tr.App != tc.Name || tr.Case != tc.Case || tr.Procs != procs {
		return fmt.Errorf("trace is %s-%s@%d, requested %s@%d",
			tr.App, tr.Case, tr.Procs, tc.ID(), procs)
	}
	return nil
}

// observeTarget runs the app on the target machine for ground truth. A
// job too large for the machine is not a failure — there is simply no
// observation, like the blank cells in the paper's appendix — but every
// other execution error is real and must not be swallowed.
func observeTarget(ctx context.Context, eng predictor.Engine, cfg *hpcmetrics.MachineConfig, app *hpcmetrics.App) (seconds float64, fits bool, err error) {
	run, err := eng.Execute(ctx, cfg, app)
	if errors.Is(err, hpcmetrics.ErrJobTooLarge) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return run.Seconds, true, nil
}
