// Command hpclint runs the repository's custom static-analysis suite (see
// internal/analysis) over package patterns and exits non-zero if any
// diagnostic survives. It is the CI gate for the study's correctness
// invariants: float comparison discipline, unit-suffix hygiene,
// simulation determinism, error flow, and preset aliasing.
//
// Usage:
//
//	hpclint [-list] [packages]
//
// Patterns are directories, optionally ending in /... for recursion; the
// default is ./... . Suppress a finding with a line or preceding-line
// comment:
//
//	//hpclint:ignore floatcmp rank ties need exact equality
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcmetrics/internal/analysis"
	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hpclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func run(patterns []string, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	dirs, err := load.Expand(patterns)
	if err != nil {
		return nil, err
	}
	loader := load.New()
	var all []framework.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		diags, err := framework.Run(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
