// Command hpclint runs the repository's custom static-analysis suite (see
// internal/analysis) over package patterns and exits non-zero if any
// diagnostic survives. It is the CI gate for the study's correctness
// invariants: float comparison discipline, unit-suffix hygiene,
// simulation determinism, error flow, preset aliasing, and the
// concurrency rules of the parallel study harness (ctxflow, lockguard,
// waitleak).
//
// Usage:
//
//	hpclint [-list] [-json] [packages]
//
// Patterns are directories, optionally ending in /... for recursion; the
// default is ./... . With -json each diagnostic is emitted as one JSON
// object per line ({"file","line","col","analyzer","message"}) so CI can
// annotate pull requests; the plain-text format is unchanged by default.
// Suppress a finding with a line or preceding-line comment:
//
//	//hpclint:ignore floatcmp rank ties need exact equality
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hpcmetrics/internal/analysis"
	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic line")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpclint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "hpclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hpclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the -json wire format: one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []framework.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		err := enc.Encode(jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func run(patterns []string, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	dirs, err := load.Expand(patterns)
	if err != nil {
		return nil, err
	}
	loader := load.New()
	var all []framework.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		diags, err := framework.Run(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
