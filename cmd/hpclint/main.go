// Command hpclint runs the repository's custom static-analysis suite (see
// internal/analysis) over package patterns and exits non-zero if any
// diagnostic survives. It is the CI gate for the study's correctness
// invariants: float comparison discipline, unit-suffix hygiene,
// simulation determinism, error flow, preset aliasing, and the
// concurrency rules of the parallel study harness (ctxflow, lockguard,
// waitleak).
//
// Analysis is module-wide: packages are loaded in dependency order and
// each package's propagated context facts (requires-ctx, consults-ctx,
// spawns, unbounded) are exported for its dependents, so a
// context.Background() sever or a dropped ctx is flagged even when the
// requiring body lives in another package. Interface-method calls are
// devirtualized where provably sound (a unique receiver binding, a sole
// module-wide implementor, or implementors whose facts all agree); the
// loaded package set is the closed world those resolutions rest on, so
// a package that fails to load or type-check is a correctness hole, not
// an inconvenience: every such package is reported to stderr by import
// path and the run exits 2, even though the loadable remainder is still
// analyzed and its findings printed.
//
// Usage:
//
//	hpclint [-list] [-json] [-facts] [-suppressions] [packages]
//
// Patterns are directories, optionally ending in /... for recursion; the
// default is ./... . With -json each diagnostic is emitted as one JSON
// object per line ({"file","line","col","analyzer","message"}, plus
// "provenance" on cross-package findings naming the exported fact the
// finding rests on, and "devirt" on findings whose call edge resolved
// through an interface method, naming the devirtualized target or the
// agreeing implementor set) so CI can annotate pull requests; the
// plain-text format is unchanged by default. -facts dumps the
// per-package exported fact sets instead of diagnostics; -suppressions
// lists every //hpclint:ignore directive (file, line-less, analyzer
// names), byte-sorted and deduplicated — the same order as `LC_ALL=C
// sort -u`, so the allowlist diff in `make lint` is stable across
// platforms and locales. Suppress a finding with a line or
// preceding-line comment:
//
//	//hpclint:ignore floatcmp rank ties need exact equality
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hpcmetrics/internal/analysis"
	"hpcmetrics/internal/analysis/framework"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic line")
	facts := flag.Bool("facts", false, "dump the per-package exported fact sets instead of diagnostics")
	suppressions := flag.Bool("suppressions", false, "list //hpclint:ignore directives instead of diagnostics")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpclint: %v\n", err)
		os.Exit(2)
	}
	// Broken packages are holes in the module-wide guarantees (and in the
	// devirtualization closed world): name each one and fail, but only
	// after the requested output covers the packages that did load.
	defer func() {
		if len(res.LoadErrors) > 0 {
			for _, pe := range res.LoadErrors {
				fmt.Fprintf(os.Stderr, "hpclint: package %s failed to load: %v\n", pe.Pkg, pe.Err)
			}
			fmt.Fprintf(os.Stderr, "hpclint: %d package(s) failed to load; analysis covered the remainder only\n", len(res.LoadErrors))
			os.Exit(2)
		}
	}()
	switch {
	case *facts:
		if err := writeFacts(os.Stdout, res.Facts); err != nil {
			fmt.Fprintf(os.Stderr, "hpclint: %v\n", err)
			os.Exit(2)
		}
		return
	case *suppressions:
		writeSuppressions(os.Stdout, res.Directives)
		return
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, res.Diagnostics); err != nil {
			fmt.Fprintf(os.Stderr, "hpclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "hpclint: %d finding(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}

// jsonDiag is the -json wire format: one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Provenance, on cross-package findings, names the exported fact the
	// finding rests on ("hpcmetrics/internal/study.RunContext: spawns a
	// goroutine").
	Provenance string `json:"provenance,omitempty"`
	// Devirt, on findings whose call edge resolved through an interface
	// method, records the dispatch: "(pkg.Doer).Do → (*pkg.Spawner).Do"
	// for a unique target, "(pkg.Doer).Do agreed by (*pkg.A).Do,
	// (*pkg.B).Do" for an all-agree consensus edge.
	Devirt string `json:"devirt,omitempty"`
}

func writeJSON(w *os.File, diags []framework.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		err := enc.Encode(jsonDiag{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Provenance: d.Provenance,
			Devirt:     d.Devirt,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// writeFacts dumps the fact store grouped by package, one function per
// line with its facts JSON-encoded, in sorted order for diffability.
func writeFacts(w *os.File, facts *framework.ModuleFacts) error {
	for _, pkg := range facts.Packages() {
		set := facts.PackageFacts(pkg)
		objs := make([]string, 0, len(set))
		for o := range set {
			objs = append(objs, o)
		}
		sort.Strings(objs)
		fmt.Fprintf(w, "# %s\n", pkg)
		for _, o := range objs {
			data, err := json.Marshal(set[o])
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s %s\n", o, data)
		}
	}
	return nil
}

// writeSuppressions lists the module's ignore directives, one per line as
// "<module-relative-file> <analyzers>", sorted and deduplicated — the
// line number is deliberately omitted so the committed allowlist does not
// churn when unrelated edits move a directive.
func writeSuppressions(w *os.File, directives []framework.Directive) {
	cwd, err := os.Getwd()
	if err != nil {
		cwd = "" // absolute paths then; the listing is still usable
	}
	seen := map[string]bool{}
	var lines []string
	for _, d := range directives {
		file := d.File
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		line := file + " " + strings.Join(d.Analyzers, ",")
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
}
