package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
)

// TestServeDrainFlushesLogs runs a full server lifecycle with span and
// access logs enabled: traffic demonstrating all three cache outcomes
// (cold, cached, coalesced), a caller-supplied traceparent, then
// cancellation with a request still in flight. The drain must leave both
// logs complete — every line parses (no torn JSONL tail) and the pair
// cross-validates with obs.CheckServeLogs, the same gate tracecheck
// -serve applies in CI.
func TestServeDrainFlushesLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full server lifecycle with compute traffic")
	}
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	accessPath := filepath.Join(dir, "access.jsonl")
	ready := filepath.Join(dir, "ready")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, serveOptions{
			addr:            "127.0.0.1:0",
			workers:         8,
			queue:           32,
			requestTimeout:  time.Minute,
			shutdownTimeout: 10 * time.Second,
			readyFile:       ready,
			spansPath:       spansPath,
			accessPath:      accessPath,
			logMaxBytes:     64 << 20,
			statusWindow:    30 * time.Second,
			runtimeSample:   50 * time.Millisecond,
		})
	}()

	var base string
	for i := 0; i < 500; i++ {
		if b, err := os.ReadFile(ready); err == nil {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("server never wrote its ready file")
	}

	getResult := func(url, traceparent string) (*http.Response, predictor.Result) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
		}
		var res predictor.Result
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("bad predict body %s: %v", body, err)
		}
		return resp, res
	}

	// Round 1: a cold request carrying a caller traceparent. The echo and
	// the access log must both carry the caller's trace ID.
	const callerTrace = "aaaabbbbccccddddeeeeffff00001111"
	coldURL := base + "/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9"
	resp, res := getResult(coldURL, "00-"+callerTrace+"-00f067aa0ba902b7-01")
	if res.Outcome != "cold" {
		t.Errorf("first request outcome %q, want cold", res.Outcome)
	}
	if traceID, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); !ok || traceID != callerTrace {
		t.Errorf("echoed traceparent %q does not carry caller trace %s", resp.Header.Get("Traceparent"), callerTrace)
	}

	// Round 2: the identical request is a settled hit on every layer.
	if _, res = getResult(coldURL, ""); res.Outcome != "cached" {
		t.Errorf("repeat request outcome %q, want cached", res.Outcome)
	}

	// Round 3: a thundering herd on a fresh cell. One leader computes
	// (cold); the rest arrive while it is in flight and coalesce. Retry
	// with further fresh keys in the unlikely event the leader finishes
	// before any follower arrives.
	herd := func(url string) map[string]int {
		outcomes := make(map[string]int)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, res := getResult(url, "")
				mu.Lock()
				outcomes[res.Outcome]++
				mu.Unlock()
			}()
		}
		wg.Wait()
		return outcomes
	}
	coalesced := false
	for _, procs := range []string{"32", "64"} {
		outcomes := herd(base + "/v1/predict?app=rfcth&procs=" + procs + "&target=ARL_Opteron&metric=9")
		if outcomes["cold"] < 1 {
			t.Errorf("herd at procs=%s produced no cold leader: %v", procs, outcomes)
		}
		if outcomes["coalesced"] >= 1 {
			coalesced = true
			break
		}
	}
	if !coalesced {
		t.Error("no herd produced a coalesced follower")
	}

	// Shut down with a fresh cold request in flight: it either completes
	// or is cancelled into a 504 during the drain — both must leave the
	// logs whole.
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		resp, err := http.Get(base + "/v1/predict?app=avus&target=ARL_Opteron&observed=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-inflight
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v, want clean drain", err)
	}

	// Both logs must parse end to end — the readers reject torn tails —
	// and cross-validate as a pair.
	spanFile, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer spanFile.Close()
	spans, err := obs.ReadJSONL(spanFile)
	if err != nil {
		t.Fatalf("span log did not survive the drain: %v", err)
	}
	accessFile, err := os.Open(accessPath)
	if err != nil {
		t.Fatal(err)
	}
	defer accessFile.Close()
	accs, err := obs.ReadAccessLog(accessFile)
	if err != nil {
		t.Fatalf("access log did not survive the drain: %v", err)
	}

	stats, err := obs.CheckServeLogs(spans, accs)
	if err != nil {
		t.Fatalf("CheckServeLogs: %v", err)
	}
	for _, outcome := range []string{"cold", "cached", "coalesced"} {
		if stats.Outcomes[outcome] < 1 {
			t.Errorf("log pair demonstrates no %q outcome: %v", outcome, stats.Outcomes)
		}
	}
	if stats.CoalescedSpans < 1 {
		t.Error("span log holds no verified coalesced wait span")
	}

	// The caller-supplied trace round-tripped into the access log and
	// resolves to a root span.
	joined := false
	for _, a := range accs {
		if a.Trace == callerTrace && a.Endpoint == "predict" && a.Status == http.StatusOK {
			joined = true
			break
		}
	}
	if !joined {
		t.Errorf("access log has no record under caller trace %s", callerTrace)
	}
}
