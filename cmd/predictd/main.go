// Command predictd serves the paper's procurement question over
// HTTP/JSON: "how fast will application X's test case run on machine Y
// at Z processors, by metric M?" — prediction-as-a-service on top of the
// shared internal/predictor facade.
//
// Endpoints:
//
//	GET /v1/predict?app=&case=&procs=&target=&metric=[&observed=1]
//	GET /v1/rank?app=&case=&procs=&metric=[&targets=a,b][&observed=1]
//	GET /v1/apps       GET /v1/machines     GET /v1/cache
//	GET /healthz       GET /metrics         (Prometheus text format)
//
// Built for heavy concurrent traffic: probe suites, traces, and
// predictions are deterministic, so they are memoized with exact cache
// hits; identical concurrent cold requests coalesce onto one
// computation; a bounded worker gate sheds load with 429 + Retry-After
// when the queue saturates; and every request runs under a deadline
// derived from the client's own context, so a disconnect or timeout
// cancels the work instead of orphaning it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
)

func main() {
	// A signal-cancelled root: ^C or SIGTERM drains in-flight requests
	// through http.Server.Shutdown instead of dropping them mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "concurrently served requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "requests allowed to wait for a worker before 429s")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline (0 = bounded only by the client)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	readyFile := flag.String("ready-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	flag.Parse()

	o := obs.New()
	p := predictor.New(predictor.Config{Workers: *workers})
	srv := newServer(p, o, serverConfig{
		workers:        effectiveWorkers(*workers),
		queueLimit:     *queue,
		requestTimeout: *requestTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound+"\n"), 0o644); err != nil {
			return errors.Join(err, ln.Close())
		}
	}
	fmt.Fprintf(os.Stderr, "predictd: listening on %s (workers %d, queue %d, request timeout %s)\n",
		bound, effectiveWorkers(*workers), *queue, *requestTimeout)

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// The buffer guarantees the send never blocks (one send ever),
		// so the default branch is unreachable.
		select {
		case done <- shutdownWithGrace(hs, *shutdownTimeout):
		default:
		}
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "predictd: drained and stopped")
	return nil
}

// shutdownWithGrace drains in-flight requests under a fresh deadline. It
// takes no context on purpose: the root that triggered the shutdown is
// already cancelled, so the grace period must not derive from it.
func shutdownWithGrace(hs *http.Server, grace time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return hs.Shutdown(ctx)
}

// effectiveWorkers resolves the 0-means-GOMAXPROCS default once, so the
// gate and the startup banner agree.
func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
