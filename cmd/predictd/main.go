// Command predictd serves the paper's procurement question over
// HTTP/JSON: "how fast will application X's test case run on machine Y
// at Z processors, by metric M?" — prediction-as-a-service on top of the
// shared internal/predictor facade.
//
// Endpoints:
//
//	GET /v1/predict?app=&case=&procs=&target=&metric=[&observed=1]
//	GET /v1/rank?app=&case=&procs=&metric=[&targets=a,b][&observed=1]
//	GET /v1/apps       GET /v1/machines     GET /v1/cache
//	GET /v1/status     GET /healthz         GET /metrics
//	GET /debug/pprof/* (with -pprof)
//
// Built for heavy concurrent traffic: probe suites, traces, and
// predictions are deterministic, so they are memoized with exact cache
// hits; identical concurrent cold requests coalesce onto one
// computation; a bounded worker gate sheds load with 429 + Retry-After
// when the queue saturates; and every request runs under a deadline
// derived from the client's own context, so a disconnect or timeout
// cancels the work instead of orphaning it.
//
// Every request is traced: an incoming W3C traceparent header joins the
// caller's trace (and is echoed back), otherwise the request starts a
// fresh one. With -spans each request becomes a span tree streamed to a
// rotating JSONL file as spans finish; with -access-log each request
// additionally leaves one structured access record carrying the same
// trace ID, so the two logs join. cmd/tracecheck -serve cross-validates
// the pair.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
)

func main() {
	// A signal-cancelled root: ^C or SIGTERM drains in-flight requests
	// through http.Server.Shutdown instead of dropping them mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

// serveOptions is everything run parses from flags, separated so tests
// drive serve directly.
type serveOptions struct {
	addr            string
	workers         int
	queue           int
	requestTimeout  time.Duration
	shutdownTimeout time.Duration
	readyFile       string
	spansPath       string // "" = no span log (spans are dropped, traces still flow)
	accessPath      string // "" = no access log
	logMaxBytes     int64
	statusWindow    time.Duration
	runtimeSample   time.Duration
	pprof           bool
}

func run(ctx context.Context) error {
	var opts serveOptions
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.IntVar(&opts.workers, "workers", 0, "concurrently served requests (0 = GOMAXPROCS)")
	flag.IntVar(&opts.queue, "queue", 64, "requests allowed to wait for a worker before 429s")
	flag.DurationVar(&opts.requestTimeout, "request-timeout", 2*time.Minute, "per-request deadline (0 = bounded only by the client)")
	flag.DurationVar(&opts.shutdownTimeout, "shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	flag.StringVar(&opts.readyFile, "ready-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	flag.StringVar(&opts.spansPath, "spans", "", "stream finished spans to this JSONL file (empty = spans dropped)")
	flag.StringVar(&opts.accessPath, "access-log", "", "write one JSONL access record per request to this file")
	flag.Int64Var(&opts.logMaxBytes, "log-max-bytes", 64<<20, "rotate span/access logs past this size (<= 0 disables rotation)")
	flag.DurationVar(&opts.statusWindow, "status-window", 60*time.Second, "rolling window for /v1/status latency quantiles")
	flag.DurationVar(&opts.runtimeSample, "runtime-sample", 5*time.Second, "runtime gauge sampling interval")
	flag.BoolVar(&opts.pprof, "pprof", false, "serve /debug/pprof/* (off by default)")
	flag.Parse()
	return serve(ctx, opts)
}

// serve runs the server until ctx is cancelled, then drains in-flight
// requests and closes the logs — after the drain, so a request finishing
// during shutdown still lands complete in both logs (no torn tails).
func serve(ctx context.Context, opts serveOptions) (err error) {
	o := obs.New()
	var spanFile *obs.JSONLFile
	if opts.spansPath != "" {
		spanFile, err = obs.OpenJSONLFile(opts.spansPath, opts.logMaxBytes)
		if err != nil {
			return err
		}
		o.Tracer.SetSink(spanFile)
	} else {
		// No span log, but requests still get trace IDs (for access-log
		// joins and traceparent echoes); Discard keeps the tracer from
		// buffering spans for the life of the process.
		o.Tracer.SetSink(obs.Discard{})
	}
	var access *obs.AccessLog
	if opts.accessPath != "" {
		access, err = obs.OpenAccessLog(opts.accessPath, opts.logMaxBytes)
		if err != nil {
			return errors.Join(err, spanFile.Close())
		}
	}
	defer func() {
		err = errors.Join(err, access.Close(), spanFile.Close())
	}()

	samplerCtx, stopSampler := context.WithCancel(ctx)
	samplerDone := obs.StartRuntimeSampler(samplerCtx, o.Meter(), opts.runtimeSample)
	defer func() {
		stopSampler()
		<-samplerDone
	}()

	p := predictor.New(predictor.Config{Workers: opts.workers})
	srv := newServer(p, o, access, serverConfig{
		workers:        effectiveWorkers(opts.workers),
		queueLimit:     opts.queue,
		requestTimeout: opts.requestTimeout,
		statusWindow:   opts.statusWindow,
		pprof:          opts.pprof,
	})

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if opts.readyFile != "" {
		if err := os.WriteFile(opts.readyFile, []byte(bound+"\n"), 0o644); err != nil {
			return errors.Join(err, ln.Close())
		}
	}
	fmt.Fprintf(os.Stderr, "predictd: listening on %s (workers %d, queue %d, request timeout %s, spans %s, access log %s)\n",
		bound, effectiveWorkers(opts.workers), opts.queue, opts.requestTimeout,
		orNone(opts.spansPath), orNone(opts.accessPath))

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// The buffer guarantees the send never blocks (one send ever),
		// so the default branch is unreachable.
		select {
		case done <- shutdownWithGrace(hs, opts.shutdownTimeout):
		default:
		}
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "predictd: drained and stopped")
	return nil
}

// shutdownWithGrace drains in-flight requests under a fresh deadline. It
// takes no context on purpose: the root that triggered the shutdown is
// already cancelled, so the grace period must not derive from it.
func shutdownWithGrace(hs *http.Server, grace time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return hs.Shutdown(ctx)
}

// effectiveWorkers resolves the 0-means-GOMAXPROCS default once, so the
// gate and the startup banner agree.
func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// orNone renders an optional path for the startup banner.
func orNone(path string) string {
	if path == "" {
		return "(none)"
	}
	return path
}
