package main

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
)

// newTestServer boots a predictd handler on an httptest server.
func newTestServer(t *testing.T, cfg serverConfig) (*obs.Obs, *server, *httptest.Server) {
	t.Helper()
	o := obs.New()
	p := predictor.New(predictor.Config{Workers: cfg.workers})
	s := newServer(p, o, nil, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return o, s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestListingsAndHealth covers the cheap read-only endpoints.
func TestListingsAndHealth(t *testing.T) {
	_, _, ts := newTestServer(t, serverConfig{workers: 2, queueLimit: 4})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/v1/apps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/apps = %d: %s", resp.StatusCode, body)
	}
	var appList []appInfo
	if err := json.Unmarshal(body, &appList); err != nil {
		t.Fatal(err)
	}
	if len(appList) != len(apps.Registry()) {
		t.Errorf("/v1/apps lists %d cases, registry has %d", len(appList), len(apps.Registry()))
	}

	resp, body = get(t, ts.URL+"/v1/machines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/machines = %d: %s", resp.StatusCode, body)
	}
	var machineList []machineInfo
	if err := json.Unmarshal(body, &machineList); err != nil {
		t.Fatal(err)
	}
	if len(machineList) != len(machine.Names()) {
		t.Errorf("/v1/machines lists %d systems, presets have %d", len(machineList), len(machine.Names()))
	}
	baseSeen := false
	for _, m := range machineList {
		if m.Base {
			baseSeen = true
			if m.Name != machine.Base().Name {
				t.Errorf("base flag on %s, want %s", m.Name, machine.Base().Name)
			}
		}
	}
	if !baseSeen {
		t.Error("/v1/machines does not flag the base system")
	}

	resp, body = get(t, ts.URL+"/v1/cache")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cache = %d: %s", resp.StatusCode, body)
	}
	var stats map[string]predictor.CacheStat
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	for _, layer := range []string{"probes", "cells", "predictions", "observations"} {
		if _, ok := stats[layer]; !ok {
			t.Errorf("/v1/cache missing layer %q: %v", layer, stats)
		}
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(string(body), "predictd_predict_requests_total") {
		// The counter exists because /v1/apps above did not touch it; force
		// one request so the exposition carries endpoint series.
		if _, errBody := get(t, ts.URL+"/v1/predict?app=nonesuch"); len(errBody) == 0 {
			t.Fatal("predict error response empty")
		}
		_, body = get(t, ts.URL+"/metrics")
		if !strings.Contains(string(body), "predictd_predict_requests_total") {
			t.Errorf("/metrics exposition missing predictd_predict_requests_total:\n%s", body)
		}
	}
}

// TestPredictEndpointRejectsBadRequests maps client mistakes to 400s.
func TestPredictEndpointRejectsBadRequests(t *testing.T) {
	o, _, ts := newTestServer(t, serverConfig{workers: 2, queueLimit: 4})
	cases := []struct {
		name  string
		query string
	}{
		{"unknown app", "app=nonesuch&target=ARL_Opteron"},
		{"unparsable procs", "app=avus&target=ARL_Opteron&procs=abc"},
		{"unknown metric", "app=avus&target=ARL_Opteron&metric=10"},
		{"unknown target", "app=avus&target=CRAY_XMP"},
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+"/v1/predict?"+c.query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", c.name, resp.StatusCode, body)
			continue
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not JSON with an error field (%v)", c.name, body, err)
		}
	}
	// The unparsable-procs case fails at the HTTP layer before reaching
	// the predictor, so bad_requests counts only the three resolver
	// rejections.
	if got := o.Metrics.Counter("predictd_bad_requests_total").Value(); got != 3 {
		t.Errorf("predictd_bad_requests_total = %d, want 3", got)
	}
	resp, body := get(t, ts.URL+"/v1/rank?app=avus&targets=ARL_Opteron,CRAY_XMP")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("rank with bad target: status %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestGateAdmission exercises the admission gate directly: immediate
// grant, shed on a full queue, and re-admission after release.
func TestGateAdmission(t *testing.T) {
	g := newGate(1, 0)
	release, ok := g.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire refused on an idle gate")
	}
	if _, ok := g.acquire(context.Background()); ok {
		t.Fatal("second acquire admitted past a full gate with queue 0")
	}
	release()
	release, ok = g.acquire(context.Background())
	if !ok {
		t.Fatal("acquire refused after release")
	}
	release()

	// With a queue slot, a waiter is admitted when the worker frees...
	g = newGate(1, 1)
	release, _ = g.acquire(context.Background())
	admitted := make(chan bool)
	go func() {
		r2, ok := g.acquire(context.Background())
		if ok {
			r2()
		}
		admitted <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	release()
	if !<-admitted {
		t.Fatal("queued acquire not admitted after release")
	}

	// ...but abandons the queue when its own context dies first.
	g = newGate(1, 1)
	release, _ = g.acquire(context.Background())
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, ok := g.acquire(ctx); ok {
		t.Fatal("expired waiter admitted")
	}
	if ctx.Err() == nil {
		t.Fatal("waiter returned before its deadline with no slot")
	}
}

// TestServerShedsWhenSaturated saturates the gate from inside the test
// (no timing games) and expects 429 + Retry-After, then recovery.
func TestServerShedsWhenSaturated(t *testing.T) {
	o, s, ts := newTestServer(t, serverConfig{workers: 1, queueLimit: 0})
	s.g.sem <- struct{}{} // occupy the only worker slot
	resp, body := get(t, ts.URL+"/v1/predict?app=avus&target=ARL_Opteron")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict = %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := o.Metrics.Counter("predictd_shed_total").Value(); got != 1 {
		t.Errorf("predictd_shed_total = %d, want 1", got)
	}
	<-s.g.sem // free the slot; the server admits again
	resp, _ = get(t, ts.URL+"/v1/predict?app=nonesuch&target=ARL_Opteron")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("post-recovery predict = %d, want 400 (admitted, then rejected by resolver)", resp.StatusCode)
	}
}

// TestServerQueueDeadline: a request whose deadline expires while queued
// gets 503, distinct from the 429 shed.
func TestServerQueueDeadline(t *testing.T) {
	o, s, ts := newTestServer(t, serverConfig{workers: 1, queueLimit: 4, requestTimeout: 30 * time.Millisecond})
	s.g.sem <- struct{}{}
	defer func() { <-s.g.sem }()
	resp, body := get(t, ts.URL+"/v1/predict?app=avus&target=ARL_Opteron")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline predict = %d, want 503; body %s", resp.StatusCode, body)
	}
	if got := o.Metrics.Counter("predictd_queue_expired_total").Value(); got != 1 {
		t.Errorf("predictd_queue_expired_total = %d, want 1", got)
	}
}

// TestServePredictParity is the serving-trust test: the JSON answer from
// predictd — cold, then cached — must be bit-identical to the number the
// predict CLI's own call sequence computes.
func TestServePredictParity(t *testing.T) {
	if testing.Short() {
		t.Skip("probes two machines and runs a base execution + trace")
	}
	o, _, ts := newTestServer(t, serverConfig{workers: 4, queueLimit: 8, requestTimeout: time.Minute})
	url := ts.URL + "/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9"

	decode := func(body []byte) predictor.Result {
		var res predictor.Result
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("bad predict body %s: %v", body, err)
		}
		return res
	}
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold predict = %d: %s", resp.StatusCode, body)
	}
	cold := decode(body)
	if cold.Cached {
		t.Error("cold prediction reported as cached")
	}
	resp, body = get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm predict = %d: %s", resp.StatusCode, body)
	}
	warm := decode(body)
	if !warm.Cached {
		t.Error("repeat prediction not reported as cached")
	}
	if math.Float64bits(cold.PredictedSeconds) != math.Float64bits(warm.PredictedSeconds) {
		t.Errorf("cached answer %v differs from cold %v", warm.PredictedSeconds, cold.PredictedSeconds)
	}

	// The response carries a deterministic strong ETag; revalidating with
	// If-None-Match gets 304 with no body, and the server counts it.
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("predict response missing ETag")
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	notMod, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	nmBody, err := io.ReadAll(notMod.Body)
	notMod.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if notMod.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation = %d, want 304; body %s", notMod.StatusCode, nmBody)
	}
	if len(nmBody) != 0 {
		t.Errorf("304 carried a body: %s", nmBody)
	}
	if got := notMod.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag %q, want %q", got, etag)
	}
	if got := o.Metrics.Counter("predictd_not_modified_total").Value(); got != 1 {
		t.Errorf("predictd_not_modified_total = %d, want 1", got)
	}

	// Recompute the same cell the way cmd/predict does — direct Engine
	// calls, no caches — and require bitwise equality through the JSON
	// round trip.
	var eng predictor.Engine
	ctx := o.Inject(context.Background())
	base := machine.Base()
	target, err := machine.Preset(machine.ARLOpteron)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := apps.Lookup("rfcth", "")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(16)
	if err != nil {
		t.Fatal(err)
	}
	basePr, err := eng.Probes(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	targetPr, err := eng.Probes(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	baseRun, err := eng.Execute(ctx, base, app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Trace(ctx, base, app)
	if err != nil {
		t.Fatal(err)
	}
	m, err := metrics.ByID(9)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.PredictMetric(ctx, m, metrics.Context{
		Trace: tr, Base: basePr, Target: targetPr, BaseSeconds: baseRun.Seconds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(direct) != math.Float64bits(warm.PredictedSeconds) {
		t.Errorf("CLI-path computation %v differs from served %v", direct, warm.PredictedSeconds)
	}
	if math.Float64bits(baseRun.Seconds) != math.Float64bits(warm.BaseSeconds) {
		t.Errorf("CLI-path base %v differs from served %v", baseRun.Seconds, warm.BaseSeconds)
	}

	// The rank endpoint reuses the warmed caches: no new trace runs.
	traces := o.Metrics.Counter("predictor_trace_runs_total").Value()
	resp, body = get(t, ts.URL+"/v1/rank?app=rfcth&procs=16&metric=9&targets=ARL_Opteron,MHPCC_P3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank = %d: %s", resp.StatusCode, body)
	}
	var ranking predictor.Ranking
	if err := json.Unmarshal(body, &ranking); err != nil {
		t.Fatal(err)
	}
	if len(ranking.Entries) != 2 {
		t.Fatalf("rank returned %d entries, want 2", len(ranking.Entries))
	}
	if ranking.Entries[0].PredictedSeconds > ranking.Entries[1].PredictedSeconds {
		t.Error("ranking not fastest-first")
	}
	if got := o.Metrics.Counter("predictor_trace_runs_total").Value(); got != traces {
		t.Errorf("rank re-traced the cell: %d runs, want %d", got, traces)
	}
}

// TestTraceparentEcho: a valid incoming traceparent joins the caller's
// trace (same trace ID echoed back, new span ID); an invalid one starts
// a fresh trace instead of failing the request.
func TestTraceparentEcho(t *testing.T) {
	_, _, ts := newTestServer(t, serverConfig{workers: 1, queueLimit: 0})
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const incoming = "00-" + callerTrace + "-00f067aa0ba902b7-01"

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", incoming)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echo := resp.Header.Get("Traceparent")
	traceID, parentID, ok := obs.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if traceID != callerTrace {
		t.Errorf("echoed trace %s, want caller's %s", traceID, callerTrace)
	}
	if parentID == "00f067aa0ba902b7" {
		t.Error("echo reused the caller's span ID instead of the server root span's")
	}

	req.Header.Set("traceparent", "not-a-traceparent")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID, _, ok = obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("fresh-trace response traceparent %q does not parse", resp.Header.Get("Traceparent"))
	}
	if traceID == callerTrace {
		t.Error("invalid traceparent adopted the previous trace ID")
	}
}

// TestStatusEndpoint: /v1/status reports admission config, rolling
// per-endpoint windows, and cache layers — and stays reachable when the
// worker gate is saturated, because it is routed outside the gate.
func TestStatusEndpoint(t *testing.T) {
	_, s, ts := newTestServer(t, serverConfig{workers: 2, queueLimit: 4, statusWindow: 30 * time.Second})
	resp, _ := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	resp, body := get(t, ts.URL+"/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status = %d: %s", resp.StatusCode, body)
	}
	var st statusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.QueueLimit != 4 {
		t.Errorf("status reports workers %d queue %d, want 2/4", st.Workers, st.QueueLimit)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", st.UptimeSeconds)
	}
	if snap, ok := st.Endpoints["healthz"]; !ok || snap.Count < 1 {
		t.Errorf("status window for healthz = %+v, want >= 1 observation", st.Endpoints["healthz"])
	}
	for _, layer := range []string{"probes", "cells", "predictions", "observations"} {
		if _, ok := st.Caches[layer]; !ok {
			t.Errorf("status missing cache layer %q", layer)
		}
	}

	// Saturate both worker slots; status must still answer.
	s.g.sem <- struct{}{}
	s.g.sem <- struct{}{}
	defer func() { <-s.g.sem; <-s.g.sem }()
	resp, body = get(t, ts.URL+"/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status under saturation = %d: %s", resp.StatusCode, body)
	}
}

// TestPprofOptIn: the profiling surface exists only with the flag.
func TestPprofOptIn(t *testing.T) {
	_, _, off := newTestServer(t, serverConfig{workers: 1, queueLimit: 0})
	resp, _ := get(t, off.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}
	_, _, on := newTestServer(t, serverConfig{workers: 1, queueLimit: 0, pprof: true})
	resp, _ = get(t, on.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200", resp.StatusCode)
	}
}

// TestEtagMatches pins the If-None-Match comparison.
func TestEtagMatches(t *testing.T) {
	const tag = `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{tag, true},
		{`"other"`, false},
		{`"other", ` + tag, true},
		{"*", true},
		{"W/" + tag, true},
		{"abc123", false}, // unquoted is a different opaque value
	}
	for _, c := range cases {
		if got := etagMatches(c.header, tag); got != c.want {
			t.Errorf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestEffectiveWorkers pins the 0-means-GOMAXPROCS default.
func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(3); got != 3 {
		t.Errorf("effectiveWorkers(3) = %d", got)
	}
	if got := effectiveWorkers(0); got < 1 {
		t.Errorf("effectiveWorkers(0) = %d, want >= 1", got)
	}
}
