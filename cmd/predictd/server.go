package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
)

// serverConfig tunes the serving layer, separate from the predictor's
// own compute configuration.
type serverConfig struct {
	// workers bounds concurrently served requests (the gate's semaphore
	// width); 0 means GOMAXPROCS.
	workers int
	// queueLimit bounds how many requests may wait for a worker before
	// the server sheds load with 429; 0 sheds as soon as every worker is
	// busy.
	queueLimit int
	// requestTimeout is the per-request deadline, derived from the
	// client's own context so a disconnect cancels the work too; 0
	// leaves requests bounded only by the client.
	requestTimeout time.Duration
}

// gate is the server's admission control: a semaphore of worker slots
// plus a bounded wait queue. Acquire blocks under the caller's context
// until a slot frees, sheds immediately once the queue is full, and
// never detaches from the request deadline — a queued request whose
// deadline expires leaves the queue.
type gate struct {
	sem        chan struct{}
	queueLimit int64
	waiting    atomic.Int64
}

func newGate(workers, queueLimit int) *gate {
	if workers <= 0 {
		workers = 1
	}
	return &gate{sem: make(chan struct{}, workers), queueLimit: int64(queueLimit)}
}

// acquire claims a worker slot. On success it returns a release func and
// true. On failure it returns (nil, false): either the queue was full
// (load shed — ctx.Err() is nil) or the caller's context expired while
// queued (ctx.Err() is non-nil).
func (g *gate) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case g.sem <- struct{}{}:
		return func() { <-g.sem }, true
	default:
	}
	if g.waiting.Add(1) > g.queueLimit {
		g.waiting.Add(-1)
		return nil, false
	}
	defer g.waiting.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return func() { <-g.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

// server is the predictd HTTP layer over the shared Predictor.
type server struct {
	p   *predictor.Predictor
	o   *obs.Obs
	g   *gate
	cfg serverConfig
	mux *http.ServeMux
}

func newServer(p *predictor.Predictor, o *obs.Obs, cfg serverConfig) *server {
	s := &server{p: p, o: o, g: newGate(cfg.workers, cfg.queueLimit), cfg: cfg, mux: http.NewServeMux()}
	s.mux.Handle("/v1/predict", s.endpoint("predict", s.handlePredict))
	s.mux.Handle("/v1/rank", s.endpoint("rank", s.handleRank))
	s.mux.HandleFunc("/v1/apps", s.handleApps)
	s.mux.HandleFunc("/v1/machines", s.handleMachines)
	s.mux.HandleFunc("/v1/cache", s.handleCache)
	s.mux.HandleFunc("/healthz", handleHealth)
	s.mux.Handle("/metrics", o.Meter().PromHandler())
	return s
}

func (s *server) Handler() http.Handler { return s.mux }

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already out; a broken client connection is
		// the only way here, and there is nothing left to send it.
		return
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// endpoint wraps a compute handler with the serving discipline shared by
// predict and rank: obs injection, the per-request deadline derived from
// the client's context, admission through the gate (429 + Retry-After on
// a full queue, 503 on a deadline spent queueing), and per-endpoint
// request/latency/error accounting.
func (s *server) endpoint(name string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		meter := s.o.Meter()
		meter.Counter("predictd_" + name + "_requests_total").Inc()
		lat := meter.Histogram("predictd_" + name + "_seconds")
		t0 := lat.StartTimer()
		defer lat.ObserveSince(t0)
		inflight := meter.Gauge("predictd_inflight")
		inflight.Add(1)
		defer inflight.Add(-1)

		ctx := s.o.Inject(r.Context())
		if s.cfg.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
			defer cancel()
		}
		release, ok := s.g.acquire(ctx)
		if !ok {
			if ctx.Err() != nil {
				meter.Counter("predictd_queue_expired_total").Inc()
				writeError(w, http.StatusServiceUnavailable, "request deadline expired while queued")
				return
			}
			meter.Counter("predictd_shed_total").Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server saturated: %d workers busy, %d queued; retry later",
				cap(s.g.sem), s.cfg.queueLimit)
			return
		}
		defer release()
		h(ctx, w, r)
	})
}

// writeComputeError maps predictor errors onto statuses: validation
// failures are the client's (400), expired deadlines are 504, anything
// else is a genuine server-side failure (500).
func (s *server) writeComputeError(w http.ResponseWriter, err error) {
	meter := s.o.Meter()
	switch {
	case errors.Is(err, predictor.ErrBadRequest):
		meter.Counter("predictd_bad_requests_total").Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		meter.Counter("predictd_deadline_total").Inc()
		writeError(w, http.StatusGatewayTimeout, "request deadline expired: %v", err)
	default:
		meter.Counter("predictd_errors_total").Inc()
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// queryBool parses an optional boolean query parameter ("1"/"true").
func queryBool(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *server) handlePredict(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	procs, err := queryInt(r, "procs", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := queryInt(r, "metric", 9)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.p.Predict(ctx, predictor.Request{
		App:      q.Get("app"),
		Case:     q.Get("case"),
		Procs:    procs,
		Machine:  q.Get("target"),
		MetricID: m,
		Observed: queryBool(r, "observed"),
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleRank(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	procs, err := queryInt(r, "procs", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := queryInt(r, "metric", 9)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var machines []string
	if t := q.Get("targets"); t != "" {
		for _, name := range strings.Split(t, ",") {
			if name = strings.TrimSpace(name); name != "" {
				machines = append(machines, name)
			}
		}
	}
	res, err := s.p.Rank(ctx, predictor.RankRequest{
		App:      q.Get("app"),
		Case:     q.Get("case"),
		Procs:    procs,
		MetricID: m,
		Machines: machines,
		Observed: queryBool(r, "observed"),
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// appInfo is one /v1/apps entry.
type appInfo struct {
	App       string `json:"app"`
	Case      string `json:"case"`
	CPUCounts []int  `json:"cpu_counts"`
}

func (s *server) handleApps(w http.ResponseWriter, r *http.Request) {
	var out []appInfo
	for _, tc := range apps.Registry() {
		out = append(out, appInfo{App: tc.Name, Case: tc.Case, CPUCounts: tc.CPUCounts})
	}
	writeJSON(w, http.StatusOK, out)
}

// machineInfo is one /v1/machines entry.
type machineInfo struct {
	Name       string `json:"name"`
	TotalProcs int    `json:"total_procs"`
	Base       bool   `json:"base,omitempty"`
}

func (s *server) handleMachines(w http.ResponseWriter, r *http.Request) {
	base := machine.Base()
	var out []machineInfo
	for _, name := range machine.Names() {
		cfg, err := machine.Preset(name)
		if err != nil {
			s.writeComputeError(w, err)
			return
		}
		out = append(out, machineInfo{Name: cfg.Name, TotalProcs: cfg.TotalProcs, Base: cfg.Name == base.Name})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.CacheSizes())
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
