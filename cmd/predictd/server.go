package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
)

// serverConfig tunes the serving layer, separate from the predictor's
// own compute configuration.
type serverConfig struct {
	// workers bounds concurrently served requests (the gate's semaphore
	// width); 0 means GOMAXPROCS.
	workers int
	// queueLimit bounds how many requests may wait for a worker before
	// the server sheds load with 429; 0 sheds as soon as every worker is
	// busy.
	queueLimit int
	// requestTimeout is the per-request deadline, derived from the
	// client's own context so a disconnect cancels the work too; 0
	// leaves requests bounded only by the client.
	requestTimeout time.Duration
	// statusWindow is the rolling window /v1/status quantiles cover; 0
	// means 60s. Resolution is one-second shards.
	statusWindow time.Duration
	// pprof opts the /debug/pprof/* handlers in. Off by default: the
	// profiling surface stays absent unless explicitly requested.
	pprof bool
}

// gate is the server's admission control: a semaphore of worker slots
// plus a bounded wait queue. Acquire blocks under the caller's context
// until a slot frees, sheds immediately once the queue is full, and
// never detaches from the request deadline — a queued request whose
// deadline expires leaves the queue.
type gate struct {
	sem        chan struct{}
	queueLimit int64
	waiting    atomic.Int64
}

func newGate(workers, queueLimit int) *gate {
	if workers <= 0 {
		workers = 1
	}
	return &gate{sem: make(chan struct{}, workers), queueLimit: int64(queueLimit)}
}

// acquire claims a worker slot. On success it returns a release func and
// true. On failure it returns (nil, false): either the queue was full
// (load shed — ctx.Err() is nil) or the caller's context expired while
// queued (ctx.Err() is non-nil).
func (g *gate) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case g.sem <- struct{}{}:
		return func() { <-g.sem }, true
	default:
	}
	if g.waiting.Add(1) > g.queueLimit {
		g.waiting.Add(-1)
		return nil, false
	}
	defer g.waiting.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return func() { <-g.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

// endpointNames lists every traced endpoint; each gets its own rolling
// latency window for /v1/status.
var endpointNames = []string{"predict", "rank", "apps", "machines", "cache", "status", "healthz"}

// server is the predictd HTTP layer over the shared Predictor.
type server struct {
	p       *predictor.Predictor
	o       *obs.Obs
	g       *gate
	cfg     serverConfig
	mux     *http.ServeMux
	access  *obs.AccessLog          // may be nil: access logging disabled
	windows map[string]*obs.Rolling // per-endpoint latency windows, fixed at construction
	started time.Time
}

func newServer(p *predictor.Predictor, o *obs.Obs, access *obs.AccessLog, cfg serverConfig) *server {
	window := cfg.statusWindow
	if window <= 0 {
		window = 60 * time.Second
	}
	shards := int(window / time.Second)
	if shards < 1 {
		shards = 1
	}
	s := &server{
		p: p, o: o, g: newGate(cfg.workers, cfg.queueLimit), cfg: cfg,
		mux: http.NewServeMux(), access: access,
		windows: make(map[string]*obs.Rolling, len(endpointNames)),
		started: time.Now(),
	}
	for _, name := range endpointNames {
		s.windows[name] = obs.NewRolling(time.Second, shards)
	}
	s.mux.Handle("/v1/predict", s.gated("predict", s.handlePredict))
	s.mux.Handle("/v1/rank", s.gated("rank", s.handleRank))
	s.mux.Handle("/v1/apps", s.traced("apps", s.handleApps))
	s.mux.Handle("/v1/machines", s.traced("machines", s.handleMachines))
	s.mux.Handle("/v1/cache", s.traced("cache", s.handleCache))
	s.mux.Handle("/healthz", s.traced("healthz", handleHealth))
	// Introspection stays outside the admission gate: a saturated or
	// drowning server must still answer "what is happening in there".
	s.mux.Handle("/v1/status", s.traced("status", s.handleStatus))
	s.mux.Handle("/metrics", o.Meter().PromHandler())
	if cfg.pprof {
		s.mux.HandleFunc("/debug/pprof/", httppprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return s
}

func (s *server) Handler() http.Handler { return s.mux }

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already out; a broken client connection is
		// the only way here, and there is nothing left to send it.
		return
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// countingWriter records the status and body size a handler sent, for
// the access log.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *countingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// reqState carries what a handler learns about its request back to the
// traced wrapper for the root span and the access record.
type reqState struct {
	span    *obs.Span
	outcome string // cache outcome: "cold", "cached", "coalesced", or ""
	shed    string // admission refusal reason, or ""
}

// setOutcome records the request's cache outcome on both the state and
// the root span.
func (st *reqState) setOutcome(outcome string) {
	st.outcome = outcome
	st.span.Annotate(obs.AttrOutcome, outcome)
}

// tracedHandler is the signature every endpoint handler implements under
// the traced wrapper.
type tracedHandler func(ctx context.Context, st *reqState, w http.ResponseWriter, r *http.Request)

// traced wraps a handler with the per-request observability shared by
// every endpoint: a root span joining (or starting) the caller's W3C
// trace, the traceparent response echo, request/latency accounting, the
// rolling latency window behind /v1/status, and one access-log record
// carrying the trace ID so the two logs join.
func (s *server) traced(name string, h tracedHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		meter := s.o.Meter()
		meter.Counter("predictd_" + name + "_requests_total").Inc()
		lat := meter.Histogram("predictd_" + name + "_seconds")
		t0 := lat.StartTimer()
		start := time.Now()

		ctx, root := obs.StartRequestSpan(s.o.Inject(r.Context()), name, r.Header.Get("traceparent"))
		root.Annotate(obs.AttrEndpoint, name)
		if tp := root.Traceparent(); tp != "" {
			w.Header().Set("Traceparent", tp)
		}

		cw := &countingWriter{ResponseWriter: w}
		st := &reqState{span: root}
		h(ctx, st, cw, r)
		if cw.status == 0 {
			// Handler wrote nothing; net/http would send an implicit 200.
			cw.status = http.StatusOK
		}

		root.Annotate(obs.AttrStatus, strconv.Itoa(cw.status))
		if st.shed != "" {
			root.Annotate(obs.AttrShed, st.shed)
		}
		root.End()
		lat.ObserveSince(t0)
		elapsed := time.Since(start)
		s.windows[name].Observe(elapsed)
		if err := s.access.Write(obs.AccessRecord{
			TimeNs:    time.Now().UnixNano(),
			Trace:     root.TraceID(),
			Endpoint:  name,
			Status:    cw.status,
			LatencyNs: elapsed.Nanoseconds(),
			Outcome:   st.outcome,
			Shed:      st.shed,
			Bytes:     cw.bytes,
		}); err != nil {
			meter.Counter("predictd_access_log_errors_total").Inc()
		}
	})
}

// gated layers admission control onto a traced endpoint: the per-request
// deadline, the worker gate (429 + Retry-After on a full queue, 503 on a
// deadline spent queueing), and a "queue" child span recording how
// admission went, so queue wait shows up as its own slice of a request's
// latency decomposition.
func (s *server) gated(name string, h tracedHandler) http.Handler {
	return s.traced(name, func(ctx context.Context, st *reqState, w http.ResponseWriter, r *http.Request) {
		meter := s.o.Meter()
		inflight := meter.Gauge("predictd_inflight")
		inflight.Add(1)
		defer inflight.Add(-1)

		if s.cfg.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
			defer cancel()
		}
		_, qspan := obs.StartSpan(ctx, "queue")
		release, ok := s.g.acquire(ctx)
		if !ok {
			if ctx.Err() != nil {
				qspan.Annotate("result", "expired")
				qspan.End()
				meter.Counter("predictd_queue_expired_total").Inc()
				st.shed = "queue_deadline"
				writeError(w, http.StatusServiceUnavailable, "request deadline expired while queued")
				return
			}
			qspan.Annotate("result", "shed")
			qspan.End()
			meter.Counter("predictd_shed_total").Inc()
			st.shed = "queue_full"
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server saturated: %d workers busy, %d queued; retry later",
				cap(s.g.sem), s.cfg.queueLimit)
			return
		}
		qspan.Annotate("result", "admitted")
		qspan.End()
		defer release()
		h(ctx, st, w, r)
	})
}

// writeComputeError maps predictor errors onto statuses: validation
// failures are the client's (400), expired deadlines are 504, anything
// else is a genuine server-side failure (500).
func (s *server) writeComputeError(w http.ResponseWriter, err error) {
	meter := s.o.Meter()
	switch {
	case errors.Is(err, predictor.ErrBadRequest):
		meter.Counter("predictd_bad_requests_total").Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		meter.Counter("predictd_deadline_total").Inc()
		writeError(w, http.StatusGatewayTimeout, "request deadline expired: %v", err)
	default:
		meter.Counter("predictd_errors_total").Inc()
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// writeJSONETag sends v as indented JSON with a strong ETag (the SHA-256
// of the exact body bytes — responses are deterministic functions of the
// request, so the hash is stable across processes). A request whose
// If-None-Match matches gets 304 with no body; the ETag header is set
// either way so a client can start revalidating from any response.
func (s *server) writeJSONETag(w http.ResponseWriter, r *http.Request, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	etag := `"` + hex.EncodeToString(sum[:]) + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		s.o.Meter().Counter("predictd_not_modified_total").Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		// Client went away mid-body; nothing left to tell it.
		return
	}
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, "*" matching anything, with weak tags (W/ prefix)
// compared by their opaque value — RFC 9110's weak comparison, which is
// what If-None-Match specifies.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// queryBool parses an optional boolean query parameter ("1"/"true").
func queryBool(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *server) handlePredict(ctx context.Context, st *reqState, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	procs, err := queryInt(r, "procs", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := queryInt(r, "metric", 9)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.p.Predict(ctx, predictor.Request{
		App:      q.Get("app"),
		Case:     q.Get("case"),
		Procs:    procs,
		Machine:  q.Get("target"),
		MetricID: m,
		Observed: queryBool(r, "observed"),
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	st.setOutcome(res.Outcome)
	s.writeJSONETag(w, r, res)
}

// rankOutcome folds per-machine outcomes into the request-level one: the
// coldest entry wins, matching the predictor's own per-layer rule.
func rankOutcome(entries []*predictor.Result) string {
	outcome := "cached"
	for _, e := range entries {
		switch e.Outcome {
		case "cold":
			return "cold"
		case "coalesced":
			outcome = "coalesced"
		}
	}
	return outcome
}

func (s *server) handleRank(ctx context.Context, st *reqState, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	procs, err := queryInt(r, "procs", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := queryInt(r, "metric", 9)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var machines []string
	if t := q.Get("targets"); t != "" {
		for _, name := range strings.Split(t, ",") {
			if name = strings.TrimSpace(name); name != "" {
				machines = append(machines, name)
			}
		}
	}
	res, err := s.p.Rank(ctx, predictor.RankRequest{
		App:      q.Get("app"),
		Case:     q.Get("case"),
		Procs:    procs,
		MetricID: m,
		Machines: machines,
		Observed: queryBool(r, "observed"),
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	st.setOutcome(rankOutcome(res.Entries))
	s.writeJSONETag(w, r, res)
}

// appInfo is one /v1/apps entry.
type appInfo struct {
	App       string `json:"app"`
	Case      string `json:"case"`
	CPUCounts []int  `json:"cpu_counts"`
}

func (s *server) handleApps(ctx context.Context, _ *reqState, w http.ResponseWriter, r *http.Request) {
	if ctx.Err() != nil {
		return // client gone; nothing to answer
	}
	var out []appInfo
	for _, tc := range apps.Registry() {
		out = append(out, appInfo{App: tc.Name, Case: tc.Case, CPUCounts: tc.CPUCounts})
	}
	writeJSON(w, http.StatusOK, out)
}

// machineInfo is one /v1/machines entry.
type machineInfo struct {
	Name       string `json:"name"`
	TotalProcs int    `json:"total_procs"`
	Base       bool   `json:"base,omitempty"`
}

func (s *server) handleMachines(ctx context.Context, _ *reqState, w http.ResponseWriter, r *http.Request) {
	if ctx.Err() != nil {
		return // client gone; nothing to answer
	}
	base := machine.Base()
	var out []machineInfo
	for _, name := range machine.Names() {
		cfg, err := machine.Preset(name)
		if err != nil {
			s.writeComputeError(w, err)
			return
		}
		out = append(out, machineInfo{Name: cfg.Name, TotalProcs: cfg.TotalProcs, Base: cfg.Name == base.Name})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCache(ctx context.Context, _ *reqState, w http.ResponseWriter, r *http.Request) {
	if ctx.Err() != nil {
		return // client gone; nothing to answer
	}
	writeJSON(w, http.StatusOK, s.p.CacheStats())
}

// statusResponse is the /v1/status body: the live view of the server —
// uptime, admission state, per-endpoint rolling latency quantiles,
// per-layer cache traffic, and the runtime gauges the sampler keeps
// fresh.
type statusResponse struct {
	UptimeSeconds  float64                        `json:"uptime_seconds"`
	Workers        int                            `json:"workers"`
	QueueLimit     int                            `json:"queue_limit"`
	Inflight       int64                          `json:"inflight"`
	Queued         int64                          `json:"queued"`
	SpanSinkErrors int64                          `json:"span_sink_errors"`
	Goroutines     int64                          `json:"goroutines"`
	HeapAllocBytes int64                          `json:"heap_alloc_bytes"`
	GCCycles       int64                          `json:"gc_cycles"`
	Endpoints      map[string]obs.RollingSnap     `json:"endpoints"`
	Caches         map[string]predictor.CacheStat `json:"caches"`
}

func (s *server) handleStatus(ctx context.Context, _ *reqState, w http.ResponseWriter, r *http.Request) {
	if ctx.Err() != nil {
		return // client gone; nothing to answer
	}
	meter := s.o.Meter()
	resp := statusResponse{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Workers:        cap(s.g.sem),
		QueueLimit:     s.cfg.queueLimit,
		Inflight:       meter.Gauge("predictd_inflight").Value(),
		Queued:         s.g.waiting.Load(),
		SpanSinkErrors: s.o.Tracer.SinkErrors(),
		Goroutines:     meter.Gauge("runtime_goroutines").Value(),
		HeapAllocBytes: meter.Gauge("runtime_heap_alloc_bytes").Value(),
		GCCycles:       meter.Gauge("runtime_gc_cycles").Value(),
		Endpoints:      make(map[string]obs.RollingSnap, len(s.windows)),
		Caches:         s.p.CacheStats(),
	}
	for name, win := range s.windows {
		resp.Endpoints[name] = win.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleHealth(ctx context.Context, _ *reqState, w http.ResponseWriter, r *http.Request) {
	if ctx.Err() != nil {
		return // client gone; nothing to answer
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
