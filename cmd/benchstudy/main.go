// Command benchstudy times the study harness sequentially (Workers=1)
// against the context-aware worker pool (Workers=GOMAXPROCS) on a small
// machine x application slice and emits the comparison as JSON, for the
// CI benchmark smoke job. The slice mirrors the -short test slice so the
// number is comparable across runs; it is a smoke signal, not a rigorous
// benchmark.
//
// Usage:
//
//	benchstudy [-out BENCH_study.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"hpcmetrics/internal/study"
)

type report struct {
	GOMAXPROCS        int      `json:"gomaxprocs"`
	Apps              []string `json:"apps"`
	Targets           []string `json:"targets"`
	SequentialSeconds float64  `json:"sequential_seconds"`
	ParallelSeconds   float64  `json:"parallel_seconds"`
	Speedup           float64  `json:"speedup"`
}

func main() {
	out := flag.String("out", "BENCH_study.json", "path for the JSON timing report")
	flag.Parse()

	opts := study.Options{
		Apps:    []string{"avus-standard", "rfcth-standard"},
		Targets: []string{"ARL_Opteron", "MHPCC_P3"},
	}

	seq, err := timeRun(opts, 1)
	if err != nil {
		log.Fatalf("benchstudy: sequential run: %v", err)
	}
	par, err := timeRun(opts, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatalf("benchstudy: parallel run: %v", err)
	}

	r := report{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Apps:              opts.Apps,
		Targets:           opts.Targets,
		SequentialSeconds: seq.Seconds(),
		ParallelSeconds:   par.Seconds(),
		Speedup:           seq.Seconds() / par.Seconds(),
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("benchstudy: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchstudy: %v", err)
	}
	fmt.Printf("sequential %.1fs, parallel %.1fs (x%.2f on GOMAXPROCS=%d); wrote %s\n",
		r.SequentialSeconds, r.ParallelSeconds, r.Speedup, r.GOMAXPROCS, *out)
}

func timeRun(opts study.Options, workers int) (time.Duration, error) {
	opts.Workers = workers
	start := time.Now()
	if _, err := study.Run(opts); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
