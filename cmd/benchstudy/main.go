// Command benchstudy times the study harness sequentially (Workers=1)
// against the context-aware worker pool (Workers=GOMAXPROCS) on a small
// machine x application slice and emits the comparison as JSON, for the
// CI benchmark smoke job. The slice mirrors the -short test slice so the
// number is comparable across runs; it is a smoke signal, not a rigorous
// benchmark.
//
// Both runs are traced, and the report embeds the parallel run's
// per-phase aggregates, its robustness counters (retries, timeouts,
// skipped cells), and a run manifest, so BENCH_study.json trends stay
// attributable: a regression shows which phase moved and on what
// toolchain/host it was measured, and a nonzero retry count flags that
// the timing was taken on a re-executing run.
//
// The report also times one module-wide hpclint pass, with the
// interface-devirtualization share broken out as hpclint_iface_seconds;
// -lint-baseline compares the pass against a committed baseline report
// (BENCH_baseline.json) and fails when it exceeds twice the recorded
// hpclint_seconds, so analyzer cost cannot silently balloon.
//
// Usage:
//
//	benchstudy [-out BENCH_study.json] [-lint-baseline BENCH_baseline.json]
//	           [-cpuprofile f] [-memprofile f] [-tracefile f]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"hpcmetrics/internal/analysis"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/study"
)

type report struct {
	GOMAXPROCS        int      `json:"gomaxprocs"`
	Apps              []string `json:"apps"`
	Targets           []string `json:"targets"`
	SequentialSeconds float64  `json:"sequential_seconds"`
	ParallelSeconds   float64  `json:"parallel_seconds"`
	Speedup           float64  `json:"speedup"`
	// HpclintSeconds is the wall time of one module-wide hpclint pass
	// (load + type-check + all analyzers over HpclintPackages packages),
	// so analyzer cost is part of the perf trajectory alongside the study
	// itself. Zero when the module tree is not reachable from the cwd.
	// HpclintIfaceSeconds is the slice of that wall time spent collecting
	// interface-implementor facts for devirtualization, reported
	// separately so the resolution overhead is trendable on its own.
	HpclintSeconds      float64          `json:"hpclint_seconds,omitempty"`
	HpclintIfaceSeconds float64          `json:"hpclint_iface_seconds,omitempty"`
	HpclintPackages     int              `json:"hpclint_packages,omitempty"`
	Phases              []obs.PhaseStat  `json:"phases"`
	Counters            map[string]int64 `json:"counters,omitempty"`
	Manifest            obs.Manifest     `json:"manifest"`
}

// robustnessCounters extracts the retry/skip counters from a run's
// metrics snapshot so the bench report records whether the timed run
// was clean or re-executing work.
func robustnessCounters(snap obs.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for _, c := range snap.Counters {
		for _, prefix := range []string{"retry_", "faults_", "study_cells_", "study_checkpoint_"} {
			if strings.HasPrefix(c.Name, prefix) {
				out[c.Name] = c.Value
				break
			}
		}
	}
	return out
}

func main() {
	out := flag.String("out", "BENCH_study.json", "path for the JSON timing report")
	lintBaseline := flag.String("lint-baseline", "", "baseline report JSON; fail if the hpclint pass exceeds 2x its recorded hpclint_seconds")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	tracefile := flag.String("tracefile", "", "write a runtime/trace execution trace to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
		defer rtrace.Stop()
	}

	opts := study.Options{
		Apps:    []string{"avus-standard", "rfcth-standard"},
		Targets: []string{"ARL_Opteron", "MHPCC_P3"},
	}

	// Both runs are instrumented identically so the timing comparison
	// stays apples-to-apples (the enabled-tracer overhead is symmetric).
	seq, _, err := timeRun(opts, 1)
	if err != nil {
		log.Fatalf("benchstudy: sequential run: %v", err)
	}
	par, parObs, err := timeRun(opts, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatalf("benchstudy: parallel run: %v", err)
	}

	manifest := obs.NewManifest()
	manifest.Seed = fmt.Sprintf("fnv1a-noise-amp=%g", study.NoiseAmplitude)
	manifest.Options = map[string]any{
		"apps":    opts.Apps,
		"targets": opts.Targets,
		"workers": runtime.GOMAXPROCS(0),
	}

	r := report{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Apps:              opts.Apps,
		Targets:           opts.Targets,
		SequentialSeconds: seq.Seconds(),
		ParallelSeconds:   par.Seconds(),
		Speedup:           seq.Seconds() / par.Seconds(),
		Phases:            parObs.Tracer.PhaseStats(),
		Counters:          robustnessCounters(parObs.Metrics.Snapshot()),
		Manifest:          manifest,
	}

	// One module-wide hpclint pass, timed (the BenchmarkHpclintModule
	// counterpart for the JSON trend). Non-fatal: run from outside the
	// module tree there is nothing to analyze.
	lintStart := time.Now()
	if lintRes, err := analysis.Run([]string{"./..."}, analysis.All()); err != nil {
		log.Printf("benchstudy: hpclint timing skipped: %v", err)
	} else {
		r.HpclintSeconds = time.Since(lintStart).Seconds()
		r.HpclintIfaceSeconds = lintRes.IfaceSeconds
		r.HpclintPackages = lintRes.Packages
	}
	// The budget gate: against a committed baseline report, a module pass
	// slower than 2x the recorded wall time fails the run, so analyzer
	// cost (devirtualization included) cannot silently balloon.
	if *lintBaseline != "" && r.HpclintSeconds > 0 {
		base, err := readBaselineSeconds(*lintBaseline)
		if err != nil {
			log.Fatalf("benchstudy: reading -lint-baseline: %v", err)
		}
		if base > 0 && r.HpclintSeconds > 2*base {
			log.Fatalf("benchstudy: hpclint module pass took %.2fs, over the 2x budget against the %.2fs baseline in %s",
				r.HpclintSeconds, base, *lintBaseline)
		}
		fmt.Printf("hpclint budget ok: %.2fs within 2x of the %.2fs baseline\n", r.HpclintSeconds, base)
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("benchstudy: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchstudy: %v", err)
	}
	fmt.Printf("sequential %.1fs, parallel %.1fs (x%.2f on GOMAXPROCS=%d), hpclint %.1fs/%d pkgs; wrote %s\n",
		r.SequentialSeconds, r.ParallelSeconds, r.Speedup, r.GOMAXPROCS,
		r.HpclintSeconds, r.HpclintPackages, *out)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("benchstudy: %v", err)
		}
	}
}

// readBaselineSeconds pulls hpclint_seconds out of a previously written
// report (BENCH_baseline.json or an old BENCH_study.json).
func readBaselineSeconds(path string) (float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base struct {
		HpclintSeconds float64 `json:"hpclint_seconds"`
	}
	if err := json.Unmarshal(buf, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if base.HpclintSeconds <= 0 {
		return 0, fmt.Errorf("%s: no hpclint_seconds recorded", path)
	}
	return base.HpclintSeconds, nil
}

func timeRun(opts study.Options, workers int) (time.Duration, *obs.Obs, error) {
	opts.Workers = workers
	opts.Obs = obs.New()
	start := time.Now()
	if _, err := study.Run(opts); err != nil {
		return 0, nil, err
	}
	return time.Since(start), opts.Obs, nil
}
