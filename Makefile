# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands. See README "Development & static analysis".

GO ?= go

.PHONY: build test race race-full lint bench bench-study fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the -short suite under the race detector: the 2-machine x
# 2-application study slice plus every unit test, which exercises the
# worker pool, cancellation, and the shared-cache paths in minutes, not
# tens of minutes. race-full is the exhaustive variant.
race:
	$(GO) test -race -short ./...

# race-full includes the concurrent SharedStudy test; expect tens of
# minutes, dominated by the full study under the race detector (the
# -timeout raises go test's 10m per-package default, which the
# instrumented study exceeds on small machines).
race-full:
	$(GO) test -race -timeout 40m ./...

# lint = go vet + the repo's own analyzer suite (cmd/hpclint).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hpclint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-study times sequential vs parallel study.Run on the -short slice
# and writes BENCH_study.json (the CI benchmark smoke artifact).
bench-study:
	$(GO) run ./cmd/benchstudy -out BENCH_study.json

fmt:
	gofmt -w .
