# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands. See README "Development & static analysis".

GO ?= go

.PHONY: build test race race-full lint lint-fixtures bench bench-study trace-smoke chaos predictd-smoke profile fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the -short suite under the race detector: the 2-machine x
# 2-application study slice plus every unit test, which exercises the
# worker pool, cancellation, and the shared-cache paths in minutes, not
# tens of minutes. race-full is the exhaustive variant. The -timeout
# raises go test's 10m per-package default: the instrumented study
# package sits right at that line on small machines.
race:
	$(GO) test -race -short -timeout 20m ./...

# race-full includes the concurrent SharedStudy test; expect tens of
# minutes, dominated by the full study under the race detector (the
# -timeout raises go test's 10m per-package default, which the
# instrumented study exceeds on small machines).
race-full:
	$(GO) test -race -timeout 40m ./...

# lint = go vet + module-wide self-application of the repo's own analyzer
# suite (cmd/hpclint), plus a suppression audit: the //hpclint:ignore
# inventory must match the committed allowlist exactly, so a new
# suppression cannot slip in without a reviewed lint-suppressions.txt
# change (and a stale allowlist entry fails too). Both sides of the diff
# are normalized with `LC_ALL=C sort -u` so the gate is order-stable
# across platforms and locales (hpclint emits the same byte order, but
# the committed file may have been hand-edited).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hpclint ./...
	LC_ALL=C sort -u lint-suppressions.txt >lint-suppressions.sorted.tmp; \
	$(GO) run ./cmd/hpclint -suppressions ./... | LC_ALL=C sort -u | diff -u lint-suppressions.sorted.tmp -; \
	st=$$?; rm -f lint-suppressions.sorted.tmp; exit $$st

# lint-fixtures runs the analyzer unit and fixture tests (the analyzers'
# own correctness, as opposed to lint's application of them to the repo).
lint-fixtures:
	$(GO) test ./internal/analysis/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-study times sequential vs parallel study.Run on the -short slice
# and writes BENCH_study.json (the CI benchmark smoke artifact).
bench-study:
	$(GO) run ./cmd/benchstudy -out BENCH_study.json

# trace-smoke runs a traced 1-app study slice and validates the
# observability artifacts: the span log must parse and cover every phase,
# and the run manifest must be complete (cmd/tracecheck). The per-phase
# aggregates land in trace-smoke-out/phases.csv; CI uploads the directory
# alongside BENCH_study.json.
trace-smoke:
	mkdir -p trace-smoke-out
	$(GO) run ./cmd/metricstudy -quiet -csv -only phases \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-spans trace-smoke-out/spans.jsonl \
		-manifest trace-smoke-out/manifest.json \
		-prom trace-smoke-out/metrics.prom \
		-cpuprofile trace-smoke-out/cpu.pprof \
		> trace-smoke-out/phases.csv
	$(GO) run ./cmd/tracecheck trace-smoke-out/spans.jsonl trace-smoke-out/manifest.json

# chaos exercises the fault-injected, self-healing harness end to end.
# First the chaos tests under the race detector: a transient storm must
# retry to results byte-identical to a clean run, a permanent fault must
# cost skips (with attempt counts) and never the run, and a killed
# checkpointed study must resume without re-executing journaled cells.
# Then a chaotic metricstudy run — transients everywhere, one target
# permanently broken — produces the chaos-out/ artifact: every table
# including the skip/attempts table and the retry counters, plus the
# span log, manifest, and metrics dump, which cmd/tracecheck validates
# (including the retry/fault counter algebra).
chaos:
	$(GO) test -race -timeout 30m \
		-run 'TestStudyTransientStormConverges|TestStudyPermanentFaultSkipsNotCrashes|TestStudyCheckpointResume|TestStudyResumeRejectsDifferentOptions' \
		./internal/study
	$(GO) test -race -timeout 30m -run 'TestTable4BytesIdenticalUnderTransientStorm' .
	mkdir -p chaos-out
	$(GO) run ./cmd/metricstudy -quiet -csv \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-faults 'transient:simexec.block:1:2,permanent:simexec.block:1:1::MHPCC_P3' \
		-max-attempts 4 -checkpoint chaos-out/study.ckpt \
		-spans chaos-out/spans.jsonl \
		-manifest chaos-out/manifest.json \
		-prom chaos-out/metrics.prom \
		> chaos-out/tables.csv
	$(GO) run ./cmd/tracecheck chaos-out/spans.jsonl chaos-out/manifest.json chaos-out/metrics.prom

# predictd-smoke boots the prediction server on an ephemeral port, waits
# for the -ready-file handshake, exercises /healthz, /v1/predict (cold,
# then cached), /v1/rank, and /metrics with curl into
# predictd-smoke-out/, then shuts the server down with SIGTERM and
# requires a clean drain ("predictd: drained and stopped" in the log).
# The cached re-request must carry "cached": true — the smoke fails if
# memoization broke. CI uploads the directory as an artifact.
predictd-smoke:
	mkdir -p predictd-smoke-out
	rm -f predictd-smoke-out/addr
	$(GO) build -o predictd-smoke-out/predictd ./cmd/predictd
	./predictd-smoke-out/predictd -addr 127.0.0.1:0 \
		-ready-file predictd-smoke-out/addr \
		2> predictd-smoke-out/server.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s predictd-smoke-out/addr ] && break; sleep 0.1; done; \
	[ -s predictd-smoke-out/addr ] || { echo "predictd never wrote its ready file"; kill $$pid; exit 1; }; \
	addr=$$(cat predictd-smoke-out/addr); \
	set -e; \
	curl -fsS "http://$$addr/healthz" > predictd-smoke-out/healthz.json; \
	curl -fsS "http://$$addr/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9" \
		> predictd-smoke-out/predict-cold.json; \
	curl -fsS "http://$$addr/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9" \
		> predictd-smoke-out/predict-cached.json; \
	grep -q '"cached": true' predictd-smoke-out/predict-cached.json || \
		{ echo "repeat request was not served from cache"; kill $$pid; exit 1; }; \
	curl -fsS "http://$$addr/v1/rank?app=rfcth&procs=16&metric=9&targets=ARL_Opteron,MHPCC_P3" \
		> predictd-smoke-out/rank.json; \
	curl -fsS "http://$$addr/metrics" > predictd-smoke-out/metrics.prom; \
	grep -q 'predictd_predict_requests_total 2' predictd-smoke-out/metrics.prom || \
		{ echo "metrics exposition missing request counters"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid; \
	grep -q 'drained and stopped' predictd-smoke-out/server.log || \
		{ echo "server did not drain cleanly"; cat predictd-smoke-out/server.log; exit 1; }
	@echo "predictd-smoke: OK"

# profile runs the same slice with the Go profilers wired in and prints
# the top CPU consumers; profile-out/ also gets the heap profile.
profile:
	mkdir -p profile-out
	$(GO) run ./cmd/metricstudy -quiet -only table4 \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-cpuprofile profile-out/cpu.pprof -memprofile profile-out/mem.pprof \
		> /dev/null
	$(GO) tool pprof -top -nodecount=15 profile-out/cpu.pprof

fmt:
	gofmt -w .
