# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands. See README "Development & static analysis".

GO ?= go

.PHONY: build test race lint bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race includes the concurrent SharedStudy test; expect tens of minutes,
# dominated by the full study under the race detector (the -timeout
# raises go test's 10m per-package default, which the instrumented study
# exceeds on small machines).
race:
	$(GO) test -race -timeout 40m ./...

# lint = go vet + the repo's own analyzer suite (cmd/hpclint).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hpclint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

fmt:
	gofmt -w .
