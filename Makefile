# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands. See README "Development & static analysis".

GO ?= go

.PHONY: build test race race-full lint lint-fixtures bench bench-study trace-smoke chaos chaos-distributed predictd-smoke profile fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the -short suite under the race detector: the 2-machine x
# 2-application study slice plus every unit test, which exercises the
# worker pool, cancellation, and the shared-cache paths in minutes, not
# tens of minutes. race-full is the exhaustive variant. The -timeout
# raises go test's 10m per-package default: the instrumented study
# package sits right at that line on small machines.
race:
	$(GO) test -race -short -timeout 20m ./...

# race-full includes the concurrent SharedStudy test; expect tens of
# minutes, dominated by the full study under the race detector (the
# -timeout raises go test's 10m per-package default, which the
# instrumented study exceeds on small machines).
race-full:
	$(GO) test -race -timeout 40m ./...

# lint = go vet + module-wide self-application of the repo's own analyzer
# suite (cmd/hpclint), plus a suppression audit: the //hpclint:ignore
# inventory must match the committed allowlist exactly, so a new
# suppression cannot slip in without a reviewed lint-suppressions.txt
# change (and a stale allowlist entry fails too). Both sides of the diff
# are normalized with `LC_ALL=C sort -u` so the gate is order-stable
# across platforms and locales (hpclint emits the same byte order, but
# the committed file may have been hand-edited).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hpclint ./...
	LC_ALL=C sort -u lint-suppressions.txt >lint-suppressions.sorted.tmp; \
	$(GO) run ./cmd/hpclint -suppressions ./... | LC_ALL=C sort -u | diff -u lint-suppressions.sorted.tmp -; \
	st=$$?; rm -f lint-suppressions.sorted.tmp; exit $$st

# lint-fixtures runs the analyzer unit and fixture tests (the analyzers'
# own correctness, as opposed to lint's application of them to the repo).
lint-fixtures:
	$(GO) test ./internal/analysis/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-study times sequential vs parallel study.Run on the -short slice
# and writes BENCH_study.json (the CI benchmark smoke artifact).
bench-study:
	$(GO) run ./cmd/benchstudy -out BENCH_study.json

# trace-smoke runs a traced 1-app study slice and validates the
# observability artifacts: the span log must parse and cover every phase,
# and the run manifest must be complete (cmd/tracecheck). The per-phase
# aggregates land in trace-smoke-out/phases.csv; CI uploads the directory
# alongside BENCH_study.json.
trace-smoke:
	mkdir -p trace-smoke-out
	$(GO) run ./cmd/metricstudy -quiet -csv -only phases \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-spans trace-smoke-out/spans.jsonl \
		-manifest trace-smoke-out/manifest.json \
		-prom trace-smoke-out/metrics.prom \
		-cpuprofile trace-smoke-out/cpu.pprof \
		> trace-smoke-out/phases.csv
	$(GO) run ./cmd/tracecheck trace-smoke-out/spans.jsonl trace-smoke-out/manifest.json

# chaos exercises the fault-injected, self-healing harness end to end.
# First the chaos tests under the race detector: a transient storm must
# retry to results byte-identical to a clean run, a permanent fault must
# cost skips (with attempt counts) and never the run, and a killed
# checkpointed study must resume without re-executing journaled cells.
# Then a chaotic metricstudy run — transients everywhere, one target
# permanently broken — produces the chaos-out/ artifact: every table
# including the skip/attempts table and the retry counters, plus the
# span log, manifest, and metrics dump, which cmd/tracecheck validates
# (including the retry/fault counter algebra).
chaos:
	$(GO) test -race -timeout 30m \
		-run 'TestStudyTransientStormConverges|TestStudyPermanentFaultSkipsNotCrashes|TestStudyCheckpointResume|TestStudyResumeRejectsDifferentOptions' \
		./internal/study
	$(GO) test -race -timeout 30m -run 'TestTable4BytesIdenticalUnderTransientStorm' .
	mkdir -p chaos-out
	$(GO) run ./cmd/metricstudy -quiet -csv \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-faults 'transient:simexec.block:1:2,permanent:simexec.block:1:1::MHPCC_P3' \
		-max-attempts 4 -checkpoint chaos-out/study.ckpt \
		-spans chaos-out/spans.jsonl \
		-manifest chaos-out/manifest.json \
		-prom chaos-out/metrics.prom \
		> chaos-out/tables.csv
	$(GO) run ./cmd/tracecheck chaos-out/spans.jsonl chaos-out/manifest.json chaos-out/metrics.prom

# chaos-distributed exercises the distributed campaign end to end.
# First the subprocess e2e suite (chaos campaign, clean campaign,
# journal triage); then an artifact campaign into chaos-distributed-out/:
# three shard workers, one SIGKILLed mid-slice (crash-restart), one
# SIGSTOPped past the straggler threshold (work-stolen), and one journal
# corrupted after completion (quarantined by the merge). The merged
# Table 4 must be byte-identical to a sequential run of the same slice,
# the corrupt shard must be reported by name, and tracecheck -shards
# must accept the surviving workers' span logs. CI uploads the
# directory (shard journals, steal snapshots, worker logs, span logs,
# manifests) as an artifact. The coordinator's own stderr lands in
# coordinator.stderr — *.log is reserved for the per-shard worker logs
# the coordinator manages.
chaos-distributed:
	$(GO) test -timeout 30m \
		-run 'TestDistributedChaosCampaignConverges|TestCoordinatorCleanCampaign|TestCheckpointInfo' \
		./cmd/metricstudy
	mkdir -p chaos-distributed-out
	$(GO) run ./cmd/metricstudy -quiet -csv -only table4 \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		> chaos-distributed-out/table4-sequential.csv
	$(GO) run ./cmd/metricstudy -quiet -csv -only table4 -trace \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-coordinator -shards 3 -checkpoint-dir chaos-distributed-out \
		-straggle-timeout 5s \
		-chaos-kill shard0@1 -chaos-stop shard1@1 -chaos-corrupt shard2 \
		> chaos-distributed-out/table4-merged.csv \
		2> chaos-distributed-out/coordinator.stderr
	cmp chaos-distributed-out/table4-sequential.csv chaos-distributed-out/table4-merged.csv
	grep -q 'quarantined shard journal' chaos-distributed-out/coordinator.stderr
	$(GO) run ./cmd/tracecheck -shards chaos-distributed-out

# predictd-smoke boots the prediction server on an ephemeral port with
# span + access logs enabled, waits for the -ready-file handshake, and
# exercises the serving surface with curl into predictd-smoke-out/:
# /healthz, a cold /v1/predict carrying a caller traceparent (the trace
# must round-trip into the access log), the cached re-request ("cached":
# true or the smoke fails), an If-None-Match revalidation that must come
# back 304, two concurrent herds on fresh cells (for coalesced
# followers), /v1/rank, /v1/status, and /metrics. After a SIGTERM drain
# ("predictd: drained and stopped" in the log), tracecheck -serve
# cross-validates the span/access log pair and requires the run to have
# demonstrated the cold/cached/coalesced outcome triple. CI uploads the
# directory as an artifact.
predictd-smoke:
	mkdir -p predictd-smoke-out
	rm -f predictd-smoke-out/addr
	$(GO) build -o predictd-smoke-out/predictd ./cmd/predictd
	$(GO) build -o predictd-smoke-out/tracecheck ./cmd/tracecheck
	./predictd-smoke-out/predictd -addr 127.0.0.1:0 -workers 8 \
		-ready-file predictd-smoke-out/addr \
		-spans predictd-smoke-out/spans.jsonl \
		-access-log predictd-smoke-out/access.jsonl \
		2> predictd-smoke-out/server.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s predictd-smoke-out/addr ] && break; sleep 0.1; done; \
	[ -s predictd-smoke-out/addr ] || { echo "predictd never wrote its ready file"; kill $$pid; exit 1; }; \
	addr=$$(cat predictd-smoke-out/addr); \
	trace=deadbeefdeadbeefdeadbeefdeadbeef; \
	set -e; \
	curl -fsS "http://$$addr/healthz" > predictd-smoke-out/healthz.json; \
	curl -fsS -D predictd-smoke-out/predict-cold.headers \
		-H "traceparent: 00-$$trace-00f067aa0ba902b7-01" \
		"http://$$addr/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9" \
		> predictd-smoke-out/predict-cold.json; \
	tr -d '\r' < predictd-smoke-out/predict-cold.headers | grep -iq "^traceparent: 00-$$trace-" || \
		{ echo "server did not echo the caller traceparent"; kill $$pid; exit 1; }; \
	curl -fsS -D predictd-smoke-out/predict-cached.headers \
		"http://$$addr/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9" \
		> predictd-smoke-out/predict-cached.json; \
	grep -q '"cached": true' predictd-smoke-out/predict-cached.json || \
		{ echo "repeat request was not served from cache"; kill $$pid; exit 1; }; \
	etag=$$(tr -d '\r' < predictd-smoke-out/predict-cached.headers | awk -F': ' 'tolower($$1)=="etag"{print $$2}'); \
	[ -n "$$etag" ] || { echo "predict response carried no ETag"; kill $$pid; exit 1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $$etag" \
		"http://$$addr/v1/predict?app=rfcth&procs=16&target=ARL_Opteron&metric=9"); \
	[ "$$code" = "304" ] || { echo "If-None-Match revalidation returned $$code, want 304"; kill $$pid; exit 1; }; \
	hpids=""; \
	for i in 1 2 3 4; do \
		curl -fsS "http://$$addr/v1/predict?app=rfcth&procs=32&target=ARL_Opteron&metric=9" \
			> predictd-smoke-out/herd32-$$i.json & hpids="$$hpids $$!"; \
	done; \
	for i in 1 2 3 4; do \
		curl -fsS "http://$$addr/v1/predict?app=rfcth&procs=64&target=ARL_Opteron&metric=9" \
			> predictd-smoke-out/herd64-$$i.json & hpids="$$hpids $$!"; \
	done; \
	wait $$hpids; \
	curl -fsS "http://$$addr/v1/rank?app=rfcth&procs=16&metric=9&targets=ARL_Opteron,MHPCC_P3" \
		> predictd-smoke-out/rank.json; \
	curl -fsS "http://$$addr/v1/status" > predictd-smoke-out/status.json; \
	grep -q '"uptime_seconds"' predictd-smoke-out/status.json || \
		{ echo "/v1/status missing uptime"; kill $$pid; exit 1; }; \
	grep -q '"caches"' predictd-smoke-out/status.json || \
		{ echo "/v1/status missing cache stats"; kill $$pid; exit 1; }; \
	curl -fsS "http://$$addr/metrics" > predictd-smoke-out/metrics.prom; \
	grep -q 'predictd_predict_requests_total 11' predictd-smoke-out/metrics.prom || \
		{ echo "metrics exposition predict counter off (want 11 requests)"; kill $$pid; exit 1; }; \
	grep -q 'predictd_not_modified_total 1' predictd-smoke-out/metrics.prom || \
		{ echo "metrics exposition missing the 304 counter"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid; \
	grep -q 'drained and stopped' predictd-smoke-out/server.log || \
		{ echo "server did not drain cleanly"; cat predictd-smoke-out/server.log; exit 1; }; \
	grep -q "\"trace\":\"$$trace\"" predictd-smoke-out/access.jsonl || \
		{ echo "caller trace never reached the access log"; exit 1; }; \
	./predictd-smoke-out/tracecheck -serve -require-outcomes cold,cached,coalesced \
		predictd-smoke-out/spans.jsonl predictd-smoke-out/access.jsonl
	@echo "predictd-smoke: OK"

# profile runs the same slice with the Go profilers wired in and prints
# the top CPU consumers; profile-out/ also gets the heap profile.
profile:
	mkdir -p profile-out
	$(GO) run ./cmd/metricstudy -quiet -only table4 \
		-apps avus-standard -targets ARL_Opteron,MHPCC_P3 \
		-cpuprofile profile-out/cpu.pprof -memprofile profile-out/mem.pprof \
		> /dev/null
	$(GO) tool pprof -top -nodecount=15 profile-out/cpu.pprof

fmt:
	gofmt -w .
