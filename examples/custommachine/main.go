// Custommachine: define a machine that is not one of the study presets —
// a notional next-generation node — and a custom application skeleton,
// then run the paper's methodology on them: probe, trace, convolve,
// validate. This is the workflow for anyone extending the study to new
// hardware or workloads.
package main

import (
	"fmt"
	"log"
	"os"

	"hpcmetrics"
	"hpcmetrics/internal/access"
	"hpcmetrics/internal/convolve"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/workload"
)

// nextGen is a hypothetical 2.6 GHz system with a large L2, an integrated
// memory controller, and a fat-tree interconnect.
func nextGen() *hpcmetrics.MachineConfig {
	return &hpcmetrics.MachineConfig{
		Name:                          "NextGen_2.6GHz",
		Vendor:                        "ACME",
		ClockGHz:                      2.6,
		FPPerCycle:                    4,
		FPLatencyCycles:               5,
		IssueWidth:                    4,
		LoadStorePerCycle:             2,
		BranchMispredictPenaltyCycles: 14,
		MaxOutstandingMisses:          10,
		PrefetchStreams:               8,
		PrefetchMaxStride:             2,
		Caches: []hpcmetrics.CacheLevel{
			{Name: "L1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, LatencyCycles: 3, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 8, LatencyCycles: 14, BandwidthBytesPerCycle: 12},
		},
		MemLatencyNs:           95,
		MemBandwidthGBs:        5.2,
		MemLoadedFraction:      0.85,
		MemLoadedLatencyFactor: 1.1,
		PageBytes:              4096,
		TLBEntries:             1024,
		TLBMissPenaltyNs:       50,
		CoresPerNode:           4,
		TotalProcs:             1024,
		MemOverlapFraction:     0.8,
		Net: hpcmetrics.Network{
			LatencyUs: 4, BandwidthMBs: 900, OverheadUs: 1,
			NICsPerNode: 2, ContentionBeta: 0.2,
		},
	}
}

// spectral is a custom workload: an FFT-flavoured solver with a transpose
// phase (all-to-all) and a pointwise phase.
func spectral(procs int) *workload.App {
	const points = 16_000_000
	n := float64(points) / float64(procs)
	return &workload.App{
		Name: "spectral", Case: "demo", Procs: procs,
		RuntimeImbalance: 1.02,
		Blocks: []workload.Block{
			{
				Name: "butterfly",
				Work: cpusim.Work{Flops: 90, IntOps: 20, MemOps: 24, FPChainLen: 6},
				Stream: access.StreamSpec{
					WorkingSetBytes:  int64(96 * n),
					Mix:              access.Mix{Unit: 0.55, Short: 0.40, Random: 0.05},
					ShortStrideElems: 8,
					StoreFraction:    0.4,
					HotFraction:      0.5,
					Seed:             42,
				},
				Iters: n * 400,
			},
			{
				Name: "pointwise",
				Work: cpusim.Work{Flops: 30, IntOps: 6, MemOps: 10, FPChainLen: 2},
				Stream: access.StreamSpec{
					WorkingSetBytes: int64(48 * n),
					Mix:             access.Mix{Unit: 1},
					StoreFraction:   0.5,
					HotFraction:     0.3,
					Seed:            43,
				},
				Iters: n * 400,
			},
		},
		Comm: []netsim.Event{
			{Op: netsim.OpAllToAll, Bytes: int64(8 * n / float64(procs)), Count: 400},
			{Op: netsim.OpAllReduce, Bytes: 8, Count: 400},
		},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("custommachine: ")

	target := nextGen()
	if err := target.Validate(); err != nil {
		log.Fatal(err)
	}
	app := spectral(128)
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}

	base := hpcmetrics.BaseMachine()
	fmt.Fprintln(os.Stderr, "probing base and target ...")
	basePr, err := hpcmetrics.MeasureProbes(base)
	if err != nil {
		log.Fatal(err)
	}
	targetPr, err := hpcmetrics.MeasureProbes(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s probes: HPL %.2f GF/s, STREAM %.2f GB/s, GUPS %.1f Mref/s\n",
		target.Name, targetPr.HPLFlopsPerSec/1e9,
		targetPr.StreamBytesPerSec/1e9, targetPr.GUPSRefsPerSec/1e6)

	fmt.Fprintln(os.Stderr, "base run + trace ...")
	baseRun, err := hpcmetrics.Execute(base, app)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := hpcmetrics.CollectTrace(base, app)
	if err != nil {
		log.Fatal(err)
	}

	// Convolve directly at each memory-model resolution to see the terms
	// build up, then validate against the simulated ground truth.
	actual, err := hpcmetrics.Execute(target, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s at %d CPUs: base observed %.0f s, target observed %.0f s\n\n",
		app.ID(), app.Procs, baseRun.Seconds, actual.Seconds)

	for _, opts := range []hpcmetrics.ConvolveOptions{
		{Memory: convolve.MemNone},
		{Memory: convolve.MemStream},
		{Memory: convolve.MemStreamGups},
		{Memory: convolve.MemMAPS},
		{Memory: convolve.MemMAPS, Network: true},
		{Memory: convolve.MemMAPSDependency, Network: true},
	} {
		pt, err := hpcmetrics.Convolve(tr, targetPr, opts)
		if err != nil {
			log.Fatal(err)
		}
		pb, err := hpcmetrics.Convolve(tr, basePr, opts)
		if err != nil {
			log.Fatal(err)
		}
		predicted := baseRun.Seconds * pt.Seconds / pb.Seconds
		net := ""
		if opts.Network {
			net = "+net"
		}
		fmt.Printf("transfer function %-12s%-5s predicts %7.0f s (error %+.0f%%)\n",
			opts.Memory, net, predicted,
			hpcmetrics.SignedError(predicted, actual.Seconds))
	}
}
