// Ranking: the paper's introduction motivates the study with the Top 500
// question — can a single number rank HPC systems? This example ranks the
// ten study systems three ways: by HPL (the Top 500 way), by STREAM, and
// by observed application performance on one workload, then shows how the
// orderings disagree (including HPL anticorrelation, the Gustafson & Todi
// observation the paper cites).
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"hpcmetrics"
)

type scored struct {
	name  string
	value float64
}

func rank(scores []scored, higherBetter bool) []string {
	sort.Slice(scores, func(i, j int) bool {
		if higherBetter {
			return scores[i].value > scores[j].value
		}
		return scores[i].value < scores[j].value
	})
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.name
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ranking: ")

	tc, err := hpcmetrics.LookupTestCase("avus", "standard")
	if err != nil {
		log.Fatal(err)
	}
	app, err := tc.Instance(64)
	if err != nil {
		log.Fatal(err)
	}

	var hpl, stream, observed []scored
	for _, cfg := range hpcmetrics.StudyTargets() {
		fmt.Fprintln(os.Stderr, "measuring", cfg.Name, "...")
		pr, err := hpcmetrics.MeasureProbes(cfg)
		if err != nil {
			log.Fatal(err)
		}
		hpl = append(hpl, scored{cfg.Name, pr.HPLFlopsPerSec})
		stream = append(stream, scored{cfg.Name, pr.StreamBytesPerSec})
		run, err := hpcmetrics.Execute(cfg, app)
		if err != nil {
			log.Fatal(err)
		}
		observed = append(observed, scored{cfg.Name, run.Seconds})
	}

	byHPL := rank(hpl, true)
	bySTREAM := rank(stream, true)
	byApp := rank(observed, false) // lower time is better

	fmt.Printf("\nRankings for %s at %d CPUs:\n\n", tc.ID(), app.Procs)
	fmt.Printf("%4s  %-16s %-16s %-16s\n", "rank", "by HPL", "by STREAM", "by application")
	for i := range byApp {
		fmt.Printf("%4d  %-16s %-16s %-16s\n", i+1, byHPL[i], bySTREAM[i], byApp[i])
	}

	// Rank displacement: how far each single-number ranking strays from
	// the application truth.
	pos := map[string]int{}
	for i, n := range byApp {
		pos[n] = i
	}
	displacement := func(order []string) int {
		var d int
		for i, n := range order {
			delta := i - pos[n]
			if delta < 0 {
				delta = -delta
			}
			d += delta
		}
		return d
	}
	fmt.Printf("\ntotal rank displacement vs application order: HPL %d, STREAM %d\n",
		displacement(byHPL), displacement(bySTREAM))
	fmt.Println("(zero would mean the simple metric ranks systems exactly as the application does)")
}
