// Quickstart: probe a machine, trace an application on the base system,
// and predict its runtime on a target — the paper's methodology end to
// end on a single (application, machine) pair.
package main

import (
	"fmt"
	"log"
	"os"

	"hpcmetrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Pick a target machine and look at its simple benchmark scores.
	target := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
	fmt.Fprintln(os.Stderr, "probing", target.Name, "...")
	targetProbes, err := hpcmetrics.MeasureProbes(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: HPL %.2f GF/s, STREAM %.2f GB/s, GUPS %.1f Mref/s\n",
		target.Name,
		targetProbes.HPLFlopsPerSec/1e9,
		targetProbes.StreamBytesPerSec/1e9,
		targetProbes.GUPSRefsPerSec/1e6)

	// 2. Instantiate an application test case and run it on the base
	// system — that run plus a trace is all the paper's methodology needs.
	tc, err := hpcmetrics.LookupTestCase("hycom", "standard")
	if err != nil {
		log.Fatal(err)
	}
	app, err := tc.Instance(96)
	if err != nil {
		log.Fatal(err)
	}
	base := hpcmetrics.BaseMachine()
	fmt.Fprintln(os.Stderr, "running and tracing", tc.ID(), "on", base.Name, "...")
	baseProbes, err := hpcmetrics.MeasureProbes(base)
	if err != nil {
		log.Fatal(err)
	}
	baseRun, err := hpcmetrics.Execute(base, app)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := hpcmetrics.CollectTrace(base, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at %d CPUs observed %.0f s on %s\n",
		tc.ID(), app.Procs, baseRun.Seconds, base.Name)

	// 3. Predict the target's runtime with the paper's best metric (#9)
	// and check against ground truth.
	m, err := hpcmetrics.MetricByID(9)
	if err != nil {
		log.Fatal(err)
	}
	predicted, err := m.Predict(hpcmetrics.MetricContext{
		Trace:       tr,
		Base:        baseProbes,
		Target:      targetProbes,
		BaseSeconds: baseRun.Seconds,
	})
	if err != nil {
		log.Fatal(err)
	}
	actual, err := hpcmetrics.Execute(target, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metric %s predicts %.0f s on %s; observed %.0f s (error %+.0f%%)\n",
		m.Label(), predicted, target.Name, actual.Seconds,
		hpcmetrics.SignedError(predicted, actual.Seconds))
}
