// Procurement: the paper's acquisition scenario. A center must choose one
// of the ten systems for a given workload mix without running the
// applications everywhere. This example compares the machine each
// prediction methodology would buy — cheapest predicted aggregate
// runtime — against the machine that is actually best, and reports how
// much performance each methodology's choice leaves on the table.
package main

import (
	"fmt"
	"log"
	"os"

	"hpcmetrics"
)

// workload mix: (test case, CPUs, weight) — a center's expected usage.
var mix = []struct {
	app    string
	cases  string
	procs  int
	weight float64
}{
	{"avus", "standard", 64, 0.4},
	{"hycom", "standard", 96, 0.4},
	{"rfcth", "standard", 32, 0.2},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("procurement: ")

	base := hpcmetrics.BaseMachine()
	basePr, err := hpcmetrics.MeasureProbes(base)
	if err != nil {
		log.Fatal(err)
	}

	// Trace the workload once on the base system.
	type cell struct {
		app      *hpcmetrics.App
		tr       *hpcmetrics.Trace
		baseSecs float64
		weight   float64
	}
	var cells []cell
	for _, w := range mix {
		tc, err := hpcmetrics.LookupTestCase(w.app, w.cases)
		if err != nil {
			log.Fatal(err)
		}
		app, err := tc.Instance(w.procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "base run + trace: %s@%d\n", tc.ID(), w.procs)
		run, err := hpcmetrics.Execute(base, app)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := hpcmetrics.CollectTrace(base, app)
		if err != nil {
			log.Fatal(err)
		}
		cells = append(cells, cell{app, tr, run.Seconds, w.weight})
	}

	// Score every target under each methodology.
	methodologies := []int{1, 3, 6, 9} // HPL, GUPS, trace+STREAM+GUPS, full
	type choice struct {
		name  string
		score float64
	}
	best := map[int]choice{}
	var trueBest choice
	actualScore := map[string]float64{}

	for _, cfg := range hpcmetrics.StudyTargets() {
		fmt.Fprintln(os.Stderr, "evaluating", cfg.Name, "...")
		pr, err := hpcmetrics.MeasureProbes(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var actual float64
		predicted := map[int]float64{}
		feasible := true
		for _, c := range cells {
			run, err := hpcmetrics.Execute(cfg, c.app)
			if err != nil {
				feasible = false
				break
			}
			actual += c.weight * run.Seconds
			for _, id := range methodologies {
				m, err := hpcmetrics.MetricByID(id)
				if err != nil {
					log.Fatal(err)
				}
				p, err := m.Predict(hpcmetrics.MetricContext{
					Trace: c.tr, Base: basePr, Target: pr, BaseSeconds: c.baseSecs,
				})
				if err != nil {
					log.Fatal(err)
				}
				predicted[id] += c.weight * p
			}
		}
		if !feasible {
			continue
		}
		actualScore[cfg.Name] = actual
		if trueBest.name == "" || actual < trueBest.score {
			trueBest = choice{cfg.Name, actual}
		}
		for _, id := range methodologies {
			if b, ok := best[id]; !ok || predicted[id] < b.score {
				best[id] = choice{cfg.Name, predicted[id]}
			}
		}
	}

	fmt.Printf("\ntrue best machine for the workload: %s (weighted runtime %.0f s)\n\n",
		trueBest.name, trueBest.score)
	fmt.Printf("%-28s %-16s %s\n", "methodology", "would buy", "performance left on the table")
	for _, id := range methodologies {
		m, _ := hpcmetrics.MetricByID(id)
		pick := best[id]
		loss := (actualScore[pick.name] - trueBest.score) / trueBest.score * 100
		fmt.Printf("%-28s %-16s %+.0f%%\n",
			fmt.Sprintf("#%d (%s)", id, m.Name), pick.name, loss)
	}
}
