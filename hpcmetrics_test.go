package hpcmetrics_test

import (
	"testing"

	"hpcmetrics"
)

// These tests exercise the public façade without running the full study.

func TestFacadeMachines(t *testing.T) {
	names := hpcmetrics.MachineNames()
	if len(names) != 11 {
		t.Fatalf("%d machine presets, want 11", len(names))
	}
	cfg := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
	if cfg.Name != hpcmetrics.ARLOpteron {
		t.Fatalf("Machine returned %q", cfg.Name)
	}
	if _, err := hpcmetrics.LookupMachine("nope"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if got := len(hpcmetrics.StudyTargets()); got != 10 {
		t.Fatalf("%d study targets", got)
	}
	if hpcmetrics.BaseMachine().Name != hpcmetrics.BaseSystem {
		t.Fatal("base machine name mismatch")
	}
}

func TestFacadeTestCases(t *testing.T) {
	if got := len(hpcmetrics.TestCases()); got != 5 {
		t.Fatalf("%d test cases", got)
	}
	tc, err := hpcmetrics.LookupTestCase("rfcth", "standard")
	if err != nil {
		t.Fatal(err)
	}
	if tc.ID() != "rfcth-standard" {
		t.Fatalf("LookupTestCase = %s", tc.ID())
	}
}

func TestFacadeMetrics(t *testing.T) {
	if got := len(hpcmetrics.Metrics()); got != 9 {
		t.Fatalf("%d metrics", got)
	}
	m, err := hpcmetrics.MetricByID(9)
	if err != nil || m.ID != 9 {
		t.Fatalf("MetricByID(9) = %+v, %v", m, err)
	}
	if got := hpcmetrics.SignedError(110, 100); got != 10 {
		t.Fatalf("SignedError = %g", got)
	}
}

func TestFacadeEndToEndSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("probes one machine")
	}
	// A miniature version of the quickstart: probe, run, trace, predict.
	base := hpcmetrics.BaseMachine()
	target := hpcmetrics.Machine(hpcmetrics.ARL690)
	tc, err := hpcmetrics.LookupTestCase("rfcth", "")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(32)
	if err != nil {
		t.Fatal(err)
	}
	basePr, err := hpcmetrics.MeasureProbes(base)
	if err != nil {
		t.Fatal(err)
	}
	targetPr, err := hpcmetrics.MeasureProbes(target)
	if err != nil {
		t.Fatal(err)
	}
	baseRun, err := hpcmetrics.Execute(base, app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hpcmetrics.CollectTrace(base, app)
	if err != nil {
		t.Fatal(err)
	}
	m, err := hpcmetrics.MetricByID(6)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hpcmetrics.MetricContext{
		Trace: tr, Base: basePr, Target: targetPr, BaseSeconds: baseRun.Seconds,
	})
	if err != nil {
		t.Fatal(err)
	}
	actual, err := hpcmetrics.Execute(target, app)
	if err != nil {
		t.Fatal(err)
	}
	if e := hpcmetrics.SignedError(pred, actual.Seconds); e < -80 || e > 150 {
		t.Fatalf("facade end-to-end error %.0f%% wildly out of band (pred %.0f, actual %.0f)",
			e, pred, actual.Seconds)
	}
}
