package hpcmetrics_test

// Root-level chaos smoke: the public API's view of the robustness PR.
// A study slice run under a transient fault storm must render the exact
// same Table 4 bytes as a clean run of the same slice — injected chaos,
// retried to completion, is invisible in the paper's tables. Kept
// -short-safe so `make chaos` can run it under -race.

import (
	"testing"

	"hpcmetrics"
)

func chaosSliceOptions() hpcmetrics.StudyOptions {
	return hpcmetrics.StudyOptions{
		Apps:    []string{"avus-standard"},
		Targets: []string{"ARL_Opteron", "MHPCC_P3"},
	}
}

func TestTable4BytesIdenticalUnderTransientStorm(t *testing.T) {
	clean, err := hpcmetrics.RunStudyWithOptions(chaosSliceOptions())
	if err != nil {
		t.Fatal(err)
	}

	stormy := chaosSliceOptions()
	stormy.MaxAttempts = 4
	stormy.Faults = hpcmetrics.NewFaultInjector(1, hpcmetrics.FaultRule{
		Point: "simexec.block", Kind: hpcmetrics.FaultTransient, Rate: 1, Burst: 2,
	})
	res, err := hpcmetrics.RunStudyWithOptions(stormy)
	if err != nil {
		t.Fatalf("transient storm crashed the study: %v", err)
	}
	if fired := stormy.Faults.Fired(hpcmetrics.FaultTransient); fired == 0 {
		t.Fatal("no transient faults fired; the storm never happened")
	}

	cleanCSV := hpcmetrics.Table4(clean).CSV()
	stormCSV := hpcmetrics.Table4(res).CSV()
	if cleanCSV != stormCSV {
		t.Errorf("Table 4 bytes differ between clean and storm runs\nclean:\n%s\nstorm:\n%s", cleanCSV, stormCSV)
	}
	if tab := hpcmetrics.SkipTable(res); len(tab.Rows) != 0 {
		t.Errorf("storm run recorded %d skips, want none (transients heal under retry)", len(tab.Rows))
	}
}

// TestParseFaultRulesPublicSurface sanity-checks the re-exported rule
// grammar end to end: the -faults CLI path goes through exactly this.
func TestParseFaultRulesPublicSurface(t *testing.T) {
	rules, err := hpcmetrics.ParseFaultRules("transient:simexec.block:1:2")
	if err != nil || len(rules) != 1 {
		t.Fatalf("ParseFaultRules = (%v, %v), want one rule", rules, err)
	}
	if _, err := hpcmetrics.ParseFaultRules("transient:bogus:1"); err == nil {
		t.Error("unknown injection point accepted")
	}
}
