// Package metrics implements the nine prediction metrics of the study
// (paper Table 3) plus the IDC-style balanced rating side experiment.
//
// Simple metrics (#1-#3) predict a target system's runtime from a single
// benchmark ratio (Equation 1): the application is assumed faster or
// slower exactly as the benchmark is. Predictive metrics (#4-#9) convolve
// an application trace with probe rates (internal/convolve) at increasing
// rate resolution, then scale relative to the base system. Errors follow
// Equation 2: (predicted - actual)/actual × 100, negative meaning the
// prediction was optimistic.
package metrics

import (
	"context"
	"fmt"

	"hpcmetrics/internal/convolve"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/trace"
)

// Kind distinguishes the two methodologies.
type Kind int

const (
	// Simple predicts by a single benchmark ratio.
	Simple Kind = iota
	// Predictive predicts by trace convolution.
	Predictive
)

// String names the kind the way the paper's tables do.
func (k Kind) String() string {
	if k == Simple {
		return "S"
	}
	return "P"
}

// Metric is one row of the paper's Table 3.
type Metric struct {
	ID   int
	Kind Kind
	Name string
	// rate extracts the simple-benchmark rate (Simple metrics only).
	rate func(pr *probes.Results) float64
	// conv selects the convolver's transfer-function terms (Predictive
	// metrics only).
	conv convolve.Options
}

// All returns the nine metrics in paper order.
func All() []Metric {
	return []Metric{
		{ID: 1, Kind: Simple, Name: "HPL", rate: func(pr *probes.Results) float64 { return pr.HPLFlopsPerSec }},
		{ID: 2, Kind: Simple, Name: "STREAM", rate: func(pr *probes.Results) float64 { return pr.StreamBytesPerSec }},
		{ID: 3, Kind: Simple, Name: "GUPS", rate: func(pr *probes.Results) float64 { return pr.GUPSRefsPerSec }},
		{ID: 4, Kind: Predictive, Name: "HPL", conv: convolve.Options{Memory: convolve.MemNone}},
		{ID: 5, Kind: Predictive, Name: "HPL+STREAM", conv: convolve.Options{Memory: convolve.MemStream}},
		{ID: 6, Kind: Predictive, Name: "HPL+STREAM+GUPS", conv: convolve.Options{Memory: convolve.MemStreamGups}},
		{ID: 7, Kind: Predictive, Name: "HPL+MAPS", conv: convolve.Options{Memory: convolve.MemMAPS}},
		{ID: 8, Kind: Predictive, Name: "HPL+MAPS+NET", conv: convolve.Options{Memory: convolve.MemMAPS, Network: true}},
		{ID: 9, Kind: Predictive, Name: "HPL+MAPS+NET+DEP", conv: convolve.Options{Memory: convolve.MemMAPSDependency, Network: true}},
	}
}

// ByID returns the metric with the given Table 3 number.
func ByID(id int) (Metric, error) {
	for _, m := range All() {
		if m.ID == id {
			return m, nil
		}
	}
	return Metric{}, fmt.Errorf("metrics: no metric #%d", id)
}

// Label returns the table label, e.g. "6-P".
func (m Metric) Label() string { return fmt.Sprintf("%d-%s", m.ID, m.Kind) }

// Context carries everything a prediction needs.
type Context struct {
	// Trace is the application signature from the base system
	// (Predictive metrics only; Simple metrics ignore it).
	Trace *trace.Trace
	// Base and Target are the probe suites of the two machines.
	Base, Target *probes.Results
	// BaseSeconds is the observed runtime on the base system.
	BaseSeconds float64
}

// Predict returns the predicted wall-clock seconds on the target system.
func (m Metric) Predict(ctx Context) (float64, error) {
	return m.PredictContext(context.Background(), ctx)
}

// PredictContext is Predict with tracing: when goCtx carries a tracer,
// the predictive metrics' two convolver passes (target and base) each
// record a "convolve" span.
func (m Metric) PredictContext(goCtx context.Context, ctx Context) (float64, error) {
	if ctx.Base == nil || ctx.Target == nil {
		return 0, fmt.Errorf("metrics: %s: missing probe results", m.Label())
	}
	if ctx.BaseSeconds <= 0 {
		return 0, fmt.Errorf("metrics: %s: non-positive base time %g", m.Label(), ctx.BaseSeconds)
	}
	switch m.Kind {
	case Simple:
		rb, rt := m.rate(ctx.Base), m.rate(ctx.Target)
		if rb <= 0 || rt <= 0 {
			return 0, fmt.Errorf("metrics: %s: non-positive rate (base %g, target %g)", m.Label(), rb, rt)
		}
		// Equation 1: runtime scales inversely with the benchmark rate.
		return ctx.BaseSeconds * rb / rt, nil
	case Predictive:
		if ctx.Trace == nil {
			return 0, fmt.Errorf("metrics: %s: predictive metric needs a trace", m.Label())
		}
		pt, err := convolve.PredictContext(goCtx, ctx.Trace, ctx.Target, m.conv)
		if err != nil {
			return 0, err
		}
		pb, err := convolve.PredictContext(goCtx, ctx.Trace, ctx.Base, m.conv)
		if err != nil {
			return 0, err
		}
		if pb.Seconds <= 0 {
			return 0, fmt.Errorf("metrics: %s: zero convolver time on base", m.Label())
		}
		return ctx.BaseSeconds * pt.Seconds / pb.Seconds, nil
	default:
		return 0, fmt.Errorf("metrics: unknown kind %d", m.Kind)
	}
}

// SignedError is Equation 2: percent deviation of the prediction from the
// actual runtime; negative means the prediction was faster than reality.
func SignedError(predicted, actual float64) float64 {
	return (predicted - actual) / actual * 100
}
