package metrics

import (
	"fmt"

	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/stats"
)

// Balanced rating (the paper's Section 4 side experiment, after IDC's
// Balanced Rating): normalize three category scores — processor (HPL),
// memory (STREAM), and interconnect (NETBENCH all_reduce) — to [0,1]
// across the system pool, combine them with weights, and predict runtime
// by the composite's ratio. The paper evaluates equal weights and
// regression-optimized weights (reporting 5%/50%/45%).

// EqualWeights is IDC's original equal weighting.
var EqualWeights = stats.Weights3{1.0 / 3, 1.0 / 3, 1.0 / 3}

// Rating is a balanced rating calibrated against a pool of systems.
type Rating struct {
	Weights stats.Weights3
	// Normalizers: the pool maxima for each category rate.
	maxHPL, maxStream, maxAllReduceRate float64
}

// NewRating builds a rating normalized over the pool. The all_reduce
// category scores the *rate* 1/time, so bigger is better in every
// category.
func NewRating(pool []*probes.Results, w stats.Weights3) (*Rating, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("metrics: balanced rating needs a system pool")
	}
	r := &Rating{Weights: w}
	for _, pr := range pool {
		if pr.HPLFlopsPerSec > r.maxHPL {
			r.maxHPL = pr.HPLFlopsPerSec
		}
		if pr.StreamBytesPerSec > r.maxStream {
			r.maxStream = pr.StreamBytesPerSec
		}
		if pr.Net.AllReduce8At64 > 0 {
			if rate := 1 / pr.Net.AllReduce8At64; rate > r.maxAllReduceRate {
				r.maxAllReduceRate = rate
			}
		}
	}
	if r.maxHPL <= 0 || r.maxStream <= 0 || r.maxAllReduceRate <= 0 {
		return nil, fmt.Errorf("metrics: balanced rating pool has degenerate categories")
	}
	return r, nil
}

// Score returns the composite balanced rating in [0,1].
func (r *Rating) Score(pr *probes.Results) float64 {
	var arRate float64
	if pr.Net.AllReduce8At64 > 0 {
		arRate = 1 / pr.Net.AllReduce8At64
	}
	return r.Weights[0]*pr.HPLFlopsPerSec/r.maxHPL +
		r.Weights[1]*pr.StreamBytesPerSec/r.maxStream +
		r.Weights[2]*arRate/r.maxAllReduceRate
}

// Predict applies Equation 1 with the composite score as the rate.
func (r *Rating) Predict(base, target *probes.Results, baseSeconds float64) (float64, error) {
	sb, st := r.Score(base), r.Score(target)
	if sb <= 0 || st <= 0 {
		return 0, fmt.Errorf("metrics: balanced rating score non-positive (base %g, target %g)", sb, st)
	}
	return baseSeconds * sb / st, nil
}

// OptimizeRating finds the simplex weights minimizing the mean absolute
// error of the rating's predictions over a set of observations. Each
// observation supplies the target's probe results and the actual runtime,
// along with the shared base. step is the grid resolution (the paper's
// weights suggest 0.05).
type RatingObservation struct {
	Base, Target  *probes.Results
	BaseSeconds   float64
	ActualSeconds float64
}

// OptimizeRating grid-searches the weight simplex.
func OptimizeRating(pool []*probes.Results, obs []RatingObservation, step float64) (stats.Weights3, float64, error) {
	if len(obs) == 0 {
		return stats.Weights3{}, 0, fmt.Errorf("metrics: no observations to optimize over")
	}
	objective := func(w stats.Weights3) float64 {
		r, err := NewRating(pool, w)
		if err != nil {
			return 1e300
		}
		var errs []float64
		for _, o := range obs {
			pred, err := r.Predict(o.Base, o.Target, o.BaseSeconds)
			if err != nil {
				return 1e300
			}
			errs = append(errs, SignedError(pred, o.ActualSeconds))
		}
		return stats.Summarize(errs).MeanAbs
	}
	return stats.OptimizeSimplex3(step, objective)
}
