package metrics

import (
	"math"
	"testing"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/stats"
	"hpcmetrics/internal/trace"
)

func fakeProbes(name string, hpl, streamBps, gups float64) *probes.Results {
	curve := func(rate float64) probes.Curve {
		return probes.Curve{
			SizesBytes: []int64{8 << 10, 64 << 20},
			RefsPerSec: []float64{rate * 3, rate},
		}
	}
	return &probes.Results{
		Machine:           name,
		HPLFlopsPerSec:    hpl,
		StreamBytesPerSec: streamBps,
		GUPSRefsPerSec:    gups,
		MAPSUnit:          curve(streamBps / 8),
		MAPSRandom:        curve(gups),
		DepUnit:           curve(streamBps / 16),
		DepRandom:         curve(gups / 2),
		Net: probes.NetResults{
			LatencySeconds: 5e-6, BandwidthBytesPerSec: 300e6, AllReduce8At64: 50e-6,
		},
		OverlapFraction: 0.7,
	}
}

func fakeTrace() *trace.Trace {
	return &trace.Trace{
		App: "fake", Case: "t", Procs: 32, BaseSystem: "base",
		Blocks: []trace.BlockTrace{
			{
				Name: "b", Iters: 1e6, FlopsPerIter: 40, MemOpsPerIter: 16,
				Mix:             access.Mix{Unit: 0.8, Random: 0.2},
				WorkingSetBytes: 16 << 20,
			},
		},
	}
}

func TestAllNineMetrics(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("%d metrics", len(all))
	}
	wantKinds := []Kind{Simple, Simple, Simple, Predictive, Predictive, Predictive, Predictive, Predictive, Predictive}
	for i, m := range all {
		if m.ID != i+1 {
			t.Errorf("metric %d has ID %d", i, m.ID)
		}
		if m.Kind != wantKinds[i] {
			t.Errorf("metric %d kind %v", m.ID, m.Kind)
		}
	}
}

func TestByID(t *testing.T) {
	m, err := ByID(6)
	if err != nil || m.Name != "HPL+STREAM+GUPS" {
		t.Fatalf("ByID(6) = %+v, %v", m, err)
	}
	if _, err := ByID(10); err == nil {
		t.Fatal("ByID(10) accepted")
	}
}

func TestLabels(t *testing.T) {
	m1, _ := ByID(1)
	m9, _ := ByID(9)
	if m1.Label() != "1-S" || m9.Label() != "9-P" {
		t.Fatalf("labels %s %s", m1.Label(), m9.Label())
	}
}

func TestSimpleMetricEquationOne(t *testing.T) {
	// Target twice as fast on the benchmark -> half the predicted time.
	base := fakeProbes("base", 2e9, 1e9, 10e6)
	target := fakeProbes("tgt", 4e9, 1e9, 10e6)
	m, _ := ByID(1)
	pred, err := m.Predict(Context{Base: base, Target: target, BaseSeconds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-500) > 1e-9 {
		t.Fatalf("HPL-doubled prediction = %g, want 500", pred)
	}
}

func TestMetric4EqualsMetric1(t *testing.T) {
	// The paper's sanity check: the convolver with FP-only rates reduces
	// exactly to the HPL ratio.
	tr := fakeTrace()
	base := fakeProbes("base", 2e9, 1e9, 10e6)
	target := fakeProbes("tgt", 3.1e9, 0.7e9, 6e6)
	m1, _ := ByID(1)
	m4, _ := ByID(4)
	ctx := Context{Trace: tr, Base: base, Target: target, BaseSeconds: 1234}
	p1, err := m1.Predict(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := m4.Predict(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p4) > 1e-9*p1 {
		t.Fatalf("metric 4 (%g) != metric 1 (%g)", p4, p1)
	}
}

func TestIdenticalMachinesPredictBaseTime(t *testing.T) {
	tr := fakeTrace()
	base := fakeProbes("base", 2e9, 1e9, 10e6)
	target := fakeProbes("tgt", 2e9, 1e9, 10e6)
	for _, m := range All() {
		pred, err := m.Predict(Context{Trace: tr, Base: base, Target: target, BaseSeconds: 777})
		if err != nil {
			t.Fatalf("%s: %v", m.Label(), err)
		}
		if math.Abs(pred-777) > 1e-9 {
			t.Errorf("%s: identical machines predict %g, want 777", m.Label(), pred)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	tr := fakeTrace()
	base := fakeProbes("base", 2e9, 1e9, 10e6)
	target := fakeProbes("tgt", 2e9, 1e9, 10e6)
	m6, _ := ByID(6)
	if _, err := m6.Predict(Context{Base: base, Target: target, BaseSeconds: 10}); err == nil {
		t.Error("predictive metric without trace accepted")
	}
	if _, err := m6.Predict(Context{Trace: tr, Target: target, BaseSeconds: 10}); err == nil {
		t.Error("missing base probes accepted")
	}
	if _, err := m6.Predict(Context{Trace: tr, Base: base, Target: target, BaseSeconds: 0}); err == nil {
		t.Error("zero base time accepted")
	}
	m1, _ := ByID(1)
	broken := fakeProbes("tgt", 0, 1e9, 10e6)
	if _, err := m1.Predict(Context{Base: base, Target: broken, BaseSeconds: 10}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSignedError(t *testing.T) {
	if got := SignedError(150, 100); got != 50 {
		t.Errorf("SignedError(150,100) = %g", got)
	}
	if got := SignedError(50, 100); got != -50 {
		t.Errorf("SignedError(50,100) = %g", got)
	}
}

func TestKindString(t *testing.T) {
	if Simple.String() != "S" || Predictive.String() != "P" {
		t.Fatal("Kind.String wrong")
	}
}

// --- Balanced rating ---

func pool() []*probes.Results {
	return []*probes.Results{
		fakeProbes("a", 4e9, 1e9, 10e6),
		fakeProbes("b", 2e9, 2e9, 20e6),
		fakeProbes("c", 1e9, 0.5e9, 5e6),
	}
}

func TestRatingScoresWithinUnit(t *testing.T) {
	r, err := NewRating(pool(), EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pool() {
		s := r.Score(pr)
		if s <= 0 || s > 1.0001 {
			t.Errorf("%s score %g outside (0,1]", pr.Machine, s)
		}
	}
}

func TestRatingPredictRatio(t *testing.T) {
	p := pool()
	r, err := NewRating(p, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	// Identical base and target must predict the base time.
	pred, err := r.Predict(p[0], p[0], 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-500) > 1e-9 {
		t.Fatalf("identical rating prediction %g", pred)
	}
}

func TestNewRatingErrors(t *testing.T) {
	if _, err := NewRating(nil, EqualWeights); err == nil {
		t.Error("empty pool accepted")
	}
	degenerate := []*probes.Results{fakeProbes("x", 0, 0, 0)}
	if _, err := NewRating(degenerate, EqualWeights); err == nil {
		t.Error("degenerate pool accepted")
	}
}

func TestOptimizeRatingFindsBetterWeights(t *testing.T) {
	p := pool()
	base := p[0]
	// Construct observations in which machine b (memory-strong) is truly
	// 2x faster than base: optimal weights should then emphasize memory.
	obs := []RatingObservation{
		{Base: base, Target: p[1], BaseSeconds: 1000, ActualSeconds: 500},
		{Base: base, Target: p[2], BaseSeconds: 1000, ActualSeconds: 2000},
	}
	w, val, err := OptimizeRating(p, obs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := NewRating(p, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	var fixedErrs []float64
	for _, o := range obs {
		pred, err := fixed.Predict(o.Base, o.Target, o.BaseSeconds)
		if err != nil {
			t.Fatal(err)
		}
		fixedErrs = append(fixedErrs, SignedError(pred, o.ActualSeconds))
	}
	fixedVal := stats.Summarize(fixedErrs).MeanAbs
	if val > fixedVal+1e-9 {
		t.Fatalf("optimized weights %v (%.1f%%) worse than fixed (%.1f%%)", w, val, fixedVal)
	}
}

func TestOptimizeRatingNeedsObservations(t *testing.T) {
	if _, _, err := OptimizeRating(pool(), nil, 0.1); err == nil {
		t.Fatal("no observations accepted")
	}
}
