package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %g", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev(single) = %g", got)
	}
	// Known value: sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %g, want ~2.138", got)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-3, 3, -6, 6}); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("MeanAbs = %g, want 4.5", got)
	}
	if got := MeanAbs(nil); got != 0 {
		t.Errorf("MeanAbs(nil) = %g", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{-10, 10, -20, 20})
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.MeanAbs, 15, 1e-12) {
		t.Errorf("MeanAbs = %g, want 15", s.MeanAbs)
	}
	// abs errors are {10,10,20,20}: sample stddev = 5.7735.
	if !almostEqual(s.StdAbs, 5.7735, 1e-3) {
		t.Errorf("StdAbs = %g, want ~5.77", s.StdAbs)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
	x, err := Solve([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Fatalf("solution = %v, want [2 1]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	x, err := Solve([][]float64{{0, 1}, {1, 0}}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 4, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("solution = %v, want [4 3]", x)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := Solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Solve([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 3a + 2b with no noise must be recovered exactly.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{3, 2, 5, 8}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 3, 1e-9) || !almostEqual(beta[1], 2, 1e-9) {
		t.Fatalf("beta = %v, want [3 2]", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

// Property: least-squares residuals are orthogonal to every column of X.
func TestQuickLeastSquaresResidualOrthogonality(t *testing.T) {
	f := func(raw [12]int8, noise [6]int8) bool {
		x := make([][]float64, 6)
		y := make([]float64, 6)
		for i := 0; i < 6; i++ {
			x[i] = []float64{float64(raw[2*i]), float64(raw[2*i+1])}
			y[i] = 2*x[i][0] - x[i][1] + float64(noise[i])/10
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return true // singular design matrices are fine to reject
		}
		for col := 0; col < 2; col++ {
			var dot float64
			for i := range x {
				resid := y[i] - beta[0]*x[i][0] - beta[1]*x[i][1]
				dot += resid * x[i][col]
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve returns x with a·x = b.
func TestQuickSolveSatisfiesSystem(t *testing.T) {
	f := func(raw [9]int8, braw [3]int8) bool {
		a := make([][]float64, 3)
		b := make([]float64, 3)
		for i := 0; i < 3; i++ {
			a[i] = []float64{float64(raw[3*i]), float64(raw[3*i+1]), float64(raw[3*i+2])}
			b[i] = float64(braw[i])
		}
		x, err := Solve(a, b)
		if err != nil {
			return true // singular: acceptable
		}
		for i := 0; i < 3; i++ {
			var sum float64
			for j := 0; j < 3; j++ {
				sum += a[i][j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeSimplex3(t *testing.T) {
	// Objective minimized at w = (0, 0.5, 0.5).
	target := Weights3{0, 0.5, 0.5}
	obj := func(w Weights3) float64 {
		var d float64
		for i := range w {
			d += (w[i] - target[i]) * (w[i] - target[i])
		}
		return d
	}
	w, v, err := OptimizeSimplex3(0.05, obj)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-9 {
		t.Fatalf("optimum value %g at %v, want 0 at %v", v, w, target)
	}
	for i := range w {
		if !almostEqual(w[i], target[i], 1e-9) {
			t.Fatalf("weights %v, want %v", w, target)
		}
	}
}

func TestOptimizeSimplex3StaysOnSimplex(t *testing.T) {
	count := 0
	_, _, err := OptimizeSimplex3(0.1, func(w Weights3) float64 {
		count++
		sum := w[0] + w[1] + w[2]
		if !almostEqual(sum, 1, 1e-9) || w[0] < 0 || w[1] < 0 || w[2] < 0 {
			t.Fatalf("off-simplex point %v", w)
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	// Grid with step 0.1: C(12,2) = 66 points.
	if count != 66 {
		t.Fatalf("visited %d grid points, want 66", count)
	}
}

func TestOptimizeSimplex3BadStep(t *testing.T) {
	if _, _, err := OptimizeSimplex3(0, func(Weights3) float64 { return 0 }); err == nil {
		t.Error("step 0 accepted")
	}
	if _, _, err := OptimizeSimplex3(2, func(Weights3) float64 { return 0 }); err == nil {
		t.Error("step 2 accepted")
	}
}

func TestAbsSlice(t *testing.T) {
	got := AbsSlice([]float64{-1, 2, -3})
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AbsSlice = %v, want %v", got, want)
		}
	}
}
