package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed: x={1,2,3}, y={1,3,2} -> r = 0.5.
	r, err := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("r = %g, want 0.5", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has rank correlation exactly 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 1000, 100000} // nonlinear but monotone
	r, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("rho = %g, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get midranks; this known case has rho ~0.866.
	x := []float64{1, 2, 2, 4}
	y := []float64{10, 20, 30, 40}
	r, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0.8 || r > 1 {
		t.Fatalf("rho = %g, want ~0.87", r)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
	tied := ranks([]float64{5, 5, 1})
	if tied[0] != 2.5 || tied[1] != 2.5 || tied[2] != 1 {
		t.Fatalf("tied ranks = %v", tied)
	}
}

// Property: correlation is symmetric and within [-1, 1].
func TestQuickPearsonBoundsAndSymmetry(t *testing.T) {
	f := func(raw [8]int8) bool {
		x := make([]float64, 4)
		y := make([]float64, 4)
		for i := 0; i < 4; i++ {
			x[i], y[i] = float64(raw[i]), float64(raw[4+i])
		}
		rxy, err1 := Pearson(x, y)
		ryx, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return true // degenerate inputs are allowed to error
		}
		return math.Abs(rxy-ryx) < 1e-12 && rxy >= -1-1e-12 && rxy <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Spearman is invariant under strictly increasing transforms.
func TestQuickSpearmanTransformInvariance(t *testing.T) {
	f := func(raw [5]int8) bool {
		x := make([]float64, 5)
		seen := map[float64]bool{}
		for i := range x {
			x[i] = float64(raw[i])
			seen[x[i]] = true
		}
		if len(seen) < 2 {
			return true
		}
		y := make([]float64, 5)
		for i := range y {
			y[i] = math.Exp(x[i] / 32)
		}
		r, err := Spearman(x, y)
		if err != nil {
			return true
		}
		return math.Abs(r-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
