// Package stats provides the small numerical toolkit the study needs:
// summary statistics over error samples, dense least squares (for the
// regression-optimized balanced rating), and a simplex grid search for
// weight optimization under a sum-to-one constraint.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator); zero for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanAbs returns the mean of absolute values.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// AbsSlice returns |x| element-wise.
func AbsSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}

// Summary is the (mean |error|, standard deviation of |error|) pair the
// paper reports per metric.
type Summary struct {
	N       int
	MeanAbs float64
	StdAbs  float64
}

// Summarize computes the paper's error aggregation over signed errors.
func Summarize(signedErrors []float64) Summary {
	abs := AbsSlice(signedErrors)
	return Summary{N: len(abs), MeanAbs: Mean(abs), StdAbs: StdDev(abs)}
}

// Solve solves the square system a·x = b by Gaussian elimination with
// partial pivoting. It mutates copies, not the inputs.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("stats: dimension mismatch")
	}
	// Copy into an augmented matrix.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append(append(make([]float64, 0, n+1), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, errors.New("stats: singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// LeastSquares fits y ≈ X·beta by the normal equations. X is row-major
// (one row per observation).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, errors.New("stats: dimension mismatch")
	}
	p := len(x[0])
	if p == 0 || n < p {
		return nil, fmt.Errorf("stats: %d observations cannot fit %d parameters", n, p)
	}
	xtx := make([][]float64, p)
	xty := make([]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	for r := 0; r < n; r++ {
		if len(x[r]) != p {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", r, len(x[r]), p)
		}
		for i := 0; i < p; i++ {
			xty[i] += x[r][i] * y[r]
			for j := 0; j < p; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	return Solve(xtx, xty)
}

// Weights3 is a point on the 3-simplex (non-negative, sums to one).
type Weights3 [3]float64

// OptimizeSimplex3 minimizes the objective over the 3-simplex with a grid
// of the given step (e.g. 0.05), returning the best weights and objective
// value. This is how the study finds the error-minimizing balanced-rating
// weights (the paper reports 5%/50%/45%).
func OptimizeSimplex3(step float64, objective func(Weights3) float64) (Weights3, float64, error) {
	if step <= 0 || step > 1 {
		return Weights3{}, 0, fmt.Errorf("stats: bad step %g", step)
	}
	steps := int(math.Round(1 / step))
	best := Weights3{1, 0, 0}
	bestVal := math.Inf(1)
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps-i; j++ {
			k := steps - i - j
			w := Weights3{float64(i) / float64(steps), float64(j) / float64(steps), float64(k) / float64(steps)}
			if v := objective(w); v < bestVal {
				best, bestVal = w, v
			}
		}
	}
	return best, bestVal, nil
}
