package stats_test

import (
	"fmt"

	"hpcmetrics/internal/stats"
)

// ExampleSummarize shows the paper's error aggregation: signed Equation 2
// errors in, mean and standard deviation of |error| out.
func ExampleSummarize() {
	signed := []float64{-20, 30, -10, 40}
	s := stats.Summarize(signed)
	fmt.Printf("n=%d mean=%.0f%%\n", s.N, s.MeanAbs)
	// Output:
	// n=4 mean=25%
}

// ExampleOptimizeSimplex3 shows the balanced-rating weight search.
func ExampleOptimizeSimplex3() {
	// Pretend the best achievable weighting is all-memory.
	objective := func(w stats.Weights3) float64 {
		return (w[0])*(w[0]) + (1-w[1])*(1-w[1]) + w[2]*w[2]
	}
	w, _, err := stats.OptimizeSimplex3(0.25, objective)
	if err != nil {
		panic(err)
	}
	fmt.Printf("weights: %.2f %.2f %.2f\n", w[0], w[1], w[2])
	// Output:
	// weights: 0.00 1.00 0.00
}

// ExampleSpearman shows rank correlation for the system-ranking question.
func ExampleSpearman() {
	hplScores := []float64{1.2, 4.4, 2.0, 6.8}
	appTimes := []float64{9000, 2000, 7000, 1500} // faster machine, lower time
	rho, err := stats.Spearman(hplScores, appTimes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho = %.0f\n", rho)
	// Output:
	// rho = -1
}
