package stats

import (
	"errors"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient of
// two equal-length samples. It errors on mismatched lengths, fewer than
// two points, or zero variance in either sample.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: correlation length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0, errors.New("stats: correlation needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks assigns average ranks (1-based), resolving ties by midrank.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		// Midranking needs exact equality: a tie is "the sort could not
		// separate them", not "they are within an epsilon".
		for ; j+1 < n; j++ {
			//hpclint:ignore floatcmp rank ties are defined by exact equality
			if xs[idx[j+1]] != xs[idx[i]] {
				break
			}
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Spearman returns the Spearman rank correlation coefficient — the
// Pearson correlation of the two samples' ranks, robust to monotone
// nonlinearity. The paper's ranking question ("system X is 50% faster
// than Y for application Z") is exactly a rank question.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: correlation length mismatch")
	}
	if len(x) < 2 {
		return 0, errors.New("stats: correlation needs at least two points")
	}
	return Pearson(ranks(x), ranks(y))
}
