package convolve

import (
	"math"
	"testing"
	"testing/quick"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/trace"
)

// fakeProbes builds a synthetic probe suite with controllable rates.
func fakeProbes(name string, hpl, streamBps, gups float64) *probes.Results {
	curve := func(rate float64) probes.Curve {
		return probes.Curve{
			SizesBytes: []int64{8 << 10, 1 << 20, 64 << 20},
			RefsPerSec: []float64{rate * 4, rate * 2, rate},
		}
	}
	return &probes.Results{
		Machine:           name,
		HPLFlopsPerSec:    hpl,
		StreamBytesPerSec: streamBps,
		GUPSRefsPerSec:    gups,
		MAPSUnit:          curve(streamBps / 8),
		MAPSRandom:        curve(gups),
		DepUnit:           curve(streamBps / 16),
		DepRandom:         curve(gups / 2),
		Net: probes.NetResults{
			LatencySeconds:       5e-6,
			BandwidthBytesPerSec: 300e6,
			AllReduce8At64:       50e-6,
		},
		OverlapFraction: 0.7,
	}
}

func fakeTrace() *trace.Trace {
	return &trace.Trace{
		App: "fake", Case: "test", Procs: 64, BaseSystem: "base",
		Blocks: []trace.BlockTrace{
			{
				Name: "hot", Iters: 1e6, FlopsPerIter: 50, MemOpsPerIter: 20,
				Mix:             access.Mix{Unit: 0.7, Short: 0.1, Random: 0.2},
				WorkingSetBytes: 32 << 20,
			},
			{
				Name: "rec", Iters: 5e5, FlopsPerIter: 30, MemOpsPerIter: 10,
				Mix:             access.Mix{Unit: 0.9, Random: 0.1},
				WorkingSetBytes: 256 << 10,
				ILPLimited:      true,
			},
		},
		Comm: []netsim.Event{
			{Op: netsim.OpPointToPoint, Bytes: 16 << 10, Count: 1000},
			{Op: netsim.OpAllReduce, Bytes: 8, Count: 500},
			{Op: netsim.OpBcast, Bytes: 4096, Count: 50},
			{Op: netsim.OpBarrier, Count: 20},
			{Op: netsim.OpAllToAll, Bytes: 1024, Count: 5},
		},
	}
}

func TestMemNoneUsesOnlyFlops(t *testing.T) {
	tr := fakeTrace()
	pr := fakeProbes("x", 2e9, 1e9, 10e6)
	pred, err := Predict(tr, pr, Options{Memory: MemNone})
	if err != nil {
		t.Fatal(err)
	}
	wantFP := (50*1e6 + 30*5e5) / 2e9
	// With no memory term, block time = FP time (overlap with zero is
	// still fpTime + 0.3*0).
	if math.Abs(pred.ComputeSeconds-wantFP) > 1e-12 {
		t.Fatalf("compute = %g, want %g", pred.ComputeSeconds, wantFP)
	}
	if pred.CommSeconds != 0 {
		t.Fatal("network term present without Network option")
	}
}

func TestMemoryModelsOrdering(t *testing.T) {
	// With GUPS far slower than STREAM, pricing random refs at GUPS
	// (MemStreamGups) must predict more time than pricing all at STREAM.
	tr := fakeTrace()
	pr := fakeProbes("x", 2e9, 1e9, 5e6)
	stream, err := Predict(tr, pr, Options{Memory: MemStream})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Predict(tr, pr, Options{Memory: MemStreamGups})
	if err != nil {
		t.Fatal(err)
	}
	if sg.Seconds <= stream.Seconds {
		t.Fatalf("stream+gups %g not above stream-only %g", sg.Seconds, stream.Seconds)
	}
}

func TestMAPSUsesWorkingSetResolution(t *testing.T) {
	// The small-working-set block must be priced at a faster rate under
	// MemMAPS than under MemStreamGups (whose rates are main-memory).
	tr := fakeTrace()
	pr := fakeProbes("x", 2e9, 1e9, 5e6)
	coarse, err := Predict(tr, pr, Options{Memory: MemStreamGups})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Predict(tr, pr, Options{Memory: MemMAPS})
	if err != nil {
		t.Fatal(err)
	}
	// Block "rec" (256KB) sits on the fast end of the curve.
	if fine.Blocks[1].MemSeconds >= coarse.Blocks[1].MemSeconds {
		t.Fatalf("MAPS did not speed up the cache-resident block: %g vs %g",
			fine.Blocks[1].MemSeconds, coarse.Blocks[1].MemSeconds)
	}
}

func TestDependencyCurvesSlowFlaggedBlocks(t *testing.T) {
	tr := fakeTrace()
	pr := fakeProbes("x", 2e9, 1e9, 5e6)
	std, err := Predict(tr, pr, Options{Memory: MemMAPS})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Predict(tr, pr, Options{Memory: MemMAPSDependency})
	if err != nil {
		t.Fatal(err)
	}
	// Unflagged block unchanged; flagged block slower.
	if dep.Blocks[0].MemSeconds != std.Blocks[0].MemSeconds {
		t.Fatal("dependency model changed an unflagged block")
	}
	if dep.Blocks[1].MemSeconds <= std.Blocks[1].MemSeconds {
		t.Fatal("dependency model did not slow the flagged block")
	}
}

func TestNetworkTerm(t *testing.T) {
	tr := fakeTrace()
	pr := fakeProbes("x", 2e9, 1e9, 10e6)
	with, err := Predict(tr, pr, Options{Memory: MemMAPS, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.CommSeconds <= 0 {
		t.Fatal("no communication time")
	}
	// Single-rank job communicates for free.
	tr1 := fakeTrace()
	tr1.Procs = 1
	single, err := Predict(tr1, pr, Options{Memory: MemMAPS, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	if single.CommSeconds != 0 {
		t.Fatalf("1-rank comm = %g", single.CommSeconds)
	}
}

func TestPredictErrors(t *testing.T) {
	tr := fakeTrace()
	pr := fakeProbes("x", 2e9, 1e9, 10e6)
	if _, err := Predict(nil, pr, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Predict(tr, nil, Options{}); err == nil {
		t.Error("nil probes accepted")
	}
	bad := fakeProbes("x", 0, 1e9, 10e6)
	if _, err := Predict(tr, bad, Options{}); err == nil {
		t.Error("missing HPL accepted")
	}
	noStream := fakeProbes("x", 2e9, 0, 10e6)
	if _, err := Predict(tr, noStream, Options{Memory: MemStream}); err == nil {
		t.Error("missing STREAM accepted")
	}
	if _, err := Predict(tr, noStream, Options{Memory: MemStreamGups}); err == nil {
		t.Error("missing STREAM accepted for stream+gups")
	}
	noCurves := fakeProbes("x", 2e9, 1e9, 10e6)
	noCurves.MAPSUnit = probes.Curve{}
	if _, err := Predict(tr, noCurves, Options{Memory: MemMAPS}); err == nil {
		t.Error("missing curves accepted")
	}
	if _, err := Predict(tr, pr, Options{Memory: MemoryModel(42)}); err == nil {
		t.Error("unknown memory model accepted")
	}
}

func TestMemoryModelString(t *testing.T) {
	names := map[MemoryModel]string{
		MemNone: "none", MemStream: "stream", MemStreamGups: "stream+gups",
		MemMAPS: "maps", MemMAPSDependency: "maps+dep", MemoryModel(42): "memorymodel(42)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

// Property: doubling every probe rate exactly halves the predicted compute
// time (scale invariance — the property that makes Metric #4 reduce to
// Metric #1).
func TestQuickScaleInvariance(t *testing.T) {
	tr := fakeTrace()
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%20) + 2
		base := fakeProbes("a", 2e9, 1e9, 10e6)
		scaled := fakeProbes("b", 2e9*scale, 1e9*scale, 10e6*scale)
		p1, err := Predict(tr, base, Options{Memory: MemStreamGups})
		if err != nil {
			return false
		}
		p2, err := Predict(tr, scaled, Options{Memory: MemStreamGups})
		if err != nil {
			return false
		}
		return math.Abs(p2.Seconds*scale-p1.Seconds) < 1e-9*p1.Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: predicted time is monotone non-increasing in any single rate.
func TestQuickMonotoneInRates(t *testing.T) {
	tr := fakeTrace()
	f := func(hplQ, streamQ, gupsQ uint8) bool {
		hpl := (float64(hplQ) + 1) * 1e8
		stream := (float64(streamQ) + 1) * 1e8
		gups := (float64(gupsQ) + 1) * 1e5
		p1, err := Predict(tr, fakeProbes("a", hpl, stream, gups), Options{Memory: MemStreamGups})
		if err != nil {
			return false
		}
		p2, err := Predict(tr, fakeProbes("b", hpl*2, stream, gups), Options{Memory: MemStreamGups})
		if err != nil {
			return false
		}
		return p2.Seconds <= p1.Seconds+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
