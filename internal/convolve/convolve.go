// Package convolve reimplements the MetaSim Convolver, the paper's core
// prediction machinery.
//
// The convolver combines an application trace (per-basic-block operation
// counts, stride-classified memory references, working sets, ILP flags,
// and an MPI event profile — all gathered once on the base system) with a
// target machine's probe results (HPL, STREAM, GUPS, MAPS curves,
// ENHANCED MAPS curves, NETBENCH). For every basic block it divides
// operation counts by the corresponding operation rates, combines the
// per-type times with an overlap model, and sums over blocks; a network
// term prices the traced MPI events from NETBENCH's latency and bandwidth.
//
// Which rates the convolver may use is the study's independent variable:
// Options selects the memory-rate resolution (none / STREAM / STREAM+GUPS
// / MAPS / MAPS+dependency curves) and whether the network term is
// included, which realizes the paper's predictive Metrics #4 through #9.
//
// Deliberately, the convolver sees nothing else: no cache geometry, no
// contention model, no load imbalance. Its error against the ground-truth
// executor is the honest gap the paper measures.
package convolve

import (
	"context"
	"fmt"
	"math"

	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/trace"
)

// MemoryModel selects the memory-rate resolution available to the
// convolver.
type MemoryModel int

const (
	// MemNone ignores memory operations (Metric #4).
	MemNone MemoryModel = iota
	// MemStream prices every reference at the STREAM rate (Metric #5).
	MemStream
	// MemStreamGups prices strided references at STREAM and random
	// references at GUPS (Metric #6).
	MemStreamGups
	// MemMAPS prices references from the MAPS curves at the block's
	// working-set size (Metrics #7 and #8).
	MemMAPS
	// MemMAPSDependency is MemMAPS with ENHANCED MAPS curves for blocks
	// the static analyzer flagged ILP-limited (Metric #9).
	MemMAPSDependency
)

// String names the memory model.
func (m MemoryModel) String() string {
	switch m {
	case MemNone:
		return "none"
	case MemStream:
		return "stream"
	case MemStreamGups:
		return "stream+gups"
	case MemMAPS:
		return "maps"
	case MemMAPSDependency:
		return "maps+dep"
	default:
		return fmt.Sprintf("memorymodel(%d)", int(m))
	}
}

// Options selects the transfer function's notional terms.
type Options struct {
	Memory  MemoryModel
	Network bool
}

// BlockPrediction is the convolver's time for one basic block.
type BlockPrediction struct {
	Name       string
	FPSeconds  float64
	MemSeconds float64
	Seconds    float64
}

// Prediction is the convolver's absolute time estimate for one
// (application, machine) pair. The study uses ratios of Predictions
// between target and base machine (Equation 1), so systematic convolver
// bias cancels — which is why Metric #4 reduces exactly to Metric #1.
type Prediction struct {
	App            string
	Case           string
	Procs          int
	Machine        string
	Options        Options
	ComputeSeconds float64
	CommSeconds    float64
	Seconds        float64
	Blocks         []BlockPrediction
}

// Predict convolves the trace with the probe results.
func Predict(tr *trace.Trace, pr *probes.Results, opts Options) (*Prediction, error) {
	return PredictContext(context.Background(), tr, pr, opts)
}

// PredictContext is Predict with tracing: one "convolve" span per call
// when the context carries a tracer, annotated with the (app, machine)
// pair and the transfer-function options.
func PredictContext(ctx context.Context, tr *trace.Trace, pr *probes.Results, opts Options) (*Prediction, error) {
	_, span := obs.StartSpan(ctx, "convolve")
	defer span.End()
	if span != nil && tr != nil && pr != nil {
		span.Annotate("app", tr.ID())
		span.Annotate("machine", pr.Machine)
		span.Annotate("memory", opts.Memory.String())
	}
	if tr == nil || pr == nil {
		return nil, fmt.Errorf("convolve: nil trace or probe results")
	}
	if pr.HPLFlopsPerSec <= 0 {
		return nil, fmt.Errorf("convolve: missing HPL rate for %s", pr.Machine)
	}
	out := &Prediction{
		App: tr.App, Case: tr.Case, Procs: tr.Procs,
		Machine: pr.Machine, Options: opts,
	}
	for i := range tr.Blocks {
		bp, err := predictBlock(&tr.Blocks[i], pr, opts)
		if err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, bp)
		out.ComputeSeconds += bp.Seconds
	}
	if opts.Network {
		out.CommSeconds = commTime(tr.Comm, pr.Net, tr.Procs)
	}
	out.Seconds = out.ComputeSeconds + out.CommSeconds
	return out, nil
}

func predictBlock(bt *trace.BlockTrace, pr *probes.Results, opts Options) (BlockPrediction, error) {
	fpSeconds := bt.FlopsPerIter * bt.Iters / pr.HPLFlopsPerSec

	refs := bt.MemOpsPerIter * bt.Iters
	stridedRefs := refs * (bt.Mix.Unit + bt.Mix.Short)
	randomRefs := refs * bt.Mix.Random

	var memSeconds float64
	switch opts.Memory {
	case MemNone:
		memSeconds = 0
	case MemStream:
		rate := pr.StreamRefsPerSec()
		if rate <= 0 {
			return BlockPrediction{}, fmt.Errorf("convolve: missing STREAM rate for %s", pr.Machine)
		}
		memSeconds = refs / rate
	case MemStreamGups:
		sRate, rRate := pr.StreamRefsPerSec(), pr.GUPSRefsPerSec
		if sRate <= 0 || rRate <= 0 {
			return BlockPrediction{}, fmt.Errorf("convolve: missing STREAM/GUPS rates for %s", pr.Machine)
		}
		memSeconds = stridedRefs/sRate + randomRefs/rRate
	case MemMAPS, MemMAPSDependency:
		unitCurve, randCurve := pr.MAPSUnit, pr.MAPSRandom
		if opts.Memory == MemMAPSDependency && bt.ILPLimited {
			unitCurve, randCurve = pr.DepUnit, pr.DepRandom
		}
		sRate, rRate := unitCurve.At(bt.WorkingSetBytes), randCurve.At(bt.WorkingSetBytes)
		if sRate <= 0 || rRate <= 0 {
			return BlockPrediction{}, fmt.Errorf("convolve: missing MAPS curves for %s", pr.Machine)
		}
		memSeconds = stridedRefs/sRate + randomRefs/rRate
	default:
		return BlockPrediction{}, fmt.Errorf("convolve: unknown memory model %d", opts.Memory)
	}

	seconds := combineOverlap(fpSeconds, memSeconds, pr.OverlapFraction)
	return BlockPrediction{
		Name:       bt.Name,
		FPSeconds:  fpSeconds,
		MemSeconds: memSeconds,
		Seconds:    seconds,
	}, nil
}

// combineOverlap matches the executor's formulation: the longer component
// shows fully, the shorter hides by the machine's overlap capability.
func combineOverlap(a, b, overlap float64) float64 {
	longer, shorter := a, b
	if b > a {
		longer, shorter = b, a
	}
	return longer + (1-overlap)*shorter
}

// commTime prices the traced MPI events with NETBENCH's two parameters —
// a deliberately coarse model (no overhead term, no NIC contention, ideal
// collectives), because that is all the probe reports.
func commTime(events []netsim.Event, net probes.NetResults, procs int) float64 {
	if procs <= 1 {
		return 0
	}
	lat, bw := net.LatencySeconds, net.BandwidthBytesPerSec
	stages := math.Ceil(math.Log2(float64(procs)))
	var total float64
	for _, ev := range events {
		bytes := float64(ev.Bytes)
		var per float64
		switch ev.Op {
		case netsim.OpPointToPoint:
			per = lat + bytes/bw
		case netsim.OpAllReduce, netsim.OpBcast:
			per = stages * (lat + bytes/bw)
		case netsim.OpBarrier:
			per = stages * (lat + 8/bw)
		case netsim.OpAllToAll:
			per = lat + float64(procs-1)*bytes/bw
		}
		total += ev.Count * per
	}
	return total
}
