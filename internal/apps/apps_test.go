package apps

import (
	"reflect"
	"testing"

	"hpcmetrics/internal/access"
)

func TestRegistryMatchesPaper(t *testing.T) {
	reg := Registry()
	if len(reg) != 5 {
		t.Fatalf("registry has %d test cases, want 5", len(reg))
	}
	want := []struct {
		id   string
		cpus []int
	}{
		{"avus-standard", []int{32, 64, 128}},
		{"avus-large", []int{128, 256, 384}},
		{"hycom-standard", []int{59, 96, 124}},
		{"overflow2-standard", []int{32, 48, 64}},
		{"rfcth-standard", []int{16, 32, 64}},
	}
	for i, w := range want {
		if reg[i].ID() != w.id {
			t.Errorf("case %d = %s, want %s", i, reg[i].ID(), w.id)
		}
		if !reflect.DeepEqual(reg[i].CPUCounts, w.cpus) {
			t.Errorf("%s CPU counts = %v, want %v", w.id, reg[i].CPUCounts, w.cpus)
		}
	}
}

// TestDefaultProcs is a regression test: the old default-procs logic
// indexed CPUCounts[1] unconditionally, which panics for a test case
// registering fewer than two counts.
func TestDefaultProcs(t *testing.T) {
	cases := []struct {
		cpus []int
		want int
	}{
		{[]int{32, 64, 128}, 64},
		{[]int{32, 64}, 64},
		{[]int{32}, 32},
	}
	for _, c := range cases {
		tc := TestCase{Name: "x", Case: "y", CPUCounts: c.cpus}
		got, err := tc.DefaultProcs()
		if err != nil {
			t.Fatalf("CPUCounts %v: %v", c.cpus, err)
		}
		if got != c.want {
			t.Errorf("CPUCounts %v: default %d, want %d", c.cpus, got, c.want)
		}
	}
	empty := TestCase{Name: "x", Case: "y"}
	if _, err := empty.DefaultProcs(); err == nil {
		t.Fatal("empty CPUCounts accepted")
	}
}

func TestAllInstancesValidate(t *testing.T) {
	for _, tc := range Registry() {
		for _, procs := range tc.CPUCounts {
			app, err := tc.Instance(procs)
			if err != nil {
				t.Fatalf("%s@%d: %v", tc.ID(), procs, err)
			}
			if app.Procs != procs {
				t.Errorf("%s@%d: instance procs = %d", tc.ID(), procs, app.Procs)
			}
		}
	}
}

func TestInstanceRejectsBadProcs(t *testing.T) {
	tc := Registry()[0]
	if _, err := tc.Instance(0); err == nil {
		t.Fatal("accepted 0 procs")
	}
	if _, err := tc.Instance(-5); err == nil {
		t.Fatal("accepted negative procs")
	}
}

func TestLookup(t *testing.T) {
	tc, err := Lookup("avus", "large")
	if err != nil {
		t.Fatal(err)
	}
	if tc.ID() != "avus-large" {
		t.Fatalf("Lookup = %s", tc.ID())
	}
	// Empty case matches the first registration.
	tc, err = Lookup("avus", "")
	if err != nil {
		t.Fatal(err)
	}
	if tc.ID() != "avus-standard" {
		t.Fatalf("Lookup with empty case = %s", tc.ID())
	}
	if _, err := Lookup("nonesuch", ""); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("Names = %v", names)
	}
}

func TestWorkShrinksWithProcs(t *testing.T) {
	for _, tc := range Registry() {
		small, err := tc.Instance(tc.CPUCounts[0])
		if err != nil {
			t.Fatal(err)
		}
		large, err := tc.Instance(tc.CPUCounts[2])
		if err != nil {
			t.Fatal(err)
		}
		if large.TotalFlops() >= small.TotalFlops() {
			t.Errorf("%s: per-rank flops did not shrink with procs (%g vs %g)",
				tc.ID(), large.TotalFlops(), small.TotalFlops())
		}
		// Strong scaling: total work across ranks roughly constant.
		totSmall := small.TotalFlops() * float64(small.Procs)
		totLarge := large.TotalFlops() * float64(large.Procs)
		if totLarge/totSmall > 1.05 || totLarge/totSmall < 0.95 {
			t.Errorf("%s: total flops not conserved under decomposition: %g vs %g",
				tc.ID(), totSmall, totLarge)
		}
	}
}

func TestWorkingSetsShrinkWithProcs(t *testing.T) {
	tc, _ := Lookup("avus", "standard")
	small, _ := tc.Instance(32)
	large, _ := tc.Instance(128)
	// The flux block's footprint is per-rank and must shrink 4x.
	ratio := float64(small.Blocks[0].Stream.WorkingSetBytes) /
		float64(large.Blocks[0].Stream.WorkingSetBytes)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("working set ratio 32->128 procs = %g, want ~4", ratio)
	}
}

func TestAVUSLargeBiggerThanStandard(t *testing.T) {
	std, _ := Lookup("avus", "standard")
	lg, _ := Lookup("avus", "large")
	a, _ := std.Instance(128)
	b, _ := lg.Instance(128)
	if b.TotalFlops() <= a.TotalFlops() {
		t.Fatal("AVUS large not bigger than standard at equal procs")
	}
}

func TestDependentBlocksPresent(t *testing.T) {
	// The study's Metric #9 story needs recurrence blocks in AVUS, HYCOM,
	// and OVERFLOW2.
	for _, name := range []string{"avus", "hycom", "overflow2"} {
		tc, err := Lookup(name, "")
		if err != nil {
			t.Fatal(err)
		}
		app, err := tc.Instance(tc.CPUCounts[0])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, b := range app.Blocks {
			if b.DependentMemory {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no dependent-memory block", name)
		}
	}
}

func TestBlocksHaveDistinctSeeds(t *testing.T) {
	seen := map[uint64]string{}
	for _, tc := range Registry() {
		app, err := tc.Instance(tc.CPUCounts[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range app.Blocks {
			// Seeds are per (application, block): the two AVUS cases run
			// the same code, so they legitimately share block seeds.
			key := tc.Name + "/" + b.Name
			if prev, dup := seen[b.Stream.Seed]; dup && prev != key {
				t.Errorf("seed collision: %s and %s", prev, key)
			}
			seen[b.Stream.Seed] = key
		}
	}
}

func TestMixesAreValid(t *testing.T) {
	for _, tc := range Registry() {
		app, err := tc.Instance(tc.CPUCounts[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range app.Blocks {
			if err := b.Stream.Mix.Validate(); err != nil {
				t.Errorf("%s/%s: %v", tc.ID(), b.Name, err)
			}
		}
	}
}

func TestHaloShrinksSlowerThanVolume(t *testing.T) {
	// Surface-to-volume: halving the subdomain should cut halo bytes by
	// less than the volume factor.
	tc, _ := Lookup("avus", "standard")
	a, _ := tc.Instance(32)
	b, _ := tc.Instance(128)
	haloA, haloB := a.Comm[0].Bytes, b.Comm[0].Bytes
	volRatio := 4.0
	haloRatio := float64(haloA) / float64(haloB)
	if haloRatio >= volRatio || haloRatio <= 1 {
		t.Fatalf("halo ratio %g not in (1, %g)", haloRatio, volRatio)
	}
}

func TestRFCTHHasLargestImbalance(t *testing.T) {
	var rfcth, others float64
	for _, tc := range Registry() {
		app, _ := tc.Instance(tc.CPUCounts[0])
		if tc.Name == "rfcth" {
			rfcth = app.RuntimeImbalance
		} else if app.RuntimeImbalance > others {
			others = app.RuntimeImbalance
		}
	}
	if rfcth <= others {
		t.Fatalf("AMR imbalance %g not above other apps' max %g", rfcth, others)
	}
}

func TestSeedOfDeterministic(t *testing.T) {
	if seedOf("a", "b") != seedOf("a", "b") {
		t.Fatal("seedOf not deterministic")
	}
	if seedOf("a", "b") == seedOf("b", "a") {
		t.Fatal("seedOf ignores argument order")
	}
}

func TestEOSTableCacheResident(t *testing.T) {
	// RFCTH's EOS lookup tables must stay small regardless of scale — the
	// cache-resident-random behaviour Metric #7 exists to price.
	tc, _ := Lookup("rfcth", "")
	for _, procs := range tc.CPUCounts {
		app, _ := tc.Instance(procs)
		for _, b := range app.Blocks {
			if b.Name == "eos" && b.Stream.WorkingSetBytes > 1<<20 {
				t.Fatalf("eos table %d bytes at %d procs", b.Stream.WorkingSetBytes, procs)
			}
		}
	}
}

func TestStreamsGenerate(t *testing.T) {
	// Every block's stream spec must actually generate.
	for _, tc := range Registry() {
		app, _ := tc.Instance(tc.CPUCounts[1])
		for _, b := range app.Blocks {
			if _, err := access.Generate(b.Stream, 100); err != nil {
				t.Errorf("%s/%s: %v", tc.ID(), b.Name, err)
			}
		}
	}
}
