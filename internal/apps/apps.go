// Package apps defines the five DoD HPCMP TI-05 application test cases of
// the study as workload skeletons: AVUS (standard and large), HYCOM
// standard, OVERFLOW2 standard, and RFCTH standard.
//
// Each skeleton is a set of basic blocks whose per-iteration work, stride
// mixture, working set, and dependency structure follow the code's
// documented character (see DESIGN.md §2), instantiated for a processor
// count by domain decomposition: per-rank iteration counts shrink as
// cells/P, working sets shrink with the subdomain, and halo message sizes
// shrink as surface-to-volume ratios dictate.
//
// Problem sizes match the paper's Section 2: AVUS standard runs 100
// timesteps over 7M cells, AVUS large 150 steps over 24M cells, HYCOM a
// quarter-degree global ocean, OVERFLOW2 600 steps over 30M points, and
// RFCTH an oblique-impact problem with adaptive mesh refinement. Block
// work constants are calibrated so simulated times-to-solution land in the
// range of the paper's Appendix tables.
package apps

import (
	"fmt"
	"math"
	"sort"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/workload"
)

// TestCase names an (application, case) pair and carries the processor
// counts the paper ran it at. CPUCounts is a slice rather than a fixed
// array so custom test cases may register any number of counts.
type TestCase struct {
	Name      string
	Case      string
	CPUCounts []int
	build     func(procs int) *workload.App
}

// ID returns the "name-case" identifier.
func (tc TestCase) ID() string { return tc.Name + "-" + tc.Case }

// DefaultProcs picks the middle registered CPU count — the paper's usual
// reporting point — whatever the list's length, and errors cleanly when a
// test case registers none.
func (tc TestCase) DefaultProcs() (int, error) {
	if len(tc.CPUCounts) == 0 {
		return 0, fmt.Errorf("apps: %s registers no CPU counts; pass -procs explicitly", tc.ID())
	}
	return tc.CPUCounts[len(tc.CPUCounts)/2], nil
}

// Instance builds the workload for the given processor count (which need
// not be one of the paper's three).
func (tc TestCase) Instance(procs int) (*workload.App, error) {
	if procs < 1 {
		return nil, fmt.Errorf("apps: %s: non-positive procs %d", tc.ID(), procs)
	}
	app := tc.build(procs)
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("apps: %s: %w", tc.ID(), err)
	}
	return app, nil
}

// seedOf gives every block a distinct deterministic stream seed.
func seedOf(app, block string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for _, s := range []string{app, "/", block} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}

// surface23 returns the 3D subdomain surface count n^(2/3).
func surface23(n float64) float64 { return math.Pow(n, 2.0/3.0) }

// Registry returns the paper's five test cases in its reporting order.
func Registry() []TestCase {
	return []TestCase{
		{
			Name: "avus", Case: "standard", CPUCounts: []int{32, 64, 128},
			build: func(p int) *workload.App { return buildAVUS("standard", 7_000_000, 100, p) },
		},
		{
			Name: "avus", Case: "large", CPUCounts: []int{128, 256, 384},
			build: func(p int) *workload.App { return buildAVUS("large", 24_000_000, 150, p) },
		},
		{
			Name: "hycom", Case: "standard", CPUCounts: []int{59, 96, 124},
			build: func(p int) *workload.App { return buildHYCOM(p) },
		},
		{
			Name: "overflow2", Case: "standard", CPUCounts: []int{32, 48, 64},
			build: func(p int) *workload.App { return buildOVERFLOW2(p) },
		},
		{
			Name: "rfcth", Case: "standard", CPUCounts: []int{16, 32, 64},
			build: func(p int) *workload.App { return buildRFCTH(p) },
		},
	}
}

// Lookup finds a test case by name and case; an empty case matches the
// first (or only) case registered under the name.
func Lookup(name, caseName string) (TestCase, error) {
	for _, tc := range Registry() {
		if tc.Name == name && (caseName == "" || tc.Case == caseName) {
			return tc, nil
		}
	}
	return TestCase{}, fmt.Errorf("apps: unknown test case %s-%s (have %v)", name, caseName, Names())
}

// Names lists registered test-case identifiers.
func Names() []string {
	var out []string
	for _, tc := range Registry() {
		out = append(out, tc.ID())
	}
	sort.Strings(out)
	return out
}

// buildAVUS models the AFRL unstructured finite-volume CFD code: an
// edge-based flux evaluation with indirect (gather) addressing, an SSOR
// implicit solve whose back-substitution is a memory-carried recurrence,
// a one-equation turbulence model, and gradient reconstruction.
func buildAVUS(caseName string, cells float64, steps float64, procs int) *workload.App {
	n := cells / float64(procs) // cells per rank
	// Implicit sub-iterations per timestep (Newton x SSOR sweeps).
	const subIters = 44
	haloBytes := int64(48 * surface23(n))

	blocks := []workload.Block{
		{
			Name: "flux",
			Work: cpusim.Work{Flops: 200, IntOps: 20, MemOps: 22, Branches: 2, MispredictRate: 0.05, FPChainLen: 4},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(320 * n),
				Mix:              access.Mix{Unit: 0.43, Short: 0.15, Random: 0.42},
				ShortStrideElems: 4,
				StoreFraction:    0.25,
				GatherSpread:     4,
				HotFraction:      0.55,
				Seed:             seedOf("avus", "flux"),
			},
			Iters: n * steps * subIters * 0.40,
		},
		{
			Name: "ssor",
			Work: cpusim.Work{Flops: 56, IntOps: 10, MemOps: 14, FPChainLen: 14},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(208 * n),
				Mix:              access.Mix{Unit: 0.78, Short: 0.12, Random: 0.10},
				ShortStrideElems: 4,
				StoreFraction:    0.30,
				HotFraction:      0.50,
				Seed:             seedOf("avus", "ssor"),
			},
			Iters:           n * steps * subIters * 0.35,
			DependentMemory: true,
		},
		{
			Name: "grad",
			Work: cpusim.Work{Flops: 60, IntOps: 12, MemOps: 12, FPChainLen: 2},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(160 * n),
				Mix:              access.Mix{Unit: 0.45, Short: 0.10, Random: 0.45},
				ShortStrideElems: 2,
				StoreFraction:    0.20,
				GatherSpread:     6,
				HotFraction:      0.45,
				Seed:             seedOf("avus", "grad"),
			},
			Iters: n * steps * subIters * 0.15,
		},
		{
			Name: "turb",
			Work: cpusim.Work{Flops: 44, IntOps: 8, MemOps: 8, Branches: 4, MispredictRate: 0.12, FPChainLen: 3},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(96 * n),
				Mix:              access.Mix{Unit: 0.80, Short: 0.10, Random: 0.10},
				ShortStrideElems: 2,
				StoreFraction:    0.25,
				HotFraction:      0.50,
				Seed:             seedOf("avus", "turb"),
			},
			Iters: n * steps * subIters * 0.10,
		},
	}

	comm := []netsim.Event{
		// Halo exchange with up to six neighbours, twice per sub-iteration.
		{Op: netsim.OpPointToPoint, Bytes: haloBytes, Count: steps * subIters * 6},
		// Residual norms and CFL control.
		{Op: netsim.OpAllReduce, Bytes: 8, Count: steps * 6},
		{Op: netsim.OpAllReduce, Bytes: 64, Count: steps},
	}

	return scaleWork(&workload.App{
		Name: "avus", Case: caseName, Procs: procs,
		Blocks: blocks, Comm: comm, RuntimeImbalance: 1.05,
	}, 12)
}

// buildHYCOM models the hybrid-coordinate ocean code: a memory-bound
// baroclinic update over 26 layers, a vertical mixing/column solve that is
// a short-working-set recurrence (the classic "in cache but slow" loop),
// and a latency-sensitive split-explicit barotropic solver issuing
// frequent small allreduces.
func buildHYCOM(procs int) *workload.App {
	const (
		columns  = 4_400_000 // quarter-degree global ocean surface points
		layers   = 26
		steps    = 160
		substeps = 30 // barotropic substeps per baroclinic step
	)
	n := float64(columns) / float64(procs) // columns per rank
	edge := math.Sqrt(n)                   // 2D decomposition boundary length

	blocks := []workload.Block{
		{
			Name: "baroclinic",
			Work: cpusim.Work{Flops: 175, IntOps: 14, MemOps: 20, FPChainLen: 4},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(620 * n),
				Mix:              access.Mix{Unit: 0.68, Short: 0.22, Random: 0.10},
				ShortStrideElems: 8, // layer-major strides across 3D arrays
				StoreFraction:    0.28,
				HotFraction:      0.55,
				Seed:             seedOf("hycom", "baroclinic"),
			},
			Iters: n * float64(layers) * steps * 0.9,
		},
		{
			Name: "vertmix",
			Work: cpusim.Work{Flops: 64, IntOps: 8, MemOps: 12, FPChainLen: 16},
			Stream: access.StreamSpec{
				WorkingSetBytes:  384 << 10, // a band of active columns
				Mix:              access.Mix{Unit: 0.50, Short: 0.44, Random: 0.06},
				ShortStrideElems: 8,
				StoreFraction:    0.30,
				HotFraction:      0.40,
				Seed:             seedOf("hycom", "vertmix"),
			},
			Iters:           n * float64(layers) * steps * 1.1,
			DependentMemory: true,
		},
		{
			Name: "barotropic",
			Work: cpusim.Work{Flops: 22, IntOps: 5, MemOps: 6, FPChainLen: 2},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(64 * n),
				Mix:              access.Mix{Unit: 0.88, Short: 0.06, Random: 0.06},
				ShortStrideElems: 2,
				StoreFraction:    0.30,
				HotFraction:      0.50,
				Seed:             seedOf("hycom", "barotropic"),
			},
			Iters: n * steps * substeps,
		},
	}

	comm := []netsim.Event{
		{Op: netsim.OpPointToPoint, Bytes: int64(24 * edge * layers), Count: steps * 2 * 4},
		{Op: netsim.OpPointToPoint, Bytes: int64(16 * edge), Count: steps * substeps * 4},
		{Op: netsim.OpAllReduce, Bytes: 8, Count: steps * substeps}, // barotropic CG norms
		{Op: netsim.OpAllReduce, Bytes: 8, Count: steps * 3},
	}

	return scaleWork(&workload.App{
		Name: "hycom", Case: "standard", Procs: procs,
		Blocks: blocks, Comm: comm, RuntimeImbalance: 1.08, // land/ocean mask imbalance
	}, 25)
}

// buildOVERFLOW2 models the overset structured-grid code: a stencil RHS,
// three ADI factor sweeps (the x sweep is the line recurrence; the y and z
// sweeps add plane strides), and overset-boundary interpolation with
// indirect addressing.
func buildOVERFLOW2(procs int) *workload.App {
	const (
		points = 30_000_000
		steps  = 600
	)
	n := float64(points) / float64(procs)
	planeWS := int64(48 * surface23(n)) // active pencils of a sweep
	if planeWS < 64<<10 {
		planeWS = 64 << 10
	}

	adiWork := cpusim.Work{Flops: 70, IntOps: 10, MemOps: 15, FPChainLen: 18}
	blocks := []workload.Block{
		{
			Name: "rhs",
			Work: cpusim.Work{Flops: 270, IntOps: 16, MemOps: 26, FPChainLen: 5},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(350 * n),
				Mix:              access.Mix{Unit: 0.81, Short: 0.11, Random: 0.08},
				ShortStrideElems: 4,
				StoreFraction:    0.22,
				HotFraction:      0.60,
				Seed:             seedOf("overflow2", "rhs"),
			},
			Iters: n * steps,
		},
		{
			Name: "adi_x",
			Work: adiWork,
			Stream: access.StreamSpec{
				WorkingSetBytes:  planeWS,
				Mix:              access.Mix{Unit: 0.88, Short: 0.07, Random: 0.05},
				ShortStrideElems: 2,
				StoreFraction:    0.33,
				HotFraction:      0.50,
				Seed:             seedOf("overflow2", "adi_x"),
			},
			Iters:           n * steps * 1.0,
			DependentMemory: true,
		},
		{
			Name: "adi_y",
			Work: adiWork,
			Stream: access.StreamSpec{
				WorkingSetBytes:  planeWS,
				Mix:              access.Mix{Unit: 0.30, Short: 0.64, Random: 0.06},
				ShortStrideElems: 4,
				StoreFraction:    0.33,
				HotFraction:      0.50,
				Seed:             seedOf("overflow2", "adi_y"),
			},
			Iters:           n * steps * 1.0,
			DependentMemory: true,
		},
		{
			Name: "adi_z",
			Work: adiWork,
			Stream: access.StreamSpec{
				WorkingSetBytes:  planeWS,
				Mix:              access.Mix{Unit: 0.22, Short: 0.68, Random: 0.10},
				ShortStrideElems: 8,
				StoreFraction:    0.33,
				HotFraction:      0.50,
				Seed:             seedOf("overflow2", "adi_z"),
			},
			Iters:           n * steps * 1.0,
			DependentMemory: true,
		},
		{
			Name: "interp",
			Work: cpusim.Work{Flops: 28, IntOps: 14, MemOps: 9, Branches: 2, MispredictRate: 0.1, FPChainLen: 2},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(120 * n),
				Mix:              access.Mix{Unit: 0.25, Short: 0.05, Random: 0.70},
				ShortStrideElems: 2,
				StoreFraction:    0.20,
				GatherSpread:     6,
				HotFraction:      0.40,
				Seed:             seedOf("overflow2", "interp"),
			},
			Iters: n * steps * 0.06,
		},
	}

	comm := []netsim.Event{
		{Op: netsim.OpPointToPoint, Bytes: int64(64 * surface23(n)), Count: steps * 2 * 6},
		{Op: netsim.OpBcast, Bytes: 4096, Count: steps},
		{Op: netsim.OpAllReduce, Bytes: 8, Count: steps * 2},
	}

	return scaleWork(&workload.App{
		Name: "overflow2", Case: "standard", Procs: procs,
		Blocks: blocks, Comm: comm, RuntimeImbalance: 1.10, // overset grid imbalance
	}, 20)
}

// buildRFCTH models the Sandia shock-physics code with adaptive mesh
// refinement: a branch-heavy hydro update, AMR index arithmetic with
// indirect access, equation-of-state table lookups (random access within a
// cache-resident table), and periodic remesh/refinement passes. AMR gives
// it the study's largest load imbalance.
func buildRFCTH(procs int) *workload.App {
	const (
		cells = 5_200_000 // effective refined cells
		steps = 420
	)
	n := float64(cells) / float64(procs)

	blocks := []workload.Block{
		{
			Name: "hydro",
			Work: cpusim.Work{Flops: 190, IntOps: 18, MemOps: 22, Branches: 6, MispredictRate: 0.10, FPChainLen: 5},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(400 * n),
				Mix:              access.Mix{Unit: 0.68, Short: 0.14, Random: 0.18},
				ShortStrideElems: 4,
				StoreFraction:    0.28,
				HotFraction:      0.55,
				Seed:             seedOf("rfcth", "hydro"),
			},
			Iters: n * steps,
		},
		{
			Name: "amr_index",
			Work: cpusim.Work{Flops: 14, IntOps: 34, MemOps: 14, Branches: 8, MispredictRate: 0.18, FPChainLen: 1},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(150 * n),
				Mix:              access.Mix{Unit: 0.26, Short: 0.06, Random: 0.68},
				ShortStrideElems: 2,
				StoreFraction:    0.15,
				GatherSpread:     5,
				HotFraction:      0.35,
				Seed:             seedOf("rfcth", "amr_index"),
			},
			Iters: n * steps * 0.5,
		},
		{
			Name: "eos",
			Work: cpusim.Work{Flops: 56, IntOps: 10, MemOps: 10, Branches: 9, MispredictRate: 0.22, FPChainLen: 6},
			Stream: access.StreamSpec{
				WorkingSetBytes:  96 << 10, // material tables stay cache-resident
				Mix:              access.Mix{Unit: 0.45, Short: 0.05, Random: 0.50},
				ShortStrideElems: 2,
				StoreFraction:    0.05,
				HotFraction:      0.45,
				Seed:             seedOf("rfcth", "eos"),
			},
			Iters: n * steps * 0.8,
		},
		{
			Name: "remesh",
			Work: cpusim.Work{Flops: 34, IntOps: 24, MemOps: 16, Branches: 4, MispredictRate: 0.12, FPChainLen: 2},
			Stream: access.StreamSpec{
				WorkingSetBytes:  int64(260 * n),
				Mix:              access.Mix{Unit: 0.52, Short: 0.18, Random: 0.30},
				ShortStrideElems: 4,
				StoreFraction:    0.30,
				HotFraction:      0.45,
				Seed:             seedOf("rfcth", "remesh"),
			},
			Iters: n * steps * 0.25,
		},
	}

	comm := []netsim.Event{
		{Op: netsim.OpPointToPoint, Bytes: 2048, Count: steps * 40}, // many small AMR boundary messages
		{Op: netsim.OpAllReduce, Bytes: 8, Count: steps * 6},
		{Op: netsim.OpAllToAll, Bytes: 512, Count: float64(steps) / 10}, // periodic rebalancing
	}

	return scaleWork(&workload.App{
		Name: "rfcth", Case: "standard", Procs: procs,
		Blocks: blocks, Comm: comm, RuntimeImbalance: 1.18,
	}, 40)
}

// scaleWork multiplies iteration and communication counts by a constant
// calibration factor so simulated times-to-solution land in the range of
// the paper's appendix tables. Being a single multiplier on both compute
// and communication, it cancels exactly in every prediction ratio.
func scaleWork(app *workload.App, k float64) *workload.App {
	for i := range app.Blocks {
		app.Blocks[i].Iters *= k
	}
	for i := range app.Comm {
		app.Comm[i].Count *= k
	}
	return app
}
