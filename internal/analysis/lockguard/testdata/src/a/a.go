// Package a exercises lockguard: annotated fields accessed with and
// without their guarding mutex held.
package a

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	hits int // guarded by mu
	name string
}

type rwbox struct {
	mu sync.RWMutex
	// guarded by mu
	vals []int
}

func newCounter(name string) *counter {
	return &counter{name: name} // construction: not an access
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.hits++
}

func (c *counter) plainLockSpan() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func (c *counter) bareRead() int {
	return c.n // want `field n is guarded by mu but accessed without holding c.mu`
}

func (c *counter) unguardedField() string {
	return c.name // no annotation: fine
}

func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.hits++ // want `field hits is guarded by mu but accessed without holding c.mu`
}

func (c *counter) oneArmedLock(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `field n is guarded by mu but accessed without holding c.mu on every path`
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) bothArmsLock(b bool) {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

func crossObject(src, dst *counter) {
	src.mu.Lock()
	dst.n = src.n // want `field n is guarded by mu but accessed without holding dst.mu`
	src.mu.Unlock()
}

func (b *rwbox) readLocked() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.vals)
}

func (b *rwbox) readUnlocked() int {
	return len(b.vals) // want `field vals is guarded by mu but accessed without holding b.mu`
}

func (c *counter) literalEscapesLock() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `field n is guarded by mu but accessed without holding c.mu`
	}
}
