// Package clean is the non-flagging fixture: every guarded access holds
// its mutex, and un-annotated structs draw no diagnostics at all.
package clean

import "sync"

type plain struct {
	mu sync.Mutex
	n  int
}

// No annotation anywhere: lockguard has nothing to enforce.
func (p *plain) touch() {
	p.n++
}

type guarded struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (g *guarded) add(d int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n += d
}

func (g *guarded) get() int {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	return v
}
