// Package lockguard enforces `// guarded by <mu>` field annotations.
//
// A struct field whose declaration carries the annotation
//
//	type progressLog struct {
//		mu sync.Mutex
//		w  io.Writer // guarded by mu
//	}
//
// may only be read or written while the named sibling mutex is held on
// every path to the access. Lock state is tracked by the shared CFG-lite
// walker (internal/analysis/cflite): Lock/RLock acquire, Unlock/RUnlock
// release, `defer mu.Unlock()` holds to every return, and branch arms
// merge by intersection — an access is safe only if all paths hold the
// mutex. The mutex is resolved relative to the access: `l.w` demands
// `l.mu` held, `a.b.w` demands `a.b.mu`. Composite-literal construction
// sites are not accesses (the value is not yet shared).
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the lockguard check.
var Analyzer = &framework.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed with that mutex " +
		"held on every path; flags the unguarded access site",
	Run: run,
}

// annotation matches "guarded by <identifier>" in a field comment.
var annotation = regexp.MustCompile(`\bguarded by (\w+)\b`)

func run(pass *framework.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	// Iterating the call graph's nodes (not raw FuncDecls) covers
	// package-level bound function literals — `var f = func() {...}` —
	// which a declaration walk never sees.
	for _, n := range cflite.Graph(pass).Nodes {
		if n.Body() == nil || n.Enclosed {
			continue
		}
		checkFunc(pass, n.Body(), guarded)
	}
	return nil
}

// collectGuarded maps each annotated field object to its guarding mutex
// field name.
func collectGuarded(pass *framework.Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationName(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// annotationName extracts the mutex name from the field's trailing or doc
// comment, or "".
func annotationName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := annotation.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt, guarded map[types.Object]string) {
	w := &cflite.LockWalker{
		OnNode: func(n ast.Node, held map[string]cflite.LockSite) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj := pass.Info.Uses[sel.Sel]
			mu, ok := guarded[obj]
			if !ok {
				return
			}
			base := cflite.Path(sel.X)
			if base == "" {
				// The holder is not a nameable path (e.g. a call result);
				// the walker cannot relate it to a Lock site. Flag it: the
				// access cannot be proven guarded.
				pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but accessed through an untrackable expression", sel.Sel.Name, mu)
				return
			}
			if _, ok := held[base+"."+mu]; !ok {
				pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but accessed without holding %s.%s on every path", sel.Sel.Name, mu, base, mu)
			}
		},
	}
	w.Walk(body)
}
