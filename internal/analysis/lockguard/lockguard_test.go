package lockguard_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "a", "clean")
}
