// Package a exercises the cross-package rules: package b is analyzed
// first and its exported facts flow here.
package a

import (
	"context"

	"crosspkg/b"
)

// sever hands b.Run a fresh root even though a live ctx is in hand; the
// requirement is visible only through b's exported facts (the spawn is
// in b.worker, not b.Run).
func sever(ctx context.Context, n int) int {
	defer func() { _ = ctx.Err() }()
	return b.Run(context.Background(), n) // want `sever passes a fresh context\.Background\(\)/context\.TODO\(\) to b\.Run, which requires a context via crosspkg/b\.worker`
}

// forward passes the live ctx: the same call draws no diagnostic.
func forward(ctx context.Context, n int) int {
	return b.Run(ctx, n)
}

// spawnsDead spawns but its ctx only ever reaches b.Note, which b's
// facts say never consults it — so the ctx is not a cancellation point.
func spawnsDead(ctx context.Context) { // want `spawnsDead spawns a goroutine and takes a context\.Context but never consults it`
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
	b.Note(ctx, "checkpoint")
}

// spawnsLive is the same shape with the ctx forwarded to b.Run, which
// consults it: clean.
func spawnsLive(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Run(ctx, 1)
	}()
	<-done
}
