// Package b is the dependency side of the cross-package fixtures: its
// exported facts (Run transitively requires and consults a ctx, Note
// consults nothing) drive diagnostics in the dependent package a.
package b

import "context"

// Run transitively requires a context: the spawn lives in worker, one
// hop down, so a caller severing cancellation here is only caught
// through exported facts.
func Run(ctx context.Context, n int) int {
	return worker(ctx, n)
}

func worker(ctx context.Context, n int) int {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
	return n
}

// Note receives a ctx and ignores it entirely. The dead parameter is
// flagged here, in its own package — and its exported non-consulting
// fact means handing a ctx to Note does not count as consulting in
// package a either.
func Note(ctx context.Context, msg string) string { // want `Note receives a context\.Context but never consults it`
	return msg
}
