// Package funcfield exercises function-value resolution: a call through
// a function-typed field or variable resolves to a real edge when the
// bound value is unique, and stays conservative when it is ambiguous.
package funcfield

import "context"

func spawny(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
}

func quiet(ctx context.Context) {
	_ = ctx.Err()
}

type handler struct {
	// resolved is assigned exactly once, so calls through it resolve to
	// spawny and the Background sever below is caught.
	resolved func(context.Context)
	// ambiguous has two static candidates; calls through it stay
	// unresolved and draw no interprocedural diagnostics.
	ambiguous func(context.Context)
}

func newHandler() *handler {
	return &handler{resolved: spawny, ambiguous: spawny}
}

func reconfigure(h *handler) {
	h.ambiguous = quiet
}

func dispatchResolved(ctx context.Context, h *handler) {
	h.resolved(context.Background()) // want `dispatchResolved passes a fresh context\.Background\(\)/context\.TODO\(\) to spawny, which spawns a goroutine`
	_ = ctx.Err()
}

func dispatchAmbiguous(ctx context.Context, h *handler) {
	h.ambiguous(context.Background())
	_ = ctx.Err()
}

// tick is a package-level bound literal: a first-class graph node, so
// rule 1 sees its unbounded loop even though no FuncDecl exists.
var tick = func(stop *bool) { // want `tick contains an unbounded loop but takes no context\.Context`
	for !*stop {
	}
}

func useTick(stop *bool) {
	tick(stop)
}
