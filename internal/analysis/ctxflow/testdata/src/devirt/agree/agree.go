// All-agree devirtualization: the receiver holds two possible concrete
// types, so unique-binding resolution is off — but every implementor of
// defs.Doer agrees it requires a context, so the fact still propagates
// through the consensus edge.
package agree

import (
	"context"

	"devirt/agree/defs"
)

func run(ctx context.Context, which bool) {
	var d defs.Doer = &defs.A{}
	if which {
		d = &defs.B{}
	}
	d.Do(context.Background()) // want `run passes a fresh context.Background\(\)/context.TODO\(\) to defs.Do, which requires a context \(every implementor agrees\)`
	<-ctx.Done()
}
