// Package defs declares an interface with two implementors whose
// propagated facts agree: both spawn and consult. Calls through the
// interface may propagate the shared verdict (the all-agree rung).
package defs

import "context"

// Doer has two implementors, A and B.
type Doer interface {
	Do(ctx context.Context)
}

// A spawns and consults.
type A struct{}

func (a *A) Do(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// B also spawns and consults: its facts agree with A's.
type B struct{}

func (b *B) Do(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
