// An interface value escaping to an exported API stays conservative:
// module-wide, impl.Spawner is the only implementor that flows into
// Doer, but Run is exported — a package outside the analyzed set could
// hand it any implementation — so the Background sever below must NOT
// be flagged.
package escape

import (
	"context"

	"devirt/impl"
)

// Doer is implemented by impl.Spawner alone inside the closed world.
type Doer interface {
	Do(ctx context.Context)
}

// Run is exported: its parameter's implementor set is open.
func Run(ctx context.Context, d Doer) {
	d.Do(context.Background())
	<-ctx.Done()
}

func local(ctx context.Context) {
	Run(ctx, &impl.Spawner{})
	<-ctx.Done()
}
