// Unique-binding devirtualization: the receiver is a local with exactly
// one concrete type bound, so x.Do resolves to (*impl.Spawner).Do and
// the cross-package requires fact reaches the call site.
package unique

import (
	"context"

	"devirt/impl"
)

// Doer is the dispatch interface; impl.Spawner is the only type that
// ever flows into it here.
type Doer interface {
	Do(ctx context.Context)
}

func run(ctx context.Context) {
	var d Doer = &impl.Spawner{}
	d.Do(context.Background()) // want `run passes a fresh context.Background\(\)/context.TODO\(\) to impl.Do, which spawns a goroutine`
	<-ctx.Done()
}
