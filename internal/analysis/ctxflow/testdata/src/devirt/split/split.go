// Disagreeing implementors stay conservative: A requires a context and B
// does not, so the Background sever below must NOT be flagged (the
// disagreeing set is recorded as provenance on the calling function, not
// as a diagnostic). No "want" expectations in this file — analysistest
// fails on any unexpected diagnostic, so the absence is what is tested.
package split

import (
	"context"

	"devirt/split/defs"
)

func run(ctx context.Context, which bool) {
	var d defs.Doer = &defs.A{}
	if which {
		d = &defs.B{}
	}
	d.Do(context.Background())
	<-ctx.Done()
}
