// Package defs declares an interface whose two implementors disagree:
// A spawns (requires a context), B merely consults. No verdict may
// propagate through the interface.
package defs

import "context"

// Doer has two disagreeing implementors.
type Doer interface {
	Do(ctx context.Context)
}

// A spawns: it requires a context.
type A struct{}

func (a *A) Do(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// B only consults: it does not require one.
type B struct{}

func (b *B) Do(ctx context.Context) {
	<-ctx.Done()
}
