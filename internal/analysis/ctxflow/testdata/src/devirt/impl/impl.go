// Package impl provides the concrete implementor behind the
// interface-dispatch fixtures: Do spawns, so it (directly) requires a
// context — the fact that must survive devirtualization.
package impl

import "context"

// Spawner is the sole implementor in the unique-resolution fixtures.
type Spawner struct{}

// Do spawns a goroutine and consults its ctx: clean on its own, but a
// caller that severs cancellation before the call must be flagged.
func (s *Spawner) Do(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
