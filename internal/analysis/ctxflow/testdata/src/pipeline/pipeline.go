// Package pipeline sits outside internal/study and internal/simexec:
// the same shapes draw no ctxflow diagnostics here.
package pipeline

import "context"

func spawnNoCtx() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func loopNoCtx(n int) int {
	i := 0
	for i < n {
		i++
	}
	return i
}

// The interprocedural rules are scope-gated too: this Background drop
// would be flagged inside internal/study, but not here.
func spawner(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
}

func dropsBackground(ctx context.Context) error {
	spawner(context.Background())
	return ctx.Err()
}
