// Package pipeline sits outside internal/study and internal/simexec:
// the same shapes draw no ctxflow diagnostics here.
package pipeline

func spawnNoCtx() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func loopNoCtx(n int) int {
	i := 0
	for i < n {
		i++
	}
	return i
}
