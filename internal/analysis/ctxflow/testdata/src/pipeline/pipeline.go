// Package pipeline sits outside the harness packages the analyzer was
// once scoped to; the scope is now module-wide, so the same shapes draw
// the same diagnostics here.
package pipeline

import "context"

func spawnNoCtx() { // want `spawnNoCtx spawns a goroutine but takes no context\.Context`
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func loopNoCtx(n int) int { // want `loopNoCtx contains an unbounded loop but takes no context\.Context`
	i := 0
	for i < n {
		i++
	}
	return i
}

func spawner(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
}

func dropsBackground(ctx context.Context) error {
	spawner(context.Background()) // want `dropsBackground passes a fresh context\.Background\(\)/context\.TODO\(\) to spawner`
	return ctx.Err()
}
