// Interprocedural fixtures: requirements and consultation propagate
// through the package-local call graph, so cancellation dropped at a
// call site — not just at a declaration — is flagged.
package study

import "context"

// spawnWorker is the blessed helper: takes ctx, spawns, consults.
func spawnWorker(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
}

// dispatchBackground severs its caller's cancellation chain: the helper
// it dispatches can never be cancelled through dispatchBackground's ctx.
func dispatchBackground(ctx context.Context) error {
	spawnWorker(context.Background()) // want `dispatchBackground passes a fresh context.Background\(\)/context.TODO\(\) to spawnWorker, which spawns a goroutine`
	return ctx.Err()
}

// mid merely forwards; the requirement propagates through it.
func mid(ctx context.Context) { spawnWorker(ctx) }

// outerTODO drops cancellation two hops from the goroutine: the
// requirement reaches it through mid's fact, not mid's body.
func outerTODO(ctx context.Context) error {
	mid(context.TODO()) // want `outerTODO passes a fresh context.Background\(\)/context.TODO\(\) to mid, which requires a context via spawnWorker`
	return ctx.Err()
}

// runEntry has no ctx of its own: minting the root context here is the
// blessed entry-point shape (study.Run does exactly this). No diagnostic.
func runEntry() {
	mid(context.Background())
}

// orphan requires a context via spawnWorker but offers nowhere to thread
// one. It is not flagged at its own declaration (the spawn is not its
// own), but every ctx-taking caller is flagged for dropping its ctx here.
func orphan() { spawnWorker(context.Background()) }

func dropsCtx(ctx context.Context) error {
	orphan() // want `dropsCtx drops its context calling orphan, which requires a context via spawnWorker but takes none; plumb the ctx through orphan`
	return ctx.Err()
}

// sink ignores its ctx entirely: a dead parameter.
func sink(ctx context.Context, n int) int { // want `sink receives a context.Context but never consults it and passes it nowhere`
	return n * 2
}

// loopsPassingToSink would have passed the old one-function analysis:
// it hands ctx to a callee, but the callee never consults it, so the
// unbounded loop still has no cancellation point.
func loopsPassingToSink(ctx context.Context, n int) int { // want `loopsPassingToSink contains an unbounded loop and takes a context.Context but never consults it`
	i := 0
	for i < n {
		i += sink(ctx, 1)
	}
	return i
}

// dispatcher carries the pool through a named receiver; method calls
// resolve in the call graph like plain functions.
type dispatcher struct{ workers int }

func (d *dispatcher) launch(ctx context.Context) { spawnWorker(ctx) }

func methodBackground(ctx context.Context, d *dispatcher) error {
	d.launch(context.Background()) // want `methodBackground passes a fresh context.Background\(\)/context.TODO\(\) to launch, which requires a context via spawnWorker`
	return ctx.Err()
}

// methodForwards is the clean shape: the receiver's method gets the
// caller's own ctx.
func methodForwards(ctx context.Context, d *dispatcher) {
	d.launch(ctx)
}
