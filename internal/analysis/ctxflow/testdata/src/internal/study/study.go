// Package study mirrors the code shapes of the real parallel harness;
// ctxflow applies because the fixture's import path is internal/study.
package study

import "context"

func work(ctx context.Context, i int) error { return ctx.Err() }

func spawnNoCtx() { // want `spawnNoCtx spawns a goroutine but takes no context.Context`
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func loopNoCtx(n int) int { // want `loopNoCtx contains an unbounded loop but takes no context.Context`
	i := 0
	for i < n {
		i++
	}
	return i
}

func infiniteNoCtx() { // want `infiniteNoCtx contains an unbounded loop but takes no context.Context`
	for {
	}
}

func hasCtxNeverConsults(ctx context.Context) { // want `hasCtxNeverConsults spawns a goroutine and takes a context.Context but never consults it`
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func capturesButIgnores(ctx context.Context) {
	if err := ctx.Err(); err != nil {
		return
	}
	done := make(chan struct{})
	go func() { // want `goroutine captures a context.Context but never consults it`
		keep := ctx
		_ = keep
		close(done)
	}()
	<-done
}

// pool is the blessed worker-pool shape: ctx accepted, every goroutine
// selects on ctx.Done(), dispatch is cancellable.
func pool(ctx context.Context, n int) error {
	jobs := make(chan int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case i, ok := <-jobs:
				if !ok {
					return
				}
				_ = work(ctx, i)
			}
		}
	}()
	for i := 0; i < n; i++ { // bounded: no cancellation point required
		select {
		case <-ctx.Done():
		case jobs <- i:
		}
	}
	close(jobs)
	<-done
	return ctx.Err()
}

// delegates hands ctx to a named worker; cancellation is the callee's job.
func delegates(ctx context.Context) {
	go drain(ctx)
}

func drain(ctx context.Context) {
	<-ctx.Done()
}

// whileWithErrCheck is an unbounded while-loop with an Err cancellation
// point: accepted.
func whileWithErrCheck(ctx context.Context, n int) error {
	i := 0
	for i < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		i++
	}
	return nil
}

// boundedOnly never spawns and loops over a range: no ctx required.
func boundedOnly(xs []int) int {
	var sum int
	for _, x := range xs {
		sum += x
	}
	for i := 0; i < 3; i++ {
		sum += i
	}
	return sum
}
