// Observability fixtures: handing a ctx to internal/obs span helpers is
// forwarding (the parameter is not dead), but it is not consulting —
// starting a span records the phase without wiring cancellation, so a
// spawner whose only ctx use is obs must still select on ctx.Done().
package study

import (
	"context"

	"internal/obs"
)

// tracedPool is the blessed instrumented shape: a span wraps the pool
// and the spawned worker still selects on the (derived) ctx's Done.
func tracedPool(ctx context.Context, n int) error {
	ctx, span := obs.StartSpan(ctx, "pool")
	defer span.End()
	jobs := make(chan int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case i, ok := <-jobs:
				if !ok {
					return
				}
				_ = work(ctx, i)
			}
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
		case jobs <- i:
		}
	}
	close(jobs)
	<-done
	return ctx.Err()
}

// annotates re-roots the obs handle then delegates to a consulting
// worker; the obs call alone would not count, but drain does.
func annotates(ctx context.Context) {
	ctx = obs.Inject(ctx)
	go drain(ctx)
}

// spawnOnlySpan hands its ctx to obs and nothing else: the span records
// the phase but cannot cancel the goroutine, so the spawn is flagged.
func spawnOnlySpan(ctx context.Context) { // want `spawnOnlySpan spawns a goroutine and takes a context.Context but never consults it`
	_, span := obs.StartSpan(ctx, "phase")
	defer span.End()
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
