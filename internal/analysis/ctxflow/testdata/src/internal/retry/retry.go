// Package retry is in ctxflow's scope: a retry loop that cannot be
// cancelled turns every transient failure into a hang.
package retry

import (
	"context"
	"time"
)

func retryUntilNil(op func() error) { // want `retryUntilNil contains an unbounded loop but takes no context.Context`
	for op() != nil {
	}
}

// spinRetry takes a ctx and then ignores it — the capture suggests
// cancellation was intended and dropped.
func spinRetry(ctx context.Context, op func() error) { // want `spinRetry contains an unbounded loop and takes a context.Context but never consults it`
	for op() != nil {
	}
}

// do is the accepted retry shape: a bounded attempt budget, the parent
// checked before each attempt, and a cancellable backoff sleep.
func do(ctx context.Context, attempts int, op func(context.Context) error) error {
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if serr := sleepCtx(ctx, time.Millisecond); serr != nil {
			return serr
		}
	}
	return err
}

// sleepCtx is the cancellable backoff: unconditionally selects on Done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doSevered severs the chain: its caller's ctx can never stop the
// unbounded waiter it delegates to.
func doSevered(ctx context.Context, op func() error) error {
	waitForever(context.Background()) // want `doSevered passes a fresh context.Background\(\)/context.TODO\(\) to waitForever, which contains an unbounded loop`
	return ctx.Err()
}

// waitForever is a cancellable busy-wait: unbounded but consults.
func waitForever(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}
