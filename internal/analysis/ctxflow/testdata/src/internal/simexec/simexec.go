// Package simexec is in ctxflow's scope: the executor must stay
// cancellable now that the harness runs it from a worker pool.
package simexec

import "context"

func retryForever(step func() bool) { // want `retryForever contains an unbounded loop but takes no context.Context`
	for !step() {
	}
}

// execute checks ctx between blocks — the accepted executor shape.
func execute(ctx context.Context, blocks []func()) error {
	for _, b := range blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		b()
	}
	return nil
}
