// Package simexec is in ctxflow's scope: the executor must stay
// cancellable now that the harness runs it from a worker pool.
package simexec

import "context"

func retryForever(step func() bool) { // want `retryForever contains an unbounded loop but takes no context.Context`
	for !step() {
	}
}

// execute checks ctx between blocks — the accepted executor shape.
func execute(ctx context.Context, blocks []func()) error {
	for _, b := range blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		b()
	}
	return nil
}

// spin is a cancellable busy-wait: unbounded, but consults its ctx.
func spin(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

// runSpin severs the chain: its own ctx cannot stop the spin.
func runSpin(ctx context.Context) error {
	spin(context.Background()) // want `runSpin passes a fresh context.Background\(\)/context.TODO\(\) to spin, which contains an unbounded loop`
	return ctx.Err()
}

// executeFresh is the entry-point shape: no ctx of its own to drop.
func executeFresh(blocks []func()) error {
	return execute(context.Background(), blocks)
}
