// Package faults is in ctxflow's scope: an injected stall that ignores
// its context is a hang the per-cell deadline can never reclaim.
package faults

import (
	"context"
	"time"
)

type injector struct{ delay time.Duration }

// faultCtx is the carrier shape: embedding the live ctx in a composite
// literal counts as forwarding, so inject has no dead parameter.
type faultCtx struct {
	context.Context
	in *injector
}

func (in *injector) inject(ctx context.Context) context.Context {
	return &faultCtx{Context: ctx, in: in}
}

// stall is the accepted stall shape: the sleep selects on ctx.Done, so
// a deadline reclaims it.
func (in *injector) stall(ctx context.Context) error {
	t := time.NewTimer(in.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// stallDeaf receives a ctx, never consults it, and passes it nowhere —
// an injected stall no deadline can end.
func stallDeaf(ctx context.Context, d time.Duration) { // want `stallDeaf receives a context.Context but never consults it and passes it nowhere`
	time.Sleep(d)
}

func pollInjector(done func() bool) { // want `pollInjector contains an unbounded loop but takes no context.Context`
	for !done() {
	}
}
