// Package obs mirrors the context-wrapper shapes of the real
// observability layer; ctxflow applies because the fixture's import path
// is internal/obs. The obs-specific call-site rules (forwarding without
// consulting) are exercised from the internal/study fixture's spans.go.
package obs

import "context"

// Span is a recorded phase; the fixture's methods are no-ops.
type Span struct{}

// End finishes the span.
func (s *Span) End() {}

type spanKey struct{}

// wrapCtx is the derived-context shape: it embeds the parent ctx.
type wrapCtx struct {
	context.Context
	span *Span
}

// StartSpan consults the ctx for a parent span and returns a derived
// wrapper: the parameter is consulted and forwarded, so no diagnostic.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	_ = ctx.Value(spanKey{})
	s := &Span{}
	return wrapCtx{Context: ctx, span: s}, s
}

// Inject embeds the ctx in a wrapper literal and returns it; without the
// composite-literal/return forwarding rules this shape would be flagged
// as a dead parameter even though every derived ctx flows through it.
func Inject(ctx context.Context) context.Context {
	return wrapCtx{Context: ctx}
}

// passThrough returns its ctx unchanged: forwarding by return alone.
func passThrough(ctx context.Context) context.Context {
	return ctx
}

// deadParam really does drop its ctx on the floor.
func deadParam(ctx context.Context, n int) int { // want `deadParam receives a context.Context but never consults it and passes it nowhere`
	return n * 2
}
