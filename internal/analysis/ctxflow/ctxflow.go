// Package ctxflow enforces context-cancellation discipline in the
// parallel study harness (internal/study and internal/simexec).
//
// The harness fans the 1,350-prediction grid out over a worker pool; a
// goroutine or unbounded loop there that cannot be cancelled turns every
// caller timeout into a leak and every test failure into a hang. Two
// rules:
//
//  1. A function that spawns a goroutine or contains an unbounded loop
//     (`for {}` / `for cond {}`) must accept a context.Context, and its
//     body must consult it — select on ctx.Done() or check ctx.Err().
//  2. A goroutine whose function literal captures a context.Context but
//     never consults it (no Done/Err/Deadline/Value call, never passed
//     on) is flagged: the capture suggests cancellation was intended and
//     then dropped.
//
// Spawns that delegate by passing ctx to a named function (`go worker(ctx,
// ...)`) satisfy both rules; cancellation handling moves callee-side.
package ctxflow

import (
	"go/ast"
	"strings"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "requires functions in internal/study and internal/simexec that spawn goroutines " +
		"or loop unboundedly to accept a context.Context and consult ctx.Done()/ctx.Err(); " +
		"flags goroutines that capture a ctx without consulting it",
	Run: run,
}

// scoped reports whether the package is one the harness rules apply to.
func scoped(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/study") ||
		strings.Contains(pkgPath, "internal/simexec")
}

func run(pass *framework.Pass) error {
	if !scoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDecl(pass, fd)
		}
	}
	return nil
}

func checkDecl(pass *framework.Pass, fd *ast.FuncDecl) {
	spawns, unbounded := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
			checkSpawn(pass, n)
		case *ast.ForStmt:
			if cflite.Unbounded(n) {
				unbounded = true
			}
		}
		return true
	})
	if !spawns && !unbounded {
		return
	}
	what := "spawns a goroutine"
	if !spawns {
		what = "contains an unbounded loop"
	}
	if len(cflite.CtxParams(pass.Info, fd.Type)) == 0 {
		pass.Reportf(fd.Pos(), "%s %s but takes no context.Context; accept a ctx and select on ctx.Done()", fd.Name.Name, what)
		return
	}
	if !consultsCtx(pass, fd.Body) {
		pass.Reportf(fd.Pos(), "%s %s and takes a context.Context but never consults it; select on ctx.Done() or check ctx.Err()", fd.Name.Name, what)
	}
}

// checkSpawn applies rule 2 to one go statement: a spawned function
// literal that captures a ctx must consult it.
func checkSpawn(pass *framework.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return // go named(ctx, ...): delegation, callee-side rules apply
	}
	if referencesCtx(pass, lit.Body) && !consultsCtx(pass, lit.Body) {
		pass.Reportf(g.Pos(), "goroutine captures a context.Context but never consults it; select on ctx.Done() or drop the capture")
	}
}

// referencesCtx reports whether any context.Context-typed identifier is
// mentioned in n.
func referencesCtx(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pass.Info.Uses[id]; obj != nil && cflite.IsContext(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// consultsCtx reports whether n consults a context: calls Done, Err,
// Deadline, or Value on a ctx-typed expression, or passes a ctx onward as
// a call argument (delegating cancellation to the callee).
func consultsCtx(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Done", "Err", "Deadline", "Value":
				if cflite.IsContext(pass.Info.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if cflite.IsContext(pass.Info.TypeOf(arg)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
