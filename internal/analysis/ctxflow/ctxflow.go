// Package ctxflow enforces context-cancellation discipline in the
// parallel study harness (internal/study and internal/simexec), its
// observability layer (internal/obs), and its robustness layer
// (internal/retry and internal/faults) — retry loops and injected
// stalls are exactly the shapes that turn a missed ctx.Done into a
// hang.
//
// The harness fans the 1,350-prediction grid out over a worker pool; a
// goroutine or unbounded loop there that cannot be cancelled turns every
// caller timeout into a leak and every test failure into a hang. The
// analysis is interprocedural within a package: a call graph (built by
// internal/analysis/cflite) propagates two facts to a fixed point —
// "requires ctx" (spawns a goroutine or loops unboundedly, directly or
// via any callee) and "consults ctx" (calls Done/Err/Deadline/Value, or
// passes a live ctx to a callee that does). Five rules:
//
//  1. A function that directly spawns a goroutine or contains an
//     unbounded loop (`for {}` / `for cond {}`) must accept a
//     context.Context and consult it — where passing ctx to a
//     same-package helper only counts if that helper (transitively)
//     consults it.
//  2. A goroutine whose function literal captures a context.Context but
//     never consults it is flagged: the capture suggests cancellation
//     was intended and then dropped.
//  3. A ctx-taking function that invokes a ctx-requiring callee with a
//     freshly minted context.Background()/context.TODO() is flagged at
//     the call site: the caller's cancellation chain is severed there.
//  4. A ctx-taking function that calls a callee which transitively
//     requires a context but accepts none is flagged at the call site:
//     the caller's ctx is dropped on the floor because the callee offers
//     nowhere to thread it.
//  5. A helper that receives a ctx, never consults it, and passes it
//     nowhere is flagged at its declaration: the parameter is dead.
//
// Functions without a ctx parameter may mint context.Background() —
// that is the blessed entry-point shape (study.Run, simexec.Execute):
// every cancellation chain has to be rooted somewhere.
//
// Observability calls get special treatment on both sides. A live ctx
// passed to an internal/obs function (obs.StartSpan, Obs.Inject) counts
// as forwarding — span helpers are not dead parameters — but not as
// consulting: obs records the ctx's span lineage without wiring
// cancellation through it, so a spawner whose only ctx use is starting a
// span is still flagged. Inside internal/obs itself, returning a live
// ctx or embedding it in a composite literal (the context-wrapper shape
// of Inject and StartSpan) likewise counts as forwarding.
package ctxflow

import (
	"go/ast"
	"strings"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "requires functions in internal/study, internal/simexec, internal/obs, internal/retry, and internal/faults that spawn goroutines " +
		"or loop unboundedly (directly or via same-package callees) to accept a context.Context " +
		"and consult it; flags call sites that sever cancellation with context.Background()/TODO() " +
		"or drop it into ctx-less callees, goroutines that capture a ctx without consulting it, " +
		"and dead ctx parameters",
	Run: run,
}

// scoped reports whether the package is one the harness rules apply to.
func scoped(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/study") ||
		strings.Contains(pkgPath, "internal/simexec") ||
		strings.Contains(pkgPath, "internal/obs") ||
		strings.Contains(pkgPath, "internal/retry") ||
		strings.Contains(pkgPath, "internal/faults")
}

// graphKey keys the propagated call graph in the pass's fact store, so a
// future analyzer interested in the same facts shares one computation.
type graphKey struct{}

func run(pass *framework.Pass) error {
	if !scoped(pass.Pkg.Path()) {
		return nil
	}
	graph := pass.Fact(graphKey{}, func() any {
		g := cflite.BuildCallGraph(pass.Info, pass.Syntax)
		g.Propagate()
		return g
	}).(*cflite.CallGraph)

	for _, node := range graph.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		checkDecl(pass, node)
		checkCallSites(pass, node)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkSpawn(pass, g)
			}
			return true
		})
	}
	return nil
}

// checkDecl applies the declaration rules (1 and 5) to one function.
func checkDecl(pass *framework.Pass, node *cflite.FuncNode) {
	name := node.Name()
	if node.Direct() {
		what := "spawns a goroutine"
		if !node.Spawns {
			what = "contains an unbounded loop"
		}
		if len(node.CtxParams) == 0 {
			pass.Reportf(node.Decl.Pos(), "%s %s but takes no context.Context; accept a ctx and select on ctx.Done()", name, what)
			return
		}
		if !node.Consults {
			pass.Reportf(node.Decl.Pos(), "%s %s and takes a context.Context but never consults it (nor passes it to a callee that does); select on ctx.Done() or check ctx.Err()", name, what)
		}
		return
	}
	// Rule 5: a dead ctx parameter on a helper. ForwardsLive covers any
	// live pass, in or out of the graph — a helper that hands its ctx to
	// a non-consulting sibling is not flagged here; the sibling is.
	if len(node.CtxParams) > 0 && !node.ConsultsDirect && !node.ForwardsLive {
		pass.Reportf(node.Decl.Pos(), "%s receives a context.Context but never consults it and passes it nowhere; drop the parameter or consult the ctx", name)
	}
}

// checkCallSites applies the call-site rules (3 and 4) inside one
// ctx-taking function.
func checkCallSites(pass *framework.Pass, node *cflite.FuncNode) {
	if len(node.CtxParams) == 0 {
		return // minting a root context is the entry-point shape
	}
	for _, cs := range node.Calls {
		if !cs.Callee.Requires {
			continue
		}
		switch {
		case cs.CtxArg == cflite.CtxArgBackground:
			pass.Reportf(cs.Call.Pos(), "%s passes a fresh context.Background()/context.TODO() to %s, which %s; pass the incoming ctx so cancellation reaches it",
				node.Name(), cs.Callee.Name(), describeRequirement(cs.Callee))
		case cs.CtxArg == cflite.CtxArgNone && len(cs.Callee.CtxParams) == 0 && !cs.Callee.Direct():
			// Direct spawners/loopers without a ctx param are already
			// flagged at their own declaration by rule 1; flagging the
			// call too would say the same thing twice.
			pass.Reportf(cs.Call.Pos(), "%s drops its context calling %s, which %s but takes none; plumb the ctx through %s",
				node.Name(), cs.Callee.Name(), describeRequirement(cs.Callee), cs.Callee.Name())
		}
	}
}

// describeRequirement says why the callee needs a context, naming the
// transitive path's first hop when the requirement is inherited.
func describeRequirement(n *cflite.FuncNode) string {
	switch {
	case n.Spawns:
		return "spawns a goroutine"
	case n.Unbounded:
		return "contains an unbounded loop"
	case n.RequiresVia != nil:
		return "requires a context via " + n.RequiresVia.Name()
	}
	return "requires a context"
}

// checkSpawn applies rule 2 to one go statement: a spawned function
// literal that captures a ctx must consult it.
func checkSpawn(pass *framework.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return // go named(ctx, ...): delegation, callee-side rules apply
	}
	if referencesCtx(pass, lit.Body) && !consultsCtx(pass, lit.Body) {
		pass.Reportf(g.Pos(), "goroutine captures a context.Context but never consults it; select on ctx.Done() or drop the capture")
	}
}

// referencesCtx reports whether any context.Context-typed identifier is
// mentioned in n.
func referencesCtx(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pass.Info.Uses[id]; obj != nil && cflite.IsContext(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// consultsCtx reports whether n consults a context: calls Done, Err,
// Deadline, or Value on a ctx-typed expression, or passes a ctx onward as
// a call argument. It is the syntactic check used for goroutine literals
// (rule 2), where any forwarding is accepted as delegation; declared
// functions get the sharper interprocedural Consults fact instead.
func consultsCtx(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Done", "Err", "Deadline", "Value":
				if cflite.IsContext(pass.Info.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if cflite.IsContext(pass.Info.TypeOf(arg)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
