// Package ctxflow enforces context-cancellation discipline across the
// whole module. The harness fans the 1,350-prediction grid out over a
// worker pool; a goroutine or unbounded loop that cannot be cancelled
// turns every caller timeout into a leak and every test failure into a
// hang — and the call chains that matter cross package lines
// (cmd/metricstudy → study → retry/faults/persist).
//
// The analysis is interprocedural and module-wide: a call graph (built
// by internal/analysis/cflite) propagates two facts to a fixed point —
// "requires ctx" (spawns a goroutine or loops unboundedly, directly or
// via any callee) and "consults ctx" (calls Done/Err/Deadline/Value, or
// passes a live ctx to a callee that does). Each analyzed package
// exports those facts per function; dependents resolve cross-package
// calls against them, so a Background sever or a dropped ctx is flagged
// even when the requiring body lives two packages away. Calls through
// function-typed variables, fields, and parameters resolve when the
// bound value is a unique static assignment; interface-method calls
// devirtualize through cflite's unique/agree/conservative ladder (a
// receiver binding with one concrete type, a module-wide sole
// implementor, or agreeing implementor facts), with the resolved
// dispatch recorded in the diagnostic's devirt provenance; ambiguous
// bindings stay conservative. Five rules:
//
//  1. A function that directly spawns a goroutine or contains an
//     unbounded loop (`for {}` / `for cond {}`) must accept a
//     context.Context and consult it — where passing ctx to a callee
//     (same package or not) only counts if that callee (transitively)
//     consults it.
//  2. A goroutine whose function literal captures a context.Context but
//     never consults it is flagged: the capture suggests cancellation
//     was intended and then dropped.
//  3. A ctx-taking function that invokes a ctx-requiring callee with a
//     freshly minted context.Background()/context.TODO() is flagged at
//     the call site: the caller's cancellation chain is severed there.
//  4. A ctx-taking function that calls a callee which transitively
//     requires a context but accepts none is flagged at the call site:
//     the caller's ctx is dropped on the floor because the callee offers
//     nowhere to thread it.
//  5. A helper that receives a ctx, never consults it, and passes it
//     nowhere is flagged at its declaration: the parameter is dead.
//
// Functions without a ctx parameter may mint context.Background() —
// that is the blessed entry-point shape (main, TestXxx, study.Run):
// every cancellation chain has to be rooted somewhere.
//
// Observability calls get special treatment on both sides. A live ctx
// passed to an internal/obs function (obs.StartSpan, Obs.Inject) counts
// as forwarding — span helpers are not dead parameters — but not as
// consulting: obs records the ctx's span lineage without wiring
// cancellation through it, so a spawner whose only ctx use is starting a
// span is still flagged. Inside internal/obs itself, returning a live
// ctx or embedding it in a composite literal (the context-wrapper shape
// of Inject and StartSpan) likewise counts as forwarding.
package ctxflow

import (
	"go/ast"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "requires functions that spawn goroutines or loop unboundedly (directly or via any callee, " +
		"across package boundaries) to accept a context.Context and consult it; flags call sites that " +
		"sever cancellation with context.Background()/TODO() or drop it into ctx-less callees, " +
		"goroutines that capture a ctx without consulting it, and dead ctx parameters",
	Run: run,
}

func run(pass *framework.Pass) error {
	graph := cflite.Graph(pass)
	for _, node := range graph.Nodes {
		if node.Body() == nil || node.Enclosed {
			// Body-less declarations carry no facts; enclosed bound
			// literals are already covered by their enclosing declaration's
			// walks (the node exists only to give calls an edge).
			continue
		}
		checkDecl(pass, node)
		checkCallSites(pass, node)
		ast.Inspect(node.Body(), func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkSpawn(pass, g)
			}
			return true
		})
	}
	return nil
}

// checkDecl applies the declaration rules (1 and 5) to one function.
func checkDecl(pass *framework.Pass, node *cflite.FuncNode) {
	name := node.Name()
	if node.Direct() {
		what := "spawns a goroutine"
		if !node.Spawns {
			what = "contains an unbounded loop"
		}
		if len(node.CtxParams) == 0 {
			pass.Reportf(node.Pos(), "%s %s but takes no context.Context; accept a ctx and select on ctx.Done()", name, what)
			return
		}
		if !node.Consults {
			pass.Reportf(node.Pos(), "%s %s and takes a context.Context but never consults it (nor passes it to a callee that does); select on ctx.Done() or check ctx.Err()", name, what)
		}
		return
	}
	// Rule 5: a dead ctx parameter on a helper. ForwardsLive covers any
	// live pass, in or out of the graph — a helper that hands its ctx to
	// a non-consulting sibling is not flagged here; the sibling is.
	if len(node.CtxParams) > 0 && !node.ConsultsDirect && !node.ForwardsLive {
		pass.Reportf(node.Pos(), "%s receives a context.Context but never consults it and passes it nowhere; drop the parameter or consult the ctx", name)
	}
}

// checkCallSites applies the call-site rules (3 and 4) inside one
// ctx-taking function. When the requiring callee is another package's
// function (known through its exported facts), the diagnostic carries
// provenance naming the evidence.
func checkCallSites(pass *framework.Pass, node *cflite.FuncNode) {
	if len(node.CtxParams) == 0 {
		return // minting a root context is the entry-point shape
	}
	for _, cs := range node.Calls {
		if !cs.Callee.Requires {
			continue
		}
		switch {
		case cs.CtxArg == cflite.CtxArgBackground:
			report(pass, cs, "%s passes a fresh context.Background()/context.TODO() to %s, which %s; pass the incoming ctx so cancellation reaches it",
				node.Name(), cs.Callee.Name(), describeRequirement(cs.Callee))
		case cs.CtxArg == cflite.CtxArgNone && len(cs.Callee.CtxParams) == 0 && !cs.Callee.Direct():
			// Direct spawners/loopers without a ctx param are already
			// flagged at their own declaration by rule 1 (in their own
			// package's run, for external callees); flagging the call too
			// would say the same thing twice.
			report(pass, cs, "%s drops its context calling %s, which %s but takes none; plumb the ctx through %s",
				node.Name(), cs.Callee.Name(), describeRequirement(cs.Callee), cs.Callee.Name())
		}
	}
}

// report emits a call-site diagnostic, attaching fact provenance when
// the finding rests on another package's exported facts and devirt
// provenance when the call edge was resolved through an interface
// method.
func report(pass *framework.Pass, cs cflite.CallSite, format string, args ...any) {
	devirt := cflite.DevirtDescription(cs)
	if cs.Callee.External {
		prov := cs.Callee.FullName() + ": " + describeRequirement(cs.Callee)
		pass.ReportfVia(cs.Call.Pos(), prov, devirt, format, args...)
		return
	}
	if devirt != "" {
		pass.ReportfVia(cs.Call.Pos(), "", devirt, format, args...)
		return
	}
	pass.Reportf(cs.Call.Pos(), format, args...)
}

// describeRequirement says why the callee needs a context, naming the
// transitive path's first hop when the requirement is inherited (for an
// external callee, the hop recorded in its exporting package).
func describeRequirement(n *cflite.FuncNode) string {
	switch {
	case n.Spawns:
		return "spawns a goroutine"
	case n.Unbounded:
		return "contains an unbounded loop"
	case len(n.Implementors) > 0:
		return "requires a context (every implementor agrees)"
	case n.RequiresVia != nil:
		return "requires a context via " + n.RequiresVia.Name()
	case n.FactVia != "":
		return "requires a context via " + n.FactVia
	}
	return "requires a context"
}

// checkSpawn applies rule 2 to one go statement: a spawned function
// literal that captures a ctx must consult it.
func checkSpawn(pass *framework.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return // go named(ctx, ...): delegation, callee-side rules apply
	}
	if referencesCtx(pass, lit.Body) && !consultsCtx(pass, lit.Body) {
		pass.Reportf(g.Pos(), "goroutine captures a context.Context but never consults it; select on ctx.Done() or drop the capture")
	}
}

// referencesCtx reports whether any context.Context-typed identifier is
// mentioned in n.
func referencesCtx(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pass.Info.Uses[id]; obj != nil && cflite.IsContext(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// consultsCtx reports whether n consults a context: calls Done, Err,
// Deadline, or Value on a ctx-typed expression, or passes a ctx onward as
// a call argument. It is the syntactic check used for goroutine literals
// (rule 2), where any forwarding is accepted as delegation; declared
// functions get the sharper interprocedural Consults fact instead.
func consultsCtx(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Done", "Err", "Deadline", "Value":
				if cflite.IsContext(pass.Info.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if cflite.IsContext(pass.Info.TypeOf(arg)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
