package ctxflow_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	// Dependencies before dependents: crosspkg/b's facts must be exported
	// before crosspkg/a is analyzed (as cmd/hpclint's topological load
	// order guarantees module-wide).
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"internal/obs", "internal/retry", "internal/faults",
		"internal/study", "internal/simexec", "pipeline",
		"crosspkg/b", "crosspkg/a", "funcfield")
}

func TestCtxflowInterfaceDispatch(t *testing.T) {
	// Implementor packages precede the callers, as the module driver's
	// topological order would place them; the listed set is the closed
	// world the devirtualization ladder resolves against.
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"devirt/impl", "devirt/unique",
		"devirt/agree/defs", "devirt/agree",
		"devirt/split/defs", "devirt/split",
		"devirt/escape")
}
