package ctxflow_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"internal/study", "internal/simexec", "internal/obs",
		"internal/retry", "internal/faults", "pipeline")
}
