// Package unitmix flags additive arithmetic and comparisons that mix
// identifiers carrying conflicting unit suffixes.
//
// The codebase's convention is that a float64's unit lives in its name:
// StreamBytesPerSec, HPLFlopsPerSec, LatencySeconds, MemLatencyNs, and so
// on. The compiler sees only float64, so nothing stops the convolver's
// transfer function from adding a bandwidth to a latency — the bug class
// at the heart of the paper's Equation 1 machinery. This analyzer checks
// +, -, and ordering/equality between two operands whose names both carry
// a recognized unit suffix: conflicting units (including same-dimension
// scale conflicts such as Seconds vs Ns) are reported. Multiplication and
// division are exempt, since they are how units legitimately convert.
package unitmix

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the unitmix check.
var Analyzer = &framework.Analyzer{
	Name: "unitmix",
	Doc: "flags +, -, and comparisons mixing identifiers with conflicting unit " +
		"suffixes (BytesPerSec vs FlopsPerSec vs Seconds vs Ns ...)",
	Run: run,
}

// suffixUnits maps name suffixes to the unit they declare. Longer suffixes
// are matched first, so HPLFlopsPerSec is flops/sec, not flops.
var suffixUnits = map[string]string{
	"BytesPerSec":   "bytes/sec",
	"FlopsPerSec":   "flops/sec",
	"RefsPerSec":    "refs/sec",
	"BytesPerCycle": "bytes/cycle",
	"GBs":           "gigabytes/sec",
	"MBs":           "megabytes/sec",
	"GHz":           "gigahertz",
	"Seconds":       "seconds",
	"Secs":          "seconds",
	"Ns":            "nanoseconds",
	"Us":            "microseconds",
	"Cycles":        "cycles",
	"Bytes":         "bytes",
	"Flops":         "flops",
	"Ratio":         "ratio",
	"Fraction":      "ratio",
	"Frac":          "ratio",
}

// suffixesByLength holds the suffixes longest-first.
var suffixesByLength = func() []string {
	out := make([]string, 0, len(suffixUnits))
	for s := range suffixUnits {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}()

func run(pass *framework.Pass) error {
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			nameX, unitX := unitOf(be.X)
			nameY, unitY := unitOf(be.Y)
			if unitX == "" || unitY == "" || unitX == unitY {
				return true
			}
			pass.Reportf(be.OpPos, "%s mixes units: %s is %s but %s is %s",
				be.Op, nameX, unitX, nameY, unitY)
			return true
		})
	}
	return nil
}

// unitOf extracts the governing identifier of an expression and the unit
// its suffix declares, if any.
func unitOf(e ast.Expr) (name, unit string) {
	name = nameOf(e)
	if name == "" {
		return "", ""
	}
	for _, suf := range suffixesByLength {
		// Case-sensitive suffix match; camel-case makes this a word
		// boundary in practice (acronym prefixes like HPLFlopsPerSec
		// included).
		if strings.HasSuffix(name, suf) {
			return name, suffixUnits[suf]
		}
	}
	return name, ""
}

// nameOf finds the identifier that names an operand: the identifier
// itself, a selector's field, an index expression's base, or a call's
// function name (for accessor methods like PeakFlops()).
func nameOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return nameOf(e.X)
	case *ast.UnaryExpr:
		return nameOf(e.X)
	case *ast.IndexExpr:
		return nameOf(e.X)
	case *ast.CallExpr:
		return nameOf(e.Fun)
	}
	return ""
}
