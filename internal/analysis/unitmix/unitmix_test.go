package unitmix_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/unitmix"
)

func TestUnitmix(t *testing.T) {
	analysistest.Run(t, "testdata", unitmix.Analyzer, "a")
}
