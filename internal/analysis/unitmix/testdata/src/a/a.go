package a

type probe struct {
	StreamBytesPerSec float64
	HPLFlopsPerSec    float64
	LatencySeconds    float64
	MemLatencyNs      float64
	MemBandwidthGBs   float64
	PeakFlops         float64
}

func badAdd(p probe) float64 {
	return p.StreamBytesPerSec + p.HPLFlopsPerSec // want `mixes units`
}

func badScale(p probe) float64 {
	return p.LatencySeconds - p.MemLatencyNs // want `mixes units`
}

func badCmp(p probe) bool {
	return p.StreamBytesPerSec > p.MemBandwidthGBs // want `mixes units`
}

func okSameUnit(a, b probe) float64 {
	return a.StreamBytesPerSec + b.StreamBytesPerSec // same unit: allowed
}

func okConvert(p probe, elapsedSeconds float64) float64 {
	return p.StreamBytesPerSec * elapsedSeconds // multiply converts: allowed
}

func okDivide(p probe) float64 {
	return p.PeakFlops / p.LatencySeconds // divide converts: allowed
}

func okUnsuffixed(p probe, x float64) float64 {
	return p.HPLFlopsPerSec + x // bare operand carries no unit: allowed
}
