// Package analysistest runs an hpclint analyzer against fixture packages
// and checks its diagnostics against expectations written in the fixtures
// themselves, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := a == b // want `floating-point == comparison`
//
// Each string after "want" (quoted or backquoted) is a regular expression
// that must match the message of a distinct diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations with no
// matching diagnostic, fail the test.
//
// Fixtures are laid out GOPATH-style under dir/src/<importpath>/, so a
// fixture package may import a sibling fixture package by that path.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/load"
)

// expectation is one "want" pattern and whether a diagnostic matched it.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads each fixture package beneath dir/src, applies the analyzer,
// and reports mismatches through t.
//
// The packages share one loader and one cross-package fact store and are
// analyzed in the order given: list dependency packages before their
// dependents (as a module-wide driver's topological order would), so the
// facts a dependency exports are visible when the dependent is analyzed
// and cross-package diagnostics can be exercised by fixtures.
//
// Mirroring the module driver, the run is two-phase: every listed
// package is loaded and scanned for concrete-to-interface flows before
// any is analyzed, and the listed set is the closed world — so fixtures
// can exercise interface devirtualization, including implementations
// that live in a later-listed package.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := load.New()
	loader.SrcRoots = []string{srcRoot}
	module := framework.NewModuleFacts()
	loaded := make([]*load.Package, 0, len(pkgs))
	for _, pkgPath := range pkgs {
		pkg, err := loader.LoadAs(filepath.Join(srcRoot, filepath.FromSlash(pkgPath)), pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		loaded = append(loaded, pkg)
	}
	module.SetClosed(pkgs)
	for _, pkg := range loaded {
		cflite.CollectIfaceFacts(module, pkg.PkgPath, pkg.Info, pkg.Syntax)
	}
	for _, pkg := range loaded {
		diags, err := framework.RunWithModule(pkg, []*framework.Analyzer{a}, module)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		expects := collectExpectations(t, pkg)
		checkPackage(t, pkg.PkgPath, diags, expects)
	}
}

func checkPackage(t *testing.T, pkgPath string, diags []framework.Diagnostic, expects []*expectation) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if !e.met && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgPath, e.file, e.line, e.re)
		}
	}
}

// collectExpectations scans the fixture's comments for "want" markers.
func collectExpectations(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // a /* */ comment cannot carry expectations
				}
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, text[idx+len("want "):], pos.String()) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// parsePatterns splits `"re1" "re2"` / backquoted forms into raw patterns.
func parsePatterns(t *testing.T, s, pos string) []string {
	t.Helper()
	var pats []string
	// Each iteration consumes one quoted pattern, so the trimmed input
	// shrinks to "" and the loop's own condition terminates it.
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q", pos, s)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q", pos, q)
		}
		pats = append(pats, unq)
		s = s[len(q):]
	}
	return pats
}
