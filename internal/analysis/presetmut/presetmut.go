// Package presetmut guards the machine-preset registry against aliasing
// bugs.
//
// machine.Preset and machine.MustPreset return a *machine.Config. Such a
// pointer is safe to specialize right after it is obtained — but the
// moment it has been shared (passed to a function, stored into a struct,
// map, slice, or variable, sent on a channel, or returned), a later field
// write mutates state some other component may already hold, the classic
// preset-aliasing bug. Within each function this analyzer tracks the
// variables bound to Preset/MustPreset results in statement order and
// flags writes that happen after the first sharing event; the fix is to
// Clone() (or copy the Config value) before mutating, or to finish
// mutating before sharing.
//
// Inside the machine package itself, writes through the registry map
// (presets[name].Field = v, or a variable read from it) are flagged
// unconditionally: registry pointers are born shared.
package presetmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the presetmut check.
var Analyzer = &framework.Analyzer{
	Name: "presetmut",
	Doc: "flags field writes through a *machine.Config from Preset/MustPreset " +
		"after the pointer has been shared, and any write through the preset registry",
	Run: run,
}

// tracked is one variable holding a preset pointer inside one function.
type tracked struct {
	// bornShared marks registry reads, which are aliased from the start.
	bornShared bool
	// sharedAt is the position of the first sharing event, or NoPos.
	sharedAt token.Pos
	// writes are field-write positions, paired with a short description.
	writes []write
}

type write struct {
	pos  token.Pos
	expr string
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	vars := map[types.Object]*tracked{}

	// Pass 1: find the variables bound to Preset/MustPreset results or to
	// registry reads.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		var bornShared bool
		switch rhs := rhs.(type) {
		case *ast.CallExpr:
			if !isPresetCall(pass, rhs) {
				return true
			}
		case *ast.IndexExpr:
			if !isRegistryRead(pass, rhs) {
				return true
			}
			bornShared = true
		default:
			return true
		}
		// The Config pointer is the first result (Preset also returns err).
		if len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if tr, exists := vars[obj]; exists {
			// Rebinding resets the variable's history only if it was not
			// already shared; keep the stricter state.
			tr.bornShared = tr.bornShared || bornShared
		} else {
			vars[obj] = &tracked{bornShared: bornShared, sharedAt: token.NoPos}
		}
		return true
	})

	// Direct registry writes (presets[name].Field = v) need no tracked
	// variable: any selector in a write target whose base is a registry
	// read is a shared-state mutation.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ast.Inspect(lhs, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if ie, ok := ast.Unparen(sel.X).(*ast.IndexExpr); ok && isRegistryRead(pass, ie) {
					pass.Reportf(lhs.Pos(), "write through the preset registry mutates every future Preset result; Clone() the Config instead")
					return false
				}
				return true
			})
		}
		return true
	})

	if len(vars) == 0 {
		return
	}

	// Pass 2: record sharing events and field writes per variable.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if tr := lookup(pass, vars, arg); tr != nil {
					share(tr, arg.Pos())
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if tr := lookup(pass, vars, rhs); tr != nil {
					share(tr, rhs.Pos())
				}
			}
			for _, lhs := range n.Lhs {
				base, isField := writeBase(lhs)
				if !isField {
					continue
				}
				if tr := lookup(pass, vars, base); tr != nil {
					tr.writes = append(tr.writes, write{pos: lhs.Pos(), expr: exprString(lhs)})
				}
			}
		case *ast.IncDecStmt:
			if base, isField := writeBase(n.X); isField {
				if tr := lookup(pass, vars, base); tr != nil {
					tr.writes = append(tr.writes, write{pos: n.X.Pos(), expr: exprString(n.X)})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tr := lookup(pass, vars, res); tr != nil {
					share(tr, res.Pos())
				}
			}
		case *ast.SendStmt:
			if tr := lookup(pass, vars, n.Value); tr != nil {
				share(tr, n.Value.Pos())
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if tr := lookup(pass, vars, elt); tr != nil {
					share(tr, elt.Pos())
				}
			}
		}
		return true
	})

	// Report writes that land after the variable became shared (the
	// framework orders diagnostics by position).
	for _, tr := range vars {
		for _, w := range tr.writes {
			switch {
			case tr.bornShared:
				pass.Reportf(w.pos, "%s writes through a registry-shared preset Config; Clone() it first", w.expr)
			case tr.sharedAt.IsValid() && w.pos > tr.sharedAt:
				pass.Reportf(w.pos, "%s writes a preset Config after it was shared; Clone() before mutating (or mutate before sharing)", w.expr)
			}
		}
	}
}

func share(tr *tracked, pos token.Pos) {
	if !tr.sharedAt.IsValid() || pos < tr.sharedAt {
		tr.sharedAt = pos
	}
}

// lookup resolves a bare identifier expression to its tracked entry.
func lookup(pass *framework.Pass, vars map[types.Object]*tracked, e ast.Expr) *tracked {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	return vars[obj]
}

// writeBase unwraps an assignment target like cfg.Net.LatencyUs or
// cfg.Caches[0].SizeBytes down to its base expression, reporting whether
// the target is a field (or element) of that base rather than the base
// itself.
func writeBase(lhs ast.Expr) (base ast.Expr, isField bool) {
	// Recursion bounds the unwrap by the expression's syntactic depth.
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		base, _ = writeBase(e.X)
		return base, true
	case *ast.IndexExpr:
		// The caller inspects the case where the index base is itself the
		// registry map read; here it is just another unwrap step.
		base, _ = writeBase(e.X)
		return base, true
	case *ast.ParenExpr:
		return writeBase(e.X)
	case *ast.StarExpr:
		base, _ = writeBase(e.X)
		return base, true
	}
	return lhs, false
}

// isPresetCall recognizes Preset / MustPreset calls from a package named
// machine.
func isPresetCall(pass *framework.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "machine" {
		return false
	}
	return fn.Name() == "Preset" || fn.Name() == "MustPreset"
}

// isRegistryRead recognizes presets[name]-style reads: an index into a
// package-level map[...]*Config variable of a package named machine.
func isRegistryRead(pass *framework.Pass, idx *ast.IndexExpr) bool {
	id, ok := ast.Unparen(idx.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pass.Info.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Name() != "machine" {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	mt, ok := v.Type().Underlying().(*types.Map)
	if !ok {
		return false
	}
	pt, ok := mt.Elem().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := pt.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Config"
}

// exprString renders a write target for the diagnostic message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
