package a

import "machine"

func use(*machine.Config) {}

func badWriteAfterShare() {
	cfg := machine.MustPreset("x")
	cfg.ClockGHz = 2 // still private: allowed
	use(cfg)
	cfg.ClockGHz = 3 // want `after it was shared`
}

func badNestedWrite() {
	cfg, err := machine.Preset("x")
	if err != nil {
		return
	}
	use(cfg)
	cfg.Net.LatencyUs = 9 // want `after it was shared`
}

func badStoreThenWrite(hold map[string]*machine.Config) {
	cfg := machine.MustPreset("x")
	hold["mine"] = cfg
	cfg.ClockGHz = 5 // want `after it was shared`
}

func badReturnAlias(fast bool) *machine.Config {
	cfg := machine.MustPreset("x")
	if fast {
		return cfg // the caller may now hold the pointer
	}
	cfg.ClockGHz = 6 // want `after it was shared`
	return cfg
}

func okMutateThenShare() {
	cfg := machine.MustPreset("x")
	cfg.ClockGHz = 7 // specialize before sharing: allowed
	cfg.Net.LatencyUs = 1
	use(cfg)
}

func okCloneAfterShare() {
	cfg := machine.MustPreset("x")
	use(cfg)
	mine := cfg.Clone()
	mine.ClockGHz = 8 // fresh clone: allowed
}

func okValueCopy() {
	cfg := machine.MustPreset("x")
	use(cfg)
	cp := *cfg
	cp.ClockGHz = 9 // value copy: allowed
}
