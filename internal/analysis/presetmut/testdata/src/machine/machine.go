// Package machine is a miniature of the real preset registry, enough for
// the presetmut fixtures to type-check against.
package machine

type Network struct{ LatencyUs float64 }

type Config struct {
	Name     string
	ClockGHz float64
	Net      Network
	Caches   []struct{ SizeBytes int64 }
}

func (c *Config) Clone() *Config {
	out := *c
	return &out
}

var presets = map[string]*Config{
	"x": {Name: "x", ClockGHz: 1},
}

func Preset(name string) (*Config, error) { return presets[name].Clone(), nil }

func MustPreset(name string) *Config { return presets[name].Clone() }

func tweakRegistry() {
	presets["x"].ClockGHz = 2 // want `write through the preset registry`
}

func readRegistryThenWrite() {
	shared := presets["x"]
	shared.ClockGHz = 3 // want `registry-shared preset Config`
}

func okRegistryClone() *Config {
	c := presets["x"].Clone()
	c.ClockGHz = 4 // fresh clone: allowed
	return c
}
