package presetmut_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/presetmut"
)

func TestPresetmut(t *testing.T) {
	analysistest.Run(t, "testdata", presetmut.Analyzer, "a", "machine")
}
