package analysis

import (
	"fmt"
	"time"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/load"
)

// PackageError records one package that failed to load or type-check.
type PackageError struct {
	// Dir is the package's source directory.
	Dir string
	// Pkg is the package's import path (best-effort when loading failed
	// before the path was established).
	Pkg string
	// Err is the load or type-check failure.
	Err error
}

func (e PackageError) Error() string { return fmt.Sprintf("%s: %v", e.Pkg, e.Err) }

// Result is one module-wide analysis run.
type Result struct {
	// Diagnostics are the surviving findings of every analyzed package,
	// in package load (dependency) order, position-sorted within each.
	Diagnostics []framework.Diagnostic
	// Facts is the cross-package fact store the run accumulated
	// (cmd/hpclint -facts dumps it).
	Facts *framework.ModuleFacts
	// Directives lists every //hpclint:ignore comment seen, for diffing
	// against the committed suppression allowlist.
	Directives []framework.Directive
	// Packages counts the packages analyzed.
	Packages int
	// LoadErrors lists the packages that failed to load or type-check;
	// analysis covered the remainder. Drivers must treat a non-empty list
	// as failure (cmd/hpclint names each package and exits non-zero): a
	// silently skipped package is a hole in the module-wide guarantees,
	// and — with interface devirtualization — a hole in the closed world
	// the resolutions rest on.
	LoadErrors []PackageError
	// IfaceSeconds is the wall time of the interface-implementor
	// collection pre-pass, reported separately so the cost of
	// devirtualization is visible in BenchmarkHpclintModule and
	// BENCH_study.json.
	IfaceSeconds float64
}

// Run applies the analyzers to every package matching patterns, in
// dependency order with a shared cross-package fact store: a package's
// dependencies are analyzed — and their facts exported — before the
// package itself, so Background severs and dropped contexts are visible
// across package boundaries. It is the engine behind cmd/hpclint and
// the module-analysis benchmark.
//
// The run is two-phase. Every matched package is loaded first and the
// whole set is scanned for concrete-to-interface conversions
// (cflite.CollectIfaceFacts), so a package early in the dependency
// order still sees implementations registered by later ones; only then
// are the analyzers applied. Packages that fail to load are recorded in
// Result.LoadErrors and excluded from both phases — and from the closed
// world, keeping devirtualization honest about what it has seen.
func Run(patterns []string, analyzers []*framework.Analyzer) (*Result, error) {
	dirs, err := load.Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	loader := load.New()
	dirs, err = loader.SortDeps(dirs)
	if err != nil {
		return nil, err
	}
	res := &Result{Facts: framework.NewModuleFacts()}

	// Phase 1: load everything, accumulating failures instead of
	// stopping at the first (the caller decides that the run failed; the
	// loadable remainder is still analyzed so one broken package does not
	// mask findings elsewhere).
	var (
		pkgs  []*load.Package
		paths []string
	)
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			res.LoadErrors = append(res.LoadErrors,
				PackageError{Dir: dir, Pkg: loader.ImportPath(dir), Err: err})
			continue
		}
		pkgs = append(pkgs, pkg)
		paths = append(paths, pkg.PkgPath)
	}

	// Phase 2: the loaded set is the closed world; collect every
	// concrete-to-interface flow in it before any package is analyzed.
	res.Facts.SetClosed(paths)
	ifaceStart := time.Now()
	for _, pkg := range pkgs {
		cflite.CollectIfaceFacts(res.Facts, pkg.PkgPath, pkg.Info, pkg.Syntax)
	}
	res.IfaceSeconds = time.Since(ifaceStart).Seconds()

	// Phase 3: analyze in dependency order.
	for _, pkg := range pkgs {
		diags, err := framework.RunWithModule(pkg, analyzers, res.Facts)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Directives = append(res.Directives, framework.Directives(pkg)...)
		res.Packages++
	}
	return res, nil
}
