package analysis

import (
	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/load"
)

// Result is one module-wide analysis run.
type Result struct {
	// Diagnostics are the surviving findings of every analyzed package,
	// in package load (dependency) order, position-sorted within each.
	Diagnostics []framework.Diagnostic
	// Facts is the cross-package fact store the run accumulated
	// (cmd/hpclint -facts dumps it).
	Facts *framework.ModuleFacts
	// Directives lists every //hpclint:ignore comment seen, for diffing
	// against the committed suppression allowlist.
	Directives []framework.Directive
	// Packages counts the packages analyzed.
	Packages int
}

// Run applies the analyzers to every package matching patterns, in
// dependency order with a shared cross-package fact store: a package's
// dependencies are analyzed — and their facts exported — before the
// package itself, so Background severs and dropped contexts are visible
// across package boundaries. It is the engine behind cmd/hpclint and
// the module-analysis benchmark.
func Run(patterns []string, analyzers []*framework.Analyzer) (*Result, error) {
	dirs, err := load.Expand(patterns)
	if err != nil {
		return nil, err
	}
	loader := load.New()
	dirs, err = loader.SortDeps(dirs)
	if err != nil {
		return nil, err
	}
	res := &Result{Facts: framework.NewModuleFacts()}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		diags, err := framework.RunWithModule(pkg, analyzers, res.Facts)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Directives = append(res.Directives, framework.Directives(pkg)...)
		res.Packages++
	}
	return res, nil
}
