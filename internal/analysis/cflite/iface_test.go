package cflite

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/load"
)

// loadSrc type-checks one source file as package p.
func loadSrc(t *testing.T, src string) *load.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := load.New().LoadAs(dir, "p")
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

func buildGraphExts(t *testing.T, src string, exts Externals) *CallGraph {
	t.Helper()
	pkg := loadSrc(t, src)
	g := BuildCallGraph(pkg.Info, pkg.Syntax, exts)
	g.Propagate()
	return g
}

// ifaceCall returns the first devirtualized call site of the named node.
func ifaceCall(t *testing.T, g *CallGraph, name string) CallSite {
	t.Helper()
	for _, cs := range node(t, g, name).Calls {
		if cs.Iface != "" {
			return cs
		}
	}
	t.Fatalf("%s has no devirtualized call site", name)
	return CallSite{}
}

const uniqueBindingSrc = `package p

import "context"

type Doer interface {
	Do(ctx context.Context)
}

type S struct{}

func (s *S) Do(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

func caller(ctx context.Context) {
	var d Doer = &S{}
	d.Do(ctx)
}
`

func TestIfaceUniqueBinding(t *testing.T) {
	g := buildGraphExts(t, uniqueBindingSrc, Externals{})
	cs := ifaceCall(t, g, "caller")
	if cs.Iface != "(p.Doer).Do" {
		t.Errorf("Iface = %q, want (p.Doer).Do", cs.Iface)
	}
	if got := cs.Callee.FullName(); got != "(*p.S).Do" {
		t.Errorf("devirtualized callee = %q, want (*p.S).Do", got)
	}
	if want := "(p.Doer).Do → (*p.S).Do"; DevirtDescription(cs) != want {
		t.Errorf("DevirtDescription = %q, want %q", DevirtDescription(cs), want)
	}
	if !node(t, g, "caller").Requires {
		t.Error("caller.Requires = false: the spawn fact did not cross the devirtualized edge")
	}
}

const soleImplementorSrc = `package p

import "context"

type Doer interface {
	Do(ctx context.Context)
}

type S struct{}

func (s *S) Do(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

func mk() Doer { return &S{} }

func caller(ctx context.Context, d Doer) {
	d.Do(ctx)
}
`

// TestIfaceSoleImplementor resolves through the module-merged implementor
// fact: the receiver binding pins nothing (an unexported function's
// parameter), but the closed world contains exactly one implementation.
func TestIfaceSoleImplementor(t *testing.T) {
	pkg := loadSrc(t, soleImplementorSrc)
	module := framework.NewModuleFacts()
	module.SetClosed([]string{"p"})
	CollectIfaceFacts(module, "p", pkg.Info, pkg.Syntax)
	g := BuildCallGraph(pkg.Info, pkg.Syntax, Externals{
		Impls: func(ifn *types.Func) (ImplFacts, bool) { return MergedImpls(module, ifn) },
	})
	g.Propagate()
	cs := ifaceCall(t, g, "caller")
	if got := cs.Callee.FullName(); got != "(*p.S).Do" {
		t.Errorf("devirtualized callee = %q, want (*p.S).Do", got)
	}
	if !node(t, g, "caller").Requires {
		t.Error("caller.Requires = false: the sole-implementor fact did not propagate")
	}
}

const openSetSrc = `package p

import "context"

type Doer interface {
	Do(ctx context.Context)
}

type Other interface {
	Do(ctx context.Context)
}

type S struct{}

func (s *S) Do(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

func mk() Doer { return &S{} }

func launder(o Other) Doer { return o }

func caller(ctx context.Context, d Doer) {
	d.Do(ctx)
}
`

// TestIfaceOpenSet: an interface-to-interface flow opens the implementor
// set, so even a sole collected implementor must stay unresolved.
func TestIfaceOpenSet(t *testing.T) {
	pkg := loadSrc(t, openSetSrc)
	module := framework.NewModuleFacts()
	module.SetClosed([]string{"p"})
	CollectIfaceFacts(module, "p", pkg.Info, pkg.Syntax)
	impls, ok := MergedImpls(module, ifaceMethodOf(t, pkg.Types, "Doer"))
	if !ok {
		t.Fatal("MergedImpls: no fact collected for (p.Doer).Do")
	}
	if !impls.Open {
		t.Error("Open = false, want true: another interface flowed into Doer")
	}
	g := BuildCallGraph(pkg.Info, pkg.Syntax, Externals{
		Impls: func(ifn *types.Func) (ImplFacts, bool) { return MergedImpls(module, ifn) },
	})
	g.Propagate()
	for _, cs := range node(t, g, "caller").Calls {
		if cs.Iface != "" {
			t.Errorf("open implementor set resolved anyway: %s", DevirtDescription(cs))
		}
	}
}

const paramCallSrc = `package p

import "context"

type Doer interface {
	Do(ctx context.Context)
}

func caller(ctx context.Context, d Doer) {
	d.Do(ctx)
}
`

// TestIfaceConsensus: two implementors known only by path (as merged
// cross-package facts would supply) whose facts agree produce a synthetic
// consensus edge carrying the shared verdict and the implementor list.
func TestIfaceConsensus(t *testing.T) {
	facts := map[string]FuncFacts{
		"(*q.A).Do": {Requires: true, Consults: true},
		"(*q.B).Do": {Requires: true, Consults: true},
	}
	g := buildGraphExts(t, paramCallSrc, Externals{
		Impls: func(ifn *types.Func) (ImplFacts, bool) {
			return ImplFacts{Implementors: []string{"(*q.A).Do", "(*q.B).Do"}}, true
		},
		FactsByPath: func(p string) (FuncFacts, bool) { f, ok := facts[p]; return f, ok },
	})
	cs := ifaceCall(t, g, "caller")
	if len(cs.Callee.Implementors) != 2 {
		t.Fatalf("consensus node lists %d implementors, want 2", len(cs.Callee.Implementors))
	}
	if want := "(p.Doer).Do agreed by (*q.A).Do, (*q.B).Do"; DevirtDescription(cs) != want {
		t.Errorf("DevirtDescription = %q, want %q", DevirtDescription(cs), want)
	}
	if !node(t, g, "caller").Requires {
		t.Error("caller.Requires = false: the agreed fact did not propagate")
	}
}

// TestIfaceDisagree: implementors with conflicting facts stay
// conservative, and the disagreeing set is recorded as provenance on the
// calling function.
func TestIfaceDisagree(t *testing.T) {
	facts := map[string]FuncFacts{
		"(*q.A).Do": {Requires: true, Consults: true},
		"(*q.B).Do": {Consults: true},
	}
	g := buildGraphExts(t, paramCallSrc, Externals{
		Impls: func(ifn *types.Func) (ImplFacts, bool) {
			return ImplFacts{Implementors: []string{"(*q.A).Do", "(*q.B).Do"}}, true
		},
		FactsByPath: func(p string) (FuncFacts, bool) { f, ok := facts[p]; return f, ok },
	})
	caller := node(t, g, "caller")
	for _, cs := range caller.Calls {
		if cs.Iface != "" {
			t.Errorf("disagreeing implementors resolved anyway: %s", DevirtDescription(cs))
		}
	}
	if len(caller.IfaceUnresolved) != 1 ||
		!strings.Contains(caller.IfaceUnresolved[0], "implementors of (p.Doer).Do disagree") {
		t.Errorf("IfaceUnresolved = %v, want one entry naming the disagreeing set", caller.IfaceUnresolved)
	}
}

// ifaceMethodOf digs the sole method of the named interface type out of
// the package scope.
func ifaceMethodOf(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no type %s in package %s", name, pkg.Path())
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		t.Fatalf("%s is not a non-empty interface", name)
	}
	return iface.Method(0)
}
