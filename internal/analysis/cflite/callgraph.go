// Call-graph construction and context-fact propagation for the
// interprocedural half of the concurrency analyzers.
//
// The graph is deliberately package-local: every *ast.CallExpr whose
// callee resolves (through go/types) to a FuncDecl of the same package —
// plain functions, methods on named receivers, and method expressions —
// becomes an edge. Calls into other packages, calls through function
// values, and calls of parameters stay outside the graph and are treated
// conservatively by the fact propagation below.
package cflite

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxArgKind classifies the context argument of one resolved call.
type CtxArgKind int

const (
	// CtxArgNone: the call passes no context-typed argument.
	CtxArgNone CtxArgKind = iota
	// CtxArgBackground: the call mints a fresh root context in place —
	// a direct context.Background() or context.TODO() argument — which
	// severs the caller's cancellation chain.
	CtxArgBackground
	// CtxArgLive: the call passes some live context value (a parameter,
	// a derived context, a field).
	CtxArgLive
)

// CallSite is one resolved same-package call.
type CallSite struct {
	// Call is the syntax of the call.
	Call *ast.CallExpr
	// Callee is the called function's node.
	Callee *FuncNode
	// CtxArg classifies the context argument the call passes, if any.
	CtxArg CtxArgKind
}

// FuncNode is one declared function of the package with its direct
// (intra-procedural) observations and, after Propagate, its
// interprocedural facts.
type FuncNode struct {
	// Decl is the function's declaration (Body may be nil for
	// assembly-backed declarations; such nodes carry no direct facts).
	Decl *ast.FuncDecl
	// Obj is the *types.Func object from the type-checker's Defs map.
	Obj types.Object
	// Calls lists the same-package calls made anywhere in the body,
	// including inside function literals and go/defer statements.
	Calls []CallSite

	// CtxParams names the declaration's context.Context parameters.
	CtxParams []string
	// Spawns: the body contains a go statement.
	Spawns bool
	// Unbounded: the body contains a structurally unbounded for loop.
	Unbounded bool
	// ConsultsDirect: the body calls Done/Err/Deadline/Value on a
	// context-typed expression.
	ConsultsDirect bool
	// ForwardsLive: the body hands a live (non-minted) context onward —
	// as an argument to any call, in or out of the graph, as a return
	// value, or embedded in a composite literal (the context-wrapper
	// shape of internal/obs).
	ForwardsLive bool
	// forwardsOutside: a live context leaves the graph (unknown callee);
	// the propagation assumes the recipient consults it.
	forwardsOutside bool

	// Requires is set by Propagate: executing this function may spawn a
	// goroutine or loop unboundedly, directly or via any callee, so
	// cancellation must be wired through it.
	Requires bool
	// RequiresVia is the callee through which a purely transitive
	// requirement first arrived (nil when the requirement is direct).
	RequiresVia *FuncNode
	// Consults is set by Propagate: the function consults a context
	// directly, or passes one to a callee that (transitively) does, or
	// passes one outside the graph (assumed consulted).
	Consults bool
}

// Name returns the declared function name.
func (n *FuncNode) Name() string { return n.Decl.Name.Name }

// Direct reports whether the node's cancellation requirement is its own
// (a spawn or unbounded loop in its body) rather than inherited.
func (n *FuncNode) Direct() bool { return n.Spawns || n.Unbounded }

// CallGraph is the package-local call graph.
type CallGraph struct {
	// Nodes holds every declared function in file/declaration order.
	Nodes []*FuncNode

	byObj map[types.Object]*FuncNode
}

// NodeFor returns the node declaring obj, or nil.
func (g *CallGraph) NodeFor(obj types.Object) *FuncNode { return g.byObj[obj] }

// BuildCallGraph constructs the package-local call graph over files and
// records each function's direct observations. Call Propagate afterwards
// to compute the interprocedural Requires/Consults facts.
func BuildCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{byObj: map[types.Object]*FuncNode{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			node := &FuncNode{Decl: fd, Obj: info.Defs[fd.Name]}
			g.Nodes = append(g.Nodes, node)
			if node.Obj != nil {
				g.byObj[node.Obj] = node
			}
		}
	}
	for _, n := range g.Nodes {
		g.observe(info, n)
	}
	return g
}

// observe records one function's direct facts and resolved call sites.
func (g *CallGraph) observe(info *types.Info, n *FuncNode) {
	n.CtxParams = CtxParams(info, n.Decl.Type)
	if n.Decl.Body == nil {
		return
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			n.Spawns = true
		case *ast.ForStmt:
			if Unbounded(node) {
				n.Unbounded = true
			}
		case *ast.CallExpr:
			g.observeCall(info, n, node)
		case *ast.ReturnStmt:
			// Returning a live ctx forwards it to the caller (the shape of
			// context wrappers); it is not a dead parameter, but the return
			// does not count as consulting.
			for _, res := range node.Results {
				if IsContext(info.TypeOf(res)) && !mintsContext(info, res) {
					n.ForwardsLive = true
				}
			}
		case *ast.CompositeLit:
			// Embedding a live ctx in a struct literal (a derived context
			// carrying extra values) likewise forwards it.
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if IsContext(info.TypeOf(elt)) && !mintsContext(info, elt) {
					n.ForwardsLive = true
				}
			}
		}
		return true
	})
}

func (g *CallGraph) observeCall(info *types.Info, n *FuncNode, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Done", "Err", "Deadline", "Value":
			if IsContext(info.TypeOf(sel.X)) {
				n.ConsultsDirect = true
			}
		}
	}
	arg := ctxArgKind(info, call)
	obj := calleeObject(info, call)
	callee := g.byObj[obj]
	if arg == CtxArgLive {
		n.ForwardsLive = true
		if callee == nil && !isObsCallee(obj) {
			n.forwardsOutside = true
		}
	}
	if callee != nil {
		n.Calls = append(n.Calls, CallSite{Call: call, Callee: callee, CtxArg: arg})
	}
}

// isObsCallee reports whether obj names a function of an observability
// package (import path ending in internal/obs). Span and metric helpers
// record the ctx's trace lineage but never wire cancellation through it,
// so a live ctx handed to them clears the dead-parameter rule without
// counting as consulted: a spawner whose only ctx use is starting a span
// still needs a real cancellation point.
func isObsCallee(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// calleeObject resolves a call's target to the function object it names,
// or nil for calls through values the type-checker cannot pin to one
// declaration (function-typed variables, parameters, interface methods
// from other packages).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		// Covers x.m() on named receivers and T.m method expressions:
		// Uses maps the selected identifier to the *types.Func.
		return info.Uses[fun.Sel]
	}
	return nil
}

// ctxArgKind classifies the context argument a call passes.
func ctxArgKind(info *types.Info, call *ast.CallExpr) CtxArgKind {
	kind := CtxArgNone
	for _, arg := range call.Args {
		if !IsContext(info.TypeOf(arg)) {
			continue
		}
		if mintsContext(info, arg) {
			if kind == CtxArgNone {
				kind = CtxArgBackground
			}
			continue
		}
		return CtxArgLive
	}
	return kind
}

// mintsContext reports whether e is a direct context.Background() or
// context.TODO() call.
func mintsContext(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "Background" || obj.Name() == "TODO"
}

// Propagate iterates the per-function facts to a fixed point:
//
//   - Requires(f) = f spawns or loops unboundedly, or any callee of f
//     requires a context (the transitive closure over all same-package
//     call edges, whatever arguments the calls pass).
//   - Consults(f) = f consults a context directly, or passes a live
//     context to a callee that consults, or passes a live context
//     outside the graph (assumed consulted).
//
// Both facts are monotone over a finite domain, so iteration terminates.
func (g *CallGraph) Propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if !n.Requires && n.Direct() {
				n.Requires = true
				changed = true
			}
			consults := n.ConsultsDirect || n.forwardsOutside
			for i := range n.Calls {
				cs := &n.Calls[i]
				if !n.Requires && cs.Callee.Requires {
					n.Requires = true
					n.RequiresVia = cs.Callee
					changed = true
				}
				if cs.CtxArg == CtxArgLive && cs.Callee.Consults {
					consults = true
				}
			}
			if consults && !n.Consults {
				n.Consults = true
				changed = true
			}
		}
	}
}
