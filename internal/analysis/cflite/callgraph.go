// Call-graph construction and context-fact propagation for the
// interprocedural half of the concurrency analyzers.
//
// The graph covers one package's syntax but is no longer blind past its
// edges. Three kinds of call resolve:
//
//   - Same-package calls whose callee is a FuncDecl (plain functions,
//     methods on named receivers, method expressions) become edges, as
//     before.
//
//   - Calls through function-typed variables, struct fields, and
//     parameters resolve when the bound value is package-visible and
//     unique — a single static assignment of a FuncDecl reference or a
//     FuncLit (see funcval.go). Unique FuncLit bindings get synthetic
//     nodes of their own, so a package-level `var run = func() {...}`
//     is a first-class graph citizen.
//
//   - Cross-package calls resolve against the facts the callee's package
//     exported when it was analyzed earlier in the same driver run
//     (dependency order): the callee becomes a leaf node pre-seeded with
//     its propagated requires/consults facts (see fact.go).
//
//   - Interface-method calls resolve through the devirtualization ladder
//     in iface.go: a receiver binding with a unique concrete type, a
//     module-wide sole implementor, or a synthetic consensus node when
//     every implementor's facts agree.
//
// Everything else — unresolved interface methods, ambiguous function
// values, calls into packages with no exported facts — stays outside the
// graph and is treated conservatively by the fact propagation below.
package cflite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxArgKind classifies the context argument of one resolved call.
type CtxArgKind int

const (
	// CtxArgNone: the call passes no context-typed argument.
	CtxArgNone CtxArgKind = iota
	// CtxArgBackground: the call mints a fresh root context in place —
	// a direct context.Background() or context.TODO() argument — which
	// severs the caller's cancellation chain.
	CtxArgBackground
	// CtxArgLive: the call passes some live context value (a parameter,
	// a derived context, a field).
	CtxArgLive
)

// CallSite is one resolved call.
type CallSite struct {
	// Call is the syntax of the call.
	Call *ast.CallExpr
	// Callee is the called function's node (possibly external or a bound
	// function literal).
	Callee *FuncNode
	// CtxArg classifies the context argument the call passes, if any.
	CtxArg CtxArgKind
	// Iface, when the call was written against an interface method and
	// devirtualized, is that interface method's object path (the Callee
	// is the resolved implementor or a consensus node). Empty for direct
	// calls.
	Iface string
}

// FuncNode is one function known to the graph: a declaration of the
// package, a function literal uniquely bound to a variable or field, or
// an external function represented by its imported facts.
type FuncNode struct {
	// Decl is the function's declaration (Body may be nil for
	// assembly-backed declarations; such nodes carry no direct facts).
	// Nil for bound-literal and external nodes.
	Decl *ast.FuncDecl
	// Lit is the function literal for a bound-literal node.
	Lit *ast.FuncLit
	// BindName is the variable or field name a bound literal was
	// assigned to, used where a declared name would be.
	BindName string
	// Enclosed marks a bound literal that appears inside some declared
	// function's body: its syntax is already covered by the enclosing
	// node's body walks, so analyzers skip it to avoid double reporting
	// (the node still exists to give calls through the binding an edge).
	Enclosed bool
	// External marks a node standing for another package's function,
	// reconstructed from that package's exported facts. It has no body;
	// its propagated facts below are fixed.
	External bool
	// Obj is the *types.Func object: from the type-checker's Defs map
	// for declarations, from the import for external nodes, nil for
	// bound literals.
	Obj types.Object
	// Calls lists the resolved calls made anywhere in the body,
	// including inside function literals and go/defer statements.
	Calls []CallSite

	// CtxParams names the function's context.Context parameters.
	CtxParams []string
	// Spawns: the body contains a go statement.
	Spawns bool
	// Unbounded: the body contains a structurally unbounded for loop.
	Unbounded bool
	// ConsultsDirect: the body calls Done/Err/Deadline/Value on a
	// context-typed expression.
	ConsultsDirect bool
	// ForwardsLive: the body hands a live (non-minted) context onward —
	// as an argument to any call, in or out of the graph, as a return
	// value, or embedded in a composite literal (the context-wrapper
	// shape of internal/obs).
	ForwardsLive bool
	// forwardsOutside: a live context leaves the graph (unknown callee);
	// the propagation assumes the recipient consults it. A live ctx
	// passed to a callee with known facts does NOT set this — the
	// callee's own Consults fact decides.
	forwardsOutside bool

	// Requires is set by Propagate: executing this function may spawn a
	// goroutine or loop unboundedly, directly or via any callee, so
	// cancellation must be wired through it.
	Requires bool
	// RequiresVia is the callee through which a purely transitive
	// requirement first arrived (nil when the requirement is direct).
	RequiresVia *FuncNode
	// FactVia, on an external node, is the first hop recorded in the
	// exporting package when its requirement was transitive ("via
	// forEachIndexed"), for diagnostics and provenance.
	FactVia string
	// Consults is set by Propagate: the function consults a context
	// directly, or passes a live context to a callee that (transitively)
	// does, or passes a live context outside the graph (assumed
	// consulted).
	Consults bool

	// Implementors, on a synthetic consensus node, lists the object paths
	// of the agreeing implementors the node stands for.
	Implementors []string
	// IfaceUnresolved records, per calling function, the interface-method
	// calls that stayed conservative because implementors disagreed, as
	// human-readable provenance strings naming the disagreeing set.
	IfaceUnresolved []string
}

// Name returns the function's name: the declared name, the bound
// variable/field name for literals, or "pkg.Name" for external nodes.
func (n *FuncNode) Name() string {
	switch {
	case n.Decl != nil:
		return n.Decl.Name.Name
	case n.External && n.Obj != nil:
		if pkg := n.Obj.Pkg(); pkg != nil {
			return pkg.Name() + "." + n.Obj.Name()
		}
		return n.Obj.Name()
	default:
		return n.BindName
	}
}

// FullName returns the fully qualified object path for declared and
// external nodes (types.Func.FullName), or Name() for bound literals.
func (n *FuncNode) FullName() string {
	if fn, ok := n.Obj.(*types.Func); ok {
		return fn.FullName()
	}
	return n.Name()
}

// Body returns the function's body syntax: the declaration's or the
// bound literal's. Nil for external and body-less nodes.
func (n *FuncNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// Pos returns the position of the node's declaration or bound literal
// (token.NoPos for external nodes, which have no syntax).
func (n *FuncNode) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Direct reports whether the node's cancellation requirement is its own
// (a spawn or unbounded loop in its body) rather than inherited.
func (n *FuncNode) Direct() bool { return n.Spawns || n.Unbounded }

// ExternalFacts resolves a cross-package function object to the facts
// its package exported, if that package was analyzed earlier in the
// driver run. Nil disables cross-package resolution.
type ExternalFacts func(obj types.Object) (FuncFacts, bool)

// Externals bundles the module-level lookups the graph uses to resolve
// past the package boundary. The zero value disables all of them.
type Externals struct {
	// Facts resolves a cross-package function object to its exported
	// facts.
	Facts ExternalFacts
	// Impls returns the merged module-wide implementor fact for an
	// interface method; ok is false when type-level devirtualization is
	// unusable for it (interface declared outside the closed world, or
	// nothing collected).
	Impls func(ifn *types.Func) (ImplFacts, bool)
	// FactsByPath resolves an implementor known only by object path (a
	// merged implementor record) to its exported facts.
	FactsByPath func(objPath string) (FuncFacts, bool)
}

// CallGraph is the per-package call graph with cross-package leaves.
type CallGraph struct {
	// Nodes holds every declared function in file/declaration order,
	// followed by the synthetic nodes of uniquely bound function
	// literals in binding-discovery order. External nodes are not
	// listed; they only appear as CallSite callees.
	Nodes []*FuncNode

	byObj        map[types.Object]*FuncNode
	byName       map[string]*FuncNode
	ext          map[types.Object]*FuncNode
	extByPath    map[string]*FuncNode
	exts         Externals
	ifaceBind    map[types.Object]ifaceBinding
	consensus    map[*types.Func]*FuncNode
	consensusWhy map[*types.Func]string
}

// NodeFor returns the node calls through obj resolve to: the declaring
// node for a package function, or the bound target for a function-typed
// variable, field, or parameter with a unique static binding. Nil if
// unresolved.
func (g *CallGraph) NodeFor(obj types.Object) *FuncNode { return g.byObj[obj] }

// BuildCallGraph constructs the package call graph over files and
// records each function's direct observations. exts supplies the
// module-level lookups (cross-package facts, interface implementors);
// the zero Externals disables cross-package and type-level interface
// resolution. Call Propagate afterwards to compute the interprocedural
// Requires/Consults facts.
func BuildCallGraph(info *types.Info, files []*ast.File, exts Externals) *CallGraph {
	g := &CallGraph{
		byObj:        map[types.Object]*FuncNode{},
		byName:       map[string]*FuncNode{},
		ext:          map[types.Object]*FuncNode{},
		extByPath:    map[string]*FuncNode{},
		exts:         exts,
		consensus:    map[*types.Func]*FuncNode{},
		consensusWhy: map[*types.Func]string{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			node := &FuncNode{Decl: fd, Obj: info.Defs[fd.Name]}
			g.Nodes = append(g.Nodes, node)
			if node.Obj != nil {
				g.byObj[node.Obj] = node
				if fn, ok := node.Obj.(*types.Func); ok {
					g.byName[fn.FullName()] = node
				}
			}
		}
	}
	g.resolveBindings(info, files)
	for _, n := range g.Nodes {
		g.observe(info, n)
	}
	return g
}

// externalNode returns (creating on first use) the leaf node standing
// for another package's function, or nil when no facts were exported
// for it.
func (g *CallGraph) externalNode(obj types.Object) *FuncNode {
	if n, ok := g.ext[obj]; ok {
		return n
	}
	var node *FuncNode
	if g.exts.Facts != nil {
		if f, ok := g.exts.Facts(obj); ok {
			node = &FuncNode{
				External:  true,
				Obj:       obj,
				CtxParams: sigCtxParams(obj),
				Spawns:    f.Spawns,
				Unbounded: f.Unbounded,
				Requires:  f.Requires,
				Consults:  f.Consults,
				FactVia:   f.Via,
			}
		}
	}
	g.ext[obj] = node // negative results cached too
	return node
}

// sigCtxParams lists the context.Context parameter names of obj's
// signature (the external-node analog of CtxParams, which needs syntax).
func sigCtxParams(obj types.Object) []string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var names []string
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); IsContext(p.Type()) {
			names = append(names, p.Name())
		}
	}
	return names
}

// observe records one function's direct facts and resolved call sites.
func (g *CallGraph) observe(info *types.Info, n *FuncNode) {
	if n.Decl != nil {
		n.CtxParams = CtxParams(info, n.Decl.Type)
	} else if n.Lit != nil {
		n.CtxParams = CtxParams(info, n.Lit.Type)
	}
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			n.Spawns = true
		case *ast.ForStmt:
			if Unbounded(node) {
				n.Unbounded = true
			}
		case *ast.CallExpr:
			g.observeCall(info, n, node)
		case *ast.ReturnStmt:
			// Returning a live ctx forwards it to the caller (the shape of
			// context wrappers); it is not a dead parameter, but the return
			// does not count as consulting.
			for _, res := range node.Results {
				if IsContext(info.TypeOf(res)) && !mintsContext(info, res) {
					n.ForwardsLive = true
				}
			}
		case *ast.CompositeLit:
			// Embedding a live ctx in a struct literal (a derived context
			// carrying extra values) likewise forwards it.
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if IsContext(info.TypeOf(elt)) && !mintsContext(info, elt) {
					n.ForwardsLive = true
				}
			}
		}
		return true
	})
}

func (g *CallGraph) observeCall(info *types.Info, n *FuncNode, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Done", "Err", "Deadline", "Value":
			if IsContext(info.TypeOf(sel.X)) {
				n.ConsultsDirect = true
			}
		}
	}
	arg := ctxArgKind(info, call)
	callee, iface := g.resolveCallee(info, n, call)
	if arg == CtxArgLive {
		n.ForwardsLive = true
		if callee == nil && !isObsCallee(calleeObject(info, call)) {
			n.forwardsOutside = true
		}
	}
	if callee != nil {
		n.Calls = append(n.Calls, CallSite{Call: call, Callee: callee, CtxArg: arg, Iface: iface})
	}
}

// resolveCallee resolves a call to its graph node: a same-package
// declaration or bound function value (byObj), a devirtualized interface
// method, or an external leaf from exported facts. iface is the
// interface method's object path when devirtualization supplied the
// node. n, when non-nil, receives provenance for interface calls left
// conservative by disagreeing implementors.
func (g *CallGraph) resolveCallee(info *types.Info, n *FuncNode, call *ast.CallExpr) (callee *FuncNode, iface string) {
	obj := calleeObject(info, call)
	// byObj resolves same-package declarations and — through the binding
	// pass — function-typed variables, fields, and parameters with a
	// unique static target.
	if callee := g.byObj[obj]; callee != nil {
		return callee, ""
	}
	if obj == nil || isObsCallee(obj) {
		return nil, ""
	}
	if ifn, ok := ifaceMethod(obj); ok {
		var recv types.Object
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = receiverObject(info, sel.X)
		}
		callee, why := g.devirt(ifn, recv)
		if callee == nil {
			if why != "" && n != nil {
				n.IfaceUnresolved = appendUnique(n.IfaceUnresolved, why)
			}
			return nil, ""
		}
		return callee, ifn.FullName()
	}
	if _, isFunc := obj.(*types.Func); isFunc {
		return g.externalNode(obj), ""
	}
	return nil, ""
}

// ResolveCall resolves a call expression to its graph node the same way
// edge construction does — declarations, bound function values, and
// devirtualized interface methods — for analyzers that inspect call
// syntax directly (waitleak's spawn targets). Nil when unresolved.
func (g *CallGraph) ResolveCall(info *types.Info, call *ast.CallExpr) *FuncNode {
	callee, _ := g.resolveCallee(info, nil, call)
	return callee
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// isObsCallee reports whether obj names a function of an observability
// package (import path ending in internal/obs). Span and metric helpers
// record the ctx's trace lineage but never wire cancellation through it,
// so a live ctx handed to them clears the dead-parameter rule without
// counting as consulted: a spawner whose only ctx use is starting a span
// still needs a real cancellation point. The carve-out also wins over
// exported facts — obs functions consult ctx values internally, but that
// must not launder a missing cancellation point.
func isObsCallee(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// calleeObject resolves a call's target to the object it names: a
// *types.Func for direct calls and method calls, a *types.Var for calls
// through function-typed variables or fields, or nil for anything the
// type-checker cannot pin down.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		// Covers x.m() on named receivers, T.m method expressions, and
		// x.field() function-field calls: Uses maps the selected
		// identifier to the *types.Func or field *types.Var.
		return info.Uses[fun.Sel]
	}
	return nil
}

// ctxArgKind classifies the context argument a call passes.
func ctxArgKind(info *types.Info, call *ast.CallExpr) CtxArgKind {
	kind := CtxArgNone
	for _, arg := range call.Args {
		if !IsContext(info.TypeOf(arg)) {
			continue
		}
		if mintsContext(info, arg) {
			if kind == CtxArgNone {
				kind = CtxArgBackground
			}
			continue
		}
		return CtxArgLive
	}
	return kind
}

// mintsContext reports whether e is a direct context.Background() or
// context.TODO() call.
func mintsContext(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "Background" || obj.Name() == "TODO"
}

// Propagate iterates the per-function facts to a fixed point:
//
//   - Requires(f) = f spawns or loops unboundedly, or any callee of f
//     requires a context (the transitive closure over all resolved call
//     edges — same-package, bound-value, and cross-package — whatever
//     arguments the calls pass).
//   - Consults(f) = f consults a context directly, or passes a live
//     context to a callee that consults, or passes a live context
//     outside the graph (assumed consulted). A live context passed to a
//     callee with known facts is consulted only if those facts say so.
//
// External nodes enter with their exported facts fixed and have no call
// sites, so they act as constant boundary conditions. Both facts are
// monotone over a finite domain, so iteration terminates.
func (g *CallGraph) Propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if !n.Requires && n.Direct() {
				n.Requires = true
				changed = true
			}
			consults := n.ConsultsDirect || n.forwardsOutside
			for i := range n.Calls {
				cs := &n.Calls[i]
				if !n.Requires && cs.Callee.Requires {
					n.Requires = true
					n.RequiresVia = cs.Callee
					changed = true
				}
				if cs.CtxArg == CtxArgLive && cs.Callee.Consults {
					consults = true
				}
			}
			if consults && !n.Consults {
				n.Consults = true
				changed = true
			}
		}
	}
}
