// Function-value resolution: calls through function-typed variables,
// struct fields, and parameters resolve to a real graph edge when the
// bound value is package-visible and unique — a single static assignment
// of a same-package FuncDecl reference, a FuncLit, or a cross-package
// function with exported facts. Anything else (multiple candidates, a
// reassignment through a pointer, an exported binding another package
// could overwrite, a function whose value escapes) falls back to the
// conservative "outside call" treatment.
package cflite

import (
	"go/ast"
	"go/token"
	"go/types"
)

// bindTarget is one candidate value bound to a function-typed object.
type bindTarget struct {
	fn  types.Object // a *types.Func (same-package or imported); nil for literals
	lit *ast.FuncLit
}

// candSet accumulates the values assigned to one object.
type candSet struct {
	targets []bindTarget
	taint   bool // a non-resolvable value, tuple assignment, &obj, or visibility leak
}

func (c *candSet) add(t bindTarget) {
	if t.fn == nil && t.lit == nil {
		c.taint = true
		return
	}
	for _, have := range c.targets {
		if t.fn != nil && have.fn == t.fn {
			return // the same function assigned twice is still unique
		}
	}
	c.targets = append(c.targets, t)
}

// resolveBindings finds unique static bindings and installs them in
// g.byObj, creating synthetic nodes for bound function literals, so
// observeCall resolves calls through the bound objects.
func (g *CallGraph) resolveBindings(info *types.Info, files []*ast.File) {
	// The analyzed package, read off any defined object: fields of
	// foreign structs are compared against it (assigning to them is a
	// visibility leak — code this package never sees can rebind them).
	var pkg *types.Package
	for _, obj := range info.Defs {
		if obj != nil && obj.Pkg() != nil {
			pkg = obj.Pkg()
			break
		}
	}
	c := &bindingCollector{
		info:    info,
		pkg:     pkg,
		cands:   map[types.Object]*candSet{},
		escaped: map[types.Object]bool{},
	}
	for _, f := range files {
		c.file(f)
	}
	// A function whose value escapes (referenced outside call position)
	// can be invoked from anywhere with any arguments: its parameters
	// have no unique binding.
	for fn := range c.escaped {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if set := c.cands[sig.Params().At(i)]; set != nil {
				set.taint = true
			}
		}
	}
	for _, obj := range c.order {
		set := c.cands[obj]
		if set.taint || len(set.targets) != 1 {
			continue // ambiguous or invisible: conservative fallback
		}
		t := set.targets[0]
		var target *FuncNode
		switch {
		case t.lit != nil:
			target = g.litNode(t.lit)
			if target.BindName == "" {
				target.BindName = obj.Name()
			}
		default:
			if target = g.byObj[t.fn]; target == nil && !isObsCallee(t.fn) {
				target = g.externalNode(t.fn)
			}
		}
		if target != nil {
			g.byObj[obj] = target
		}
	}
}

// litNode returns (creating on first use) the synthetic node for a bound
// function literal, marking whether some declared function's body
// already encloses its syntax.
func (g *CallGraph) litNode(lit *ast.FuncLit) *FuncNode {
	for _, n := range g.Nodes {
		if n.Lit == lit {
			return n
		}
	}
	node := &FuncNode{Lit: lit, Enclosed: g.encloses(lit.Pos())}
	g.Nodes = append(g.Nodes, node)
	return node
}

// encloses reports whether pos falls inside any declared function body.
func (g *CallGraph) encloses(pos token.Pos) bool {
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Decl.Body != nil &&
			n.Decl.Body.Pos() <= pos && pos < n.Decl.Body.End() {
			return true
		}
	}
	return false
}

// bindingCollector walks a package's syntax recording every assignment
// of a value to a function-typed variable, field, or parameter.
type bindingCollector struct {
	info    *types.Info
	pkg     *types.Package // the package under analysis
	cands   map[types.Object]*candSet
	order   []types.Object // deterministic iteration for node creation
	escaped map[types.Object]bool
	// callFun marks identifiers appearing as a call's function (directly
	// or as the Sel of a selector), so other *types.Func uses count as
	// value escapes.
	callFun map[*ast.Ident]bool
}

func (c *bindingCollector) file(f *ast.File) {
	c.callFun = map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				c.callFun[fun] = true
			case *ast.SelectorExpr:
				c.callFun[fun.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			c.valueSpec(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				c.taintObj(c.lhsObject(n.X))
			}
		case *ast.CallExpr:
			c.callArgs(n)
		case *ast.Ident:
			if fn, ok := c.info.Uses[n].(*types.Func); ok && !c.callFun[n] {
				c.escaped[fn] = true
			}
		}
		return true
	})
}

func (c *bindingCollector) valueSpec(spec *ast.ValueSpec) {
	if len(spec.Values) == 0 {
		return // zero value: no candidate (a later single assignment still resolves)
	}
	if len(spec.Values) != len(spec.Names) {
		for _, name := range spec.Names {
			c.taintObj(c.info.Defs[name])
		}
		return
	}
	for i, name := range spec.Names {
		c.record(c.info.Defs[name], spec.Values[i])
	}
}

func (c *bindingCollector) assign(as *ast.AssignStmt) {
	if len(as.Rhs) != len(as.Lhs) {
		for _, lhs := range as.Lhs {
			c.taintObj(c.lhsObject(lhs))
		}
		return
	}
	for i, lhs := range as.Lhs {
		c.record(c.lhsObject(lhs), as.Rhs[i])
	}
}

// lhsObject resolves an assignment target to the variable or field
// object it stores into, or nil for targets without one (indexing,
// pointer dereference).
func (c *bindingCollector) lhsObject(lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := c.info.Defs[lhs]; obj != nil {
			return obj
		}
		return c.info.Uses[lhs]
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return c.info.Uses[lhs.Sel]
	}
	return nil
}

func (c *bindingCollector) composite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				c.record(c.info.Uses[key], kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			c.record(st.Field(i), elt)
		}
	}
}

// callArgs binds a call's arguments to the callee's parameters when the
// callee is a same-package unexported plain function (anything callable
// from outside the package, through a method set, or variadically has no
// package-visible binding).
func (c *bindingCollector) callArgs(call *ast.CallExpr) {
	fn, ok := calleeObject(c.info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Exported() {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Variadic() {
		return
	}
	if len(call.Args) != sig.Params().Len() {
		// Tuple expansion f(g()): the values are invisible here.
		for i := 0; i < sig.Params().Len(); i++ {
			c.taintObj(sig.Params().At(i))
		}
		return
	}
	for i, arg := range call.Args {
		c.record(sig.Params().At(i), arg)
	}
}

// record adds value as a binding candidate for obj, if obj is a
// function-typed variable, field, or parameter eligible for resolution.
func (c *bindingCollector) record(obj types.Object, value ast.Expr) {
	set := c.set(obj)
	if set == nil {
		return
	}
	set.add(c.bindValue(value))
}

func (c *bindingCollector) taintObj(obj types.Object) {
	if set := c.set(obj); set != nil {
		set.taint = true
	}
}

// set returns obj's candidate set, creating it on first use with the
// visibility pre-taints: exported package-level variables and exported
// or foreign struct fields can be rebound by code this package never
// sees.
func (c *bindingCollector) set(obj types.Object) *candSet {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return nil
	}
	if set, ok := c.cands[obj]; ok {
		return set
	}
	set := &candSet{}
	switch {
	case v.Pkg() == nil:
		set.taint = true
	case v.IsField():
		if v.Exported() || v.Pkg() != c.pkg {
			set.taint = true
		}
	case v.Parent() != nil && v.Pkg().Scope() == v.Parent():
		if v.Exported() {
			set.taint = true // exported package var: rebindable elsewhere
		}
	}
	c.cands[obj] = set
	c.order = append(c.order, obj)
	return set
}

// bindValue classifies a bound value: a function literal, a direct
// reference to a function (same-package or qualified import), or — for
// anything else — a taint marker. Method values (x.m) are not static
// targets: the receiver varies.
func (c *bindingCollector) bindValue(value ast.Expr) bindTarget {
	switch value := ast.Unparen(value).(type) {
	case *ast.FuncLit:
		return bindTarget{lit: value}
	case *ast.Ident:
		if fn, ok := c.info.Uses[value].(*types.Func); ok {
			return bindTarget{fn: fn}
		}
	case *ast.SelectorExpr:
		if _, isMethodVal := c.info.Selections[value]; isMethodVal {
			break
		}
		if fn, ok := c.info.Uses[value.Sel].(*types.Func); ok {
			return bindTarget{fn: fn}
		}
	}
	return bindTarget{}
}
