// Function-value and interface-receiver binding resolution: calls
// through function-typed variables, struct fields, and parameters
// resolve to a real graph edge when the bound value is package-visible
// and unique — a single static assignment of a same-package FuncDecl
// reference, a FuncLit, or a cross-package function with exported facts.
// Interface-typed bindings are tracked by the same collector: the set of
// concrete types assigned into each binding decides how calls through
// its methods devirtualize (see iface.go). Anything else (multiple
// candidates, a reassignment through a pointer, an exported binding
// another package could overwrite, a function whose value escapes) falls
// back to the conservative "outside call" treatment.
package cflite

import (
	"go/ast"
	"go/token"
	"go/types"
)

// bindTarget is one candidate value bound to a function- or
// interface-typed object.
type bindTarget struct {
	fn  types.Object // a *types.Func (same-package or imported); nil otherwise
	lit *ast.FuncLit
	typ types.Type // the concrete type flowing into an interface binding
}

// candSet accumulates the values assigned to one object. The two taint
// kinds fail different rungs of the resolution ladder: a value taint (a
// value the collector cannot classify — another interface, a tuple
// assignment) only spoils unique-binding resolution, because the value
// still originated inside the closed world and the module-wide
// implementor set still bounds it; a visibility taint (an exported
// binding, a foreign field, a parameter of an exported function, &obj)
// means code outside the analysis set can supply values the run never
// saw, so every resolution rung is off.
type candSet struct {
	targets  []bindTarget
	taintVal bool // a value the collector could not classify
	taintVis bool // the binding is writable from outside the package's sight
}

func (c *candSet) tainted() bool { return c.taintVal || c.taintVis }

func (c *candSet) add(t bindTarget) {
	if t.fn == nil && t.lit == nil && t.typ == nil {
		c.taintVal = true
		return
	}
	for _, have := range c.targets {
		if t.fn != nil && have.fn == t.fn {
			return // the same function assigned twice is still unique
		}
		if t.typ != nil && have.typ != nil && types.Identical(t.typ, have.typ) {
			return // the same concrete type assigned twice is still unique
		}
	}
	c.targets = append(c.targets, t)
}

// resolveBindings finds unique static bindings and installs them in
// g.byObj (function-typed: calls through the object resolve to the bound
// function, with synthetic nodes for bound literals) and g.ifaceBind
// (interface-typed: the one concrete type the binding can hold), so
// observeCall resolves calls through the bound objects.
func (g *CallGraph) resolveBindings(info *types.Info, files []*ast.File) {
	// The analyzed package, read off any defined object: fields of
	// foreign structs are compared against it (assigning to them is a
	// visibility leak — code this package never sees can rebind them).
	var pkg *types.Package
	for _, obj := range info.Defs {
		if obj != nil && obj.Pkg() != nil {
			pkg = obj.Pkg()
			break
		}
	}
	c := &bindingCollector{
		info:    info,
		pkg:     pkg,
		cands:   map[types.Object]*candSet{},
		escaped: map[types.Object]bool{},
	}
	for _, f := range files {
		c.file(f)
	}
	// A function whose value escapes (referenced outside call position)
	// can be invoked from anywhere with any arguments: its parameters
	// have no unique binding.
	for fn := range c.escaped {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			c.taintVis(sig.Params().At(i))
		}
	}
	for _, obj := range c.order {
		set := c.cands[obj]
		if isIfaceObj(obj) {
			g.resolveIfaceBinding(obj, set)
			continue
		}
		if set.tainted() || len(set.targets) != 1 {
			continue // ambiguous or invisible: conservative fallback
		}
		t := set.targets[0]
		var target *FuncNode
		switch {
		case t.lit != nil:
			target = g.litNode(t.lit)
			if target.BindName == "" {
				target.BindName = obj.Name()
			}
		default:
			if target = g.byObj[t.fn]; target == nil && !isObsCallee(t.fn) {
				target = g.externalNode(t.fn)
			}
		}
		if target != nil {
			g.byObj[obj] = target
		}
	}
}

// isIfaceObj reports whether obj is an interface-typed variable or field.
func isIfaceObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, ok = v.Type().Underlying().(*types.Interface)
	return ok
}

// litNode returns (creating on first use) the synthetic node for a bound
// function literal, marking whether some declared function's body
// already encloses its syntax.
func (g *CallGraph) litNode(lit *ast.FuncLit) *FuncNode {
	for _, n := range g.Nodes {
		if n.Lit == lit {
			return n
		}
	}
	node := &FuncNode{Lit: lit, Enclosed: g.encloses(lit.Pos())}
	g.Nodes = append(g.Nodes, node)
	return node
}

// encloses reports whether pos falls inside any declared function body.
func (g *CallGraph) encloses(pos token.Pos) bool {
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Decl.Body != nil &&
			n.Decl.Body.Pos() <= pos && pos < n.Decl.Body.End() {
			return true
		}
	}
	return false
}

// bindingCollector walks a package's syntax recording every assignment
// of a value to a function- or interface-typed variable, field, or
// parameter.
type bindingCollector struct {
	info    *types.Info
	pkg     *types.Package // the package under analysis
	cands   map[types.Object]*candSet
	order   []types.Object // deterministic iteration for node creation
	escaped map[types.Object]bool
	// callFun marks identifiers appearing as a call's function (directly
	// or as the Sel of a selector), so other *types.Func uses count as
	// value escapes.
	callFun map[*ast.Ident]bool
}

func (c *bindingCollector) file(f *ast.File) {
	c.callFun = map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				c.callFun[fun] = true
			case *ast.SelectorExpr:
				c.callFun[fun.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			c.funcParams(n)
		case *ast.ValueSpec:
			c.valueSpec(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				c.taintVis(c.lhsObject(n.X))
			}
		case *ast.CallExpr:
			c.callArgs(n)
		case *ast.Ident:
			if fn, ok := c.info.Uses[n].(*types.Func); ok && !c.callFun[n] {
				c.escaped[fn] = true
			}
		}
		return true
	})
}

// funcParams visibility-taints the interface-typed parameters of
// functions callable from outside the package's sight: exported
// functions (any package may pass any implementation) and methods (the
// receiver value — and with it the call — can travel anywhere, including
// back through an interface). Unexported plain functions' parameters
// stay clean; callArgs records their per-site bindings.
func (c *bindingCollector) funcParams(fd *ast.FuncDecl) {
	if fd.Recv == nil && !fd.Name.IsExported() {
		return
	}
	fn, ok := c.info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isIfaceObj(sig.Params().At(i)) {
			c.taintVis(sig.Params().At(i))
		}
	}
}

func (c *bindingCollector) valueSpec(spec *ast.ValueSpec) {
	if len(spec.Values) == 0 {
		return // zero value: no candidate (a later single assignment still resolves)
	}
	if len(spec.Values) != len(spec.Names) {
		for _, name := range spec.Names {
			c.taintVal(c.info.Defs[name])
		}
		return
	}
	for i, name := range spec.Names {
		c.record(c.info.Defs[name], spec.Values[i])
	}
}

func (c *bindingCollector) assign(as *ast.AssignStmt) {
	if len(as.Rhs) != len(as.Lhs) {
		for _, lhs := range as.Lhs {
			c.taintVal(c.lhsObject(lhs))
		}
		return
	}
	for i, lhs := range as.Lhs {
		c.record(c.lhsObject(lhs), as.Rhs[i])
	}
}

// lhsObject resolves an assignment target to the variable or field
// object it stores into, or nil for targets without one (indexing,
// pointer dereference).
func (c *bindingCollector) lhsObject(lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := c.info.Defs[lhs]; obj != nil {
			return obj
		}
		return c.info.Uses[lhs]
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return c.info.Uses[lhs.Sel]
	}
	return nil
}

func (c *bindingCollector) composite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				c.record(c.info.Uses[key], kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			c.record(st.Field(i), elt)
		}
	}
}

// callArgs binds a call's arguments to the callee's parameters when the
// callee is a same-package unexported plain function (anything callable
// from outside the package, through a method set, or variadically has no
// package-visible binding).
func (c *bindingCollector) callArgs(call *ast.CallExpr) {
	fn, ok := calleeObject(c.info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Exported() {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Variadic() {
		return
	}
	if len(call.Args) != sig.Params().Len() {
		// Tuple expansion f(g()): the values are invisible here.
		for i := 0; i < sig.Params().Len(); i++ {
			c.taintVal(sig.Params().At(i))
		}
		return
	}
	for i, arg := range call.Args {
		c.record(sig.Params().At(i), arg)
	}
}

// record adds value as a binding candidate for obj, if obj is a
// function- or interface-typed variable, field, or parameter eligible
// for resolution.
func (c *bindingCollector) record(obj types.Object, value ast.Expr) {
	set := c.set(obj)
	if set == nil {
		return
	}
	if isIfaceObj(obj) {
		set.add(c.ifaceValue(value))
		return
	}
	set.add(c.bindValue(value))
}

func (c *bindingCollector) taintVal(obj types.Object) {
	if set := c.set(obj); set != nil {
		set.taintVal = true
	}
}

func (c *bindingCollector) taintVis(obj types.Object) {
	if set := c.set(obj); set != nil {
		set.taintVis = true
	}
}

// set returns obj's candidate set, creating it on first use with the
// visibility pre-taints: exported package-level variables and exported
// or foreign struct fields can be rebound by code this package never
// sees.
func (c *bindingCollector) set(obj types.Object) *candSet {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Signature, *types.Interface:
	default:
		return nil
	}
	if set, ok := c.cands[obj]; ok {
		return set
	}
	set := &candSet{}
	switch {
	case v.Pkg() == nil:
		set.taintVis = true
	case v.IsField():
		if v.Exported() || v.Pkg() != c.pkg {
			set.taintVis = true
		}
	case v.Parent() != nil && v.Pkg().Scope() == v.Parent():
		if v.Exported() {
			set.taintVis = true // exported package var: rebindable elsewhere
		}
	}
	c.cands[obj] = set
	c.order = append(c.order, obj)
	return set
}

// bindValue classifies a value bound to a function-typed object: a
// function literal, a direct reference to a function (same-package or
// qualified import), or — for anything else — a taint marker. Method
// values (x.m) are not static targets: the receiver varies.
func (c *bindingCollector) bindValue(value ast.Expr) bindTarget {
	switch value := ast.Unparen(value).(type) {
	case *ast.FuncLit:
		return bindTarget{lit: value}
	case *ast.Ident:
		if fn, ok := c.info.Uses[value].(*types.Func); ok {
			return bindTarget{fn: fn}
		}
	case *ast.SelectorExpr:
		if _, isMethodVal := c.info.Selections[value]; isMethodVal {
			break
		}
		if fn, ok := c.info.Uses[value.Sel].(*types.Func); ok {
			return bindTarget{fn: fn}
		}
	}
	return bindTarget{}
}

// ifaceValue classifies a value bound to an interface-typed object: a
// concrete type is a candidate; nil contributes nothing (it has no
// methods — a call through it panics before dispatch matters); another
// interface value or a type parameter is a taint marker (the dynamic
// type behind it is not pinned by this binding, though the module-wide
// implementor set still bounds it).
func (c *bindingCollector) ifaceValue(value ast.Expr) bindTarget {
	t := c.info.TypeOf(value)
	if t == nil {
		return bindTarget{}
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		// A recorded nil keeps the set resolvable without becoming a
		// candidate: report it as the sentinel "same type twice" shape.
		return bindTarget{typ: types.Typ[types.UntypedNil]}
	}
	switch t.Underlying().(type) {
	case *types.Interface:
		return bindTarget{} // dynamic type unknown: taint
	}
	if _, ok := t.(*types.TypeParam); ok {
		return bindTarget{}
	}
	return bindTarget{typ: t}
}
