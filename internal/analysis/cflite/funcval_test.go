package cflite

import "testing"

const funcvalSrc = `package p

import "context"

func target(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
}

func other(ctx context.Context) { _ = ctx.Err() }

var bound = target

var Exported = target

var flips = target

func reassign() { flips = other }

type h struct {
	f func(context.Context)
	G func(context.Context)
}

func mk() *h { return &h{f: target, G: target} }

func callsBound(ctx context.Context)           { bound(ctx) }
func callsFlips(ctx context.Context)           { flips(ctx) }
func callsExported(ctx context.Context)        { Exported(ctx) }
func callsField(ctx context.Context, x *h)     { x.f(ctx) }
func callsExpField(ctx context.Context, x *h)  { x.G(ctx) }

func invoke(fn func(context.Context), ctx context.Context) { fn(ctx) }

func useInvoke(ctx context.Context) { invoke(target, ctx) }

var looper = func() {
	for {
	}
}

func callsLooper() { looper() }

func local(ctx context.Context) {
	f := func(ctx context.Context) { _ = ctx.Err() }
	f(ctx)
}
`

// edgeTo reports whether caller has a resolved call edge to a callee
// with the given display name.
func edgeTo(t *testing.T, g *CallGraph, caller, callee string) bool {
	t.Helper()
	for _, cs := range node(t, g, caller).Calls {
		if cs.Callee.Name() == callee {
			return true
		}
	}
	return false
}

func TestFuncValueBindings(t *testing.T) {
	g := buildGraph(t, funcvalSrc)

	// Unique bindings resolve: unexported package var, unexported field,
	// parameter of an unexported function with consistent call sites.
	for _, c := range []struct{ caller, callee string }{
		{"callsBound", "target"},
		{"callsField", "target"},
		{"invoke", "target"},
		{"callsLooper", "looper"},
	} {
		if !edgeTo(t, g, c.caller, c.callee) {
			t.Errorf("%s -> %s: binding did not resolve to an edge", c.caller, c.callee)
		}
	}

	// Tainted or ambiguous bindings stay conservative: an exported var or
	// field is rebindable by unseen code, and flips has two candidates.
	for _, c := range []struct{ caller, callee string }{
		{"callsExported", "target"},
		{"callsExpField", "target"},
		{"callsFlips", "target"},
		{"callsFlips", "other"},
	} {
		if edgeTo(t, g, c.caller, c.callee) {
			t.Errorf("%s -> %s: ambiguous/exported binding must not resolve", c.caller, c.callee)
		}
	}
}

func TestFuncValuePropagation(t *testing.T) {
	g := buildGraph(t, funcvalSrc)

	requires := map[string]bool{
		"callsBound":  true,  // via the bound target
		"invoke":      true,  // via its resolved fn parameter
		"useInvoke":   true,  // via invoke
		"callsLooper": true,  // the bound literal loops unboundedly
		"callsFlips":  false, // unresolved: conservative, no requirement
	}
	for name, want := range requires {
		if got := node(t, g, name).Requires; got != want {
			t.Errorf("Requires(%s) = %v, want %v", name, got, want)
		}
	}

	// A live ctx through an unresolved value is assumed consulted; through
	// a resolved edge the callee's fact decides.
	for name, want := range map[string]bool{
		"callsFlips": true, // unknown callee: assumed consulted
		"callsBound": true, // target consults
	} {
		if got := node(t, g, name).Consults; got != want {
			t.Errorf("Consults(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestBoundLiteralNodes(t *testing.T) {
	g := buildGraph(t, funcvalSrc)

	looper := node(t, g, "looper")
	if looper.Lit == nil || looper.Enclosed || !looper.Unbounded {
		t.Errorf("looper: Lit=%v Enclosed=%v Unbounded=%v, want package-level bound literal with unbounded loop",
			looper.Lit != nil, looper.Enclosed, looper.Unbounded)
	}
	if looper.BindName != "looper" {
		t.Errorf("looper.BindName = %q", looper.BindName)
	}

	f := node(t, g, "f")
	if !f.Enclosed {
		t.Error("f: a literal bound inside a function body must be marked Enclosed")
	}
	if !edgeTo(t, g, "local", "f") {
		t.Error("local -> f: call through the locally bound literal did not resolve")
	}
}
