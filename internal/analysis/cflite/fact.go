// Cross-package fact export/import. After a package's graph is built and
// propagated, the fixed-point facts of every declared function are
// exported into the driver's ModuleFacts store keyed by object path;
// when a dependent package is analyzed later in the same run, its graph
// resolves cross-package callees against those facts (see externalNode
// in callgraph.go).
package cflite

import (
	"go/types"

	"hpcmetrics/internal/analysis/framework"
)

// FuncFacts is the exported fact set of one function: the propagated
// (transitive) requires/consults verdicts plus the direct observations
// that produced them. JSON-marshalable for cmd/hpclint -facts.
type FuncFacts struct {
	// Requires: executing the function may spawn a goroutine or loop
	// unboundedly, directly or via any callee, so cancellation must be
	// wired through it.
	Requires bool `json:"requires,omitempty"`
	// Consults: the function (transitively) consults a context it is
	// passed — Done/Err/Deadline/Value — or hands it to unknown code
	// assumed to.
	Consults bool `json:"consults,omitempty"`
	// Spawns: the body itself contains a go statement.
	Spawns bool `json:"spawns,omitempty"`
	// Unbounded: the body itself contains a structurally unbounded loop.
	Unbounded bool `json:"unbounded,omitempty"`
	// Via names the callee a purely transitive requirement arrived
	// through, for diagnostics ("requires ctx via retry.Do").
	Via string `json:"via,omitempty"`
}

// graphKey is the FactStore key under which the package's propagated
// call graph is shared by ctxflow, lockguard, and waitleak.
type graphKey struct{}

// Graph returns the pass's package call graph, building, propagating,
// and exporting its facts on first use (the result is cached in the
// pass's per-package fact store, so the three concurrency analyzers
// share one graph).
func Graph(pass *framework.Pass) *CallGraph {
	return pass.Fact(graphKey{}, func() any {
		own := ""
		if pass.Pkg != nil {
			own = pass.Pkg.Path()
		}
		exts := Externals{
			Facts: func(obj types.Object) (FuncFacts, bool) {
				// Same-package objects are the graph's own nodes; never model
				// them as external leaves (their facts are not exported until
				// this build finishes anyway).
				if obj.Pkg() != nil && obj.Pkg().Path() == own {
					return FuncFacts{}, false
				}
				v, ok := pass.ImportedFact(obj)
				if !ok {
					return FuncFacts{}, false
				}
				f, ok := v.(FuncFacts)
				return f, ok
			},
			Impls: func(ifn *types.Func) (ImplFacts, bool) {
				return MergedImpls(pass.Module, ifn)
			},
			FactsByPath: func(objPath string) (FuncFacts, bool) {
				v, ok := pass.Module.Find(objPath)
				if !ok {
					return FuncFacts{}, false
				}
				f, ok := v.(FuncFacts)
				return f, ok
			},
		}
		g := BuildCallGraph(pass.Info, pass.Syntax, exts)
		g.Propagate()
		for _, n := range g.Nodes {
			if n.Decl == nil || n.Obj == nil {
				continue
			}
			via := ""
			if n.RequiresVia != nil {
				via = n.RequiresVia.FullName()
			}
			pass.ExportFact(n.Obj, FuncFacts{
				Requires:  n.Requires,
				Consults:  n.Consults,
				Spawns:    n.Spawns,
				Unbounded: n.Unbounded,
				Via:       via,
			})
		}
		return g
	}).(*CallGraph)
}
