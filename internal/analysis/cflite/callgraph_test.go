package cflite

import (
	"os"
	"path/filepath"
	"testing"

	"hpcmetrics/internal/analysis/load"
)

// buildGraph type-checks one source file as package p (through the same
// stdlib-only loader the analyzers use) and returns its propagated call
// graph.
func buildGraph(t *testing.T, src string) *CallGraph {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := load.New().LoadAs(dir, "p")
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	g := BuildCallGraph(pkg.Info, pkg.Syntax, Externals{})
	g.Propagate()
	return g
}

func node(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q in graph", name)
	return nil
}

const graphSrc = `package p

import "context"

func worker(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
	}()
	<-done
}

func forwards(ctx context.Context) { worker(ctx) }

func mints(ctx context.Context) { forwards(context.Background()) }

func entry() { forwards(context.TODO()) }

func deadEnd(ctx context.Context) {}

func passesToDeadEnd(ctx context.Context) { deadEnd(ctx) }

func escapes(ctx context.Context) { context.WithValue(ctx, "k", 1) }

type runner struct{ n int }

func (r *runner) dispatch(ctx context.Context) { worker(ctx) }

func viaMethod(ctx context.Context, r *runner) { r.dispatch(context.Background()) }

func leaf() int { return 1 }

func callsLeaf() int { return leaf() }
`

func TestCallGraphResolution(t *testing.T) {
	g := buildGraph(t, graphSrc)

	cases := []struct {
		caller, callee string
		arg            CtxArgKind
	}{
		{"forwards", "worker", CtxArgLive},
		{"mints", "forwards", CtxArgBackground},
		{"entry", "forwards", CtxArgBackground},
		{"passesToDeadEnd", "deadEnd", CtxArgLive},
		{"viaMethod", "dispatch", CtxArgBackground}, // method on a named receiver
		{"callsLeaf", "leaf", CtxArgNone},
	}
	for _, c := range cases {
		n := node(t, g, c.caller)
		found := false
		for _, cs := range n.Calls {
			if cs.Callee.Name() == c.callee {
				found = true
				if cs.CtxArg != c.arg {
					t.Errorf("%s -> %s: CtxArg = %v, want %v", c.caller, c.callee, cs.CtxArg, c.arg)
				}
			}
		}
		if !found {
			t.Errorf("%s -> %s: edge not resolved", c.caller, c.callee)
		}
	}
}

func TestCallGraphRequiresPropagation(t *testing.T) {
	g := buildGraph(t, graphSrc)

	requires := map[string]bool{
		"worker":          true, // direct spawn
		"forwards":        true, // via worker
		"mints":           true, // via forwards
		"entry":           true,
		"dispatch":        true,
		"viaMethod":       true,
		"deadEnd":         false,
		"passesToDeadEnd": false,
		"leaf":            false,
		"callsLeaf":       false,
	}
	for name, want := range requires {
		if got := node(t, g, name).Requires; got != want {
			t.Errorf("Requires(%s) = %v, want %v", name, got, want)
		}
	}
	if n := node(t, g, "worker"); !n.Direct() || n.RequiresVia != nil {
		t.Errorf("worker: Direct=%v RequiresVia=%v, want direct requirement", n.Direct(), n.RequiresVia)
	}
	if n := node(t, g, "forwards"); n.Direct() || n.RequiresVia == nil || n.RequiresVia.Name() != "worker" {
		t.Errorf("forwards: requirement should arrive via worker, got Direct=%v Via=%v", n.Direct(), n.RequiresVia)
	}
	if n := node(t, g, "mints"); n.RequiresVia == nil || n.RequiresVia.Name() != "forwards" {
		t.Errorf("mints: requirement should arrive via forwards")
	}
}

func TestCallGraphConsultsPropagation(t *testing.T) {
	g := buildGraph(t, graphSrc)

	consults := map[string]bool{
		"worker":          true,  // <-ctx.Done() directly
		"forwards":        true,  // passes a live ctx to a consulting callee
		"mints":           false, // only mints Background; its own ctx goes nowhere
		"deadEnd":         false,
		"passesToDeadEnd": false, // live ctx reaches only a non-consulting callee
		"escapes":         true,  // live ctx leaves the graph: assumed consulted
		"dispatch":        true,
		"viaMethod":       false,
	}
	for name, want := range consults {
		if got := node(t, g, name).Consults; got != want {
			t.Errorf("Consults(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestCallGraphForwardsByReturnAndLiteral(t *testing.T) {
	g := buildGraph(t, `package p

import "context"

type wrap struct {
	context.Context
	tag string
}

func ret(ctx context.Context) context.Context { return ctx }

func embeds(ctx context.Context) context.Context { return wrap{Context: ctx, tag: "t"} }

func retMinted(ctx context.Context) context.Context { return context.Background() }
`)
	for _, name := range []string{"ret", "embeds"} {
		n := node(t, g, name)
		if !n.ForwardsLive {
			t.Errorf("ForwardsLive(%s) = false, want true (ctx handed to the caller)", name)
		}
		if n.Consults {
			t.Errorf("Consults(%s) = true, want false (forwarding up is not consulting)", name)
		}
	}
	if n := node(t, g, "retMinted"); n.ForwardsLive {
		t.Error("ForwardsLive(retMinted) = true, want false (returns a minted root, drops its own ctx)")
	}
}

// buildGraphFS type-checks a GOPATH-style fixture tree (import path ->
// source) and returns package p's propagated call graph, for cases that
// need a sibling package (the internal/obs forwarding exemption).
func buildGraphFS(t *testing.T, files map[string]string) *CallGraph {
	t.Helper()
	src := filepath.Join(t.TempDir(), "src")
	for path, content := range files {
		full := filepath.Join(src, filepath.FromSlash(path), "f.go")
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader := load.New()
	loader.SrcRoots = []string{src}
	pkg, err := loader.LoadAs(filepath.Join(src, "p"), "p")
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	g := BuildCallGraph(pkg.Info, pkg.Syntax, Externals{})
	g.Propagate()
	return g
}

func TestCallGraphObsCalleeExemption(t *testing.T) {
	g := buildGraphFS(t, map[string]string{
		"internal/obs": `package obs

import "context"

type key struct{}

func StartSpan(ctx context.Context, name string) context.Context {
	_ = ctx.Value(key{})
	return ctx
}
`,
		"p": `package p

import (
	"context"
	"internal/obs"
)

func spansOnly(ctx context.Context) {
	_ = obs.StartSpan(ctx, "phase")
}

func escapes(ctx context.Context) {
	_ = context.WithValue(ctx, key{}, 1)
}

type key struct{}
`,
	})
	if n := node(t, g, "spansOnly"); !n.ForwardsLive || n.Consults {
		t.Errorf("spansOnly: ForwardsLive=%v Consults=%v, want live ctx to internal/obs to forward without consulting",
			n.ForwardsLive, n.Consults)
	}
	if n := node(t, g, "escapes"); !n.Consults {
		t.Error("Consults(escapes) = false, want true (live ctx to a non-obs unknown callee is assumed consulted)")
	}
}

func TestCallGraphDirectObservations(t *testing.T) {
	g := buildGraph(t, `package p

import "context"

func spins(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

func bounded(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`)
	spins := node(t, g, "spins")
	if !spins.Unbounded || spins.Spawns || !spins.ConsultsDirect {
		t.Errorf("spins: Unbounded=%v Spawns=%v ConsultsDirect=%v", spins.Unbounded, spins.Spawns, spins.ConsultsDirect)
	}
	if len(spins.CtxParams) != 1 || spins.CtxParams[0] != "ctx" {
		t.Errorf("spins: CtxParams = %v", spins.CtxParams)
	}
	b := node(t, g, "bounded")
	if b.Unbounded || b.Requires || b.Consults {
		t.Errorf("bounded: Unbounded=%v Requires=%v Consults=%v", b.Unbounded, b.Requires, b.Consults)
	}
}
