// Interface devirtualization. The analyzers' call graphs resolve
// x.Do(ctx) through an interface method in three rungs:
//
//  1. unique binding — the receiver's own candidate set (funcval.go)
//     holds exactly one concrete type with no taints: the call edge
//     binds to that type's method.
//  2. module consensus — the merged, module-wide implementor set of the
//     interface method (collected by CollectIfaceFacts before analysis
//     and exported per package into framework.ModuleFacts) names exactly
//     one implementor, or several whose exported facts all agree on the
//     propagated requires/consults verdicts: the edge binds to the sole
//     implementor, or to a synthetic consensus node carrying the agreed
//     facts and the implementor list as provenance.
//  3. conservative — anything else (the interface is declared outside
//     the closed world, an interface value escaped to an exported API,
//     implementors disagree, an implementor's facts are unknown): the
//     call stays outside the graph and a live ctx passed through it is
//     assumed consulted, as before. Disagreeing implementor sets are
//     recorded on the calling function (IfaceUnresolved) and ride into
//     its exported facts for -facts provenance.
//
// Collection is a whole-set pre-pass: the driver scans every package's
// syntax for concrete-to-interface conversions (assignments, composite
// literals, returns, call arguments, sends, map keys, append) before any
// package is analyzed, so a package early in the dependency order still
// sees implementations registered by later ones. Soundness rests on the
// closed world: only interfaces declared inside the analyzed package set
// resolve, because values of an outside interface can be constructed by
// code the run never loads.
package cflite

import (
	"go/ast"
	"go/types"
	"sort"

	"hpcmetrics/internal/analysis/framework"
)

// ImplFacts is the per-interface-method implementors fact one package
// exports: the concrete methods it observed flowing into the interface.
// The driver merges every package's export for the same method (see
// MergedImpls). JSON-marshalable for cmd/hpclint -facts.
type ImplFacts struct {
	// Implementors lists the object paths of the concrete methods
	// observed behind the interface method, sorted.
	Implementors []string `json:"implementors,omitempty"`
	// Open records that a value the collector cannot pin down flowed in
	// (another interface, a type parameter): the implementor set is a
	// subset of the truth and must not be used for devirtualization.
	Open bool `json:"open,omitempty"`
}

// CollectIfaceFacts scans one package's syntax for concrete-to-interface
// conversions and exports, under pkgPath, one ImplFacts per interface
// method observed. Only methods of interfaces declared inside the
// module store's closed world are recorded — flows into io.Writer and
// friends are outside noise the resolution could never use.
func CollectIfaceFacts(module *framework.ModuleFacts, pkgPath string, info *types.Info, files []*ast.File) {
	c := &ifaceFlowCollector{module: module, info: info, impls: map[string]*implSet{}}
	for _, f := range files {
		c.file(f)
	}
	keys := make([]string, 0, len(c.impls))
	for k := range c.impls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		set := c.impls[k]
		impls := make([]string, 0, len(set.impls))
		for im := range set.impls {
			impls = append(impls, im)
		}
		sort.Strings(impls)
		module.Export(pkgPath, k, ImplFacts{Implementors: impls, Open: set.open})
	}
}

// MergedImpls unions the implementor facts every analyzed package
// exported for the interface method. ok is false when type-level
// resolution is unusable: the interface is declared outside the run's
// closed world, or no package exported anything for it.
func MergedImpls(module *framework.ModuleFacts, ifn *types.Func) (ImplFacts, bool) {
	if ifn.Pkg() == nil || !module.IsClosed(ifn.Pkg().Path()) {
		return ImplFacts{}, false
	}
	var (
		merged ImplFacts
		seen   = map[string]bool{}
		any    bool
	)
	for _, v := range module.All(ifn.FullName()) {
		f, ok := v.(ImplFacts)
		if !ok {
			continue
		}
		any = true
		merged.Open = merged.Open || f.Open
		for _, im := range f.Implementors {
			if !seen[im] {
				seen[im] = true
				merged.Implementors = append(merged.Implementors, im)
			}
		}
	}
	sort.Strings(merged.Implementors)
	return merged, any
}

// implSet accumulates one interface method's observed implementors.
type implSet struct {
	impls map[string]bool
	open  bool
}

// ifaceFlowCollector records every concrete-to-interface conversion in a
// package's syntax.
type ifaceFlowCollector struct {
	module *framework.ModuleFacts
	info   *types.Info
	impls  map[string]*implSet
}

func (c *ifaceFlowCollector) file(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			c.returns(n.Type, n.Body)
		case *ast.FuncLit:
			c.returns(n.Type, n.Body)
		case *ast.ValueSpec:
			c.valueSpec(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.SendStmt:
			if ch, ok := c.info.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
				c.flow(ch.Elem(), c.info.TypeOf(n.Value))
			}
		case *ast.IndexExpr:
			// Map access with an interface-typed key converts the index
			// expression; the key value is then reachable via iteration.
			if mt, ok := c.info.TypeOf(n.X).Underlying().(*types.Map); ok {
				c.flow(mt.Key(), c.info.TypeOf(n.Index))
			}
		}
		return true
	})
}

// returns registers flows from each return statement of body into ft's
// interface-typed results. Nested function literals are walked when the
// outer Inspect reaches them; here they are skipped so a literal's
// returns are matched against its own result list, not the enclosing
// function's.
func (c *ifaceFlowCollector) returns(ft *ast.FuncType, body *ast.BlockStmt) {
	if ft == nil || ft.Results == nil || body == nil {
		return
	}
	var results []types.Type
	for _, field := range ft.Results.List {
		t := c.info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			results = append(results, t)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == len(results):
			for i, res := range ret.Results {
				c.flow(results[i], c.info.TypeOf(res))
			}
		case len(ret.Results) == 1:
			// return f(): the call's result tuple feeds the result list.
			if tup, ok := c.info.TypeOf(ret.Results[0]).(*types.Tuple); ok && tup.Len() == len(results) {
				for i := range results {
					c.flow(results[i], tup.At(i).Type())
				}
			}
		}
		return true
	})
}

func (c *ifaceFlowCollector) valueSpec(spec *ast.ValueSpec) {
	switch {
	case len(spec.Values) == len(spec.Names):
		for i, name := range spec.Names {
			if obj := c.info.Defs[name]; obj != nil {
				c.flow(obj.Type(), c.info.TypeOf(spec.Values[i]))
			}
		}
	case len(spec.Values) == 1:
		if tup, ok := c.info.TypeOf(spec.Values[0]).(*types.Tuple); ok && tup.Len() == len(spec.Names) {
			for i, name := range spec.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.flow(obj.Type(), tup.At(i).Type())
				}
			}
		}
	}
}

func (c *ifaceFlowCollector) assign(as *ast.AssignStmt) {
	switch {
	case len(as.Rhs) == len(as.Lhs):
		for i, lhs := range as.Lhs {
			c.flow(c.info.TypeOf(lhs), c.info.TypeOf(as.Rhs[i]))
		}
	case len(as.Rhs) == 1:
		if tup, ok := c.info.TypeOf(as.Rhs[0]).(*types.Tuple); ok && tup.Len() == len(as.Lhs) {
			for i, lhs := range as.Lhs {
				c.flow(c.info.TypeOf(lhs), tup.At(i).Type())
			}
		}
	}
}

func (c *ifaceFlowCollector) composite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if obj := c.info.Uses[key]; obj != nil {
						c.flow(obj.Type(), c.info.TypeOf(kv.Value))
					}
				}
				continue
			}
			if i < u.NumFields() {
				c.flow(u.Field(i).Type(), c.info.TypeOf(elt))
			}
		}
	case *types.Slice:
		c.elements(u.Elem(), lit)
	case *types.Array:
		c.elements(u.Elem(), lit)
	case *types.Map:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				c.flow(u.Key(), c.info.TypeOf(kv.Key))
				c.flow(u.Elem(), c.info.TypeOf(kv.Value))
			}
		}
	}
}

func (c *ifaceFlowCollector) elements(elem types.Type, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		c.flow(elem, c.info.TypeOf(elt))
	}
}

func (c *ifaceFlowCollector) call(call *ast.CallExpr) {
	// Conversion I(x): the target type is the destination.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.flow(tv.Type, c.info.TypeOf(call.Args[0]))
		return
	}
	// Builtin append(s, v...): values flow into s's element type.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 1 && call.Ellipsis == 0 {
				if sl, ok := c.info.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
					for _, arg := range call.Args[1:] {
						c.flow(sl.Elem(), c.info.TypeOf(arg))
					}
				}
			}
			return
		}
	}
	sig, ok := c.info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != 0 {
				continue // s... passes a slice whole; its elements flowed at construction
			}
			sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			dst = sl.Elem()
		case i < sig.Params().Len():
			dst = sig.Params().At(i).Type()
		default:
			continue
		}
		c.flow(dst, c.info.TypeOf(arg))
	}
}

// flow registers one conversion: a value of type src reaching a slot of
// type dst. Only interface destinations with methods matter; interface
// or type-parameter sources open the set (the dynamic type behind them
// is not pinned here).
func (c *ifaceFlowCollector) flow(dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	iface, ok := dst.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return
	}
	if types.Identical(dst, src) {
		return // no conversion: same interface handed along
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return // nil has no methods: dispatch never reaches an implementor
	}
	srcOpen := false
	if _, ok := src.Underlying().(*types.Interface); ok {
		srcOpen = true
	}
	if _, ok := src.(*types.TypeParam); ok {
		srcOpen = true
	}
	var ms *types.MethodSet
	if !srcOpen {
		ms = types.NewMethodSet(src)
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Pkg() == nil || !c.module.IsClosed(m.Pkg().Path()) {
			continue // outside the closed world: resolution could never use it
		}
		set := c.impls[m.FullName()]
		if set == nil {
			set = &implSet{impls: map[string]bool{}}
			c.impls[m.FullName()] = set
		}
		if srcOpen {
			set.open = true
			continue
		}
		sel := ms.Lookup(m.Pkg(), m.Name())
		if sel == nil {
			set.open = true // cannot name the implementing method: stay honest
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			set.impls[fn.FullName()] = true
		} else {
			set.open = true
		}
	}
}

// --- graph-side resolution ---

// ifaceBinding is the resolution-relevant summary of one interface-typed
// receiver binding.
type ifaceBinding struct {
	typ types.Type // the unique concrete type, when rung 1 applies
	vis bool       // visibility-tainted: every rung is off
}

// resolveIfaceBinding summarizes one interface-typed object's candidate
// set for receiver resolution (called from resolveBindings).
func (g *CallGraph) resolveIfaceBinding(obj types.Object, set *candSet) {
	if g.ifaceBind == nil {
		g.ifaceBind = map[types.Object]ifaceBinding{}
	}
	b := ifaceBinding{vis: set.taintVis}
	if !set.tainted() {
		var concrete []types.Type
		for _, t := range set.targets {
			if t.typ == nil {
				continue
			}
			if b, ok := t.typ.(*types.Basic); ok && b.Kind() == types.UntypedNil {
				continue // recorded nils don't count as candidates
			}
			concrete = append(concrete, t.typ)
		}
		if len(concrete) == 1 {
			b.typ = concrete[0]
		}
	}
	g.ifaceBind[obj] = b
}

// ifaceMethod reports whether obj is a method declared on an interface
// type, returning it as a *types.Func.
func ifaceMethod(obj types.Object) (*types.Func, bool) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if types.IsInterface(sig.Recv().Type()) {
		return fn, true
	}
	return nil, false
}

// devirt resolves an interface-method call to a graph node via the
// unique/consensus ladder, or nil for the conservative fallback. recv is
// the receiver expression's object, when the receiver is a trackable
// variable or field; reason, on a nil return caused by disagreeing
// implementors, names the set for provenance.
func (g *CallGraph) devirt(ifn *types.Func, recv types.Object) (node *FuncNode, reason string) {
	if recv != nil {
		if b, ok := g.ifaceBind[recv]; ok {
			if b.vis {
				return nil, "" // escaped binding: outside code can supply implementations
			}
			if b.typ != nil {
				if m := concreteMethod(b.typ, ifn); m != nil {
					return g.nodeForMethod(m), ""
				}
				return nil, ""
			}
		}
	}
	if g.exts.Impls == nil {
		return nil, ""
	}
	impls, ok := g.exts.Impls(ifn)
	if !ok || impls.Open || len(impls.Implementors) == 0 {
		return nil, ""
	}
	if len(impls.Implementors) == 1 {
		return g.nodeForPath(impls.Implementors[0], ifn), ""
	}
	return g.consensusNode(ifn, impls.Implementors)
}

// concreteMethod finds the method of concrete type t implementing the
// interface method ifn, through t's method set.
func concreteMethod(t types.Type, ifn *types.Func) *types.Func {
	sel := types.NewMethodSet(t).Lookup(ifn.Pkg(), ifn.Name())
	if sel == nil {
		return nil
	}
	fn, _ := sel.Obj().(*types.Func)
	return fn
}

// nodeForMethod resolves a concrete method object to its graph node: the
// package's own declaration, or an external leaf built from exported
// facts. The obs carve-out applies as for any other callee.
func (g *CallGraph) nodeForMethod(fn *types.Func) *FuncNode {
	if n := g.byObj[fn]; n != nil {
		return n
	}
	if isObsCallee(fn) {
		return nil
	}
	return g.externalNode(fn)
}

// nodeForPath resolves a concrete method known only by object path (a
// merged implementor record): the package's own declaration by name, or
// an external leaf from the module store's exported facts. ifn supplies
// the signature (identical to the implementor's, modulo receiver) for
// the leaf's ctx-parameter list.
func (g *CallGraph) nodeForPath(objPath string, ifn *types.Func) *FuncNode {
	if n := g.byName[objPath]; n != nil {
		return n
	}
	if n, ok := g.extByPath[objPath]; ok {
		return n
	}
	var node *FuncNode
	if g.exts.FactsByPath != nil {
		if f, ok := g.exts.FactsByPath(objPath); ok {
			node = &FuncNode{
				External:  true,
				BindName:  objPath,
				CtxParams: sigCtxParams(ifn),
				Spawns:    f.Spawns,
				Unbounded: f.Unbounded,
				Requires:  f.Requires,
				Consults:  f.Consults,
				FactVia:   f.Via,
			}
		}
	}
	g.extByPath[objPath] = node // negative results cached too
	return node
}

// consensusNode returns (creating on first use) the synthetic node
// standing for "every implementor of ifn", usable only when every
// implementor's facts are known and agree on the propagated verdicts.
// reason, on a nil return, names the disagreeing set for provenance.
func (g *CallGraph) consensusNode(ifn *types.Func, impls []string) (node *FuncNode, reason string) {
	if n, ok := g.consensus[ifn]; ok {
		return n, g.consensusWhy[ifn]
	}
	agreed := FuncFacts{}
	for i, objPath := range impls {
		var f FuncFacts
		known := false
		if n := g.byName[objPath]; n != nil {
			// Own-package implementor: its direct observations are in, but
			// Propagate has not run yet; fold its node into the fixed point
			// by edge instead of a frozen fact. Simplest sound call: treat
			// own-package implementors as unknown here — the unique rungs
			// already cover the common case.
			known = false
		} else if g.exts.FactsByPath != nil {
			f, known = g.exts.FactsByPath(objPath)
		}
		if !known {
			g.consensus[ifn] = nil
			g.consensusWhy[ifn] = ""
			return nil, ""
		}
		got := FuncFacts{Requires: f.Requires, Consults: f.Consults}
		if i == 0 {
			agreed = got
			continue
		}
		if got != agreed {
			why := "implementors of " + ifn.FullName() + " disagree: " + joinPaths(impls)
			g.consensus[ifn] = nil
			g.consensusWhy[ifn] = why
			return nil, why
		}
	}
	n := &FuncNode{
		External:     true,
		Obj:          ifn,
		CtxParams:    sigCtxParams(ifn),
		Requires:     agreed.Requires,
		Consults:     agreed.Consults,
		Implementors: append([]string(nil), impls...),
	}
	g.consensus[ifn] = n
	g.consensusWhy[ifn] = ""
	return n, ""
}

func joinPaths(paths []string) string {
	out := ""
	for i, p := range paths {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// DevirtDescription renders a call site's interface-dispatch resolution
// for diagnostics: "(pkg.Doer).Do → (*pkg.Spawner).Do" for a devirtualized
// unique target, "(pkg.Doer).Do agreed by (*pkg.A).Do, (*pkg.B).Do" for an
// all-agree consensus edge, empty for direct calls.
func DevirtDescription(cs CallSite) string {
	if cs.Iface == "" || cs.Callee == nil {
		return ""
	}
	if len(cs.Callee.Implementors) > 0 {
		return cs.Iface + " agreed by " + joinPaths(cs.Callee.Implementors)
	}
	return cs.Iface + " → " + cs.Callee.FullName()
}

// receiverObject resolves a method call's receiver expression to the
// variable or field object it reads, or nil for untracked receivers
// (call results, indexing).
func receiverObject(info *types.Info, recv ast.Expr) types.Object {
	switch recv := ast.Unparen(recv).(type) {
	case *ast.Ident:
		return info.Uses[recv]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[recv]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[recv.Sel]
	}
	return nil
}
