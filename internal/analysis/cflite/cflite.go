// Package cflite is the CFG-lite walker shared by the concurrency
// analyzers (ctxflow, lockguard, waitleak). It deliberately stops short
// of a real control-flow graph: Go's structured statements are walked in
// source order, branch states merge by intersection, and function
// literals start fresh frames. That is enough to answer the questions the
// analyzers ask — "which mutexes are held at this access?", "can this
// function return while plainly holding a lock?", "is this loop
// structurally bounded?" — without the x/tools dependency the repository
// forgoes.
package cflite

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Path renders a chain of identifiers and field selections ("s", "s.mu",
// "a.b.mu") as a canonical string, or "" if the expression is anything
// else (a call result, an index, ...). Two occurrences of the same path
// within one function denote the same storage for the walker's purposes.
func Path(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := Path(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CtxParams returns the names of ft's parameters typed context.Context.
func CtxParams(info *types.Info, ft *ast.FuncType) []string {
	var names []string
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !IsContext(info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			names = append(names, name.Name)
		}
	}
	return names
}

// Unbounded reports whether the loop has no structural bound: an infinite
// `for {}` or a while-style `for cond {}`. Three-clause and range loops
// count as bounded — the harness's loops over fixed slices terminate by
// construction, while a while-loop's exit depends on runtime state and so
// needs a cancellation point.
func Unbounded(fs *ast.ForStmt) bool {
	return fs.Cond == nil || (fs.Init == nil && fs.Post == nil)
}

// LockSite records where a mutex was taken and whether its release is
// already deferred.
type LockSite struct {
	Pos      token.Pos
	Deferred bool
}

// LockWalker walks one function body in structured source order, tracking
// the set of mutex paths currently held. Lock state changes are
// recognized on statement-level calls: `p.Lock()` / `p.RLock()` acquire
// path p, `p.Unlock()` / `p.RUnlock()` release it, and `defer p.Unlock()`
// marks p's release as covered on every return. Branches (if, for, range,
// switch, select) merge by intersection: a mutex counts as held after a
// branch only if every arm holds it. Function literals are fresh frames —
// their bodies run under their own (initially empty) lock set, since the
// spawner's locks do not protect code that executes later.
type LockWalker struct {
	// OnNode, when non-nil, is called in evaluation order for the nodes of
	// every visited expression, with the mutexes held at that point. The
	// map is shared and mutated across calls; do not retain it.
	OnNode func(n ast.Node, held map[string]LockSite)
	// OnReturn, when non-nil, is called at every return statement with the
	// mutexes then held whose release is not deferred (the early-return
	// leak set). The map is freshly built per call.
	OnReturn func(ret *ast.ReturnStmt, plain map[string]LockSite)
}

// Walk traverses body from an empty lock set.
func (w *LockWalker) Walk(body *ast.BlockStmt) {
	w.block(body, map[string]LockSite{})
}

func (w *LockWalker) block(b *ast.BlockStmt, held map[string]LockSite) map[string]LockSite {
	for _, s := range b.List {
		held = w.stmt(s, held)
	}
	return held
}

func (w *LockWalker) stmt(s ast.Stmt, held map[string]LockSite) map[string]LockSite {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if path, op := lockOp(call); path != "" {
				w.visit(call, held)
				held = clone(held)
				if op == opLock {
					held[path] = LockSite{Pos: call.Pos()}
				} else {
					delete(held, path)
				}
				return held
			}
		}
		w.visit(s, held)
		return held
	case *ast.DeferStmt:
		if path, op := lockOp(s.Call); path != "" && op == opUnlock {
			if site, ok := held[path]; ok && !site.Deferred {
				held = clone(held)
				site.Deferred = true
				held[path] = site
			}
			return held
		}
		w.visit(s, held)
		return held
	case *ast.ReturnStmt:
		w.visit(s, held)
		if w.OnReturn != nil {
			plain := map[string]LockSite{}
			for p, site := range held {
				if !site.Deferred {
					plain[p] = site
				}
			}
			w.OnReturn(s, plain)
		}
		return held
	case *ast.BlockStmt:
		return w.block(s, clone(held))
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.visit(s.Cond, held)
		thenAfter := w.block(s.Body, clone(held))
		elseAfter := held
		if s.Else != nil {
			elseAfter = w.stmt(s.Else, clone(held))
		}
		return intersect(thenAfter, elseAfter)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.visit(s.Cond, held)
		}
		bodyAfter := w.block(s.Body, clone(held))
		if s.Post != nil {
			bodyAfter = w.stmt(s.Post, bodyAfter)
		}
		return intersect(held, bodyAfter) // the body may run zero times
	case *ast.RangeStmt:
		w.visit(s.X, held)
		bodyAfter := w.block(s.Body, clone(held))
		return intersect(held, bodyAfter)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.visit(s.Tag, held)
		}
		return w.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.visit(s.Assign, held)
		return w.clauses(s.Body, held)
	case *ast.SelectStmt:
		return w.clauses(s.Body, held)
	case *ast.GoStmt:
		// The spawned body runs later, under no inherited locks; visit
		// handles the literal as a fresh frame. Arguments evaluate now.
		w.visit(s.Call, held)
		return held
	default:
		w.visit(s, held)
		return held
	}
}

// clauses walks the case/comm clauses of a switch or select body and
// merges the after-states of all arms with the fallthrough state (the
// switch may match nothing).
func (w *LockWalker) clauses(body *ast.BlockStmt, held map[string]LockSite) map[string]LockSite {
	out := held
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.visit(e, held)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clone(held))
			}
			stmts = c.Body
		}
		arm := clone(held)
		for _, s := range stmts {
			arm = w.stmt(s, arm)
		}
		out = intersect(out, arm)
	}
	return out
}

// visit reports every node of n through OnNode, entering function
// literals as fresh frames (their own empty lock set, their own returns).
func (w *LockWalker) visit(n ast.Node, held map[string]LockSite) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.block(lit.Body, map[string]LockSite{})
			return false
		}
		if n != nil && w.OnNode != nil {
			w.OnNode(n, held)
		}
		return true
	})
}

type mutexOp int

const (
	opNone mutexOp = iota
	opLock
	opUnlock
)

// lockOp recognizes statement-level mutex manipulation: a call of
// Lock/RLock/Unlock/RUnlock on a path expression. The check is syntactic
// — anything exposing that method set is treated as a lock, which is what
// holding it means for the guarded code.
func lockOp(call *ast.CallExpr) (string, mutexOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", opNone
	}
	var op mutexOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	path := Path(sel.X)
	if path == "" {
		return "", opNone
	}
	return path, op
}

func clone(m map[string]LockSite) map[string]LockSite {
	out := make(map[string]LockSite, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// intersect keeps the mutexes held in both states; a release deferred on
// only one arm stays plain, so early-return leak detection remains sound.
func intersect(a, b map[string]LockSite) map[string]LockSite {
	out := make(map[string]LockSite, len(a))
	for k, sa := range a {
		if sb, ok := b[k]; ok {
			sa.Deferred = sa.Deferred && sb.Deferred
			out[k] = sa
		}
	}
	return out
}
