package cflite

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

func parseFunc(t *testing.T, body string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, file.Decls[0].(*ast.FuncDecl)
}

func TestPath(t *testing.T) {
	fset, fn := parseFunc(t, "use(s.mu, a.b.c, (x), f(), m[0].y)")
	_ = fset
	call := fn.Body.List[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	want := []string{"s.mu", "a.b.c", "x", "", ""}
	for i, arg := range call.Args {
		if got := Path(arg); got != want[i] {
			t.Errorf("Path(arg %d) = %q, want %q", i, got, want[i])
		}
	}
}

func TestUnbounded(t *testing.T) {
	_, fn := parseFunc(t, `
	for {
	}
	for x < 3 {
	}
	for i := 0; i < 3; i++ {
	}
	for ; x < 3; x++ {
	}
`)
	want := []bool{true, true, false, false}
	for i, s := range fn.Body.List {
		fs := s.(*ast.ForStmt)
		if got := Unbounded(fs); got != want[i] {
			t.Errorf("loop %d: Unbounded = %v, want %v", i, got, want[i])
		}
	}
}

// heldAt runs the walker and records, for each marker call markN(), the
// sorted set of held mutex paths at that point.
func heldAt(t *testing.T, body string) map[string][]string {
	t.Helper()
	_, fn := parseFunc(t, body)
	out := map[string][]string{}
	w := &LockWalker{
		OnNode: func(n ast.Node, held map[string]LockSite) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || len(id.Name) < 4 || id.Name[:4] != "mark" {
				return
			}
			var paths []string
			for p := range held {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			out[id.Name] = paths
		},
	}
	w.Walk(fn.Body)
	return out
}

func TestLockWalkerStraightLine(t *testing.T) {
	got := heldAt(t, `
	mark1()
	mu.Lock()
	mark2()
	mu.Unlock()
	mark3()
`)
	want := map[string][]string{"mark1": nil, "mark2": {"mu"}, "mark3": nil}
	for k, w := range want {
		if g := got[k]; !sameStrings(g, w) {
			t.Errorf("%s: held %v, want %v", k, g, w)
		}
	}
}

func TestLockWalkerSelectorAndRLock(t *testing.T) {
	got := heldAt(t, `
	s.mu.RLock()
	mark1()
	s.mu.RUnlock()
	mark2()
`)
	if !sameStrings(got["mark1"], []string{"s.mu"}) {
		t.Errorf("mark1: held %v, want [s.mu]", got["mark1"])
	}
	if len(got["mark2"]) != 0 {
		t.Errorf("mark2: held %v, want none", got["mark2"])
	}
}

func TestLockWalkerBranchIntersection(t *testing.T) {
	got := heldAt(t, `
	if cond {
		mu.Lock()
		mark1()
	}
	mark2()
	if cond {
		mu.Unlock()
	}
`)
	if !sameStrings(got["mark1"], []string{"mu"}) {
		t.Errorf("mark1 (inside locking arm): held %v, want [mu]", got["mark1"])
	}
	// After the if, only one arm locked: not held.
	if len(got["mark2"]) != 0 {
		t.Errorf("mark2 (after one-armed lock): held %v, want none", got["mark2"])
	}
}

func TestLockWalkerBothArmsLock(t *testing.T) {
	got := heldAt(t, `
	if cond {
		mu.Lock()
	} else {
		mu.Lock()
	}
	mark1()
	mu.Unlock()
`)
	if !sameStrings(got["mark1"], []string{"mu"}) {
		t.Errorf("mark1 (both arms lock): held %v, want [mu]", got["mark1"])
	}
}

func TestLockWalkerLoopMayNotRun(t *testing.T) {
	got := heldAt(t, `
	for i := 0; i < n; i++ {
		mu.Lock()
		mark1()
		mu.Unlock()
	}
	mark2()
`)
	if !sameStrings(got["mark1"], []string{"mu"}) {
		t.Errorf("mark1: held %v, want [mu]", got["mark1"])
	}
	if len(got["mark2"]) != 0 {
		t.Errorf("mark2: held %v, want none", got["mark2"])
	}
}

func TestLockWalkerFuncLitFreshFrame(t *testing.T) {
	got := heldAt(t, `
	mu.Lock()
	f := func() {
		mark1()
	}
	mark2()
	mu.Unlock()
	f()
`)
	// The literal may execute after Unlock: its frame starts empty.
	if len(got["mark1"]) != 0 {
		t.Errorf("mark1 (inside literal): held %v, want none", got["mark1"])
	}
	if !sameStrings(got["mark2"], []string{"mu"}) {
		t.Errorf("mark2: held %v, want [mu]", got["mark2"])
	}
}

// plainReturns runs the walker and returns, per return statement in
// source order, the sorted plainly-held lock paths at that return.
func plainReturns(t *testing.T, body string) [][]string {
	t.Helper()
	_, fn := parseFunc(t, body)
	var out [][]string
	w := &LockWalker{
		OnReturn: func(_ *ast.ReturnStmt, plain map[string]LockSite) {
			var paths []string
			for p := range plain {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			out = append(out, paths)
		},
	}
	w.Walk(fn.Body)
	return out
}

func TestLockWalkerEarlyReturnLeak(t *testing.T) {
	got := plainReturns(t, `
	mu.Lock()
	if bad {
		return
	}
	mu.Unlock()
	return
`)
	want := [][]string{{"mu"}, nil}
	if len(got) != 2 || !sameStrings(got[0], want[0]) || !sameStrings(got[1], want[1]) {
		t.Errorf("plain-held at returns = %v, want %v", got, want)
	}
}

func TestLockWalkerDeferClearsLeak(t *testing.T) {
	got := plainReturns(t, `
	mu.Lock()
	defer mu.Unlock()
	if bad {
		return
	}
	return
`)
	for i, paths := range got {
		if len(paths) != 0 {
			t.Errorf("return %d: plain-held %v despite deferred unlock", i, paths)
		}
	}
}

func TestLockWalkerSwitchArms(t *testing.T) {
	got := heldAt(t, `
	switch v {
	case 1:
		mu.Lock()
		mark1()
		mu.Unlock()
	case 2:
		mark2()
	}
	mark3()
`)
	if !sameStrings(got["mark1"], []string{"mu"}) {
		t.Errorf("mark1: held %v, want [mu]", got["mark1"])
	}
	if len(got["mark2"]) != 0 || len(got["mark3"]) != 0 {
		t.Errorf("mark2/mark3 unexpectedly hold locks: %v / %v", got["mark2"], got["mark3"])
	}
}

func sameStrings(a, b []string) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
