package waitleak_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/waitleak"
)

func TestWaitleak(t *testing.T) {
	analysistest.Run(t, "testdata", waitleak.Analyzer, "a", "clean")
}
