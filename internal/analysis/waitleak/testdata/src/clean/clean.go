// Package clean is the non-flagging fixture: the worker-pool shape the
// real harness uses, which all three waitleak checks accept.
package clean

import (
	"context"
	"sync"
)

func pool(ctx context.Context, n, workers int, work func(context.Context, int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		jobs = make(chan int)
		errs = make([]error, n)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case i, ok := <-jobs:
					if !ok {
						return
					}
					if err := work(ctx, i); err != nil {
						errs[i] = err
						cancel()
					}
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
