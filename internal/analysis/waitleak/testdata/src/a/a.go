// Package a exercises waitleak's three checks: WaitGroup arity,
// goroutine channel sends, and defer-less locks with early returns.
package a

import (
	"context"
	"errors"
	"sync"
)

var errBad = errors.New("bad")

// --- WaitGroup arity ---

func arityMismatch() {
	var wg sync.WaitGroup
	wg.Add(2) // want `sync.WaitGroup arity: wg.Add totals 2 but 1 Done`
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func arityMatched() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
	}()
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func perIterationAdd(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func dynamicAdd(n int) {
	var wg sync.WaitGroup
	wg.Add(n) // computed count: not statically countable, left alone
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addOutsideDoneInside(xs []int) {
	var wg sync.WaitGroup
	wg.Add(1) // depth differs from the Done's: not countable, left alone
	for range xs {
		wg.Done()
	}
	wg.Wait()
}

// --- goroutine channel sends ---

func leakySend(ch chan int) {
	go func() {
		ch <- 1 // want `goroutine sends on a channel outside a select`
	}()
}

func ctxAwareSend(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

func nonBlockingSend(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

func selectWithoutEscape(ch, other chan int) {
	go func() {
		select {
		case ch <- 1: // want `goroutine sends on a channel outside a select`
		case v := <-other:
			_ = v
		}
	}()
}

func sendOutsideGoroutine(ch chan int) {
	ch <- 1 // the caller's own blocking is its business; only goroutines leak silently
}

// --- defer-less locks ---

func earlyReturnLeak(mu *sync.Mutex, bad bool) error {
	mu.Lock() // want `mu.Lock\(\) is not released on every return path`
	if bad {
		return errBad
	}
	mu.Unlock()
	return nil
}

func deferredRelease(mu *sync.Mutex, bad bool) error {
	mu.Lock()
	defer mu.Unlock()
	if bad {
		return errBad
	}
	return nil
}

func straightLineRelease(mu *sync.Mutex) int {
	mu.Lock()
	v := 1
	mu.Unlock()
	return v
}

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) methodLeak(bad bool) (int, error) {
	b.mu.Lock() // want `b.mu.Lock\(\) is not released on every return path`
	if bad {
		return 0, errBad
	}
	v := b.n
	b.mu.Unlock()
	return v, nil
}
