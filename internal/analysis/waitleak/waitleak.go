// Package waitleak flags the three goroutine-leak shapes the parallel
// study harness must never grow:
//
//  1. sync.WaitGroup arity mismatch — within a function, when every
//     wg.Add carries a constant argument and all Add/Done calls sit at
//     the same loop depth, the Add total must equal the Done count. (A
//     per-iteration Add(1) paired with a `defer wg.Done()` in the spawned
//     goroutine balances; Add with a computed count is not statically
//     countable and is left alone.)
//  2. Channel sends inside goroutines with no cancellation escape — a
//     `ch <- v` in a `go func(){...}` body blocks forever once the
//     receiver stops; it must sit in a select with a ctx.Done() case or a
//     default clause (or the send must be provably non-blocking, which a
//     static check cannot see — restructure or suppress with a justified
//     //hpclint:ignore).
//  3. Defer-less mu.Lock() in functions that can return early — a return
//     between Lock and its plain Unlock leaves the mutex held; the
//     shared CFG-lite walker (internal/analysis/cflite) finds the
//     escaping path and flags the Lock site.
package waitleak

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the waitleak check.
var Analyzer = &framework.Analyzer{
	Name: "waitleak",
	Doc: "flags sync.WaitGroup Add/Done arity mismatches, goroutine channel sends " +
		"without a ctx-aware select, and defer-less mutex locks that leak on early return",
	Run: run,
}

func run(pass *framework.Pass) error {
	// The call graph's nodes cover declarations plus package-level bound
	// function literals, and its edges let `go f()` spawns resolve to f's
	// body (checkGoroutineSends); checked dedupes a callee body spawned
	// from several sites.
	graph := cflite.Graph(pass)
	checked := map[*cflite.FuncNode]bool{}
	for _, n := range graph.Nodes {
		if n.Body() == nil || n.Enclosed {
			continue
		}
		checkWaitGroups(pass, n.Body())
		checkGoroutineSends(pass, graph, n.Body(), checked)
		checkDeferlessLocks(pass, n.Body())
	}
	return nil
}

// --- check 1: WaitGroup arity ---

type wgCounts struct {
	addSum    int64
	addConst  bool // every Add argument is a constant int
	firstAdd  token.Pos
	addDepths map[int]bool
	dones     int
	doneDepth map[int]bool
}

func checkWaitGroups(pass *framework.Pass, body *ast.BlockStmt) {
	groups := map[string]*wgCounts{}
	walkDepth(body, 0, func(n ast.Node, depth int) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isWaitGroup(pass, sel.X) {
			return
		}
		path := cflite.Path(sel.X)
		if path == "" {
			return
		}
		g := groups[path]
		if g == nil {
			g = &wgCounts{addConst: true, addDepths: map[int]bool{}, doneDepth: map[int]bool{}}
			groups[path] = g
		}
		switch sel.Sel.Name {
		case "Add":
			if g.firstAdd == token.NoPos {
				g.firstAdd = call.Pos()
			}
			g.addDepths[depth] = true
			if v, ok := constInt(pass, call); ok {
				g.addSum += v
			} else {
				g.addConst = false
			}
		case "Done":
			g.dones++
			g.doneDepth[depth] = true
		}
	})
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := groups[name]
		if !g.addConst || g.firstAdd == token.NoPos || g.dones == 0 {
			continue // dynamic Add or no pairing to audit
		}
		if len(g.addDepths) != 1 || len(g.doneDepth) != 1 ||
			!sameSingleton(g.addDepths, g.doneDepth) {
			continue // Adds and Dones at different loop depths: not countable
		}
		if g.addSum != int64(g.dones) {
			pass.Reportf(g.firstAdd, "sync.WaitGroup arity: %s.Add totals %d but %d Done call(s); the Wait will deadlock or release early", name, g.addSum, g.dones)
		}
	}
}

func sameSingleton(a, b map[int]bool) bool {
	for k := range a {
		return b[k]
	}
	return false
}

// walkDepth visits every node under root with its enclosing loop depth.
// Function-literal bodies keep the depth of the statement that mentions
// them: a `go func(){ defer wg.Done() }()` inside a loop runs once per
// iteration, matching the loop's per-iteration Add.
func walkDepth(root ast.Node, depth int, visit func(n ast.Node, depth int)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.ForStmt:
			if n.Init != nil {
				walkDepth(n.Init, depth, visit)
			}
			if n.Cond != nil {
				walkDepth(n.Cond, depth, visit)
			}
			if n.Post != nil {
				walkDepth(n.Post, depth, visit)
			}
			walkDepth(n.Body, depth+1, visit)
			return false
		case *ast.RangeStmt:
			if n.X != nil {
				walkDepth(n.X, depth, visit)
			}
			walkDepth(n.Body, depth+1, visit)
			return false
		}
		visit(n, depth)
		return true
	})
}

func isWaitGroup(pass *framework.Pass, x ast.Expr) bool {
	t := pass.Info.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func constInt(pass *framework.Pass, call *ast.CallExpr) (int64, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// --- check 2: goroutine sends without a cancellation escape ---

func checkGoroutineSends(pass *framework.Pass, graph *cflite.CallGraph, body *ast.BlockStmt, checked map[*cflite.FuncNode]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			checkSends(pass, lit.Body, false)
			return true
		}
		// go f() / go pkgFunc() / go x.Do(): the named callee's body runs
		// in a goroutine; its bare sends leak exactly like a literal's.
		// Resolve through the graph (declarations, uniquely bound function
		// values, and devirtualized interface methods); once per callee
		// body is enough however many sites spawn it. Consensus and
		// external nodes have no body and are skipped here — their sends
		// were checked in their own package's run.
		if target := graph.ResolveCall(pass.Info, g.Call); target != nil && target.Body() != nil && !checked[target] {
			checked[target] = true
			checkSends(pass, target.Body(), false)
		}
		return true
	})
}

// checkSends flags send statements not covered by an escapable select.
// covered is true inside a select that has a default clause or a
// ctx.Done() receive case.
func checkSends(pass *framework.Pass, n ast.Node, covered bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !covered {
				pass.Reportf(n.Arrow, "goroutine sends on a channel outside a select with a ctx.Done() case or default; if every receiver stops, this goroutine leaks")
			}
			return true
		case *ast.SelectStmt:
			inner := covered || selectEscapes(pass, n)
			for _, c := range n.Body.List {
				checkSends(pass, c, inner)
			}
			return false
		case *ast.FuncLit:
			checkSends(pass, n.Body, false)
			return false
		}
		return true
	})
}

// selectEscapes reports whether the select can always leave: it has a
// default clause or a case receiving from a context's Done channel.
func selectEscapes(pass *framework.Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default
		}
		if recvFromDone(pass, comm.Comm) {
			return true
		}
	}
	return false
}

// recvFromDone matches `<-ctx.Done()` (bare or assigned) where ctx is a
// context.Context.
func recvFromDone(pass *framework.Pass, s ast.Stmt) bool {
	var x ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		x = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			x = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(x).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && fn.Sel.Name == "Done" && cflite.IsContext(pass.Info.TypeOf(fn.X))
}

// --- check 3: defer-less locks escaping through early returns ---

func checkDeferlessLocks(pass *framework.Pass, body *ast.BlockStmt) {
	leaks := map[token.Pos]string{}
	w := &cflite.LockWalker{
		OnReturn: func(_ *ast.ReturnStmt, plain map[string]cflite.LockSite) {
			for path, site := range plain {
				leaks[site.Pos] = path
			}
		},
	}
	w.Walk(body)
	order := make([]token.Pos, 0, len(leaks))
	for pos := range leaks {
		order = append(order, pos)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, pos := range order {
		pass.Reportf(pos, "%s.Lock() is not released on every return path; defer the Unlock", leaks[pos])
	}
}
