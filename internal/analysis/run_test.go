package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkHpclintModule times one whole-module analysis pass — pattern
// expansion, dependency-ordered loading, type-checking, every analyzer,
// and cross-package fact propagation — the same work `make lint` gates
// CI on. cmd/benchstudy records the equivalent wall time in
// BENCH_study.json so analyzer cost is part of the perf trajectory.
func BenchmarkHpclintModule(b *testing.B) {
	root := filepath.Join("..", "..")
	for i := 0; i < b.N; i++ {
		res, err := Run([]string{root + "/..."}, All())
		if err != nil {
			b.Fatal(err)
		}
		if res.Packages == 0 {
			b.Fatal("no packages analyzed")
		}
	}
}
