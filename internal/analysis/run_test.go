package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkHpclintModule times one whole-module analysis pass — pattern
// expansion, dependency-ordered loading, type-checking, every analyzer,
// and cross-package fact propagation — the same work `make lint` gates
// CI on. The interface-devirtualization phase (implementor collection
// plus merged-fact resolution) is reported as its own metric so its
// overhead is visible separately from the load/analyze cost it rides
// on. cmd/benchstudy records the equivalent wall times in
// BENCH_study.json so analyzer cost is part of the perf trajectory.
func BenchmarkHpclintModule(b *testing.B) {
	root := filepath.Join("..", "..")
	var ifaceSec float64
	for i := 0; i < b.N; i++ {
		res, err := Run([]string{root + "/..."}, All())
		if err != nil {
			b.Fatal(err)
		}
		if res.Packages == 0 {
			b.Fatal("no packages analyzed")
		}
		ifaceSec += res.IfaceSeconds
	}
	b.ReportMetric(ifaceSec/float64(b.N), "iface-sec/op")
}
