// Package notsim is outside the simulation set; wall-clock time and the
// global rand source are legitimate here (progress logging, CLI jitter).
package notsim

import (
	"math/rand"
	"time"
)

func Timestamp() time.Time { return time.Now() } // non-simulation package: allowed

func Jitter() float64 { return rand.Float64() } // non-simulation package: allowed
