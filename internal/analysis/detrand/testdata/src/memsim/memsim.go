package memsim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a simulation package`
}

func badGlobalRand() float64 {
	return rand.Float64() // want `global math/rand source`
}

func badGlobalIntn(n int) int {
	return rand.Intn(n) // want `global math/rand source`
}

func okSeededRand() float64 {
	r := rand.New(rand.NewSource(42)) // explicit seeded generator: allowed
	return r.Float64()
}

func okSince(t0 time.Time) time.Duration {
	return time.Since(t0) // only time.Now itself is flagged
}

func badMapOutput(m map[string]float64) string {
	var b strings.Builder
	for k, v := range m { // want `map iteration order is random`
		fmt.Fprintf(&b, "%s=%g\n", k, v)
	}
	return b.String()
}

func badMapWrite(m map[string]float64, b *strings.Builder) {
	for k := range m { // want `map iteration order is random`
		b.WriteString(k)
	}
}

func okMapReduce(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // order-insensitive reduction: allowed
		sum += v
	}
	return sum
}

func okSliceOutput(xs []float64) string {
	var b strings.Builder
	for i, v := range xs { // slices iterate in order: allowed
		fmt.Fprintf(&b, "%d=%g\n", i, v)
	}
	return b.String()
}
