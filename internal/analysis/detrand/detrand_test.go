package detrand_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "memsim", "notsim")
}
