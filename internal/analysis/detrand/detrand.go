// Package detrand keeps the simulation packages deterministic.
//
// The study produces 1,350 predictions that must be bit-reproducible from
// run to run (cf. Cornebize & Legrand 2021 on variability silently
// corrupting simulation-based prediction). Inside the simulation packages
// (memsim, cpusim, netsim, simexec, probes, convolve, study) this analyzer
// forbids the three stdlib escape hatches that break that property:
//
//   - time.Now — wall-clock time leaking into simulated time;
//   - the global math/rand source (rand.Float64, rand.Intn, ...) — seeded
//     per process, and since Go 1.20 seeded randomly. Explicit generators
//     (rand.New(rand.NewSource(seed)) or internal/access's splitmix64)
//     remain allowed;
//   - emitting output while ranging over a map — Go randomizes map
//     iteration order, so anything printed or written inside such a loop
//     changes between runs. Order-insensitive loops (sums, counts) are
//     fine; emit output by collecting and sorting keys first.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the detrand check.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbids time.Now, the global math/rand source, and map-iteration-ordered " +
		"output in the simulation packages, keeping the study bit-reproducible",
	Run: run,
}

// simPackages are the packages whose outputs feed the study's numbers.
var simPackages = map[string]bool{
	"memsim":   true,
	"cpusim":   true,
	"netsim":   true,
	"simexec":  true,
	"probes":   true,
	"convolve": true,
	"study":    true,
}

// randConstructors are the math/rand functions that build explicit,
// seedable generators rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *framework.Pass) error {
	if !simPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicit *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in a simulation package; derive timestamps from simulated time")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "global math/rand source (rand.%s) is not reproducible; use a seeded rand.New(rand.NewSource(...)) or the access package's rng", fn.Name())
		}
	}
}

// calledFunc resolves the called function's object, if it is a named one.
func calledFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// checkRange flags ranging over a map when the body emits output.
func checkRange(pass *framework.Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if emitsOutput(pass, call) {
			pass.Reportf(rs.For, "map iteration order is random; sort the keys before emitting output")
			return false
		}
		return true
	})
}

// emitsOutput recognizes fmt formatting calls and Write-family methods.
func emitsOutput(pass *framework.Pass, call *ast.CallExpr) bool {
	if fn := calledFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") {
			return true
		}
	}
	return false
}
