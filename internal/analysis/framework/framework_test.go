package framework

import (
	"go/ast"
	"os"
	"reflect"
	"strings"
	"testing"

	"hpcmetrics/internal/analysis/load"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
	}{
		{"//hpclint:ignore floatcmp rank ties need exact equality", []string{"floatcmp"}},
		{"//hpclint:ignore floatcmp,unitmix two at once", []string{"floatcmp", "unitmix"}},
		{"//hpclint:ignore detrand", []string{"detrand"}},
		{"//hpclint:ignore", nil},    // no analyzer named: not a directive
		{"// hpclint:ignore x", nil}, // space breaks the directive prefix
		{"//hpclint:ignored x", nil}, // a different word, not this directive
		{"// plain comment", nil},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if c.names == nil {
			if ok {
				t.Errorf("parseIgnore(%q) = %v, want none", c.text, names)
			}
			continue
		}
		if !ok || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseIgnore(%q) = %v, %v; want %v", c.text, names, ok, c.names)
		}
	}
}

// TestFactStoreSharedAcrossAnalyzers checks that facts computed by one
// analyzer's pass are visible to later passes over the same package, and
// that the compute function runs once per package, not once per analyzer.
func TestFactStoreSharedAcrossAnalyzers(t *testing.T) {
	type graphKey struct{}
	computed := 0
	mkAnalyzer := func(name string) *Analyzer {
		return &Analyzer{
			Name: name,
			Doc:  "reads the shared fact",
			Run: func(pass *Pass) error {
				v := pass.Fact(graphKey{}, func() any {
					computed++
					return "the-graph"
				})
				if v != "the-graph" {
					t.Errorf("%s: fact = %v, want the-graph", name, v)
				}
				return nil
			},
		}
	}

	pkg, err := load.New().LoadAs("testdata/src/supp", "supp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pkg, []*Analyzer{mkAnalyzer("first"), mkAnalyzer("second")}); err != nil {
		t.Fatal(err)
	}
	if computed != 1 {
		t.Errorf("fact computed %d times, want 1 (shared across the package's passes)", computed)
	}

	// A pass without a store still works: Fact degrades to recomputing.
	bare := &Pass{}
	if v := bare.Fact(graphKey{}, func() any { return 7 }); v != 7 {
		t.Errorf("storeless Fact = %v, want 7", v)
	}
}

// TestModuleFacts checks the cross-package store end to end: an analyzer
// exports a fact for a function of the supp fixture, and a later pass
// over the same store (standing in for a dependent package's run) reads
// it back through the function's object.
func TestModuleFacts(t *testing.T) {
	pkg, err := load.New().LoadAs("testdata/src/supp", "supp")
	if err != nil {
		t.Fatal(err)
	}
	module := NewModuleFacts()
	exporter := &Analyzer{
		Name: "exporter",
		Doc:  "exports a fact per function",
		Run: func(pass *Pass) error {
			for _, f := range pass.Syntax {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						pass.ExportFact(pass.Info.Defs[fd.Name], "fact:"+fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	if _, err := RunWithModule(pkg, []*Analyzer{exporter}, module); err != nil {
		t.Fatal(err)
	}

	scope := pkg.Types.Scope()
	obj := scope.Lookup("trigger")
	if obj == nil {
		t.Fatal("fixture has no function trigger")
	}
	v, ok := module.Lookup(obj)
	if !ok || v != "fact:trigger" {
		t.Errorf("Lookup(trigger) = %v, %v; want fact:trigger", v, ok)
	}
	if _, ok := module.Lookup(nil); ok {
		t.Error("Lookup(nil) must miss")
	}
	if got := module.Packages(); len(got) != 1 || got[0] != "supp" {
		t.Errorf("Packages() = %v, want [supp]", got)
	}
	if facts := module.PackageFacts("supp"); facts["supp.trigger"] != "fact:trigger" {
		t.Errorf(`PackageFacts["supp.trigger"] = %v`, facts["supp.trigger"])
	}

	// Nil-safe accessors: analyzers run fine in isolated (module-less)
	// passes.
	var nilStore *ModuleFacts
	nilStore.Export("p", "o", 1)
	if _, ok := nilStore.Lookup(obj); ok {
		t.Error("nil store Lookup must miss")
	}
}

// TestDirectives checks the suppression inventory used by the CI
// allowlist diff: every //hpclint:ignore comment in the fixture is
// listed with its analyzers.
func TestDirectives(t *testing.T) {
	pkg, err := load.New().LoadAs("testdata/src/supp", "supp")
	if err != nil {
		t.Fatal(err)
	}
	ds := Directives(pkg)
	if len(ds) == 0 {
		t.Fatal("supp fixture has ignore directives; Directives returned none")
	}
	for _, d := range ds {
		if !strings.HasSuffix(d.File, "supp.go") || d.Line == 0 || len(d.Analyzers) == 0 {
			t.Errorf("malformed directive entry %+v", d)
		}
	}
}

// TestSuppressionMatrix runs a toy analyzer (flag every call to trigger)
// over the supp fixture and checks exactly which diagnostics survive the
// //hpclint:ignore directives: trailing same-line, line-above, multiline
// statements, analyzer-name filtering, and the two-lines-up miss.
func TestSuppressionMatrix(t *testing.T) {
	toy := &Analyzer{
		Name: "toy",
		Doc:  "flags every call to trigger",
		Run: func(pass *Pass) error {
			for _, f := range pass.Syntax {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "trigger" {
						pass.Reportf(call.Pos(), "call to trigger")
					}
					return true
				})
			}
			return nil
		},
	}

	const fixture = "testdata/src/supp/supp.go"
	pkg, err := load.New().LoadAs("testdata/src/supp", "supp")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{toy})
	if err != nil {
		t.Fatal(err)
	}

	// The fixture marks its expected survivors: any line containing the
	// word "survive" should yield a diagnostic, and nothing else should.
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "survive") && strings.Contains(line, "trigger(") {
			want = append(want, i+1)
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no survive markers; the test is vacuous")
	}
	var got []int
	for _, d := range diags {
		if d.Analyzer != "toy" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		got = append(got, d.Pos.Line)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("surviving diagnostic lines = %v, want %v\ndiags:\n%v", got, want, diags)
	}
}
