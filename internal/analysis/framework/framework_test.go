package framework

import (
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
	}{
		{"//hpclint:ignore floatcmp rank ties need exact equality", []string{"floatcmp"}},
		{"//hpclint:ignore floatcmp,unitmix two at once", []string{"floatcmp", "unitmix"}},
		{"//hpclint:ignore detrand", []string{"detrand"}},
		{"//hpclint:ignore", nil},    // no analyzer named: not a directive
		{"// hpclint:ignore x", nil}, // space breaks the directive prefix
		{"//hpclint:ignored x", nil}, // a different word, not this directive
		{"// plain comment", nil},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if c.names == nil {
			if ok {
				t.Errorf("parseIgnore(%q) = %v, want none", c.text, names)
			}
			continue
		}
		if !ok || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseIgnore(%q) = %v, %v; want %v", c.text, names, ok, c.names)
		}
	}
}
