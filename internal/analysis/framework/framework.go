// Package framework is the hpclint analyzer harness: a deliberately small
// subset of the golang.org/x/tools/go/analysis API (Analyzer, Pass,
// Reportf) built on the stdlib-only loader in internal/analysis/load.
//
// Suppression: a diagnostic can be silenced with a directive comment
//
//	//hpclint:ignore floatcmp,unitmix reason for the exception
//
// which applies to diagnostics on its own line and on the line below it
// (so it works both as a trailing comment and as a standalone line above
// the flagged statement). The reason text is free-form but encouraged.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hpcmetrics/internal/analysis/load"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-paragraph description, shown by hpclint -list.
	Doc string
	// Run performs the check on one package, reporting through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Syntax   []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the cross-package fact store shared by every package of
	// one driver run. Analyzers export per-function facts into it after
	// analyzing a package and look up facts exported by the package's
	// (already analyzed) dependencies. Nil in ad-hoc passes; the
	// accessors below are nil-safe.
	Module *ModuleFacts

	facts *FactStore
	diags *[]Diagnostic
}

// ModuleFacts holds the facts every analyzed package exported, keyed by
// package path and then by function object path (types.Func.FullName():
// "pkg/path.Func" or "(*pkg/path.Recv).Method"). Object paths — not
// object identities — make the store robust to a dependency being
// type-checked twice (once from source for its own analysis, once with
// bodies skipped as an import). Values are analyzer-defined but must be
// JSON-marshalable: cmd/hpclint -facts dumps the whole store.
type ModuleFacts struct {
	pkgs   map[string]map[string]any
	closed map[string]bool
}

// NewModuleFacts returns an empty cross-package fact store.
func NewModuleFacts() *ModuleFacts {
	return &ModuleFacts{pkgs: map[string]map[string]any{}, closed: map[string]bool{}}
}

// SetClosed records the package paths that make up this driver run's
// analysis set — the closed world. Resolutions that rest on having seen
// every value of a type (interface devirtualization) are only sound for
// types declared inside the closed world: a package outside it could
// construct values the run never observed.
func (m *ModuleFacts) SetClosed(pkgPaths []string) {
	if m == nil {
		return
	}
	for _, p := range pkgPaths {
		m.closed[p] = true
	}
}

// IsClosed reports whether pkgPath is part of this run's analysis set.
func (m *ModuleFacts) IsClosed(pkgPath string) bool {
	return m != nil && m.closed[pkgPath]
}

// Export records a fact for the function object path objPath of package
// pkgPath, overwriting any previous value.
func (m *ModuleFacts) Export(pkgPath, objPath string, fact any) {
	if m == nil {
		return
	}
	set := m.pkgs[pkgPath]
	if set == nil {
		set = map[string]any{}
		m.pkgs[pkgPath] = set
	}
	set[objPath] = fact
}

// Lookup returns the fact exported for obj's declaring package and object
// path, if any. It is the cross-package half of fact propagation: obj is
// typically a *types.Func imported from a dependency that an earlier
// driver iteration analyzed from source.
func (m *ModuleFacts) Lookup(obj types.Object) (any, bool) {
	if m == nil || obj == nil || obj.Pkg() == nil {
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	v, ok := m.pkgs[obj.Pkg().Path()][fn.FullName()]
	return v, ok
}

// All returns every fact exported under objPath by any analyzed package,
// in sorted exporting-package order. It is the merge point for facts
// that several packages contribute to independently — the interface
// implementors each package observed flowing into one interface method —
// where Lookup's single declaring-package slot would lose information.
func (m *ModuleFacts) All(objPath string) []any {
	if m == nil {
		return nil
	}
	var out []any
	for _, pkg := range m.Packages() {
		if v, ok := m.pkgs[pkg][objPath]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Find returns the fact exported under objPath by whichever package
// declared it, located by scanning every exporting package (first hit in
// sorted order). It resolves facts for functions known only by object
// path — an interface implementor recorded as a string — where no
// types.Object is at hand for Lookup.
func (m *ModuleFacts) Find(objPath string) (any, bool) {
	if m == nil {
		return nil, false
	}
	for _, pkg := range m.Packages() {
		if v, ok := m.pkgs[pkg][objPath]; ok {
			return v, true
		}
	}
	return nil, false
}

// Packages returns the sorted package paths with exported facts.
func (m *ModuleFacts) Packages() []string {
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m.pkgs))
	for p := range m.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PackageFacts returns pkgPath's fact set keyed by object path. The map
// is the store's own; treat it as read-only.
func (m *ModuleFacts) PackageFacts(pkgPath string) map[string]any {
	if m == nil {
		return nil
	}
	return m.pkgs[pkgPath]
}

// ExportFact records a fact for a function declared in the pass's own
// package, to be consumed when the package's dependents are analyzed.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	p.Module.Export(p.Pkg.Path(), fn.FullName(), fact)
}

// ImportedFact looks up the fact a dependency exported for obj.
func (p *Pass) ImportedFact(obj types.Object) (any, bool) {
	return p.Module.Lookup(obj)
}

// FactStore is a per-package key/value store shared by every analyzer
// pass over that package: expensive derived structures (a call graph,
// propagated facts) are computed once and reused by later passes.
type FactStore struct {
	m map[any]any
}

// Fact returns the fact stored under key, computing and caching it with
// compute on first use. The key should be an analyzer-private type (as
// with context.Context values) so analyzers cannot collide.
func (p *Pass) Fact(key any, compute func() any) any {
	if p.facts == nil {
		// A pass constructed without a store (tests, ad-hoc drivers)
		// still works; it just recomputes.
		return compute()
	}
	if v, ok := p.facts.m[key]; ok {
		return v
	}
	v := compute()
	p.facts.m[key] = v
	return v
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ReportfProvenance is Reportf for cross-package findings: provenance
// names the package/function whose exported fact is the evidence (it
// rides along in cmd/hpclint's -json output).
func (p *Pass) ReportfProvenance(pos token.Pos, provenance, format string, args ...any) {
	p.ReportfVia(pos, provenance, "", format, args...)
}

// ReportfVia is the fully attributed report: provenance names the
// exported fact the finding rests on, and devirt records the interface
// dispatch the call edge was resolved through ("(pkg.Doer).Do →
// (*pkg.Spawner).Do"). Both ride along in cmd/hpclint's -json output.
func (p *Pass) ReportfVia(pos token.Pos, provenance, devirt, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:        p.Fset.Position(pos),
		Message:    fmt.Sprintf(format, args...),
		Analyzer:   p.Analyzer.Name,
		Provenance: provenance,
		Devirt:     devirt,
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
	// Provenance, when set, names the cross-package fact the finding
	// rests on ("hpcmetrics/internal/study.RunContext: spawns a
	// goroutine"), so a diagnostic in package a that exists only because
	// of package b's body is traceable to b.
	Provenance string
	// Devirt, when set, records the interface-method dispatch the
	// finding's call edge was resolved through: the interface method and
	// the concrete target it devirtualized to ("(pkg.Doer).Do →
	// (*pkg.Spawner).Do"), or the implementor set behind an all-agree
	// resolution ("(pkg.Doer).Do agreed by (*pkg.A).Do, (*pkg.B).Do").
	Devirt string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies the analyzers to one loaded package and returns the
// surviving (non-suppressed) diagnostics in position order. The package
// is analyzed in isolation — no cross-package facts flow in or out; use
// RunWithModule for module-wide analysis.
func Run(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithModule(pkg, analyzers, nil)
}

// RunWithModule is Run with a shared cross-package fact store. Drivers
// analyzing many packages pass the same ModuleFacts to every call, in
// dependency order (load.Loader.SortDeps), so each package can consume
// the facts its dependencies exported.
func RunWithModule(pkg *load.Package, analyzers []*Analyzer, module *ModuleFacts) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := &FactStore{m: map[any]any{}}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Syntax:   pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Module:   module,
			facts:    facts,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	diags = suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Directive is one //hpclint:ignore comment found in a package.
type Directive struct {
	File      string
	Line      int
	Analyzers []string
}

// Directives lists the suppression directives present in pkg, in source
// order. cmd/hpclint -suppressions uses this to diff the module's
// directive inventory against a committed allowlist, so new suppressions
// cannot slip in silently.
func Directives(pkg *load.Package) []Directive {
	var out []Directive
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, Directive{File: pos.Filename, Line: pos.Line, Analyzers: names})
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by //hpclint:ignore directives.
func suppress(pkg *load.Package, diags []Diagnostic) []Diagnostic {
	// ignored[file][line] holds the analyzer names silenced on that line.
	ignored := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ignored[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ignored[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					for _, n := range names {
						lines[ln][n] = true
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// parseIgnore extracts the analyzer names from an ignore directive
// comment, or reports that the comment is not one.
func parseIgnore(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//hpclint:ignore")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
