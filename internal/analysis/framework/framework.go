// Package framework is the hpclint analyzer harness: a deliberately small
// subset of the golang.org/x/tools/go/analysis API (Analyzer, Pass,
// Reportf) built on the stdlib-only loader in internal/analysis/load.
//
// Suppression: a diagnostic can be silenced with a directive comment
//
//	//hpclint:ignore floatcmp,unitmix reason for the exception
//
// which applies to diagnostics on its own line and on the line below it
// (so it works both as a trailing comment and as a standalone line above
// the flagged statement). The reason text is free-form but encouraged.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hpcmetrics/internal/analysis/load"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-paragraph description, shown by hpclint -list.
	Doc string
	// Run performs the check on one package, reporting through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Syntax   []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts *FactStore
	diags *[]Diagnostic
}

// FactStore is a per-package key/value store shared by every analyzer
// pass over that package: expensive derived structures (a call graph,
// propagated facts) are computed once and reused by later passes.
type FactStore struct {
	m map[any]any
}

// Fact returns the fact stored under key, computing and caching it with
// compute on first use. The key should be an analyzer-private type (as
// with context.Context values) so analyzers cannot collide.
func (p *Pass) Fact(key any, compute func() any) any {
	if p.facts == nil {
		// A pass constructed without a store (tests, ad-hoc drivers)
		// still works; it just recomputes.
		return compute()
	}
	if v, ok := p.facts.m[key]; ok {
		return v
	}
	v := compute()
	p.facts.m[key] = v
	return v
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies the analyzers to one loaded package and returns the
// surviving (non-suppressed) diagnostics in position order.
func Run(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := &FactStore{m: map[any]any{}}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Syntax:   pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    facts,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	diags = suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics covered by //hpclint:ignore directives.
func suppress(pkg *load.Package, diags []Diagnostic) []Diagnostic {
	// ignored[file][line] holds the analyzer names silenced on that line.
	ignored := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ignored[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ignored[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					for _, n := range names {
						lines[ln][n] = true
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// parseIgnore extracts the analyzer names from an ignore directive
// comment, or reports that the comment is not one.
func parseIgnore(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//hpclint:ignore")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
