// Package supp exercises the //hpclint:ignore suppression matrix against
// a toy analyzer that flags every call to trigger. Lines whose text
// contains the word "survive" are the ones expected to keep their
// diagnostic; every other trigger call is silenced.
package supp

func trigger(args ...int) {}

func plain() {
	trigger() // survive: no directive anywhere near
}

func sameLine() {
	trigger() //hpclint:ignore toy a trailing directive silences its own line
}

func lineAbove() {
	//hpclint:ignore toy a standalone directive covers the next line
	trigger()
}

func multiline() {
	// The diagnostic lands on the statement's first line, so a directive
	// above a multiline call silences the whole statement.
	//hpclint:ignore toy covers the first line of the call below
	trigger(
		1,
		2,
	)
}

func wrongName() {
	trigger() //hpclint:ignore other the directive names a different analyzer, so toy must survive
}

func nameList() {
	trigger() //hpclint:ignore other,toy a name list including toy silences it
}

func tooFarAbove() {
	//hpclint:ignore toy a directive two lines up does not reach
	_ = 0
	trigger() // survive: the directive above is out of range
}
