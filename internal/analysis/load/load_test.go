package load

import (
	"os"
	"path/filepath"
	"testing"
)

// mkTree builds a throwaway module tree and returns its root.
func mkTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"a/a.go":                "package a\n",
		"a/a_test.go":           "package a\n",
		"a/testdata/x/x.go":     "package x\n",
		"b/only_test.go":        "package b\n", // test-only: not a package dir
		"c/vendor/v/v.go":       "package v\n",
		"c/c.go":                "package c\n",
		".hidden/h.go":          "package h\n",
		"_skipped/s.go":         "package s\n",
		"d/nested/deep/deep.go": "package deep\n",
	}
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestExpandRecursive(t *testing.T) {
	root := mkTree(t)
	dirs, err := Expand([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		got[filepath.ToSlash(rel)] = true
	}
	for _, want := range []string{"a", "c", "d/nested/deep"} {
		if !got[want] {
			t.Errorf("Expand missed %q (got %v)", want, got)
		}
	}
	for _, skip := range []string{"a/testdata/x", "b", "c/vendor/v", ".hidden", "_skipped"} {
		if got[skip] {
			t.Errorf("Expand should have skipped %q", skip)
		}
	}
}

func TestExpandNonRecursive(t *testing.T) {
	root := mkTree(t)
	target := filepath.Join(root, "a")
	dirs, err := Expand([]string{target})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != target {
		t.Fatalf("Expand(%q) = %v, want just the directory itself", target, dirs)
	}
}

func TestExpandDeduplicates(t *testing.T) {
	root := mkTree(t)
	target := filepath.Join(root, "a")
	dirs, err := Expand([]string{target, target})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 {
		t.Fatalf("duplicate pattern produced %d dirs: %v", len(dirs), dirs)
	}
}
