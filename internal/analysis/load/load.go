// Package load parses and type-checks packages for the hpclint analyzer
// suite using only the standard library.
//
// The usual foundation for go/analysis drivers is golang.org/x/tools, which
// this repository deliberately does not depend on (the build must work from
// a bare toolchain with no module downloads). The loader therefore does the
// minimal job itself: package patterns are expanded by walking the module
// tree, files are selected with go/build (which applies build constraints),
// and dependencies are type-checked from source — module-internal packages
// from the module tree, standard-library packages from GOROOT/src with
// function bodies skipped.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package, ready for analysis.
type Package struct {
	// PkgPath is the import path ("hpcmetrics/internal/memsim").
	PkgPath string
	// Dir is the directory the sources came from.
	Dir string
	// Fset maps positions for every file of the loader that produced this
	// package (shared across packages).
	Fset *token.FileSet
	// Syntax holds the parsed files in stable (sorted filename) order,
	// with comments attached.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info records types and objects for every expression in Syntax.
	Info *types.Info
}

// Loader loads packages and caches their dependencies' type information.
// The zero value is not usable; call New.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// SrcRoots are extra source roots consulted before the module and
	// GOROOT when resolving an import path (analysistest fixture trees,
	// laid out GOPATH-style: root/<import/path>/*.go).
	SrcRoots []string

	ctxt       build.Context
	moduleRoot string
	modulePath string
	cache      map[string]*types.Package
	loading    map[string]bool
}

// New returns a ready Loader.
func New() *Loader {
	ctxt := build.Default
	// Pure-Go file selection: with cgo off, go/build picks the fallback
	// variants of cgo-using packages, which are the ones that type-check
	// from source alone.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		ctxt:    ctxt,
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// Expand turns package patterns ("./...", "internal/report") into the
// sorted list of package directories beneath them. Directories named
// testdata or vendor, hidden directories, and directories without
// non-test Go files are skipped.
func Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		switch {
		case pat == "...":
			recursive, pat = true, "."
		case strings.HasSuffix(pat, "/..."):
			recursive, pat = true, strings.TrimSuffix(pat, "/...")
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, fmt.Errorf("load: pattern %q: %w", pat, err)
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("load: pattern %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ModuleRoot returns the enclosing module's directory, discovering it
// from dir on first use (the same discovery Load performs).
func (l *Loader) ModuleRoot(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		l.findModule(abs)
	}
	return l.moduleRoot
}

// SortDeps orders package directories so that every module-internal
// dependency precedes its dependents (a topological order over the
// import edges between the given directories; ties keep the input's
// relative order). Drivers that propagate per-package facts downstream
// (cmd/hpclint) load in this order, so a package's dependencies are
// always analyzed — and their facts exported — first. Go forbids import
// cycles, so the sort always completes.
func (l *Loader) SortDeps(dirs []string) ([]string, error) {
	if len(dirs) == 0 {
		return dirs, nil
	}
	l.findModule(dirs[0])
	byPath := make(map[string]int, len(dirs)) // import path -> input index
	paths := make([]string, len(dirs))
	for i, dir := range dirs {
		paths[i] = l.importPathFor(dir)
		byPath[paths[i]] = i
	}
	imports := make([][]string, len(dirs))
	for i, dir := range dirs {
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", dir, err)
		}
		imports[i] = bp.Imports
	}
	var (
		out     = make([]string, 0, len(dirs))
		done    = make([]bool, len(dirs))
		visit   func(i int)
		pending = make([]bool, len(dirs))
	)
	visit = func(i int) {
		if done[i] || pending[i] {
			return // pending guards against a (compiler-rejected) cycle
		}
		pending[i] = true
		for _, imp := range imports[i] {
			if j, ok := byPath[imp]; ok {
				visit(j)
			}
		}
		pending[i] = false
		done[i] = true
		out = append(out, dirs[i])
	}
	for i := range dirs {
		visit(i)
	}
	return out, nil
}

// ImportPath derives dir's import path from the enclosing module — the
// path Load would assign — for naming packages in driver errors even
// when loading them failed.
func (l *Loader) ImportPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.Base(dir)
	}
	l.findModule(abs)
	return l.importPathFor(abs)
}

// importPathFor derives dir's import path from the enclosing module, the
// same way Load does.
func (l *Loader) importPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.Base(dir)
	}
	pkgPath := filepath.Base(abs)
	if l.modulePath != "" {
		if rel, err := filepath.Rel(l.moduleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
			pkgPath = path.Join(l.modulePath, filepath.ToSlash(rel))
		}
	}
	return pkgPath
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load type-checks the package in dir with full function bodies and
// expression-level type information. The import path is derived from the
// enclosing module.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	l.findModule(abs)
	return l.LoadAs(abs, l.importPathFor(abs))
}

// LoadAs is Load with an explicit import path (used by analysistest,
// whose fixture packages live outside any module).
func (l *Loader) LoadAs(dir, pkgPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    &importerFor{l},
		FakeImportC: true,
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	// A fully loaded package replaces any bodies-skipped version a
	// dependent may have pulled in earlier: later importers then share the
	// richer objects, and (with SortDeps ordering) each module-internal
	// package is parsed exactly once.
	l.cache[pkgPath] = tpkg
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.Fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// parseDir parses the build-constraint-selected, non-test Go files of dir
// in sorted order, keeping comments.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// findModule locates the enclosing go.mod, once. The walk toward the
// filesystem root is a bounded three-clause loop: filepath.Dir is a fixed
// point at the root, which the condition detects.
func (l *Loader) findModule(dir string) {
	if l.moduleRoot != "" {
		return
	}
	for d, last := dir, ""; d != last; d, last = filepath.Dir(d), d {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err != nil {
			continue
		}
		l.moduleRoot = d
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
				l.modulePath = strings.TrimSpace(rest)
				break
			}
		}
		return
	}
}

// importerFor adapts the loader to the go/types Importer interface.
type importerFor struct{ l *Loader }

func (im *importerFor) Import(pth string) (*types.Package, error) {
	return im.l.importPath(pth)
}

// importPath type-checks a dependency (function bodies skipped) and caches
// it. Resolution order: SrcRoots, the enclosing module, GOROOT/src, and
// GOROOT/src/vendor.
func (l *Loader) importPath(pth string) (*types.Package, error) {
	if pth == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[pth]; ok {
		return pkg, nil
	}
	if l.loading[pth] {
		return nil, fmt.Errorf("load: import cycle through %q", pth)
	}
	dir, stdlib, err := l.resolve(pth)
	if err != nil {
		return nil, err
	}
	l.loading[pth] = true
	defer delete(l.loading, pth)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var firstErr error
	conf := types.Config{
		Importer:         &importerFor{l},
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error: func(err error) {
			// Standard-library packages are checked without their cgo or
			// assembly halves; their internal errors do not matter as long
			// as the exported surface our code uses resolves.
			if !stdlib && firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(pth, l.Fset, files, nil)
	if firstErr != nil {
		return nil, fmt.Errorf("load: dependency %s: %w", pth, firstErr)
	}
	if pkg == nil {
		return nil, fmt.Errorf("load: dependency %s: %w", pth, err)
	}
	l.cache[pth] = pkg
	return pkg, nil
}

// resolve maps an import path to its source directory.
func (l *Loader) resolve(pth string) (dir string, stdlib bool, err error) {
	rel := filepath.FromSlash(pth)
	for _, root := range l.SrcRoots {
		if d := filepath.Join(root, rel); isDir(d) {
			return d, false, nil
		}
	}
	if l.modulePath != "" && (pth == l.modulePath || strings.HasPrefix(pth, l.modulePath+"/")) {
		d := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(pth, l.modulePath)))
		if isDir(d) {
			return d, false, nil
		}
	}
	goroot := l.ctxt.GOROOT
	if d := filepath.Join(goroot, "src", rel); isDir(d) {
		return d, true, nil
	}
	if d := filepath.Join(goroot, "src", "vendor", rel); isDir(d) {
		return d, true, nil
	}
	return "", false, fmt.Errorf("load: cannot resolve import %q", pth)
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}
