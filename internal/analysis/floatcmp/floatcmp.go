// Package floatcmp flags == and != between floating-point operands.
//
// Every number in this codebase is a float64 carrying a physical quantity
// (seconds, bytes/sec, ratios); after any arithmetic, exact equality is
// meaningless and silently false. The study's comparison discipline is a
// tolerance (math.Abs(a-b) <= eps). Two exemptions keep the check usable:
//
//   - comparisons against the exact constant zero, the conventional
//     "unset / division guard" sentinel, are allowed;
//   - the bodies of tolerance helpers themselves (functions whose name
//     contains approx, almost, near, within, tol, eps, or close,
//     case-insensitively) are allowed, since something has to perform the
//     underlying comparison.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the floatcmp check.
var Analyzer = &framework.Analyzer{
	Name: "floatcmp",
	Doc: "flags == / != on floating-point operands outside tolerance helpers " +
		"(exact float equality is almost always a bug; compare within an epsilon)",
	Run: run,
}

var toleranceHelper = regexp.MustCompile(`(?i)approx|almost|near|within|tol|eps|close`)

func run(pass *framework.Pass) error {
	for _, f := range pass.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && toleranceHelper.MatchString(fd.Name.Name) {
				continue
			}
			check(pass, decl)
		}
	}
	return nil
}

func check(pass *framework.Pass, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		// Nested tolerance helpers (function literals assigned to a
		// helper-named variable) are rare enough not to special-case.
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass.Info.TypeOf(be.X)) && !isFloat(pass.Info.TypeOf(be.Y)) {
			return true
		}
		if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
			return true
		}
		pass.Reportf(be.OpPos, "floating-point %s comparison (use a tolerance, e.g. math.Abs(a-b) <= eps)", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether e is the constant 0 (the exact sentinel
// convention this codebase allows in equality tests).
func isZeroConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
