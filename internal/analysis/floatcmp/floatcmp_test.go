package floatcmp_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.Analyzer, "a")
}
