package a

import "math"

const eps = 1e-9

func bad(x, y float64) bool {
	return x == y // want `floating-point == comparison`
}

func badNeq(x float32, t struct{ v float32 }) bool {
	return x != t.v // want `floating-point != comparison`
}

func badConst(x float64) bool {
	return x == 0.3 // want `floating-point == comparison`
}

func zeroGuard(x float64) bool {
	return x == 0 // exact zero sentinel: allowed
}

func approxEqual(x, y float64) bool {
	return x == y || math.Abs(x-y) <= eps // tolerance helper: allowed
}

func viaHelper(x, y float64) bool { return approxEqual(x, y) }

func ints(a, b int) bool { return a == b } // not floats: allowed

func ordered(x, y float64) bool { return x < y } // ordering: allowed

func suppressed(x, y float64) bool {
	//hpclint:ignore floatcmp exercised by the framework's directive test
	return x == y
}
