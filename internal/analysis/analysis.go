// Package analysis aggregates the hpclint analyzer suite — the study's
// correctness invariants that the Go compiler cannot see, turned into
// machine checks:
//
//	floatcmp   no == / != between floats outside tolerance helpers
//	unitmix    no additive mixing of conflicting unit suffixes
//	detrand    no wall clock, global rand, or map-ordered output in
//	           the simulation packages
//	errflow    no discarded errors in internal packages or command mains
//	presetmut  no mutation of shared machine preset Configs
//	ctxflow    goroutines and unbounded loops in the parallel study
//	           harness accept and consult a context.Context
//	lockguard  fields annotated `// guarded by <mu>` are only accessed
//	           with that mutex held
//	waitleak   no WaitGroup arity mismatches, stuck goroutine sends, or
//	           defer-less locks escaping through early returns
//	deadlinecheck  no deadline-stripped contexts handed to ctx-requiring
//	           callees, and HTTP handlers derive work contexts from
//	           r.Context()
//
// The suite is run by cmd/hpclint and gated in CI; individual findings
// can be suppressed with a //hpclint:ignore directive (see the framework
// package).
package analysis

import (
	"hpcmetrics/internal/analysis/ctxflow"
	"hpcmetrics/internal/analysis/deadlinecheck"
	"hpcmetrics/internal/analysis/detrand"
	"hpcmetrics/internal/analysis/errflow"
	"hpcmetrics/internal/analysis/floatcmp"
	"hpcmetrics/internal/analysis/framework"
	"hpcmetrics/internal/analysis/lockguard"
	"hpcmetrics/internal/analysis/presetmut"
	"hpcmetrics/internal/analysis/unitmix"
	"hpcmetrics/internal/analysis/waitleak"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		floatcmp.Analyzer,
		unitmix.Analyzer,
		detrand.Analyzer,
		errflow.Analyzer,
		presetmut.Analyzer,
		ctxflow.Analyzer,
		lockguard.Analyzer,
		waitleak.Analyzer,
		deadlinecheck.Analyzer,
	}
}
