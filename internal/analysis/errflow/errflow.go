// Package errflow flags discarded errors in the internal packages and in
// the command mains under cmd/... .
//
// A prediction study that silently swallows an error keeps producing
// numbers — wrong ones. Two discard shapes are flagged: calls used as
// bare statements whose results include an error, and assignments that
// send an error result to the blank identifier (_ = f(), or v, _ := g()).
//
// Exemptions, matching what the codebase treats as infallible by
// convention: the fmt printing functions (their error is for broken
// writers; progress output goes to best-effort writers here) and methods
// on strings.Builder and bytes.Buffer, whose errors are documented to be
// always nil. In command mains one further shape is allowed: a bare-call
// discard whose immediately following statement terminates the process
// (os.Exit, log.Fatal*, panic) — the classic best-effort flush on the way
// out, where nothing could act on the error anyway. Example packages
// (examples/...) remain fully exempt; they shorten error handling for
// readability.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the errflow check.
var Analyzer = &framework.Analyzer{
	Name: "errflow",
	Doc: "flags discarded errors in internal packages and command mains: bare call " +
		"statements that return an error, and error results assigned to _",
	Run: run,
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	isCmd := pass.Pkg.Name() == "main" && strings.Contains(path, "cmd")
	if !strings.Contains(path, "internal") && !isCmd {
		return nil
	}
	for _, f := range pass.Syntax {
		var exitAdjacent map[token.Pos]bool
		if isCmd {
			exitAdjacent = collectExitAdjacent(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if !exitAdjacent[n.Pos()] {
					checkExprStmt(pass, n)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// collectExitAdjacent finds the bare-call statements whose successor in
// the same statement list terminates the process: their error result
// feeds an os.Exit/log.Fatal path and is exempt in command mains.
func collectExitAdjacent(pass *framework.Pass, f *ast.File) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	scan := func(list []ast.Stmt) {
		for i := 0; i+1 < len(list); i++ {
			if _, ok := list[i].(*ast.ExprStmt); ok && terminates(pass, list[i+1]) {
				out[list[i].Pos()] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			scan(n.List)
		case *ast.CaseClause:
			scan(n.Body)
		case *ast.CommClause:
			scan(n.Body)
		}
		return true
	})
	return out
}

// terminates recognizes statements that end the process: calls to
// os.Exit, log.Fatal/Fatalf/Fatalln, and panic.
func terminates(pass *framework.Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		_, builtin := pass.Info.Uses[fun].(*types.Builtin)
		return builtin || pass.Info.Uses[fun] == nil
	case *ast.SelectorExpr:
		fn, ok := pass.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			return strings.HasPrefix(fn.Name(), "Fatal")
		}
	}
	return false
}

func checkExprStmt(pass *framework.Pass, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok || exempt(pass, call) {
		return
	}
	if i := errResult(pass, call); i >= 0 {
		pass.Reportf(call.Pos(), "error result of %s is discarded (handle it or assign it explicitly)", callName(call))
	}
}

func checkAssign(pass *framework.Pass, as *ast.AssignStmt) {
	// v, _ := f() — one call, several results, blank in an error position.
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && len(as.Lhs) > 1 {
			if exempt(pass, call) {
				return
			}
			tup, ok := pass.Info.TypeOf(call).(*types.Tuple)
			if !ok {
				return
			}
			for i := 0; i < tup.Len() && i < len(as.Lhs); i++ {
				if isBlank(as.Lhs[i]) && isErrorType(tup.At(i).Type()) {
					pass.Reportf(as.Lhs[i].Pos(), "error result of %s is discarded into _", callName(call))
				}
			}
			return
		}
	}
	// _ = f() pairs (also covers multi-assign with one-to-one RHS).
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			continue
		}
		if isErrorType(pass.Info.TypeOf(call)) {
			pass.Reportf(lhs.Pos(), "error result of %s is discarded into _", callName(call))
		}
	}
}

// errResult returns the index of an error in the call's results, or -1.
func errResult(pass *framework.Pass, call *ast.CallExpr) int {
	switch t := pass.Info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// callName renders the called function for a diagnostic message.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the call"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exempt reports whether the call's error is conventionally ignorable.
func exempt(pass *framework.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	if recv := recvNamed(fn); recv != "" {
		return recv == "strings.Builder" || recv == "bytes.Buffer"
	}
	return false
}

// recvNamed returns "pkgpath.TypeName" for the method's receiver type.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
