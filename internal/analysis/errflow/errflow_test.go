package errflow_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "internal/a", "cmdpkg", "cmd/demo")
}
