// Command demo exercises errflow's command-main rules: discarded errors
// are flagged even in package main under cmd/..., except for a bare-call
// discard whose very next statement terminates the process.
package main

import (
	"fmt"
	"log"
	"os"
)

func mayFail() error { return nil }

func flush() error { return nil }

func main() {
	mayFail()     // want `error result of mayFail is discarded`
	_ = mayFail() // want `discarded into _`
	if err := work(); err != nil {
		flush() // ok: log.Fatal next — nothing could act on the error
		log.Fatal(err)
	}
	flush() // ok: os.Exit next
	os.Exit(0)
}

func work() error {
	switch os.Getenv("MODE") {
	case "fatal":
		flush() // ok: log.Fatalf next
		log.Fatalf("giving up")
	case "panic":
		flush() // ok: panic next
		panic("giving up")
	case "spaced":
		flush() // want `error result of flush is discarded`
		fmt.Println("a non-terminator between discard and exit")
		os.Exit(1)
	}
	flush() // want `error result of flush is discarded`
	return nil
}
