package a

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func badBareCall() {
	mayFail() // want `error result of mayFail is discarded`
}

func badBlank() {
	_ = mayFail() // want `discarded into _`
}

func badTupleBlank() (n int) {
	n, _ = twoResults() // want `discarded into _`
	return n
}

func okChecked() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := twoResults()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

func okFmt() {
	fmt.Println("progress") // fmt printing: exempt
	fmt.Fprintf(os.Stderr, "stage done\n")
}

func okBuilder() string {
	var b strings.Builder
	b.WriteString("x") // strings.Builder errors are always nil: exempt
	return b.String()
}

func okNonError() {
	f := func() int { return 1 }
	f() // no error in the results: allowed
}
