// Package cmdpkg sits outside internal/..., where errflow does not apply
// (examples and command mains may legitimately shorten error handling).
package cmdpkg

func mayFail() error { return nil }

func Loose() {
	mayFail() // outside internal: allowed
	_ = mayFail()
}
