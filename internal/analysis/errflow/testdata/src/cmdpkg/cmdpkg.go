// Package cmdpkg sits outside internal/... and is not a command main, so
// errflow does not apply (example packages may legitimately shorten error
// handling for readability).
package cmdpkg

func mayFail() error { return nil }

func Loose() {
	mayFail() // outside internal: allowed
	_ = mayFail()
}
