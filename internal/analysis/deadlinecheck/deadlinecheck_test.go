package deadlinecheck_test

import (
	"testing"

	"hpcmetrics/internal/analysis/analysistest"
	"hpcmetrics/internal/analysis/deadlinecheck"
)

func TestDeadlinecheck(t *testing.T) {
	analysistest.Run(t, "testdata", deadlinecheck.Analyzer,
		"deadline", "deadlineclean", "handler")
}
