// Package deadlinecheck enforces deadline discipline on the call chains
// the coming predictd serving layer will run hot: once a caller is under
// a deadline, work it fans out must stay under that deadline.
//
// Two rules, on top of the cflite call graph (including edges resolved
// through interface devirtualization):
//
//  1. A function that takes a context.Context and (transitively) spawns
//     goroutines or loops unboundedly must not invoke a ctx-requiring
//     callee with a context that has provably had its deadline stripped:
//     a context.WithoutCancel result, or a context.Background()/TODO()
//     root rewrapped through WithValue/WithCancel. WithTimeout and
//     WithDeadline re-establish a deadline and stop the taint. (A bare
//     context.Background() argument is ctxflow rule 3's finding and is
//     not re-flagged here.)
//  2. An HTTP-handler-shaped function — func(w http.ResponseWriter,
//     r *http.Request) — must derive its work contexts from r.Context():
//     minting context.Background()/TODO() inside a handler detaches the
//     work from the client's disconnect and the server's shutdown.
//
// "Provably" is per-function and syntactic: an argument is stripped when
// the expression itself is a stripping call, or when it names a local
// variable assigned exactly once, from a stripping call, and never
// reassigned. Anything flowing in from parameters, fields, or multiple
// assignments is assumed fine — the check has no false positives by
// construction, at the cost of missing laundered roots.
package deadlinecheck

import (
	"go/ast"
	"go/types"

	"hpcmetrics/internal/analysis/cflite"
	"hpcmetrics/internal/analysis/framework"
)

// Analyzer is the deadlinecheck check.
var Analyzer = &framework.Analyzer{
	Name: "deadlinecheck",
	Doc: "flags ctx-taking spawners that hand a provably deadline-stripped context " +
		"(context.WithoutCancel, rewrapped context.Background()) to ctx-requiring callees, " +
		"and HTTP handlers that mint root contexts instead of deriving from r.Context()",
	Run: run,
}

func run(pass *framework.Pass) error {
	graph := cflite.Graph(pass)
	for _, n := range graph.Nodes {
		if n.Body() == nil || n.Enclosed {
			continue
		}
		if isHandlerShape(pass, n) {
			checkHandler(pass, n)
		}
		checkStrippedCalls(pass, n)
	}
	return nil
}

// checkStrippedCalls applies rule 1 to one function.
func checkStrippedCalls(pass *framework.Pass, n *cflite.FuncNode) {
	if !n.Requires || len(n.CtxParams) == 0 {
		return // not under a caller's deadline, or nothing unbounded below
	}
	defs := singleDefs(pass, n.Body())
	for _, cs := range n.Calls {
		if !cs.Callee.Requires || cs.CtxArg == cflite.CtxArgBackground {
			continue // bare Background() args are ctxflow rule 3's finding
		}
		for _, arg := range cs.Call.Args {
			if !cflite.IsContext(pass.Info.TypeOf(arg)) {
				continue
			}
			root, stripped := strippedCtx(pass, defs, arg, 0)
			if !stripped {
				continue
			}
			devirt := cflite.DevirtDescription(cs)
			pass.ReportfVia(cs.Call.Pos(), "", devirt,
				"%s passes a deadline-stripped context (%s) to %s, which requires cancellation; derive the context from the incoming ctx or re-arm a deadline with context.WithTimeout",
				n.Name(), root, cs.Callee.Name())
			break
		}
	}
}

// checkHandler applies rule 2: flag every root-context mint in an
// HTTP-handler-shaped body.
func checkHandler(pass *framework.Pass, n *cflite.FuncNode) {
	ast.Inspect(n.Body(), func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := contextCall(pass, call); ok && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(),
				"HTTP handler %s mints context.%s(); derive work contexts from r.Context() so client disconnects and server shutdown cancel the work",
				n.Name(), name)
		}
		return true
	})
}

// isHandlerShape reports whether the node's signature is the
// net/http handler shape (w http.ResponseWriter, r *http.Request).
func isHandlerShape(pass *framework.Pass, n *cflite.FuncNode) bool {
	var sig *types.Signature
	switch {
	case n.Decl != nil:
		if fn, ok := pass.Info.Defs[n.Decl.Name].(*types.Func); ok {
			sig, _ = fn.Type().(*types.Signature)
		}
	case n.Lit != nil:
		sig, _ = pass.Info.TypeOf(n.Lit).(*types.Signature)
	}
	if sig == nil || sig.Params().Len() != 2 {
		return false
	}
	return isHTTPType(sig.Params().At(0).Type(), "ResponseWriter") &&
		isHTTPType(sig.Params().At(1).Type(), "Request")
}

// isHTTPType matches net/http.name, through one pointer.
func isHTTPType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// singleDefs maps each local variable assigned exactly once — via := or
// var, single-value or as the first element of a (ctx, cancel) tuple —
// to its defining expression. Reassigned variables are dropped: their
// value at the call site is not provable.
func singleDefs(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]ast.Expr {
	defs := map[types.Object]ast.Expr{}
	dead := map[types.Object]bool{}
	record := func(id *ast.Ident, value ast.Expr) {
		obj := pass.Info.Defs[id]
		if obj == nil {
			// Plain = assignment: whatever it targets is multiply assigned.
			if obj := pass.Info.Uses[id]; obj != nil {
				dead[obj] = true
			}
			return
		}
		if _, seen := defs[obj]; seen {
			dead[obj] = true
			return
		}
		defs[obj] = value
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				switch {
				case len(n.Rhs) == len(n.Lhs):
					record(id, n.Rhs[i])
				case i == 0 && len(n.Rhs) == 1:
					// ctx, cancel := context.WithCancel(...): the first
					// element carries the context.
					record(id, n.Rhs[0])
				default:
					if obj := pass.Info.Defs[id]; obj != nil {
						dead[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				switch {
				case len(n.Values) == len(n.Names):
					record(id, n.Values[i])
				case i == 0 && len(n.Values) == 1:
					record(id, n.Values[0])
				}
			}
		case *ast.UnaryExpr:
			// &ctx: writes through the pointer are invisible here.
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					dead[obj] = true
				}
			}
		}
		return true
	})
	for obj := range dead {
		delete(defs, obj)
	}
	return defs
}

// strippedCtx reports whether e provably evaluates to a
// deadline-stripped context, returning the human-readable root for the
// diagnostic ("context.WithoutCancel", "rooted in context.Background").
// depth bounds the local-variable chase (defs is acyclic by single
// assignment, but the bound keeps pathological chains cheap).
func strippedCtx(pass *framework.Pass, defs map[types.Object]ast.Expr, e ast.Expr, depth int) (root string, stripped bool) {
	if depth > 10 {
		return "", false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return "", false
		}
		def, ok := defs[obj]
		if !ok {
			return "", false
		}
		return strippedCtx(pass, defs, def, depth+1)
	case *ast.CallExpr:
		name, ok := contextCall(pass, e)
		if !ok {
			return "", false
		}
		switch name {
		case "Background", "TODO":
			return "rooted in context." + name, true
		case "WithoutCancel":
			return "context.WithoutCancel", true
		case "WithValue", "WithCancel", "WithCancelCause":
			// Rewraps keep whatever root they were given; stripped iff the
			// parent is.
			if len(e.Args) == 0 {
				return "", false
			}
			return strippedCtx(pass, defs, e.Args[0], depth+1)
		}
		// WithTimeout/WithDeadline re-establish a deadline; anything else
		// is not provable.
		return "", false
	}
	return "", false
}

// contextCall matches a call to a package-level context function,
// returning its name.
func contextCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	return obj.Name(), true
}
