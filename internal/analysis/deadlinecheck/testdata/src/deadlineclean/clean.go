// Clean fixtures for deadlinecheck rule 1: live contexts, re-armed
// deadlines, entry points, and unprovable values must not be flagged.
package deadlineclean

import (
	"context"
	"time"
)

type key struct{}

func worker(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}()
}

// passthrough hands the live ctx straight through.
func passthrough(ctx context.Context, ch chan int) {
	<-ctx.Done()
	worker(ctx, ch)
}

// rearmed re-establishes a deadline on a Background root: the work is
// bounded again, whatever the caller's deadline was.
func rearmed(ctx context.Context, ch chan int) {
	<-ctx.Done()
	c, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	worker(c, ch)
}

// bare passes context.Background() directly: that is ctxflow rule 3's
// finding, not re-flagged here.
func bare(ctx context.Context, ch chan int) {
	<-ctx.Done()
	worker(context.Background(), ch)
}

// reassigned cannot be proven stripped: the local is written twice.
func reassigned(ctx context.Context, ch chan int) {
	<-ctx.Done()
	c := context.WithValue(context.Background(), key{}, 1)
	c = ctx
	worker(c, ch)
}

// entry takes no ctx: minting a root here is the blessed entry-point
// shape.
func entry(ch chan int) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	worker(ctx, ch)
}
