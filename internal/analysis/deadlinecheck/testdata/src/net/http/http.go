// Package http is a minimal stand-in for net/http, just enough surface
// for the handler-shape fixtures: type-checking the real net/http from
// source would drag in half the standard library.
package http

import "context"

// ResponseWriter mirrors net/http.ResponseWriter's role in the fixtures.
type ResponseWriter interface {
	WriteHeader(statusCode int)
}

// Request mirrors net/http.Request: a carrier for the per-request ctx.
type Request struct {
	ctx context.Context
}

// Context returns the request's context.
func (r *Request) Context() context.Context {
	return r.ctx
}
