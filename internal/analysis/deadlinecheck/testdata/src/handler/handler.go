// Fixtures for deadlinecheck rule 2: HTTP-handler-shaped functions must
// derive work contexts from r.Context().
package handler

import (
	"context"
	"net/http"
	"time"
)

// mint detaches its work from the request lifecycle.
func mint(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `HTTP handler mint mints context.Background\(\); derive work contexts from r.Context\(\)`
	_ = ctx
	w.WriteHeader(200)
}

// mintTODO is the same hole spelled TODO.
func mintTODO(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want `HTTP handler mintTODO mints context.TODO\(\)`
	_ = ctx
	w.WriteHeader(200)
}

// derived is the blessed shape.
func derived(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	<-ctx.Done()
	w.WriteHeader(200)
}

// litHandler checks the shape match on function literals too.
var litHandler = func(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `HTTP handler litHandler mints context.Background\(\)`
	_ = ctx
}

// notHandler has two params but not the handler shape: minting is the
// entry-point liberty.
func notHandler(a int, b string) {
	ctx := context.Background()
	_ = ctx
}
