// Flagging fixtures for deadlinecheck rule 1: deadline-stripped contexts
// handed to ctx-requiring callees from functions that are themselves
// under a caller's deadline.
package deadline

import "context"

type key struct{}

// worker spawns a goroutine: it (directly) requires a context.
func worker(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}()
}

// rewrapInline hands worker a Background root rewrapped in place.
func rewrapInline(ctx context.Context, ch chan int) {
	<-ctx.Done()
	worker(context.WithValue(context.Background(), key{}, 1), ch) // want `passes a deadline-stripped context \(rooted in context.Background\)`
}

// rewrapLocal launders the rewrap through a single-assignment local.
func rewrapLocal(ctx context.Context, ch chan int) {
	<-ctx.Done()
	c := context.WithValue(context.Background(), key{}, 1)
	worker(c, ch) // want `passes a deadline-stripped context \(rooted in context.Background\)`
}

// stripped uses WithoutCancel, which severs deadline and cancellation
// even from a live parent.
func stripped(ctx context.Context, ch chan int) {
	<-ctx.Done()
	worker(context.WithoutCancel(ctx), ch) // want `passes a deadline-stripped context \(context.WithoutCancel\)`
}

// cancelChain threads Background through WithCancel: cancellable, but
// the caller's deadline is still gone.
func cancelChain(ctx context.Context, ch chan int) {
	<-ctx.Done()
	c, cancel := context.WithCancel(context.Background())
	defer cancel()
	worker(c, ch) // want `passes a deadline-stripped context \(rooted in context.Background\)`
}
