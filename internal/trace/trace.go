// Package trace observes applications the way the paper's tool chain does.
//
// It plays three roles:
//
//   - MetaSim Tracer analog: for each basic block it regenerates the
//     block's address stream and classifies it with the stride detector
//     (stride-1 / short / random) and working-set estimator from
//     internal/access. Classification is honest — the tracer derives the
//     stride mixture and footprint from the observed stream, never from
//     the workload's own parameters, so detector error (gathers binned as
//     short strides, footprint estimation noise) propagates into the
//     predictions exactly as it does with the real tracer.
//
//   - MPIDTRACE analog: it copies the application's MPI event profile as
//     exact counts, which is what event tracing delivers.
//
//   - Static dependency analyzer analog (the paper credits a binary
//     analyzer for finding ILP-limited basic blocks): it compares the
//     block's dependency-chain bound against its throughput bound on the
//     base system and flags blocks where the chain dominates.
//
// Tracing happens once per application instance on the base system, as in
// the paper; the resulting Trace feeds the convolver for every target.
package trace

import (
	"context"
	"fmt"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/workload"
)

// BlockTrace is the tracer's record of one basic block.
type BlockTrace struct {
	Name string
	// Iters is the instrumented iteration count (exact, as counters are).
	Iters float64
	// FlopsPerIter and MemOpsPerIter come from instruction counting
	// (exact).
	FlopsPerIter  float64
	MemOpsPerIter float64
	// Mix is the detector-derived stride classification.
	Mix access.Mix
	// WorkingSetBytes is the detector-derived footprint estimate.
	WorkingSetBytes int64
	// ILPLimited is the static analyzer's verdict: the block's FP
	// dependency chain, not issue throughput, bounds it on the base
	// system.
	ILPLimited bool
}

// Trace is a complete application signature gathered on the base system.
type Trace struct {
	App        string
	Case       string
	Procs      int
	BaseSystem string
	Blocks     []BlockTrace
	// Comm is the MPIDTRACE event profile (per rank, whole run).
	Comm []netsim.Event
}

// ID returns the traced application's identifier.
func (t *Trace) ID() string { return t.App + "-" + t.Case }

// TotalFlops returns the traced floating-point operation count per rank.
func (t *Trace) TotalFlops() float64 {
	var sum float64
	for i := range t.Blocks {
		sum += t.Blocks[i].FlopsPerIter * t.Blocks[i].Iters
	}
	return sum
}

// TotalMemOps returns the traced memory operation count per rank.
func (t *Trace) TotalMemOps() float64 {
	var sum float64
	for i := range t.Blocks {
		sum += t.Blocks[i].MemOpsPerIter * t.Blocks[i].Iters
	}
	return sum
}

// tracerSampleCeiling bounds how many references the tracer replays per
// block; tracerGranularity is the coarse footprint-counting grain that
// keeps long traces cheap (see access.NewDetectorGranularity).
const (
	tracerSampleFloor   = 100_000
	tracerSampleCeiling = 4_000_000
	tracerGranularity   = 512
)

// sampleSize covers the working set a few times so the footprint estimate
// saturates, within the ceiling.
func sampleSize(ws int64) int {
	n := 4 * ws / access.ElemBytes
	switch {
	case n < tracerSampleFloor:
		return tracerSampleFloor
	case n > tracerSampleCeiling:
		return tracerSampleCeiling
	default:
		return int(n)
	}
}

// Collect traces the application on the base system.
func Collect(base *machine.Config, app *workload.App) (*Trace, error) {
	return CollectContext(context.Background(), base, app)
}

// CollectContext is Collect with cancellation and tracing: the context is
// consulted between basic blocks — the unit of replay cost — and the
// whole collection is one "trace" span when the context carries a tracer.
func CollectContext(ctx context.Context, base *machine.Config, app *workload.App) (*Trace, error) {
	_, span := obs.StartSpan(ctx, "trace")
	defer span.End()
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	span.Annotate("app", app.ID())

	tr := &Trace{
		App: app.Name, Case: app.Case, Procs: app.Procs,
		BaseSystem: base.Name,
		Comm:       append([]netsim.Event(nil), app.Comm...),
	}

	for i := range app.Blocks {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("trace: %s: %w", app.ID(), err)
		}
		if err := faults.Hit(ctx, faults.PointTraceBlock, app.ID(), app.Blocks[i].Name); err != nil {
			return nil, fmt.Errorf("trace: %s/%s: %w", app.ID(), app.Blocks[i].Name, err)
		}
		bt, err := traceBlock(base, &app.Blocks[i])
		if err != nil {
			return nil, fmt.Errorf("trace: %s/%s: %w", app.ID(), app.Blocks[i].Name, err)
		}
		tr.Blocks = append(tr.Blocks, bt)
	}
	return tr, nil
}

func traceBlock(base *machine.Config, blk *workload.Block) (BlockTrace, error) {
	stream, err := access.NewStream(blk.Stream)
	if err != nil {
		return BlockTrace{}, err
	}
	det := access.NewDetectorGranularity(0, tracerGranularity)
	n := sampleSize(blk.Stream.WorkingSetBytes)
	for i := 0; i < n; i++ {
		det.Observe(stream.Next())
	}
	sum := det.Summary()

	// Static analysis on the base system: a block is ILP-limited when its
	// FP dependency chain clearly dominates the full-instruction issue
	// bound (the analyzer sees all instructions in the binary), or when
	// its loads feed the chain — a memory-carried recurrence, which the
	// analyzer recognizes from the dataflow.
	cpu, err := cpusim.Time(base, blk.Work)
	if err != nil {
		return BlockTrace{}, err
	}
	ilp := cpu.DependencyCycles > ilpMargin*cpu.ThroughputCycles

	return BlockTrace{
		Name:            blk.Name,
		Iters:           blk.Iters,
		FlopsPerIter:    blk.Work.Flops,
		MemOpsPerIter:   blk.Work.MemOps,
		Mix:             sum.Mix(),
		WorkingSetBytes: sum.WorkingSetBytes,
		ILPLimited:      ilp || blk.DependentMemory,
	}, nil
}

// ilpMargin is how decisively the dependency bound must beat the issue
// bound before the analyzer flags a block; small excesses vanish in
// scheduling slack.
const ilpMargin = 1.8
