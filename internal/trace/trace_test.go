package trace

import (
	"math"
	"testing"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/workload"
)

func smallApp() *workload.App {
	return &workload.App{
		Name: "unit", Case: "test", Procs: 4, RuntimeImbalance: 1,
		Blocks: []workload.Block{
			{
				Name: "stream_like",
				Work: cpusim.Work{Flops: 20, IntOps: 4, MemOps: 10, FPChainLen: 2},
				Stream: access.StreamSpec{
					WorkingSetBytes: 2 << 20,
					Mix:             access.Mix{Unit: 0.9, Random: 0.1},
					Seed:            1,
				},
				Iters: 1000,
			},
			{
				Name: "recurrence",
				Work: cpusim.Work{Flops: 30, IntOps: 4, MemOps: 10, FPChainLen: 25},
				Stream: access.StreamSpec{
					WorkingSetBytes: 256 << 10,
					Mix:             access.Mix{Unit: 1},
					Seed:            2,
				},
				Iters:           500,
				DependentMemory: true,
			},
		},
		Comm: []netsim.Event{{Op: netsim.OpAllReduce, Bytes: 8, Count: 50}},
	}
}

func TestCollectBasics(t *testing.T) {
	base := machine.Base()
	app := smallApp()
	tr, err := Collect(base, app)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID() != "unit-test" || tr.Procs != 4 || tr.BaseSystem != base.Name {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if len(tr.Blocks) != 2 {
		t.Fatalf("traced %d blocks", len(tr.Blocks))
	}
	// Instruction counts are exact.
	if tr.Blocks[0].FlopsPerIter != 20 || tr.Blocks[0].MemOpsPerIter != 10 {
		t.Errorf("counters not exact: %+v", tr.Blocks[0])
	}
	if tr.TotalFlops() != 20*1000+30*500 {
		t.Errorf("TotalFlops = %g", tr.TotalFlops())
	}
	if tr.TotalMemOps() != 10*1000+10*500 {
		t.Errorf("TotalMemOps = %g", tr.TotalMemOps())
	}
}

func TestDetectedMixApproximatesTruth(t *testing.T) {
	tr, err := Collect(machine.Base(), smallApp())
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Blocks[0].Mix
	if math.Abs(got.Unit-0.9) > 0.08 || math.Abs(got.Random-0.1) > 0.08 {
		t.Fatalf("detected mix %+v, want ~{0.9,0,0.1}", got)
	}
}

func TestWorkingSetDetected(t *testing.T) {
	tr, err := Collect(machine.Base(), smallApp())
	if err != nil {
		t.Fatal(err)
	}
	ws := tr.Blocks[0].WorkingSetBytes
	if ws < 1<<20 || ws > 4<<20 {
		t.Fatalf("detected working set %d for true 2MB", ws)
	}
}

func TestDependencyAnalyzerFlags(t *testing.T) {
	tr, err := Collect(machine.Base(), smallApp())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Blocks[0].ILPLimited {
		t.Error("stream-like block flagged ILP-limited")
	}
	if !tr.Blocks[1].ILPLimited {
		t.Error("recurrence block not flagged ILP-limited")
	}
}

func TestCommProfileCopied(t *testing.T) {
	app := smallApp()
	tr, err := Collect(machine.Base(), app)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Comm) != 1 || tr.Comm[0].Count != 50 {
		t.Fatalf("comm profile %+v", tr.Comm)
	}
	// Mutating the trace must not alias the app.
	tr.Comm[0].Count = 999
	if app.Comm[0].Count != 50 {
		t.Fatal("trace aliases the app's comm profile")
	}
}

func TestCollectRejectsInvalid(t *testing.T) {
	app := smallApp()
	app.Blocks = nil
	if _, err := Collect(machine.Base(), app); err == nil {
		t.Fatal("accepted invalid app")
	}
	bad := machine.Base()
	bad.ClockGHz = 0
	if _, err := Collect(bad, smallApp()); err == nil {
		t.Fatal("accepted invalid machine")
	}
}

func TestTraceDeterministic(t *testing.T) {
	a, err := Collect(machine.Base(), smallApp())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(machine.Base(), smallApp())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("block %d differs across identical traces", i)
		}
	}
}

func TestTraceAllPaperApps(t *testing.T) {
	if testing.Short() {
		t.Skip("traces all study workloads")
	}
	base := machine.Base()
	for _, tc := range apps.Registry() {
		app, err := tc.Instance(tc.CPUCounts[1])
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Collect(base, app)
		if err != nil {
			t.Fatalf("%s: %v", tc.ID(), err)
		}
		if len(tr.Blocks) != len(app.Blocks) {
			t.Fatalf("%s: %d blocks traced, want %d", tc.ID(), len(tr.Blocks), len(app.Blocks))
		}
		for _, bt := range tr.Blocks {
			if bt.WorkingSetBytes <= 0 {
				t.Errorf("%s/%s: no working set detected", tc.ID(), bt.Name)
			}
			if bt.Mix.Unit+bt.Mix.Short+bt.Mix.Random < 0.999 {
				t.Errorf("%s/%s: mix does not sum to 1: %+v", tc.ID(), bt.Name, bt.Mix)
			}
		}
	}
}

func TestSampleSizeBounds(t *testing.T) {
	if got := sampleSize(100); got != tracerSampleFloor {
		t.Errorf("tiny ws sample = %d", got)
	}
	if got := sampleSize(1 << 40); got != tracerSampleCeiling {
		t.Errorf("huge ws sample = %d", got)
	}
	mid := int64(2 << 20)
	if got := sampleSize(mid); got != int(4*mid/access.ElemBytes) {
		t.Errorf("mid ws sample = %d", got)
	}
}
