// Package predictor is the answer to the paper's procurement question as
// a callable facade: "how fast will application X's test case C run on
// machine Y at Z processors, by metric M?" — one stateless Engine shared
// by the study harness, the predict CLI, and the predictd server, plus a
// memoizing, coalescing Predictor built for concurrent serving.
//
// Probes and trace signatures are deterministic functions of their
// inputs, so the Predictor caches them with exact hits, keyed
// per-machine and per-(app, case, procs); full predictions and observed
// ground truths are cached the same way. A thundering herd of identical
// cold requests runs each underlying computation exactly once: the
// first requester leads, the rest coalesce onto its in-flight slot (see
// cache). Request deadlines propagate end to end — the leader computes
// under its own request context, and a follower whose deadline expires
// abandons the wait without cancelling anyone else's work.
package predictor

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/par"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/simexec"
	"hpcmetrics/internal/trace"
)

// ErrBadRequest marks request-validation failures — unknown application,
// case, machine, or metric, or an unusable processor count — so a server
// can map them to 400 instead of 500. Test with errors.Is.
var ErrBadRequest = errors.New("predictor: bad request")

// Request names one prediction cell.
type Request struct {
	// App and Case name the test case ("avus", "standard"); an empty
	// Case matches the application's first case, like the CLI.
	App  string
	Case string
	// Procs is the processor count; 0 means the test case's middle
	// (default) count.
	Procs int
	// Machine is the target system preset name.
	Machine string
	// MetricID is the paper Table 3 metric number (1-9).
	MetricID int
	// Observed additionally runs the ground-truth executor on the
	// target, filling ObservedSeconds/SignedErrorPct when the job fits.
	Observed bool
}

// Result is one answered prediction.
type Result struct {
	App     string `json:"app"`
	Case    string `json:"case"`
	Procs   int    `json:"procs"`
	Machine string `json:"machine"`

	MetricID    int    `json:"metric"`
	MetricLabel string `json:"metric_label"`
	MetricName  string `json:"metric_name"`

	// BaseMachine and BaseSeconds anchor the prediction: the observed
	// runtime on the base system that every metric scales from.
	BaseMachine string  `json:"base_machine"`
	BaseSeconds float64 `json:"base_seconds"`

	// PredictedSeconds is the metric's runtime prediction on Machine.
	PredictedSeconds float64 `json:"predicted_seconds"`

	// Fits reports whether the job fits on the machine at all; a
	// prediction is still produced for an oversized job (the paper's
	// blank appendix cells), there is just no ground truth to check.
	Fits bool `json:"fits"`
	// ObservedSeconds and SignedErrorPct carry the ground truth and the
	// paper's Equation 2 error; valid only when HasObserved.
	HasObserved     bool    `json:"has_observed"`
	ObservedSeconds float64 `json:"observed_seconds,omitempty"`
	SignedErrorPct  float64 `json:"signed_error_pct,omitempty"`

	// Cached reports whether the prediction came from the exact cache
	// (or a coalesced wait on another request's computation) rather
	// than this request leading a computation on any layer.
	Cached bool `json:"cached"`
	// Outcome classifies the request against the caches, taking the
	// coldest layer touched: "cold" when this request led at least one
	// underlying computation, "coalesced" when it led nothing but
	// waited on another request's in-flight computation, "cached" when
	// every layer was an exact settled hit.
	Outcome string `json:"outcome"`
}

// RankRequest asks for machines ordered fastest-first for one cell.
type RankRequest struct {
	App      string
	Case     string
	Procs    int
	MetricID int
	// Machines restricts and orders the candidate set; empty means the
	// study's ten target systems.
	Machines []string
	// Observed fills ground truths for every ranked machine.
	Observed bool
}

// Ranking is a rank response: entries sorted by predicted runtime,
// fastest first, ties broken by machine name.
type Ranking struct {
	App         string    `json:"app"`
	Case        string    `json:"case"`
	Procs       int       `json:"procs"`
	MetricID    int       `json:"metric"`
	MetricLabel string    `json:"metric_label"`
	Entries     []*Result `json:"ranking"`
}

// cellValue is the memoized per-(app, case, procs) work: the base-system
// ground truth and the trace, the two artifacts the paper stresses are
// collected "only once per application".
type cellValue struct {
	baseSeconds float64
	tr          *trace.Trace
}

// observation is the memoized per-(cell, machine) ground truth.
type observation struct {
	seconds float64
	fits    bool
}

// Predictor serves predictions through the shared Engine with exact-hit
// memoization and request coalescing on every deterministic layer:
// probe suites per machine, (base run, trace) per cell, predictions per
// (cell, machine, metric), and ground truths per (cell, machine).
// Goroutine-safe; build with New.
type Predictor struct {
	eng     Engine
	base    *machine.Config
	workers int

	probeCache   *cache
	cellCache    *cache
	predictCache *cache
	observeCache *cache
}

// Config tunes a Predictor.
type Config struct {
	// Workers bounds Rank's per-machine fan-out; 0 means GOMAXPROCS.
	Workers int
}

// New returns a Predictor with empty caches, anchored to the study's
// base system.
func New(cfg Config) *Predictor {
	return &Predictor{
		base:         machine.Base(),
		workers:      cfg.Workers,
		probeCache:   newCache("predictor_probe_cache", "probes"),
		cellCache:    newCache("predictor_cell_cache", "cell"),
		predictCache: newCache("predictor_predict_cache", "predict"),
		observeCache: newCache("predictor_observe_cache", "observe"),
	}
}

// outcomeAgg folds per-layer hitKinds into the request-level outcome:
// the coldest layer wins (cold > coalesced > cached).
type outcomeAgg struct {
	kind hitKind
	any  bool
}

func (a *outcomeAgg) add(k hitKind) {
	if !a.any {
		a.kind, a.any = k, true
		return
	}
	// hitMiss ("cold") dominates, then hitCoalesced, then hitSettled.
	rank := func(k hitKind) int {
		switch k {
		case hitMiss:
			return 2
		case hitCoalesced:
			return 1
		}
		return 0
	}
	if rank(k) > rank(a.kind) {
		a.kind = k
	}
}

// Engine returns the predictor's compute core — the same Engine the
// study harness and the CLI use directly.
func (p *Predictor) Engine() Engine { return p.eng }

// resolved is a validated request.
type resolved struct {
	tc     apps.TestCase
	procs  int
	target *machine.Config
	metric metrics.Metric
}

func (p *Predictor) resolve(app, caseName string, procs int, machineName string, metricID int) (resolved, error) {
	var r resolved
	tc, err := apps.Lookup(app, caseName)
	if err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if procs == 0 {
		if procs, err = tc.DefaultProcs(); err != nil {
			return r, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if procs < 1 {
		return r, fmt.Errorf("%w: procs %d, want >= 1", ErrBadRequest, procs)
	}
	target, err := machine.Preset(machineName)
	if err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	m, err := metrics.ByID(metricID)
	if err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return resolved{tc: tc, procs: procs, target: target, metric: m}, nil
}

// probesFor returns the machine's memoized probe suite.
func (p *Predictor) probesFor(ctx context.Context, cfg *machine.Config) (*probes.Results, hitKind, error) {
	v, kind, err := p.probeCache.get(ctx, cfg.Name, func(ctx context.Context) (any, error) {
		return p.eng.Probes(ctx, cfg)
	})
	if err != nil {
		return nil, kind, err
	}
	return v.(*probes.Results), kind, nil
}

// cellFor returns the cell's memoized base run and trace.
func (p *Predictor) cellFor(ctx context.Context, tc apps.TestCase, procs int) (cellValue, hitKind, error) {
	key := fmt.Sprintf("%s@%d", tc.ID(), procs)
	v, kind, err := p.cellCache.get(ctx, key, func(ctx context.Context) (any, error) {
		app, err := tc.Instance(procs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		run, err := p.eng.Execute(ctx, p.base, app)
		if err != nil {
			return nil, err
		}
		tr, err := p.eng.Trace(ctx, p.base, app)
		if err != nil {
			return nil, err
		}
		return cellValue{baseSeconds: run.Seconds, tr: tr}, nil
	})
	if err != nil {
		return cellValue{}, kind, err
	}
	return v.(cellValue), kind, nil
}

// observeFor returns the cell's memoized ground truth on one machine.
func (p *Predictor) observeFor(ctx context.Context, tc apps.TestCase, procs int, target *machine.Config) (observation, hitKind, error) {
	key := fmt.Sprintf("%s@%d|%s", tc.ID(), procs, target.Name)
	v, kind, err := p.observeCache.get(ctx, key, func(ctx context.Context) (any, error) {
		app, err := tc.Instance(procs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		run, err := p.eng.Execute(ctx, target, app)
		if errors.Is(err, simexec.ErrTooLarge) {
			return observation{}, nil
		}
		if err != nil {
			return nil, err
		}
		return observation{seconds: run.Seconds, fits: true}, nil
	})
	if err != nil {
		return observation{}, kind, err
	}
	return v.(observation), kind, nil
}

// Predict answers one request. Identical concurrent cold requests are
// coalesced: the probe suites, the base run + trace, and the prediction
// itself each run exactly once. The result's Outcome reports the
// coldest cache layer the request touched.
func (p *Predictor) Predict(ctx context.Context, req Request) (*Result, error) {
	r, err := p.resolve(req.App, req.Case, req.Procs, req.Machine, req.MetricID)
	if err != nil {
		return nil, err
	}
	var agg outcomeAgg
	basePr, kind, err := p.probesFor(ctx, p.base)
	if err != nil {
		return nil, err
	}
	agg.add(kind)
	targetPr, kind, err := p.probesFor(ctx, r.target)
	if err != nil {
		return nil, err
	}
	agg.add(kind)
	cell, kind, err := p.cellFor(ctx, r.tc, r.procs)
	if err != nil {
		return nil, err
	}
	agg.add(kind)
	predKey := fmt.Sprintf("%s@%d|%s|%d", r.tc.ID(), r.procs, r.target.Name, r.metric.ID)
	v, kind, err := p.predictCache.get(ctx, predKey, func(ctx context.Context) (any, error) {
		return p.eng.PredictMetric(ctx, r.metric, metrics.Context{
			Trace: cell.tr, Base: basePr, Target: targetPr, BaseSeconds: cell.baseSeconds,
		})
	})
	if err != nil {
		return nil, err
	}
	agg.add(kind)
	res := &Result{
		App: r.tc.Name, Case: r.tc.Case, Procs: r.procs, Machine: r.target.Name,
		MetricID: r.metric.ID, MetricLabel: r.metric.Label(), MetricName: r.metric.Name,
		BaseMachine: p.base.Name, BaseSeconds: cell.baseSeconds,
		PredictedSeconds: v.(float64),
		Fits:             r.procs <= r.target.TotalProcs,
	}
	if req.Observed {
		o, kind, err := p.observeFor(ctx, r.tc, r.procs, r.target)
		if err != nil {
			return nil, err
		}
		agg.add(kind)
		if o.fits {
			res.HasObserved = true
			res.ObservedSeconds = o.seconds
			res.SignedErrorPct = metrics.SignedError(res.PredictedSeconds, o.seconds)
		}
		res.Fits = o.fits
	}
	res.Outcome = agg.kind.String()
	res.Cached = agg.kind.cached()
	return res, nil
}

// Rank predicts the cell on every candidate machine — fanned out on the
// shared ctx-aware worker pool, bounded by Config.Workers — and returns
// the machines ordered fastest-first by predicted runtime.
func (p *Predictor) Rank(ctx context.Context, req RankRequest) (*Ranking, error) {
	names := req.Machines
	if len(names) == 0 {
		for _, cfg := range machine.StudyTargets() {
			names = append(names, cfg.Name)
		}
	}
	// Validate the whole request up front so a bad machine name is a
	// clean ErrBadRequest, not a joined pool error.
	r, err := p.resolve(req.App, req.Case, req.Procs, names[0], req.MetricID)
	if err != nil {
		return nil, err
	}
	for _, name := range names[1:] {
		if _, err := machine.Preset(name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	entries := make([]*Result, len(names))
	err = par.ForEachIndexed(ctx, len(names), p.workers, "predictor", func(ctx context.Context, i int) error {
		res, err := p.Predict(ctx, Request{
			App: req.App, Case: req.Case, Procs: req.Procs,
			Machine: names[i], MetricID: req.MetricID, Observed: req.Observed,
		})
		if err != nil {
			return fmt.Errorf("rank %s: %w", names[i], err)
		}
		entries[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].PredictedSeconds < entries[j].PredictedSeconds {
			return true
		}
		if entries[j].PredictedSeconds < entries[i].PredictedSeconds {
			return false
		}
		return entries[i].Machine < entries[j].Machine
	})
	return &Ranking{
		App: r.tc.Name, Case: r.tc.Case, Procs: r.procs,
		MetricID: r.metric.ID, MetricLabel: r.metric.Label(),
		Entries: entries,
	}, nil
}

// CacheStat is one memoization layer's live view: how many keys it
// holds and how traffic against it resolved.
type CacheStat struct {
	// Keys is the layer's keyspace size (settled + in-flight slots).
	Keys int `json:"keys"`
	// Hits counts exact settled hits; Misses counts led computations;
	// Coalesced counts waits on another request's in-flight slot.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
}

// CacheStats reports each memoization layer's keyspace size and
// hit/miss/coalesce traffic — the backing for /v1/cache and /v1/status.
// The counts are the predictor's own (process-lifetime), independent of
// any obs registry on request contexts.
func (p *Predictor) CacheStats() map[string]CacheStat {
	return map[string]CacheStat{
		"probes":       p.probeCache.stat(),
		"cells":        p.cellCache.stat(),
		"predictions":  p.predictCache.stat(),
		"observations": p.observeCache.stat(),
	}
}

// CacheSizes reports how many keys each memoization layer holds, for
// introspection endpoints and tests.
func (p *Predictor) CacheSizes() map[string]int {
	sizes := make(map[string]int, 4)
	for layer, st := range p.CacheStats() {
		sizes[layer] = st.Keys
	}
	return sizes
}
