package predictor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/obs"
)

// herdRequest is the cell every heavy test in this file predicts: the
// study's cheapest cell, so the suite pays for one base run + trace.
var herdRequest = Request{App: "rfcth", Case: "standard", Procs: 16, Machine: machine.ARLOpteron, MetricID: 9}

// TestPredictCoalescesColdHerd is the PR's acceptance test: N identical
// concurrent requests against cold caches must run every underlying
// computation exactly once — one base execution, one trace, one metric
// convolution, one probe suite per machine — counter-asserted through
// the obs registry the Engine reports into.
func TestPredictCoalescesColdHerd(t *testing.T) {
	if testing.Short() {
		t.Skip("probes two machines and runs a base execution + trace")
	}
	const herd = 8
	o := obs.New()
	ctx := o.Inject(context.Background())
	p := New(Config{})

	results := make([]*Result, herd)
	errs := make([]error, herd)
	var wg sync.WaitGroup
	var gun sync.WaitGroup
	gun.Add(1)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gun.Wait()
			results[i], errs[i] = p.Predict(ctx, herdRequest)
		}(i)
	}
	gun.Done()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	want := math.Float64bits(results[0].PredictedSeconds)
	colds := 0
	for i, res := range results {
		if math.Float64bits(res.PredictedSeconds) != want {
			t.Errorf("request %d predicted %v, request 0 predicted %v: cache hits are not exact",
				i, res.PredictedSeconds, results[0].PredictedSeconds)
		}
		switch res.Outcome {
		case "cold":
			colds++
			if res.Cached {
				t.Errorf("request %d: cold outcome but Cached=true", i)
			}
		case "coalesced", "cached":
			if !res.Cached {
				t.Errorf("request %d: %s outcome but Cached=false", i, res.Outcome)
			}
		default:
			t.Errorf("request %d: outcome %q, want cold/coalesced/cached", i, res.Outcome)
		}
	}
	if colds == 0 {
		t.Error("no herd member reported a cold outcome; someone must have led")
	}

	meter := o.Metrics
	for name, want := range map[string]int64{
		"predictor_probe_runs_total":           2, // base + target, once each
		"predictor_exec_runs_total":            1, // the base run; no ground truth requested
		"predictor_trace_runs_total":           1,
		"predictor_metric_runs_total":          1, // the convolution the herd coalesced onto
		"predictor_predict_cache_misses_total": 1,
	} {
		if got := meter.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	followers := meter.Counter("predictor_predict_cache_hits_total").Value() +
		meter.Counter("predictor_predict_cache_coalesced_total").Value()
	if followers != herd-1 {
		t.Errorf("prediction hits+coalesced = %d, want %d (every non-leader)", followers, herd-1)
	}

	// A later identical request is an exact cache hit, flagged as such,
	// and moves no run counter.
	res, err := p.Predict(ctx, herdRequest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("repeat request not reported as cached")
	}
	if res.Outcome != "cached" {
		t.Errorf("repeat request outcome %q, want cached (every layer settled)", res.Outcome)
	}
	stats := p.CacheStats()
	for _, layer := range []string{"probes", "cells", "predictions", "observations"} {
		if _, ok := stats[layer]; !ok {
			t.Errorf("CacheStats missing layer %q: %v", layer, stats)
		}
	}
	if st := stats["predictions"]; st.Keys != 1 || st.Misses != 1 {
		t.Errorf("predictions layer stat = %+v, want 1 key, 1 miss", st)
	}
	if st := stats["cells"]; st.Keys != 1 || st.Misses != 1 {
		t.Errorf("cells layer stat = %+v, want 1 key, 1 miss", st)
	}
	if st := stats["probes"]; st.Keys != 2 || st.Misses != 2 {
		t.Errorf("probes layer stat = %+v, want 2 keys, 2 misses", st)
	}
	if st := stats["observations"]; st.Keys != 0 {
		t.Errorf("observations layer stat = %+v, want untouched", st)
	}
	if math.Float64bits(res.PredictedSeconds) != want {
		t.Errorf("cached prediction %v differs from cold %v", res.PredictedSeconds, results[0].PredictedSeconds)
	}
	if got := meter.Counter("predictor_metric_runs_total").Value(); got != 1 {
		t.Errorf("repeat request ran the metric again: predictor_metric_runs_total = %d", got)
	}

	// Parity with the CLI path: cmd/predict drives the same Engine
	// methods directly (probe, execute, trace, predict); the facade's
	// cached answer must match that computation bit for bit.
	var eng Engine
	base := machine.Base()
	target, err := machine.Preset(herdRequest.Machine)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := apps.Lookup(herdRequest.App, herdRequest.Case)
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(herdRequest.Procs)
	if err != nil {
		t.Fatal(err)
	}
	basePr, err := eng.Probes(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	targetPr, err := eng.Probes(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	baseRun, err := eng.Execute(ctx, base, app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Trace(ctx, base, app)
	if err != nil {
		t.Fatal(err)
	}
	m, err := metrics.ByID(herdRequest.MetricID)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.PredictMetric(ctx, m, metrics.Context{
		Trace: tr, Base: basePr, Target: targetPr, BaseSeconds: baseRun.Seconds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(direct) != want {
		t.Errorf("direct Engine computation %v differs from facade's cached %v", direct, res.PredictedSeconds)
	}
}

// TestRankOrdersFastestFirst ranks the cell across three systems and
// checks ordering plus the shared-cache effect: the cell's base run and
// trace are computed once, not once per machine.
func TestRankOrdersFastestFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("probes four machines and runs a base execution + trace")
	}
	o := obs.New()
	ctx := o.Inject(context.Background())
	p := New(Config{Workers: 3})
	machines := []string{machine.ARLOpteron, machine.MHPCCPower3, machine.ASCSC45}
	ranking, err := p.Rank(ctx, RankRequest{
		App: "rfcth", Case: "standard", Procs: 16, MetricID: 1, Machines: machines,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking.Entries) != len(machines) {
		t.Fatalf("ranking has %d entries, want %d", len(ranking.Entries), len(machines))
	}
	for i := 1; i < len(ranking.Entries); i++ {
		if ranking.Entries[i-1].PredictedSeconds > ranking.Entries[i].PredictedSeconds {
			t.Errorf("ranking not sorted: entry %d (%s, %.0fs) slower than entry %d (%s, %.0fs)",
				i-1, ranking.Entries[i-1].Machine, ranking.Entries[i-1].PredictedSeconds,
				i, ranking.Entries[i].Machine, ranking.Entries[i].PredictedSeconds)
		}
	}
	if got := o.Metrics.Counter("predictor_trace_runs_total").Value(); got != 1 {
		t.Errorf("rank traced the cell %d times, want 1 (shared across machines)", got)
	}
	if got := o.Metrics.Counter("predictor_metric_runs_total").Value(); got != int64(len(machines)) {
		t.Errorf("rank ran %d metric predictions, want %d (one per machine)", got, len(machines))
	}
}

// TestResolveRejectsBadRequests: every invalid field maps to
// ErrBadRequest so the server can blame the client, not itself.
func TestResolveRejectsBadRequests(t *testing.T) {
	p := New(Config{})
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown app", Request{App: "nonesuch", Machine: machine.ARLOpteron, MetricID: 9}},
		{"unknown case", Request{App: "avus", Case: "huge", Machine: machine.ARLOpteron, MetricID: 9}},
		{"unknown machine", Request{App: "avus", Machine: "CRAY_XMP", MetricID: 9}},
		{"unknown metric", Request{App: "avus", Machine: machine.ARLOpteron, MetricID: 10}},
		{"negative procs", Request{App: "avus", Procs: -4, Machine: machine.ARLOpteron, MetricID: 9}},
	}
	for _, c := range cases {
		if _, err := p.Predict(context.Background(), c.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", c.name, err)
		}
	}
	if _, err := p.Rank(context.Background(), RankRequest{
		App: "avus", MetricID: 9, Machines: []string{machine.ARLOpteron, "CRAY_XMP"},
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("rank with one bad machine: err = %v, want ErrBadRequest", err)
	}
}

// --- cache mechanics (no simulation, all synthetic computes) ---

// TestCacheDoesNotCacheErrors: a failed computation leaves no residue;
// the next request recomputes and can succeed.
func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := newCache("t", "t")
	ctx := context.Background()
	calls := 0
	boom := errors.New("boom")
	if _, _, err := c.get(ctx, "k", func(context.Context) (any, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, kind, err := c.get(ctx, "k", func(context.Context) (any, error) {
		calls++
		return 42, nil
	})
	if err != nil || v.(int) != 42 || kind.cached() {
		t.Fatalf("second get = (%v, kind=%v, %v), want fresh 42", v, kind, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (error not cached)", calls)
	}
	if c.size() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.size())
	}
}

// TestCacheFollowerSurvivesLeaderCancellation: the leader's own deadline
// dying must not fail the followers coalesced behind it — they elect a
// new leader and still get an answer.
func TestCacheFollowerSurvivesLeaderCancellation(t *testing.T) {
	c := newCache("t", "t")
	lctx, lcancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.get(lctx, "k", func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan struct{})
	var fv any
	var ferr error
	go func() {
		defer close(followerDone)
		fv, _, ferr = c.get(context.Background(), "k", func(context.Context) (any, error) {
			return "recovered", nil
		})
	}()
	// Let the follower reach its wait before the leader dies; the exact
	// interleaving does not matter for correctness, only for making the
	// coalesced path likely.
	time.Sleep(10 * time.Millisecond)
	lcancel()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung after leader cancellation")
	}
	if ferr != nil || fv.(string) != "recovered" {
		t.Fatalf("follower = (%v, %v), want recovered", fv, ferr)
	}
}

// TestCacheEmitsOutcomeSpans: under a traced request context, a cold
// get runs its computation inside a "<layer>.compute" span (outcome
// cold) and a coalesced follower's wait is a "<layer>.wait" span
// annotated with the leader's trace ID — the attributes tracecheck
// -serve joins on.
func TestCacheEmitsOutcomeSpans(t *testing.T) {
	c := newCache("t_cache", "layer")
	o := obs.New()

	leaderCtx, leaderRoot := obs.StartRequestSpan(o.Inject(context.Background()), "predict", "")
	followerCtx, followerRoot := obs.StartRequestSpan(o.Inject(context.Background()), "predict", "")

	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, kind, err := c.get(leaderCtx, "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return "v", nil
		}); err != nil || kind != hitMiss {
			t.Errorf("leader get = (kind=%v, %v), want led miss", kind, err)
		}
	}()
	<-started
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		if _, kind, err := c.get(followerCtx, "k", func(context.Context) (any, error) {
			return nil, fmt.Errorf("follower must not lead")
		}); err != nil || kind != hitCoalesced {
			t.Errorf("follower get = (kind=%v, %v), want coalesced", kind, err)
		}
	}()
	// Let the follower reach its wait before releasing the leader, so
	// the coalesced path is taken (same idea as the tests above).
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-leaderDone
	<-followerDone
	leaderRoot.End()
	followerRoot.End()

	var compute, wait *obs.SpanRecord
	for _, rec := range o.Tracer.Records() {
		rec := rec
		switch rec.Name {
		case "layer.compute":
			compute = &rec
		case "layer.wait":
			wait = &rec
		}
	}
	if compute == nil || wait == nil {
		t.Fatalf("span log missing compute/wait spans: %+v", o.Tracer.Records())
	}
	if compute.Attrs[obs.AttrOutcome] != "cold" || compute.Trace != leaderRoot.TraceID() {
		t.Errorf("compute span = %+v, want outcome cold under leader trace %s", compute, leaderRoot.TraceID())
	}
	if wait.Attrs[obs.AttrOutcome] != "coalesced" {
		t.Errorf("wait span outcome = %q, want coalesced", wait.Attrs[obs.AttrOutcome])
	}
	if wait.Attrs[obs.AttrLeaderTrace] != leaderRoot.TraceID() {
		t.Errorf("wait span leader_trace = %q, want the leader's trace %s",
			wait.Attrs[obs.AttrLeaderTrace], leaderRoot.TraceID())
	}
	if wait.Trace != followerRoot.TraceID() {
		t.Errorf("wait span trace = %q, want the follower's own trace %s", wait.Trace, followerRoot.TraceID())
	}

	st := c.stat()
	if st.Keys != 1 || st.Misses != 1 || st.Coalesced != 1 || st.Hits != 0 {
		t.Errorf("cache stat = %+v, want 1 key, 1 miss, 1 coalesced", st)
	}
}

// TestCacheWaiterHonorsOwnDeadline: a follower whose own context expires
// abandons the wait with its context's error, leaving the leader alone.
func TestCacheWaiterHonorsOwnDeadline(t *testing.T) {
	c := newCache("t", "t")
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.get(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return "slow", nil
		})
		if err != nil {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-started

	fctx, fcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer fcancel()
	_, _, err := c.get(fctx, "k", func(context.Context) (any, error) {
		return nil, fmt.Errorf("follower must not lead")
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	close(release)
	<-leaderDone

	// The leader's value settled and is served as a hit.
	v, kind, err := c.get(context.Background(), "k", func(context.Context) (any, error) {
		return nil, fmt.Errorf("must hit")
	})
	if err != nil || kind != hitSettled || v.(string) != "slow" {
		t.Fatalf("post-settle get = (%v, kind=%v, %v), want settled slow", v, kind, err)
	}
}
