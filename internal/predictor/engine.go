package predictor

import (
	"context"

	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/simexec"
	"hpcmetrics/internal/trace"
	"hpcmetrics/internal/workload"
)

// Engine is the stateless compute core shared by the study harness, the
// predict CLI, and the predictd server: every probe measurement,
// ground-truth execution, trace collection, and metric prediction in the
// module funnels through these four methods. The methods are exact
// pass-throughs to the underlying packages — an Engine call is
// byte-identical to calling the package directly — plus one obs counter
// each, so a caller's registry shows how many underlying computations
// actually ran. That counter is what the coalescing tests assert on: N
// coalesced requests must move predictor_metric_runs_total by exactly 1.
type Engine struct{}

// Probes measures the full probe suite on one machine.
func (Engine) Probes(ctx context.Context, cfg *machine.Config) (*probes.Results, error) {
	obs.From(ctx).Meter().Counter("predictor_probe_runs_total").Inc()
	return probes.MeasureContext(ctx, cfg)
}

// Execute runs an application on a machine at full model fidelity,
// producing the ground-truth time-to-solution.
func (Engine) Execute(ctx context.Context, cfg *machine.Config, app *workload.App) (*simexec.Result, error) {
	obs.From(ctx).Meter().Counter("predictor_exec_runs_total").Inc()
	return simexec.ExecuteContext(ctx, cfg, app)
}

// Trace collects an application's signature on the base system.
func (Engine) Trace(ctx context.Context, base *machine.Config, app *workload.App) (*trace.Trace, error) {
	obs.From(ctx).Meter().Counter("predictor_trace_runs_total").Inc()
	return trace.CollectContext(ctx, base, app)
}

// PredictMetric applies one of the paper's nine metrics (the convolution
// for predictive metrics, the benchmark ratio for simple ones).
func (Engine) PredictMetric(ctx context.Context, m metrics.Metric, mc metrics.Context) (float64, error) {
	obs.From(ctx).Meter().Counter("predictor_metric_runs_total").Inc()
	return m.PredictContext(ctx, mc)
}
