package predictor

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"hpcmetrics/internal/obs"
)

// hitKind classifies how one cache.get was served. The zero value is
// the leader path (a miss that computed).
type hitKind int

const (
	// hitMiss: this caller led the computation (cold).
	hitMiss hitKind = iota
	// hitSettled: exact hit on a settled slot.
	hitSettled
	// hitCoalesced: this caller waited on another's in-flight slot.
	hitCoalesced
)

// cached reports whether the value came from the cache rather than this
// caller's own computation.
func (k hitKind) cached() bool { return k != hitMiss }

// String renders the request-facing outcome vocabulary shared with the
// access log and span annotations.
func (k hitKind) String() string {
	switch k {
	case hitSettled:
		return "cached"
	case hitCoalesced:
		return "coalesced"
	}
	return "cold"
}

// entry is one cache slot. done is closed once the slot is settled;
// val/err are written exactly once, before the close, so readers that
// have observed the close may read them without the cache lock.
// leaderTrace is the leading request's trace ID, written before the
// entry is published so coalesced followers can reference the trace
// their answer is being computed under.
type entry struct {
	done        chan struct{}
	leaderTrace string
	val         any
	err         error
}

// cache is an exact-hit memoization table with request coalescing. The
// first requester of an absent key becomes the leader and computes the
// value synchronously under its own context — no detached goroutine, so
// request deadlines propagate into the computation instead of being
// laundered through a background context. Followers arriving while the
// leader is in flight wait on the same slot (one computation for a
// thundering herd); a follower whose own context expires gives up
// without disturbing the leader.
//
// Values are cached forever — probes and trace signatures are
// deterministic, so hits are exact. Errors are never cached: a failed
// slot is removed before it settles, and later requests recompute. A
// leader that fails because its *own* context was cancelled settles the
// slot with that context error; waiting followers do not inherit it —
// they loop and elect a new leader among themselves.
//
// When the context carries a tracer, the layer's work becomes spans: a
// leader's computation runs under a "<layer>.compute" child span
// (outcome "cold"), and a follower's wait is a "<layer>.wait" span
// (outcome "coalesced") annotated with the leader's trace ID — which is
// how a served request's latency decomposes into cold compute versus
// coalesced-follower wait in the span log.
type cache struct {
	name string // obs metric stem, e.g. "predictor_predict_cache"
	span string // span-name stem, e.g. "predict"

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64

	mu sync.Mutex
	m  map[string]*entry // guarded by mu
}

func newCache(name, span string) *cache {
	return &cache{name: name, span: span, m: make(map[string]*entry)}
}

// get returns the value for key, computing it via compute on a miss.
// The second result classifies how the call was served: hitMiss (this
// caller led the computation), hitSettled (exact hit), or hitCoalesced
// (waited on another's in-flight computation). Counters, resolved from
// ctx's obs registry (nil-safe): <name>_hits_total, <name>_misses_total,
// and <name>_coalesced_total; the cache's own atomic mirrors back
// Predictor.CacheStats without needing a registry.
func (c *cache) get(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, hitKind, error) {
	meter := obs.From(ctx).Meter()
	for {
		if err := ctx.Err(); err != nil {
			return nil, hitMiss, err
		}
		c.mu.Lock()
		e, ok := c.m[key]
		if !ok {
			e = &entry{done: make(chan struct{}), leaderTrace: obs.SpanFrom(ctx).TraceID()}
			c.m[key] = e
			c.mu.Unlock()
			meter.Counter(c.name + "_misses_total").Inc()
			c.misses.Add(1)
			sctx, sp := obs.StartSpan(ctx, c.span+".compute")
			sp.Annotate(obs.AttrOutcome, "cold")
			e.val, e.err = compute(sctx)
			sp.End()
			if e.err != nil {
				c.mu.Lock()
				delete(c.m, key)
				c.mu.Unlock()
			}
			close(e.done)
			return e.val, hitMiss, e.err
		}
		c.mu.Unlock()

		settled := false
		select {
		case <-e.done:
			settled = true
		default:
			meter.Counter(c.name + "_coalesced_total").Inc()
			c.coalesced.Add(1)
		}
		kind := hitCoalesced
		if !settled {
			_, sp := obs.StartSpan(ctx, c.span+".wait")
			sp.Annotate(obs.AttrOutcome, "coalesced")
			if e.leaderTrace != "" {
				sp.Annotate(obs.AttrLeaderTrace, e.leaderTrace)
			}
			select {
			case <-ctx.Done():
				sp.End()
				return nil, hitMiss, ctx.Err()
			case <-e.done:
			}
			sp.End()
		} else {
			kind = hitSettled
		}
		if e.err == nil {
			if kind == hitSettled {
				meter.Counter(c.name + "_hits_total").Inc()
				c.hits.Add(1)
			}
			return e.val, kind, nil
		}
		if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			// The leader's own context died; its failure says nothing
			// about the computation. Re-enter and elect a new leader.
			continue
		}
		return nil, kind, e.err
	}
}

// size reports how many settled-or-in-flight keys the cache holds.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// stat snapshots the cache for CacheStats.
func (c *cache) stat() CacheStat {
	return CacheStat{
		Keys:      c.size(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
	}
}
