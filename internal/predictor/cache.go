package predictor

import (
	"context"
	"errors"
	"sync"

	"hpcmetrics/internal/obs"
)

// entry is one cache slot. done is closed once the slot is settled;
// val/err are written exactly once, before the close, so readers that
// have observed the close may read them without the cache lock.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// cache is an exact-hit memoization table with request coalescing. The
// first requester of an absent key becomes the leader and computes the
// value synchronously under its own context — no detached goroutine, so
// request deadlines propagate into the computation instead of being
// laundered through a background context. Followers arriving while the
// leader is in flight wait on the same slot (one computation for a
// thundering herd); a follower whose own context expires gives up
// without disturbing the leader.
//
// Values are cached forever — probes and trace signatures are
// deterministic, so hits are exact. Errors are never cached: a failed
// slot is removed before it settles, and later requests recompute. A
// leader that fails because its *own* context was cancelled settles the
// slot with that context error; waiting followers do not inherit it —
// they loop and elect a new leader among themselves.
type cache struct {
	name string // obs metric stem, e.g. "predictor_predict_cache"

	mu sync.Mutex
	m  map[string]*entry // guarded by mu
}

func newCache(name string) *cache {
	return &cache{name: name, m: make(map[string]*entry)}
}

// get returns the value for key, computing it via compute on a miss.
// The second result reports whether the value came from the cache (a
// settled hit or a coalesced wait) rather than from this caller's own
// computation. Counters, resolved from ctx's obs registry (nil-safe):
// <name>_hits_total, <name>_misses_total (this caller led the
// computation), and <name>_coalesced_total (this caller waited on
// another's in-flight computation).
func (c *cache) get(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, bool, error) {
	meter := obs.From(ctx).Meter()
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		e, ok := c.m[key]
		if !ok {
			e = &entry{done: make(chan struct{})}
			c.m[key] = e
			c.mu.Unlock()
			meter.Counter(c.name + "_misses_total").Inc()
			e.val, e.err = compute(ctx)
			if e.err != nil {
				c.mu.Lock()
				delete(c.m, key)
				c.mu.Unlock()
			}
			close(e.done)
			return e.val, false, e.err
		}
		c.mu.Unlock()

		settled := false
		select {
		case <-e.done:
			settled = true
		default:
			meter.Counter(c.name + "_coalesced_total").Inc()
		}
		if !settled {
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case <-e.done:
			}
		}
		if e.err == nil {
			meter.Counter(c.name + "_hits_total").Inc()
			return e.val, true, nil
		}
		if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			// The leader's own context died; its failure says nothing
			// about the computation. Re-enter and elect a new leader.
			continue
		}
		return nil, true, e.err
	}
}

// size reports how many settled-or-in-flight keys the cache holds.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
