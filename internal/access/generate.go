package access

import "fmt"

// StreamSpec describes the reference stream one basic block emits.
type StreamSpec struct {
	// WorkingSetBytes is the footprint the stream wanders over.
	WorkingSetBytes int64
	// Mix is the stride mixture of the stream.
	Mix Mix
	// ShortStrideElems is the element stride used for the short-stride
	// component (2..MaxShortStride). Zero defaults to 4.
	ShortStrideElems int64
	// StoreFraction is the fraction of references that are stores.
	StoreFraction float64
	// GatherSpread widens the random component: random targets are drawn
	// from a region GatherSpread times the working set (min 1), modeling
	// indirect gather/scatter whose index range exceeds the hot data.
	GatherSpread float64
	// HotFraction is the fraction of references that revisit a small hot
	// region (HotBytes) — loop temporaries, coefficients, stencil
	// neighbours just touched. This is the temporal locality that gives
	// real codes their high L1 hit rates; block-granularity tracing
	// cannot see it, which is one of the honest error sources of the
	// study's methodology.
	HotFraction float64
	// HotBytes is the hot-region size; zero defaults to 16KB.
	HotBytes int64
	// Seed selects the deterministic stream instance.
	Seed uint64
}

// Validate reports structural problems in the spec.
func (s StreamSpec) Validate() error {
	if s.WorkingSetBytes < ElemBytes {
		return fmt.Errorf("access: working set %d below one element", s.WorkingSetBytes)
	}
	if err := s.Mix.Validate(); err != nil {
		return err
	}
	if s.ShortStrideElems < 0 || s.ShortStrideElems == 1 || s.ShortStrideElems > MaxShortStride {
		return fmt.Errorf("access: short stride %d outside {0,2..%d}", s.ShortStrideElems, MaxShortStride)
	}
	if s.StoreFraction < 0 || s.StoreFraction > 1 {
		return fmt.Errorf("access: store fraction %g outside [0,1]", s.StoreFraction)
	}
	if s.GatherSpread < 0 {
		return fmt.Errorf("access: negative gather spread %g", s.GatherSpread)
	}
	if s.HotFraction < 0 || s.HotFraction >= 1 {
		return fmt.Errorf("access: hot fraction %g outside [0,1)", s.HotFraction)
	}
	if s.HotBytes < 0 {
		return fmt.Errorf("access: negative hot region %d", s.HotBytes)
	}
	return nil
}

// generator interleaves three walkers — unit-stride, short-stride, and
// random — in proportions given by the mix. Interleaving follows real loop
// bodies, where a single iteration touches several arrays with different
// access patterns, so consecutive references alternate between walkers
// rather than arriving in long per-class runs.
type generator struct {
	spec     StreamSpec
	r        *rng
	elems    int64 // working set in elements
	base     uint64
	unitPos  int64
	shortPos int64
	stride   int64
	spread   int64 // random region in elements
	hotElems int64
	hotPos   int64
	// errAccum implements largest-remainder scheduling of the three
	// classes so exact proportions hold even for short streams.
	errAccum [numClasses]float64
}

// baseAddr separates streams in the address space so distinct blocks never
// alias; alignment keeps unit walkers line-aligned at start.
const baseAddr = uint64(1) << 40

func newGenerator(spec StreamSpec) (*generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	stride := spec.ShortStrideElems
	if stride == 0 {
		stride = 4
	}
	elems := spec.WorkingSetBytes / ElemBytes
	spreadF := spec.GatherSpread
	if spreadF < 1 {
		spreadF = 1
	}
	// This is the error-returning boundary for the rng invariant: every
	// random draw downstream indexes [0, spread), and rng.intn treats a
	// non-positive bound as a programming error. Validate() already forces
	// WorkingSetBytes >= ElemBytes (so elems >= 1), but an absurd
	// GatherSpread can still push the region past int64 and wrap negative
	// on conversion; refuse it here rather than panicking mid-stream.
	spreadElems := float64(elems) * spreadF
	if spreadElems > float64(1<<62) {
		return nil, fmt.Errorf("access: gather spread %g overflows the random region", spec.GatherSpread)
	}
	spread := int64(spreadElems)
	if spread < elems {
		spread = elems
	}
	hotBytes := spec.HotBytes
	if hotBytes == 0 {
		hotBytes = 16 << 10
	}
	return &generator{
		spec:     spec,
		r:        newRNG(spec.Seed),
		elems:    elems,
		base:     baseAddr + (spec.Seed%4096)*(1<<28),
		stride:   stride,
		spread:   spread,
		hotElems: hotBytes / ElemBytes,
	}, nil
}

// pickClass chooses the next reference's class by largest accumulated
// deficit, which realizes the mix exactly without random clumping.
func (g *generator) pickClass() Class {
	g.errAccum[ClassUnit] += g.spec.Mix.Unit
	g.errAccum[ClassShort] += g.spec.Mix.Short
	g.errAccum[ClassRandom] += g.spec.Mix.Random
	best, bestV := ClassUnit, g.errAccum[ClassUnit]
	for c := ClassShort; c < numClasses; c++ {
		if g.errAccum[c] > bestV {
			best, bestV = c, g.errAccum[c]
		}
	}
	g.errAccum[best] -= 1
	return best
}

func (g *generator) next() Ref {
	if g.spec.HotFraction > 0 && g.r.float64() < g.spec.HotFraction {
		addr := g.base + uint64(3)<<27 + uint64(g.hotPos%g.hotElems)*ElemBytes
		g.hotPos++
		return Ref{Addr: addr, Store: g.r.float64() < g.spec.StoreFraction}
	}
	var addr uint64
	switch g.pickClass() {
	case ClassUnit:
		addr = g.base + uint64(g.unitPos%g.elems)*ElemBytes
		g.unitPos++
	case ClassShort:
		addr = g.base + uint64(1)<<27 + uint64(g.shortPos%g.elems)*ElemBytes
		g.shortPos += g.stride
	default:
		addr = g.base + uint64(2)<<27 + uint64(g.r.intn(g.spread))*ElemBytes
	}
	return Ref{Addr: addr, Store: g.r.float64() < g.spec.StoreFraction}
}

// Generate produces n deterministic references for the spec. The same
// (spec, n) always yields the same stream.
func Generate(spec StreamSpec, n int) ([]Ref, error) {
	g, err := newGenerator(spec)
	if err != nil {
		return nil, err
	}
	out := make([]Ref, n)
	for i := range out {
		out[i] = g.next()
	}
	return out, nil
}

// Stream is an incremental generator for callers that do not want the whole
// slice in memory (memsim consumes references one at a time).
type Stream struct{ g *generator }

// NewStream returns an incremental stream for the spec.
func NewStream(spec StreamSpec) (*Stream, error) {
	g, err := newGenerator(spec)
	if err != nil {
		return nil, err
	}
	return &Stream{g: g}, nil
}

// Next returns the next reference.
func (s *Stream) Next() Ref { return s.g.next() }
