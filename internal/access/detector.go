package access

// Detector classifies an address stream into stride bins the way the
// paper's tracer does: it tracks a small table of recently seen access
// streams and matches each new reference against them by delta. A match at
// one element is stride-1; a match at 2..MaxShortStride elements is a short
// stride; anything that matches no tracked stream is random. The table is
// LRU-managed, so the frequently hit unit/short walkers of a loop stay
// resident while one-off random targets churn through a victim slot, as in
// hardware stream detectors.
//
// The Detector also estimates the stream's working set by counting distinct
// lines at a fixed granularity, and its store fraction.
type Detector struct {
	trackers []tracker
	clock    uint64
	counts   [numClasses]int64
	stores   int64
	total    int64
	lines    map[uint64]struct{}
	gran     int64
}

type tracker struct {
	lastAddr uint64
	lastUsed uint64
	valid    bool
}

// DefaultTrackers is the stream-table size; 16 covers the handful of
// concurrent array walks a scientific loop body sustains.
const DefaultTrackers = 16

// wsGranularity is the line size used for working-set estimation. 64 bytes
// is the smallest line among the study machines, so the estimate is
// conservative for all of them.
const wsGranularity = 64

// NewDetector returns a detector with n stream trackers (DefaultTrackers
// if n <= 0).
func NewDetector(n int) *Detector {
	return NewDetectorGranularity(n, wsGranularity)
}

// NewDetectorGranularity is NewDetector with a chosen working-set counting
// granularity in bytes. Long traces (the tracer observes millions of
// references) use a coarse granularity to bound the line-set memory while
// keeping the estimate within a factor adequate for cache-size comparisons.
func NewDetectorGranularity(n int, granularity int64) *Detector {
	if n <= 0 {
		n = DefaultTrackers
	}
	if granularity <= 0 {
		granularity = wsGranularity
	}
	return &Detector{
		trackers: make([]tracker, n),
		lines:    make(map[uint64]struct{}),
		gran:     granularity,
	}
}

// Observe classifies one reference and folds it into the summary,
// returning the class assigned.
func (d *Detector) Observe(ref Ref) Class {
	d.clock++
	d.total++
	if ref.Store {
		d.stores++
	}
	d.lines[ref.Addr/uint64(d.gran)] = struct{}{}

	const maxDelta = MaxShortStride * ElemBytes
	class := ClassRandom
	matched := -1
	for i := range d.trackers {
		t := &d.trackers[i]
		if !t.valid {
			continue
		}
		delta := int64(ref.Addr) - int64(t.lastAddr)
		if delta < 0 {
			delta = -delta
		}
		if delta > maxDelta {
			continue
		}
		switch {
		case delta <= ElemBytes:
			// Same element or the adjacent one: contiguous access.
			class = ClassUnit
		case delta%ElemBytes == 0:
			class = ClassShort
		default:
			// Sub-element misalignment within short range still walks the
			// same lines; bin it with short strides.
			class = ClassShort
		}
		matched = i
		break
	}

	if matched >= 0 {
		d.trackers[matched].lastAddr = ref.Addr
		d.trackers[matched].lastUsed = d.clock
	} else {
		// Allocate the LRU slot for a potential new stream.
		lru, lruUsed := 0, ^uint64(0)
		for i := range d.trackers {
			if !d.trackers[i].valid {
				lru = i
				break
			}
			if d.trackers[i].lastUsed < lruUsed {
				lru, lruUsed = i, d.trackers[i].lastUsed
			}
		}
		d.trackers[lru] = tracker{lastAddr: ref.Addr, lastUsed: d.clock, valid: true}
	}

	d.counts[class]++
	return class
}

// Summary is the detector's verdict over everything observed so far.
type Summary struct {
	Total           int64
	Counts          [3]int64 // indexed by Class
	WorkingSetBytes int64
	StoreFraction   float64
}

// Mix converts the observed counts into a stride mixture. A summary with
// no references reports an all-unit mix.
func (s Summary) Mix() Mix {
	if s.Total == 0 {
		return Mix{Unit: 1}
	}
	t := float64(s.Total)
	return Mix{
		Unit:   float64(s.Counts[ClassUnit]) / t,
		Short:  float64(s.Counts[ClassShort]) / t,
		Random: float64(s.Counts[ClassRandom]) / t,
	}
}

// Summary returns the accumulated classification.
func (d *Detector) Summary() Summary {
	var s Summary
	s.Total = d.total
	for c := Class(0); c < numClasses; c++ {
		s.Counts[c] = d.counts[c]
	}
	s.WorkingSetBytes = int64(len(d.lines)) * d.gran
	if d.total > 0 {
		s.StoreFraction = float64(d.stores) / float64(d.total)
	}
	return s
}

// Analyze classifies a whole stream with a default-sized detector.
func Analyze(refs []Ref) Summary {
	d := NewDetector(0)
	for _, r := range refs {
		d.Observe(r)
	}
	return d.Summary()
}
