package access_test

import (
	"fmt"

	"hpcmetrics/internal/access"
)

// ExampleGenerate shows generating a deterministic mixed stream and
// recovering its stride mixture with the detector.
func ExampleGenerate() {
	spec := access.StreamSpec{
		WorkingSetBytes: 8 << 20,
		Mix:             access.Mix{Unit: 0.8, Random: 0.2},
		Seed:            42,
	}
	refs, err := access.Generate(spec, 100000)
	if err != nil {
		panic(err)
	}
	sum := access.Analyze(refs)
	fmt.Printf("unit ~%.1f, random ~%.1f\n",
		round1(sum.Mix().Unit), round1(sum.Mix().Random))
	// Output:
	// unit ~0.8, random ~0.2
}

func round1(x float64) float64 {
	return float64(int(x*10+0.5)) / 10
}

// ExampleDetector shows incremental classification.
func ExampleDetector() {
	d := access.NewDetector(0)
	// A pure unit-stride walk over 8-byte elements.
	for addr := uint64(0); addr < 8*100; addr += 8 {
		d.Observe(access.Ref{Addr: addr})
	}
	sum := d.Summary()
	fmt.Printf("%d refs, %.0f%% unit\n", sum.Total, sum.Mix().Unit*100)
	// Output:
	// 100 refs, 99% unit
}
