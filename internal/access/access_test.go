package access

import (
	"math"
	"testing"
	"testing/quick"
)

func mustGenerate(t *testing.T, spec StreamSpec, n int) []Ref {
	t.Helper()
	refs, err := Generate(spec, n)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return refs
}

func TestGenerateDeterministic(t *testing.T) {
	spec := StreamSpec{
		WorkingSetBytes: 1 << 20,
		Mix:             Mix{Unit: 0.5, Short: 0.3, Random: 0.2},
		Seed:            7,
	}
	a := mustGenerate(t, spec, 10000)
	b := mustGenerate(t, spec, 10000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedChangesRandomComponent(t *testing.T) {
	spec := StreamSpec{WorkingSetBytes: 1 << 22, Mix: Mix{Random: 1}, Seed: 1}
	a := mustGenerate(t, spec, 1000)
	spec.Seed = 2
	b := mustGenerate(t, spec, 1000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("%d/1000 identical random addresses across seeds", same)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []StreamSpec{
		{WorkingSetBytes: 0, Mix: Mix{Unit: 1}},
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 0.5}},                           // doesn't sum to 1
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 2, Random: -1}},                 // negative
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 1}, ShortStrideElems: 1},        // stride 1 is not "short"
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 1}, ShortStrideElems: 99},       // too long
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 1}, StoreFraction: 1.5},         // bad fraction
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 1}, GatherSpread: -2},           // negative spread
		{WorkingSetBytes: -5, Mix: Mix{Unit: 1}},                               // negative ws
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 0.4, Short: 0.4, Random: 0.4}},  // sums to 1.2
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 1.0000001, Random: -0.0000001}}, // tiny negative
		{WorkingSetBytes: 1024, Mix: Mix{Unit: 1}, GatherSpread: 1e30},         // spread overflows int64
	}
	for i, spec := range bad {
		if _, err := Generate(spec, 10); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestPureUnitStreamDetected(t *testing.T) {
	spec := StreamSpec{WorkingSetBytes: 1 << 20, Mix: Mix{Unit: 1}, Seed: 3}
	sum := Analyze(mustGenerate(t, spec, 50000))
	if got := sum.Mix().Unit; got < 0.99 {
		t.Fatalf("unit fraction = %g, want >= 0.99", got)
	}
}

func TestPureShortStrideDetected(t *testing.T) {
	for _, stride := range []int64{2, 4, 8} {
		spec := StreamSpec{
			WorkingSetBytes:  1 << 20,
			Mix:              Mix{Short: 1},
			ShortStrideElems: stride,
			Seed:             3,
		}
		sum := Analyze(mustGenerate(t, spec, 50000))
		if got := sum.Mix().Short; got < 0.99 {
			t.Errorf("stride %d: short fraction = %g, want >= 0.99", stride, got)
		}
	}
}

func TestPureRandomStreamDetected(t *testing.T) {
	spec := StreamSpec{WorkingSetBytes: 64 << 20, Mix: Mix{Random: 1}, Seed: 3}
	sum := Analyze(mustGenerate(t, spec, 50000))
	if got := sum.Mix().Random; got < 0.95 {
		t.Fatalf("random fraction = %g, want >= 0.95", got)
	}
}

func TestMixedStreamRecovered(t *testing.T) {
	want := Mix{Unit: 0.6, Short: 0.25, Random: 0.15}
	spec := StreamSpec{
		WorkingSetBytes:  32 << 20,
		Mix:              want,
		ShortStrideElems: 4,
		Seed:             11,
	}
	got := Analyze(mustGenerate(t, spec, 200000)).Mix()
	const tol = 0.05
	if math.Abs(got.Unit-want.Unit) > tol ||
		math.Abs(got.Short-want.Short) > tol ||
		math.Abs(got.Random-want.Random) > tol {
		t.Fatalf("recovered mix %+v, want %+v (+/- %g)", got, want, tol)
	}
}

func TestStoreFractionRecovered(t *testing.T) {
	spec := StreamSpec{
		WorkingSetBytes: 1 << 20,
		Mix:             Mix{Unit: 1},
		StoreFraction:   0.3,
		Seed:            5,
	}
	sum := Analyze(mustGenerate(t, spec, 100000))
	if math.Abs(sum.StoreFraction-0.3) > 0.02 {
		t.Fatalf("store fraction = %g, want ~0.3", sum.StoreFraction)
	}
}

func TestWorkingSetEstimate(t *testing.T) {
	const ws = 4 << 20
	spec := StreamSpec{WorkingSetBytes: ws, Mix: Mix{Unit: 1}, Seed: 1}
	// Enough references to walk the whole set: ws/ElemBytes plus slack.
	sum := Analyze(mustGenerate(t, spec, ws/ElemBytes+1000))
	if sum.WorkingSetBytes < ws/2 || sum.WorkingSetBytes > 2*ws {
		t.Fatalf("working set estimate %d for true %d", sum.WorkingSetBytes, ws)
	}
}

func TestEmptySummary(t *testing.T) {
	sum := Analyze(nil)
	if sum.Total != 0 {
		t.Fatalf("empty stream total = %d", sum.Total)
	}
	if got := sum.Mix(); got.Unit != 1 {
		t.Fatalf("empty stream mix = %+v, want all-unit", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassUnit.String() != "unit" || ClassShort.String() != "short" ||
		ClassRandom.String() != "random" || Class(9).String() != "class(9)" {
		t.Fatal("Class.String wrong")
	}
}

// Property: detector counts are conserved — every observed reference lands
// in exactly one bin.
func TestQuickDetectorConservation(t *testing.T) {
	f := func(unitQ, shortQ, randQ uint8, seed uint16, nRaw uint16) bool {
		u, s, r := float64(unitQ)+1, float64(shortQ)+1, float64(randQ)+1
		tot := u + s + r
		spec := StreamSpec{
			WorkingSetBytes: 1 << 20,
			Mix:             Mix{Unit: u / tot, Short: s / tot, Random: r / tot},
			Seed:            uint64(seed),
		}
		n := int(nRaw)%5000 + 1
		refs, err := Generate(spec, n)
		if err != nil {
			return false
		}
		sum := Analyze(refs)
		return sum.Total == int64(n) &&
			sum.Counts[0]+sum.Counts[1]+sum.Counts[2] == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the generator realizes the requested mix exactly under its own
// largest-remainder scheduler (class selection is deterministic given the
// mix, independent of the seed).
func TestQuickGeneratorMixExact(t *testing.T) {
	f := func(unitQ, shortQ uint8, seed uint16) bool {
		u, s := float64(unitQ), float64(shortQ)
		r := 10.0
		tot := u + s + r
		mix := Mix{Unit: u / tot, Short: s / tot, Random: r / tot}
		spec := StreamSpec{WorkingSetBytes: 8 << 20, Mix: mix, Seed: uint64(seed)}
		const n = 10000
		refs, err := Generate(spec, n)
		if err != nil {
			return false
		}
		// Count by generator regions rather than the detector: region is
		// encoded in bits 27..28 of the offset from the stream base.
		g, err := newGenerator(spec)
		if err != nil {
			return false
		}
		var counts [3]int
		for _, ref := range refs {
			region := ((ref.Addr - g.base) >> 27) & 3
			if region > 2 {
				return false
			}
			counts[region]++
		}
		for c, frac := range []float64{mix.Unit, mix.Short, mix.Random} {
			if math.Abs(float64(counts[c])/n-frac) > 0.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: working-set estimate never exceeds what n references can touch
// and never exceeds the gather-spread region.
func TestQuickWorkingSetBounded(t *testing.T) {
	f := func(wsKB uint8, seed uint16) bool {
		ws := (int64(wsKB) + 1) * 1024
		spec := StreamSpec{WorkingSetBytes: ws, Mix: Mix{Unit: 0.5, Random: 0.5}, Seed: uint64(seed)}
		const n = 2000
		refs, err := Generate(spec, n)
		if err != nil {
			return false
		}
		sum := Analyze(refs)
		// Each reference can introduce at most one new line.
		if sum.WorkingSetBytes > int64(n)*wsGranularity {
			return false
		}
		return sum.WorkingSetBytes > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	spec := StreamSpec{
		WorkingSetBytes: 1 << 20,
		Mix:             Mix{Unit: 0.7, Random: 0.3},
		Seed:            9,
	}
	refs := mustGenerate(t, spec, 1000)
	st, err := NewStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		if got := st.Next(); got != want {
			t.Fatalf("stream ref %d = %v, want %v", i, got, want)
		}
	}
}

func TestMixFraction(t *testing.T) {
	m := Mix{Unit: 0.5, Short: 0.3, Random: 0.2}
	if m.Fraction(ClassUnit) != 0.5 || m.Fraction(ClassShort) != 0.3 || m.Fraction(ClassRandom) != 0.2 {
		t.Fatal("Fraction wrong")
	}
}

func TestGatherSpreadWidensFootprint(t *testing.T) {
	narrow := StreamSpec{WorkingSetBytes: 1 << 20, Mix: Mix{Random: 1}, Seed: 4}
	wide := narrow
	wide.GatherSpread = 16
	sumNarrow := Analyze(mustGenerate(t, narrow, 20000))
	sumWide := Analyze(mustGenerate(t, wide, 20000))
	if sumWide.WorkingSetBytes <= sumNarrow.WorkingSetBytes {
		t.Fatalf("gather spread did not widen footprint: %d vs %d",
			sumWide.WorkingSetBytes, sumNarrow.WorkingSetBytes)
	}
}
