// Package access generates and analyzes memory-address streams.
//
// It provides the two halves that the study's tracing story is built on:
//
//   - Generators: deterministic, seeded reference streams with a chosen
//     working-set size and stride mixture (unit stride, short non-unit
//     strides up to 8 elements, and random access), standing in for the
//     address streams real application loops emit.
//
//   - Analysis: a stride detector in the spirit of the EMPS detector the
//     paper cites (reference [12]) that classifies an observed stream into
//     stride-1 / short-stride / random bins, and a working-set estimator.
//     The MetaSim-tracer analog classifies generated streams with these
//     tools rather than trusting the generator's own parameters, so
//     classification error survives into the predictions as it does in the
//     real tool chain.
//
// All addresses are byte addresses (uint64).
package access

import (
	"fmt"
	"math"
)

// ElemBytes is the element size assumed throughout the study: 8-byte
// doubles, the dominant datatype of the TI-05 codes.
const ElemBytes = 8

// MaxShortStride is the largest non-unit stride, in elements, that counts
// as "short" (the paper bins strides up to stride-8).
const MaxShortStride = 8

// Class bins a memory reference by its stride behaviour.
type Class int

const (
	// ClassUnit is stride-1 (contiguous) access.
	ClassUnit Class = iota
	// ClassShort is non-unit strides of 2..8 elements.
	ClassShort
	// ClassRandom is everything else.
	ClassRandom
	numClasses
)

// String returns the bin name.
func (c Class) String() string {
	switch c {
	case ClassUnit:
		return "unit"
	case ClassShort:
		return "short"
	case ClassRandom:
		return "random"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Mix is a stride mixture: the fraction of references in each bin. A valid
// Mix is non-negative and sums to 1.
type Mix struct {
	Unit, Short, Random float64
}

// Validate reports whether the mixture is a probability distribution.
func (m Mix) Validate() error {
	if m.Unit < 0 || m.Short < 0 || m.Random < 0 {
		return fmt.Errorf("access: negative mix component %+v", m)
	}
	if s := m.Unit + m.Short + m.Random; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("access: mix sums to %g, want 1", s)
	}
	return nil
}

// Fraction returns the mixture component for a class.
func (m Mix) Fraction(c Class) float64 {
	switch c {
	case ClassUnit:
		return m.Unit
	case ClassShort:
		return m.Short
	default:
		return m.Random
	}
}

// Ref is a single memory reference.
type Ref struct {
	Addr  uint64
	Store bool
}

// rng is splitmix64: tiny, fast, deterministic across platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0,n). A non-positive bound panics: it
// is an internal invariant, unreachable from the exported API because
// newGenerator rejects degenerate specs with an error before any draw
// happens (see the spread check there). Keeping the panic — rather than
// threading an error through the per-reference hot path — was a
// deliberate decision of the PR-1 panic audit.
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		panic("access: intn on non-positive bound")
	}
	return int64(r.next() % uint64(n))
}
