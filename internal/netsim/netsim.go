// Package netsim models interconnect time for MPI-style communication.
//
// The model is LogGP-flavoured: a point-to-point message pays sender and
// receiver CPU overhead (o), wire latency (L), and a bandwidth term, with
// per-node NIC sharing contention scaling the effective bandwidth.
// Collectives are built from the standard logarithmic algorithms
// (recursive doubling / binomial trees), which is how the paper's
// NETBENCH all_reduce behaves on switched fabrics.
//
// All returned times are seconds for the calling rank; callers multiply by
// event counts and add to compute time.
package netsim

import (
	"fmt"
	"math"

	"hpcmetrics/internal/machine"
)

// Op identifies a communication operation.
type Op int

const (
	// OpPointToPoint is a matched send/receive pair.
	OpPointToPoint Op = iota
	// OpAllReduce combines a value across all ranks and redistributes it.
	OpAllReduce
	// OpBcast distributes a buffer from one rank to all.
	OpBcast
	// OpBarrier synchronizes all ranks.
	OpBarrier
	// OpAllToAll exchanges distinct buffers between every rank pair.
	OpAllToAll
	numOps
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpPointToPoint:
		return "p2p"
	case OpAllReduce:
		return "allreduce"
	case OpBcast:
		return "bcast"
	case OpBarrier:
		return "barrier"
	case OpAllToAll:
		return "alltoall"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is a counted communication operation. Bytes is the per-process
// payload of one operation (ignored for barriers).
type Event struct {
	Op    Op
	Bytes int64
	Count float64
}

// Model prices communication for a job of P ranks on a machine.
type Model struct {
	cfg   *machine.Config
	procs int

	latency  float64 // seconds
	overhead float64 // seconds
	effBW    float64 // bytes/second after NIC contention
	stages   float64 // ceil(log2 P)
}

// New builds a model for procs ranks packed onto the machine's nodes.
func New(cfg *machine.Config, procs int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if procs < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 rank, got %d", procs)
	}
	if procs > cfg.TotalProcs {
		return nil, fmt.Errorf("netsim: %d ranks exceed %s's %d processors", procs, cfg.Name, cfg.TotalProcs)
	}

	net := cfg.Net
	perNIC := net.BandwidthMBs * 1e6

	// Ranks are packed: a full node hosts CoresPerNode ranks sharing
	// NICsPerNode injection ports. Concurrent streams per NIC serialize
	// partially, governed by the topology's contention coefficient.
	ranksPerNode := procs
	if ranksPerNode > cfg.CoresPerNode {
		ranksPerNode = cfg.CoresPerNode
	}
	streams := float64(ranksPerNode) / float64(net.NICsPerNode)
	if streams < 1 {
		streams = 1
	}
	effBW := perNIC / (1 + net.ContentionBeta*(streams-1))

	return &Model{
		cfg:      cfg,
		procs:    procs,
		latency:  net.LatencyUs * 1e-6,
		overhead: net.OverheadUs * 1e-6,
		effBW:    effBW,
		stages:   math.Ceil(math.Log2(float64(procs))),
	}, nil
}

// Procs returns the rank count the model was built for.
func (m *Model) Procs() int { return m.procs }

// EffectiveBandwidth returns the per-rank bandwidth after NIC contention,
// bytes/second.
func (m *Model) EffectiveBandwidth() float64 { return m.effBW }

// Latency returns the small-message end-to-end latency in seconds.
func (m *Model) Latency() float64 { return m.latency }

// PointToPoint returns the time for one matched message of the given size.
// Intra-node messages on multi-core nodes would be cheaper; the model
// charges the network path, which is the common case for domain-decomposed
// halo exchange at the study's rank counts.
func (m *Model) PointToPoint(bytes int64) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return 2*m.overhead + m.latency + float64(bytes)/m.effBW
}

// AllReduce returns the time for one allreduce of the given payload using
// recursive doubling: ceil(log2 P) stages, each a latency plus the payload
// transfer plus combine overhead.
func (m *Model) AllReduce(bytes int64) float64 {
	if m.procs == 1 {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	perStage := m.latency + 2*m.overhead + float64(bytes)/m.effBW
	return m.stages * perStage
}

// Bcast returns the time for a binomial-tree broadcast.
func (m *Model) Bcast(bytes int64) float64 {
	if m.procs == 1 {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	perStage := m.latency + m.overhead + float64(bytes)/m.effBW
	return m.stages * perStage
}

// Barrier returns the time for a barrier (an 8-byte allreduce).
func (m *Model) Barrier() float64 { return m.AllReduce(8) }

// AllToAll returns the time for a personalized all-to-all in which each
// rank exchanges bytes with every other rank (bytes is the per-pair
// payload). The exchange serializes on the rank's injection port.
func (m *Model) AllToAll(bytes int64) float64 {
	if m.procs == 1 {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	pairs := float64(m.procs - 1)
	return m.latency + pairs*(2*m.overhead+float64(bytes)/m.effBW)
}

// EventTime prices one occurrence of the event.
func (m *Model) EventTime(ev Event) float64 {
	switch ev.Op {
	case OpPointToPoint:
		return m.PointToPoint(ev.Bytes)
	case OpAllReduce:
		return m.AllReduce(ev.Bytes)
	case OpBcast:
		return m.Bcast(ev.Bytes)
	case OpBarrier:
		return m.Barrier()
	case OpAllToAll:
		return m.AllToAll(ev.Bytes)
	default:
		return 0
	}
}

// Time prices a whole event list: sum of count-weighted event times.
func (m *Model) Time(events []Event) float64 {
	var total float64
	for _, ev := range events {
		total += ev.Count * m.EventTime(ev)
	}
	return total
}
