package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"hpcmetrics/internal/machine"
)

func model(t *testing.T, name string, procs int) *Model {
	t.Helper()
	m, err := New(machine.MustPreset(name), procs)
	if err != nil {
		t.Fatalf("New(%s, %d): %v", name, procs, err)
	}
	return m
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLXeon)
	if _, err := New(cfg, 0); err == nil {
		t.Error("accepted 0 ranks")
	}
	if _, err := New(cfg, cfg.TotalProcs+1); err == nil {
		t.Error("accepted more ranks than processors")
	}
	bad := cfg.Clone()
	bad.Net.LatencyUs = 0
	if _, err := New(bad, 4); err == nil {
		t.Error("accepted invalid machine")
	}
}

func TestPointToPointComponents(t *testing.T) {
	m := model(t, machine.ASCSC45, 64)
	zero := m.PointToPoint(0)
	want := 2*m.overhead + m.latency
	if math.Abs(zero-want) > 1e-15 {
		t.Fatalf("zero-byte p2p = %g, want %g", zero, want)
	}
	big := m.PointToPoint(1 << 20)
	if big <= zero {
		t.Fatal("1MB message not slower than empty message")
	}
}

func TestSingleRankCommunicatesForFree(t *testing.T) {
	m := model(t, machine.ARLOpteron, 1)
	if m.AllReduce(1024) != 0 || m.Bcast(1024) != 0 || m.Barrier() != 0 || m.AllToAll(1024) != 0 {
		t.Fatal("collectives on 1 rank should cost nothing")
	}
}

func TestAllReduceLogScaling(t *testing.T) {
	m16 := model(t, machine.NAVO655, 16)
	m256 := model(t, machine.NAVO655, 256)
	r16, r256 := m16.AllReduce(8), m256.AllReduce(8)
	// 16 -> 256 ranks: 4 stages -> 8 stages, so exactly 2x when the
	// per-stage cost is identical (same full-node contention).
	if math.Abs(r256/r16-2) > 0.01 {
		t.Fatalf("allreduce scaling 16->256 = %gx, want ~2x", r256/r16)
	}
}

func TestNICContentionSlowsFullNodes(t *testing.T) {
	// p690: 32 cores/node, 2 NICs. 2 ranks spread over the NICs see full
	// bandwidth; 32 ranks contend.
	cfg := machine.MustPreset(machine.MHPCC690)
	small, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if full.EffectiveBandwidth() >= small.EffectiveBandwidth() {
		t.Fatalf("contended bandwidth %g not below uncontended %g",
			full.EffectiveBandwidth(), small.EffectiveBandwidth())
	}
}

func TestBarrierIsSmallAllReduce(t *testing.T) {
	m := model(t, machine.ARLAltix, 128)
	if m.Barrier() != m.AllReduce(8) {
		t.Fatal("barrier != 8-byte allreduce")
	}
}

func TestAllToAllScalesWithRanks(t *testing.T) {
	m32 := model(t, machine.NAVO655, 32)
	m128 := model(t, machine.NAVO655, 128)
	if m128.AllToAll(4096) <= m32.AllToAll(4096) {
		t.Fatal("alltoall not slower with more ranks")
	}
}

func TestEventTimeDispatch(t *testing.T) {
	m := model(t, machine.ERDCOrigin3800, 32)
	cases := []struct {
		ev   Event
		want float64
	}{
		{Event{Op: OpPointToPoint, Bytes: 100}, m.PointToPoint(100)},
		{Event{Op: OpAllReduce, Bytes: 8}, m.AllReduce(8)},
		{Event{Op: OpBcast, Bytes: 64}, m.Bcast(64)},
		{Event{Op: OpBarrier}, m.Barrier()},
		{Event{Op: OpAllToAll, Bytes: 256}, m.AllToAll(256)},
		{Event{Op: Op(99)}, 0},
	}
	for _, tc := range cases {
		if got := m.EventTime(tc.ev); got != tc.want {
			t.Errorf("EventTime(%v) = %g, want %g", tc.ev, got, tc.want)
		}
	}
}

func TestTimeSumsCountWeighted(t *testing.T) {
	m := model(t, machine.ARL690, 64)
	events := []Event{
		{Op: OpPointToPoint, Bytes: 8192, Count: 10},
		{Op: OpAllReduce, Bytes: 8, Count: 3},
	}
	want := 10*m.PointToPoint(8192) + 3*m.AllReduce(8)
	if got := m.Time(events); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Time = %g, want %g", got, want)
	}
}

func TestNegativeBytesTreatedAsZero(t *testing.T) {
	m := model(t, machine.ARLXeon, 16)
	if m.PointToPoint(-5) != m.PointToPoint(0) {
		t.Fatal("negative bytes mishandled")
	}
}

func TestLowLatencyFabricWinsSmallMessages(t *testing.T) {
	// NUMALink (Altix, 2us) must beat Colony (P3, 20us) on barriers.
	altix := model(t, machine.ARLAltix, 64)
	p3 := model(t, machine.MHPCCPower3, 64)
	if altix.Barrier() >= p3.Barrier() {
		t.Fatalf("Altix barrier %g not faster than P3 %g", altix.Barrier(), p3.Barrier())
	}
}

func TestFederationWinsLargeMessages(t *testing.T) {
	// Federation (1400 MB/s) must beat Myrinet (245 MB/s) on 1MB p2p.
	fed := model(t, machine.NAVO655, 64)
	myri := model(t, machine.ARLOpteron, 64)
	if fed.PointToPoint(1<<20) >= myri.PointToPoint(1<<20) {
		t.Fatal("Federation not faster than Myrinet at 1MB")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpPointToPoint: "p2p", OpAllReduce: "allreduce", OpBcast: "bcast",
		OpBarrier: "barrier", OpAllToAll: "alltoall", Op(42): "op(42)",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

// Property: every operation is monotone non-decreasing in message size.
func TestQuickMonotoneInBytes(t *testing.T) {
	m := model(t, machine.MHPCC690, 128)
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.PointToPoint(lo) <= m.PointToPoint(hi) &&
			m.AllReduce(lo) <= m.AllReduce(hi) &&
			m.Bcast(lo) <= m.Bcast(hi) &&
			m.AllToAll(lo) <= m.AllToAll(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: collectives are monotone non-decreasing in rank count.
func TestQuickMonotoneInRanks(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655)
	f := func(pa, pb uint8, kb uint8) bool {
		lo, hi := int(pa)%512+1, int(pb)%512+1
		if lo > hi {
			lo, hi = hi, lo
		}
		bytes := int64(kb) * 64
		mLo, err := New(cfg, lo)
		if err != nil {
			return false
		}
		mHi, err := New(cfg, hi)
		if err != nil {
			return false
		}
		return mLo.AllReduce(bytes) <= mHi.AllReduce(bytes) &&
			mLo.AllToAll(bytes) <= mHi.AllToAll(bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
