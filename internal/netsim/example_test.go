package netsim_test

import (
	"fmt"

	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/netsim"
)

// ExampleModel_AllReduce compares an 8-byte allreduce on a low-latency
// NUMALink fabric against the Colony switch — the latency sensitivity that
// makes HYCOM's barotropic solver care about the interconnect.
func ExampleModel_AllReduce() {
	altix, err := netsim.New(machine.MustPreset(machine.ARLAltix), 64)
	if err != nil {
		panic(err)
	}
	p3, err := netsim.New(machine.MustPreset(machine.MHPCCPower3), 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Altix faster: %v\n", altix.AllReduce(8) < p3.AllReduce(8))
	// Output:
	// Altix faster: true
}

// ExampleModel_Time prices a per-timestep communication profile.
func ExampleModel_Time() {
	m, err := netsim.New(machine.MustPreset(machine.NAVO655), 128)
	if err != nil {
		panic(err)
	}
	perStep := []netsim.Event{
		{Op: netsim.OpPointToPoint, Bytes: 32 << 10, Count: 6}, // halo
		{Op: netsim.OpAllReduce, Bytes: 8, Count: 2},           // norms
	}
	fmt.Printf("positive cost: %v\n", m.Time(perStep) > 0)
	// Output:
	// positive cost: true
}
