// Package obs is the study pipeline's observability layer: a span tracer,
// a metrics registry, and exporters, all stdlib-only.
//
// The paper's argument is about attributing time — which machine resource
// explains which fraction of an application's runtime — and this package
// applies the same discipline to the reproduction pipeline itself. Every
// phase of a study run (probe machine, observe cell, trace app, convolve
// metric, balanced regression) becomes a span; the worker pool reports
// occupancy and queue wait through the registry; a run manifest records
// the environment so benchmark JSON stays attributable.
//
// Everything here is built to disappear when unused: the nil *Obs, nil
// *Tracer, nil *Span, and nil metric instruments are all valid no-op
// receivers, and the disabled path allocates nothing — instrumented hot
// loops cost a pointer check when tracing is off, so study output stays
// byte-identical and benchmark numbers unaffected.
//
// Span parent/child structure travels through context.Context: StartSpan
// derives a child of the context's active span, or a root span when the
// context carries only a Tracer (via (*Obs).Inject). Spans are
// goroutine-safe — concurrent workers each derive their own child from a
// shared parent context — and carry nanosecond monotonic timestamps
// measured against the tracer's epoch.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Obs bundles the two collection surfaces a run threads through the
// pipeline. A nil *Obs disables both with zero overhead.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns an Obs with a fresh tracer and registry.
func New() *Obs {
	return &Obs{Tracer: NewTracer(), Metrics: NewRegistry()}
}

// Meter returns the registry, or nil when o is nil — safe to chain into
// the registry's nil-safe instrument constructors.
func (o *Obs) Meter() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// obsKey carries the *Obs through a context.
type obsKey struct{}

// spanKey carries the active *Span through a context.
type spanKey struct{}

// obsCtx attaches an Obs to a context without the allocation profile of
// context.WithValue's key comparisons on the hot lookup path.
type obsCtx struct {
	context.Context
	o *Obs
}

// Value returns the attached Obs for obsKey and defers everything else.
func (c *obsCtx) Value(key any) any {
	if _, ok := key.(obsKey); ok {
		return c.o
	}
	return c.Context.Value(key)
}

// spanCtx attaches the active span to a context.
type spanCtx struct {
	context.Context
	s *Span
}

// Value returns the active span for spanKey and defers everything else.
func (c *spanCtx) Value(key any) any {
	if _, ok := key.(spanKey); ok {
		return c.s
	}
	return c.Context.Value(key)
}

// Inject returns a context carrying o. A nil receiver returns ctx
// unchanged, so the disabled path allocates nothing.
func (o *Obs) Inject(ctx context.Context) context.Context {
	if o == nil {
		return ctx
	}
	return &obsCtx{Context: ctx, o: o}
}

// From returns the Obs carried by ctx, or nil.
func From(ctx context.Context) *Obs {
	o, _ := ctx.Value(obsKey{}).(*Obs)
	return o
}

// SpanFrom returns the context's active span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a span named name as a child of the context's active
// span (or as a root span of the context's tracer) and returns a derived
// context carrying it. When the context carries no tracer it returns
// (ctx, nil) without allocating; the nil *Span's End and Annotate are
// no-ops, so call sites stay unconditional.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	var t *Tracer
	if parent != nil {
		t = parent.tracer
	} else if o := From(ctx); o != nil {
		t = o.Tracer
	}
	if t == nil {
		return ctx, nil
	}
	s := t.start(name, parent)
	return &spanCtx{Context: ctx, s: s}, s
}

// SpanRecord is one finished span, as exported to JSONL and aggregated
// into phase statistics.
type SpanRecord struct {
	// ID is the span's tracer-unique identifier (1-based).
	ID uint64 `json:"id"`
	// Parent is the parent span's ID, or 0 for a root span.
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the W3C trace ID of the request this span belongs to,
	// inherited from the root span started by StartRequestSpan. Batch
	// spans (plain StartSpan roots) have no trace and omit the field, so
	// batch span logs are byte-identical to pre-tracing ones.
	Trace string `json:"trace,omitempty"`
	// Name is the phase name passed to StartSpan.
	Name string `json:"name"`
	// Path is the slash-joined name chain from the root span, e.g.
	// "study/observe/exec"; phase aggregation groups by it.
	Path string `json:"path"`
	// StartNs is the span's start, in monotonic nanoseconds since the
	// tracer's epoch.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span's duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Attrs holds the span's annotations, if any.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Shard names the shard worker that produced the span in a
	// distributed study (see Tracer.SetShard); unsharded runs omit it, so
	// single-process span logs are byte-identical to pre-sharding ones.
	Shard string `json:"shard,omitempty"`
}

// Span is one in-flight phase. Create with StartSpan, finish with End.
type Span struct {
	tracer  *Tracer
	id      uint64
	parent  uint64
	trace   string
	name    string
	path    string
	startNs int64

	ended atomic.Bool
	mu    sync.Mutex
	attrs map[string]string // guarded by mu
}

// TraceID returns the span's trace ID, or "" for a nil span or a batch
// span started outside a request.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Attr returns the current value of one annotation, or "". Nil-safe.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Traceparent renders the span as an outgoing W3C traceparent header
// value, or "" when the span carries no trace.
func (s *Span) Traceparent() string {
	if s == nil || s.trace == "" {
		return ""
	}
	return FormatTraceparent(s.trace, s.id)
}

// Annotate attaches a key/value detail to the span (machine name, cell
// identity). Nil-safe; later values for the same key win. Callers
// computing an expensive value should guard on s != nil first so the
// disabled path does not pay for the formatting.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 2)
	}
	s.attrs[key] = value
}

// End finishes the span and publishes its record to the tracer. Nil-safe
// and idempotent: only the first End records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Trace:   s.trace,
		Name:    s.name,
		Path:    s.path,
		StartNs: s.startNs,
		DurNs:   s.tracer.now() - s.startNs,
		Shard:   s.tracer.shard,
	}
	s.mu.Lock()
	rec.Attrs = s.attrs
	s.mu.Unlock()
	s.tracer.finish(rec)
}

// Tracer collects spans. Goroutine-safe: any number of workers may start
// and end spans concurrently.
//
// By default finished spans are buffered in memory for Records() — the
// batch mode the study harness uses, where the log is dumped once at
// exit. A long-running server instead calls SetSink to stream each span
// out as it finishes (write-on-finish), in which case nothing is
// buffered and the tracer's memory stays bounded for the life of the
// process.
type Tracer struct {
	epoch time.Time
	next  atomic.Uint64

	// idBase and shard identify this tracer's process in a distributed
	// study; both are set once by SetShard before any span starts and read
	// without locks afterward.
	idBase uint64
	shard  string

	sinkErrs atomic.Int64

	mu       sync.Mutex
	sink     SpanSink     // guarded by mu
	finished []SpanRecord // guarded by mu
}

// SpanSink receives finished spans as they end. Implementations must be
// goroutine-safe; JSONLFile and Discard both qualify.
type SpanSink interface {
	WriteSpan(SpanRecord) error
}

// Discard is a SpanSink that drops every span. A server that wants
// request trace IDs (for access-log joins and traceparent echoes) but no
// span log installs it so the tracer never buffers.
type Discard struct{}

// WriteSpan drops the record.
func (Discard) WriteSpan(SpanRecord) error { return nil }

// NewTracer returns a tracer whose timestamps count from now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetShard gives the tracer a distributed-study identity: every span it
// produces carries the shard name, and span IDs are offset into slot's
// private range ((slot+1) << 48 plus the local counter) so logs from any
// number of coordinated processes concatenate without ID collisions —
// each slot allows 2^48 spans, far beyond any run. Slots are assigned by
// the coordinator, one per spawned process (restarts and work stealers
// get fresh slots even when they share a shard name). Call before the
// first span starts; nil receivers and negative slots are no-ops.
func (t *Tracer) SetShard(name string, slot int) {
	if t == nil || slot < 0 {
		return
	}
	t.idBase = (uint64(slot) + 1) << 48
	t.shard = name
}

// SetSink switches the tracer to streaming mode: finished spans go to s
// instead of the in-memory buffer (nil restores buffering). Install the
// sink before spans start finishing; records already buffered stay
// buffered. Nil-safe on the receiver.
func (t *Tracer) SetSink(s SpanSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// SinkErrors reports how many finished spans the sink failed to write
// (each was dropped); nil reads 0.
func (t *Tracer) SinkErrors() int64 {
	if t == nil {
		return 0
	}
	return t.sinkErrs.Load()
}

// now returns monotonic nanoseconds since the tracer's epoch (time.Since
// uses the runtime's monotonic clock).
func (t *Tracer) now() int64 {
	return time.Since(t.epoch).Nanoseconds()
}

// start creates a span; parent may be nil for a root span.
func (t *Tracer) start(name string, parent *Span) *Span {
	s := &Span{
		tracer:  t,
		id:      t.idBase + t.next.Add(1),
		name:    name,
		path:    name,
		startNs: t.now(),
	}
	if parent != nil {
		s.parent = parent.id
		s.trace = parent.trace
		s.path = parent.path + "/" + name
	}
	return s
}

// finish streams one finished record to the sink, or buffers it.
func (t *Tracer) finish(rec SpanRecord) {
	t.mu.Lock()
	sink := t.sink
	if sink == nil {
		t.finished = append(t.finished, rec)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	// The sink serializes internally; writing outside t.mu keeps slow
	// exports from stalling concurrent span starts/ends.
	if err := sink.WriteSpan(rec); err != nil {
		t.sinkErrs.Add(1)
	}
}

// Len returns how many spans have finished so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.finished)
}

// Records returns a snapshot of the finished spans, ordered by start time
// (ties broken by ID) so exports are deterministic for a deterministic
// run structure.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.finished))
	copy(out, t.finished)
	t.mu.Unlock()
	sortRecords(out)
	return out
}
