package obs

import (
	"sync"
	"time"
)

// Rolling tracks a duration distribution over a sliding window — the
// "what are p99s right now" view a live server needs, as opposed to the
// process-lifetime Histogram. Cornebize & Legrand's point that serving
// distributions, not means, are the honest unit of report is why the
// snapshot carries quantiles rather than an average alone.
//
// The window is a ring of fixed log2-bucket shards, one per shardDur;
// Observe lands in the shard for the current instant, lazily resetting
// shards whose time slot has lapped. Snapshot merges every shard still
// inside the window, so quantiles cover the last shards x shardDur of
// traffic with shardDur granularity. Memory is O(shards x buckets),
// independent of traffic.
type Rolling struct {
	shardDur time.Duration
	now      func() time.Time // test seam; time.Now outside tests

	mu     sync.Mutex
	shards []rollingShard // guarded by mu
}

// rollingShard is one time slot's distribution. unit is the absolute
// shard index (now / shardDur) it currently holds; a slot whose unit is
// stale gets zeroed before reuse.
type rollingShard struct {
	unit    int64
	buckets [histBucketCount + 1]int64
	count   int64
	sumNs   int64
}

// NewRolling returns a window of `shards` slots of shardDur each (a
// 60 x 1s window: NewRolling(time.Second, 60)). Degenerate arguments are
// clamped to one 1s shard.
func NewRolling(shardDur time.Duration, shards int) *Rolling {
	if shardDur <= 0 {
		shardDur = time.Second
	}
	if shards < 1 {
		shards = 1
	}
	return &Rolling{shardDur: shardDur, now: time.Now, shards: make([]rollingShard, shards)}
}

// Observe records one duration into the current time slot. Nil-safe.
func (r *Rolling) Observe(d time.Duration) {
	if r == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	unit := int64(r.now().UnixNano()) / int64(r.shardDur)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &r.shards[unit%int64(len(r.shards))]
	if s.unit != unit {
		*s = rollingShard{unit: unit}
	}
	s.buckets[bucketIndex(ns)]++
	s.count++
	s.sumNs += ns
}

// RollingSnap is one window's distribution summary. Quantiles are upper
// bounds of the log2 histogram bucket holding the target rank, so they
// overestimate by at most 2x — the same resolution the process-lifetime
// Prometheus histograms export.
type RollingSnap struct {
	WindowSeconds float64 `json:"window_seconds"`
	Count         int64   `json:"count"`
	MeanNs        int64   `json:"mean_ns"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
}

// Snapshot merges every shard still inside the window and summarizes
// it. A nil or empty window reads zero quantiles with Count 0.
func (r *Rolling) Snapshot() RollingSnap {
	if r == nil {
		return RollingSnap{}
	}
	r.mu.Lock()
	unit := int64(r.now().UnixNano()) / int64(r.shardDur)
	oldest := unit - int64(len(r.shards)) + 1
	var merged [histBucketCount + 1]int64
	var count, sumNs int64
	for i := range r.shards {
		s := &r.shards[i]
		if s.unit < oldest || s.unit > unit {
			continue
		}
		for b := range merged {
			merged[b] += s.buckets[b]
		}
		count += s.count
		sumNs += s.sumNs
	}
	window := time.Duration(len(r.shards)) * r.shardDur
	r.mu.Unlock()

	snap := RollingSnap{WindowSeconds: window.Seconds(), Count: count}
	if count == 0 {
		return snap
	}
	snap.MeanNs = sumNs / count
	snap.P50Ns = quantileNs(&merged, count, 0.50)
	snap.P95Ns = quantileNs(&merged, count, 0.95)
	snap.P99Ns = quantileNs(&merged, count, 0.99)
	return snap
}

// quantileNs returns the upper bound of the bucket holding rank
// ceil(q*count). The overflow bucket reads as twice the largest bound.
func quantileNs(buckets *[histBucketCount + 1]int64, count int64, q float64) int64 {
	target := int64(q*float64(count) + 0.999999)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBucketCount; i++ {
		cum += buckets[i]
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(histBucketCount-1) * 2
}
