package obs

import (
	"context"
	"runtime"
	"time"
)

// SampleRuntime reads the Go runtime's health gauges into reg once:
// goroutine count, heap levels, and GC activity. ReadMemStats briefly
// stops the world, which is why sampling rides a ticker rather than
// every scrape.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime_goroutines").Set(int64(runtime.NumGoroutine()))
	reg.Gauge("runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.Gauge("runtime_heap_sys_bytes").Set(int64(ms.HeapSys))
	reg.Gauge("runtime_heap_objects").Set(int64(ms.HeapObjects))
	reg.Gauge("runtime_gc_cycles").Set(int64(ms.NumGC))
	reg.Gauge("runtime_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		reg.Gauge("runtime_gc_pause_last_ns").Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}

// StartRuntimeSampler spawns a goroutine that samples the runtime into
// reg every interval until ctx is cancelled; the returned channel closes
// when the sampler has stopped. One sample is taken immediately so the
// gauges exist before the first tick.
func StartRuntimeSampler(ctx context.Context, reg *Registry, interval time.Duration) <-chan struct{} {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	SampleRuntime(reg)
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				SampleRuntime(reg)
			}
		}
	}()
	return stopped
}
