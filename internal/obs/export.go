package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteJSONL writes one JSON object per finished span, in Records()
// order. The format is line-delimited so a future sharded study can
// concatenate span files from multiple processes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span log produced by WriteJSONL. Blank lines are
// skipped; any other malformed line is an error.
func ReadJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("span log line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CounterSnap is one counter's point-in-time value.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge's point-in-time value and observed peak.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Peak  int64  `json:"peak"`
}

// HistogramSnap is one histogram's point-in-time totals and buckets.
type HistogramSnap struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot is a consistent-enough copy of a registry for rendering:
// instruments are listed sorted by name; each instrument's fields are
// read atomically but the set is not a global atomic cut.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot captures the registry's instruments, sorted by name. Nil
// reads an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value(), Peak: g.Peak()})
	}
	for name, h := range hists {
		b := h.Buckets()
		snap.Histograms = append(snap.Histograms, HistogramSnap{
			Name:    name,
			Count:   h.Count(),
			SumNs:   h.SumNs(),
			Buckets: b[:],
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// PromName sanitizes an instrument name into the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid byte becomes '_' and
// a leading digit is prefixed with '_'. The registry accepts any string
// as a name (hot paths build names by concatenation), so the exposition
// boundary is where the grammar gets enforced — a scrape must never see
// an invalid series name.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	valid := func(c byte, first bool) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return !first
		}
		return false
	}
	clean := true
	for i := 0; i < len(name); i++ {
		if !valid(name[i], i == 0) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	b := []byte(name)
	for i := range b {
		if !valid(b[i], false) {
			b[i] = '_'
		}
	}
	if !valid(b[0], true) {
		return "_" + string(b)
	}
	return string(b)
}

// PromFloat formats a float sample value for the text exposition
// format, which spells special values "NaN", "+Inf", and "-Inf" (%g
// would emit "NaN"/"+Inf" too, but Go's spelling of negative infinity
// and the format's are only accidentally aligned — make it explicit so
// a conformance test can pin it).
func PromFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteProm dumps the registry in Prometheus text exposition format.
// Histograms use cumulative le buckets with bounds in seconds; gauges
// additionally export a <name>_peak series. Instrument names are passed
// through PromName, so the output conforms even when a registry name
// does not.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	for _, c := range snap.Counters {
		name := PromName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range snap.Gauges {
		name := PromName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
		fmt.Fprintf(bw, "# TYPE %s_peak gauge\n%s_peak %d\n", name, name, g.Peak)
	}
	for _, h := range snap.Histograms {
		name := PromName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for i, n := range h.Buckets {
			cum += n
			if i == len(h.Buckets)-1 {
				fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
				continue
			}
			boundSeconds := float64(BucketBound(i)) / float64(time.Second.Nanoseconds())
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", name, PromFloat(boundSeconds), cum)
		}
		sumSeconds := float64(h.SumNs) / float64(time.Second.Nanoseconds())
		fmt.Fprintf(bw, "%s_sum %s\n%s_count %d\n", name, PromFloat(sumSeconds), name, h.Count)
	}
	return bw.Flush()
}

// PromHandler returns an http.Handler serving the registry in the same
// Prometheus text exposition format as WriteProm — the scrape endpoint a
// server mounts at /metrics. Nil-safe: a nil registry serves an empty
// exposition. Each scrape takes a fresh Snapshot, so the handler is safe
// under concurrent instrument updates.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// The exposition was already streaming when the write broke;
			// the client connection is gone and there is no one left to
			// tell. The next scrape starts clean.
			return
		}
	})
}

// ManifestSchema identifies the manifest layout; bump on breaking field
// changes so tooling can reject manifests it does not understand.
const ManifestSchema = 1

// Manifest records everything needed to attribute a run's numbers: the
// toolchain, the host's parallelism, the options that shaped the study,
// and where the span log went.
type Manifest struct {
	Schema      int            `json:"schema"`
	CreatedAt   string         `json:"created_at"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	GitDescribe string         `json:"git_describe,omitempty"`
	Seed        string         `json:"seed"`
	Options     map[string]any `json:"options,omitempty"`
	SpanFile    string         `json:"span_file,omitempty"`
	// Shard names the shard worker that produced this manifest in a
	// distributed study; FaultPlan is the campaign's fault-injection
	// fingerprint (faults.Fingerprint()), so mixed-plan shard sets are
	// detectable from manifests alone. Unsharded, fault-free runs omit
	// both, keeping their manifests byte-identical to pre-sharding ones.
	Shard     string `json:"shard,omitempty"`
	FaultPlan string `json:"fault_plan,omitempty"`
}

// NewManifest captures the current environment. GitDescribe is filled
// best-effort (empty when git or the repo is unavailable); Seed,
// Options, and SpanFile are the caller's to set.
func NewManifest() Manifest {
	return Manifest{
		Schema:      ManifestSchema,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GitDescribe: gitDescribe(),
	}
}

// gitDescribe returns `git describe --always --dirty`, or "" when git is
// missing, slow, or not in a repository.
func gitDescribe() string {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Complete reports whether the manifest carries every field tooling
// relies on; trace-smoke gates on it.
func (m Manifest) Complete() error {
	switch {
	case m.Schema != ManifestSchema:
		return fmt.Errorf("manifest schema %d, want %d", m.Schema, ManifestSchema)
	case m.CreatedAt == "":
		return fmt.Errorf("manifest missing created_at")
	case m.GoVersion == "":
		return fmt.Errorf("manifest missing go_version")
	case m.GOOS == "" || m.GOARCH == "":
		return fmt.Errorf("manifest missing goos/goarch")
	case m.GOMAXPROCS <= 0:
		return fmt.Errorf("manifest gomaxprocs %d, want > 0", m.GOMAXPROCS)
	case m.NumCPU <= 0:
		return fmt.Errorf("manifest num_cpu %d, want > 0", m.NumCPU)
	case m.Seed == "":
		return fmt.Errorf("manifest missing seed")
	}
	return nil
}

// WriteFile writes the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses a manifest written by WriteFile.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, err
	}
	return m, nil
}
