package obs

import (
	"fmt"
	"sort"
	"strconv"
)

// Annotation keys shared between the serving layer (which writes them)
// and tracecheck -serve (which joins on them). Defined here so the two
// sides cannot drift.
const (
	// AttrEndpoint is the root span's endpoint name, matching
	// AccessRecord.Endpoint.
	AttrEndpoint = "endpoint"
	// AttrStatus is the root span's final HTTP status code.
	AttrStatus = "status"
	// AttrOutcome is the cache outcome ("cold", "cached", "coalesced")
	// on request root spans and cache-layer child spans.
	AttrOutcome = "outcome"
	// AttrLeaderTrace on a coalesced wait span names the trace ID of the
	// request whose in-flight computation was waited on.
	AttrLeaderTrace = "leader_trace"
	// AttrShed on a root span names why admission refused the request.
	AttrShed = "shed"
)

// ServeStats summarizes a validated span-log/access-log pair.
type ServeStats struct {
	// AccessRecords is the number of access-log records joined.
	AccessRecords int
	// RootSpans is the number of request root spans in the span log.
	RootSpans int
	// Outcomes counts access records per cache outcome ("" excluded).
	Outcomes map[string]int
	// CoalescedSpans is the number of coalesced wait spans whose leader
	// reference was verified.
	CoalescedSpans int
}

// CheckServeLogs cross-validates a predictd span log against its access
// log:
//
//   - span structure: unique IDs, parents present, parentage acyclic,
//     children inside their parent's trace;
//   - the join: every access record carries a trace ID and resolves to a
//     root span with the same trace, endpoint, and status;
//   - coalescing: every coalesced wait span references its leader's
//     trace, and that trace's root span exists in the log.
//
// It returns per-outcome counts so callers can additionally require that
// a run demonstrated specific outcomes (a cold/cached/coalesced triple).
func CheckServeLogs(spans []SpanRecord, accs []AccessRecord) (ServeStats, error) {
	stats := ServeStats{Outcomes: make(map[string]int)}

	byID := make(map[uint64]SpanRecord, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			return stats, fmt.Errorf("span with zero id")
		}
		if _, dup := byID[s.ID]; dup {
			return stats, fmt.Errorf("duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
	}

	// roots indexes request root spans by trace ID; a trace may hold
	// several roots (a caller may legally replay a traceparent), so the
	// join below matches on (trace, endpoint, status).
	roots := make(map[string][]SpanRecord)
	for _, s := range spans {
		if s.Parent == 0 {
			if s.Trace != "" {
				roots[s.Trace] = append(roots[s.Trace], s)
				stats.RootSpans++
			}
			continue
		}
		parent, ok := byID[s.Parent]
		if !ok {
			return stats, fmt.Errorf("span %d references unknown parent %d", s.ID, s.Parent)
		}
		if s.Trace != parent.Trace {
			return stats, fmt.Errorf("span %d trace %q differs from parent %d trace %q",
				s.ID, s.Trace, parent.ID, parent.Trace)
		}
	}

	// Acyclic parentage: walk each span to its root; more hops than
	// spans exist proves a cycle.
	for _, s := range spans {
		cur := s
		for hops := 0; cur.Parent != 0; hops++ {
			if hops > len(spans) {
				return stats, fmt.Errorf("span %d: parent chain does not terminate (cycle)", s.ID)
			}
			cur = byID[cur.Parent]
		}
	}

	for i, a := range accs {
		if a.Trace == "" {
			return stats, fmt.Errorf("access record %d (%s): empty trace id", i, a.Endpoint)
		}
		matched := false
		for _, root := range roots[a.Trace] {
			if root.Attrs[AttrEndpoint] == a.Endpoint && root.Attrs[AttrStatus] == strconv.Itoa(a.Status) {
				matched = true
				break
			}
		}
		if !matched {
			return stats, fmt.Errorf("access record %d (trace %s, endpoint %s, status %d): no matching root span",
				i, a.Trace, a.Endpoint, a.Status)
		}
		stats.AccessRecords++
		if a.Outcome != "" {
			stats.Outcomes[a.Outcome]++
		}
	}

	for _, s := range spans {
		if s.Attrs[AttrOutcome] != "coalesced" || s.Parent == 0 {
			continue
		}
		leader := s.Attrs[AttrLeaderTrace]
		if leader == "" {
			return stats, fmt.Errorf("coalesced span %d (%s) has no %s annotation", s.ID, s.Path, AttrLeaderTrace)
		}
		if _, ok := roots[leader]; !ok {
			return stats, fmt.Errorf("coalesced span %d (%s) references leader trace %s with no root span",
				s.ID, s.Path, leader)
		}
		stats.CoalescedSpans++
	}
	return stats, nil
}

// OutcomeNames returns the outcomes seen, sorted, for log lines.
func (s ServeStats) OutcomeNames() []string {
	names := make([]string, 0, len(s.Outcomes))
	for name := range s.Outcomes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
