package obs

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChildThroughContext(t *testing.T) {
	o := New()
	ctx := o.Inject(context.Background())
	ctx, root := StartSpan(ctx, "study")
	cctx, child := StartSpan(ctx, "observe")
	_, grand := StartSpan(cctx, "exec")
	grand.End()
	child.End()
	root.End()

	recs := o.Tracer.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["study"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["study"].Parent)
	}
	if byName["observe"].Parent != byName["study"].ID {
		t.Errorf("observe parent = %d, want %d", byName["observe"].Parent, byName["study"].ID)
	}
	if byName["exec"].Parent != byName["observe"].ID {
		t.Errorf("exec parent = %d, want %d", byName["exec"].Parent, byName["observe"].ID)
	}
	if got := byName["exec"].Path; got != "study/observe/exec" {
		t.Errorf("exec path = %q, want study/observe/exec", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	o := New()
	_, s := StartSpan(o.Inject(context.Background()), "once")
	s.End()
	s.End()
	if n := o.Tracer.Len(); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

func TestDisabledPathNilSafe(t *testing.T) {
	ctx := context.Background()
	sctx, s := StartSpan(ctx, "noop")
	if sctx != ctx {
		t.Error("disabled StartSpan should return the context unchanged")
	}
	if s != nil {
		t.Error("disabled StartSpan should return a nil span")
	}
	s.Annotate("k", "v")
	s.End()

	var o *Obs
	if got := o.Inject(ctx); got != ctx {
		t.Error("nil Obs Inject should return ctx unchanged")
	}
	o.Meter().Counter("c").Inc()
	o.Meter().Gauge("g").Add(1)
	o.Meter().Histogram("h").Observe(time.Millisecond)
	var tr *Tracer
	if tr.Records() != nil || tr.Len() != 0 {
		t.Error("nil tracer should read empty")
	}
}

func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	var o *Obs
	ctx = o.Inject(ctx)
	allocs := testing.AllocsPerRun(100, func() {
		c, s := StartSpan(ctx, "cell")
		s.Annotate("k", "v")
		s.End()
		_ = c
		o.Meter().Counter("study_jobs_total").Inc()
		o.Meter().Gauge("study_workers_busy").Add(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %v per op, want 0", allocs)
	}
}

func TestConcurrentSpans(t *testing.T) {
	o := New()
	ctx := o.Inject(context.Background())
	ctx, root := StartSpan(ctx, "study")
	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cctx, cell := StartSpan(ctx, "observe")
				cell.Annotate("cell", "x")
				_, inner := StartSpan(cctx, "exec")
				inner.End()
				cell.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	recs := o.Tracer.Records()
	want := 1 + 2*workers*perWorker
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Name == "observe" && r.Parent != root.id {
			t.Fatalf("observe span parent = %d, want root %d", r.Parent, root.id)
		}
	}
}

func TestExporterUnderConcurrentWrites(t *testing.T) {
	o := New()
	ctx := o.Inject(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_, s := StartSpan(ctx, "cell")
			s.End()
		}
	}()
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := o.Tracer.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL during concurrent span ends: %v", err)
		}
		if _, err := ReadJSONL(&buf); err != nil {
			t.Fatalf("ReadJSONL of concurrent snapshot: %v", err)
		}
	}
	<-done
}

func TestHistogramConcurrentObserveAndMerge(t *testing.T) {
	dst := &Histogram{}
	src := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src.Observe(time.Duration(i%40) * time.Millisecond)
				if i%50 == 0 {
					dst.Merge(src)
				}
			}
		}(w)
	}
	wg.Wait()
	dst.Merge(src)
	if src.Count() != 8*500 {
		t.Fatalf("src count = %d, want %d", src.Count(), 8*500)
	}
	var bucketSum int64
	for _, n := range src.Buckets() {
		bucketSum += n
	}
	if bucketSum != src.Count() {
		t.Fatalf("src bucket sum %d != count %d", bucketSum, src.Count())
	}
}

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1000, 0},
		{1001, 1},
		{2000, 1},
		{histMinNs << (histBucketCount - 1), histBucketCount - 1},
		{histMinNs<<(histBucketCount-1) + 1, histBucketCount},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("h").Count(); got != 8*200 {
		t.Fatalf("histogram count = %d, want %d", got, 8*200)
	}
}

func TestGaugePeak(t *testing.T) {
	g := &Gauge{}
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
	if got := g.Peak(); got != 5 {
		t.Fatalf("peak = %d, want 5", got)
	}
}

func TestPhaseStatsSelfTime(t *testing.T) {
	recs := []SpanRecord{
		{ID: 1, Name: "study", Path: "study", StartNs: 0, DurNs: 100},
		{ID: 2, Parent: 1, Name: "probe", Path: "study/probe", StartNs: 5, DurNs: 30},
		{ID: 3, Parent: 1, Name: "observe", Path: "study/observe", StartNs: 40, DurNs: 20},
		{ID: 4, Parent: 1, Name: "observe", Path: "study/observe", StartNs: 40, DurNs: 40},
		{ID: 5, Parent: 3, Name: "exec", Path: "study/observe/exec", StartNs: 41, DurNs: 10},
	}
	stats := PhaseStats(recs)
	byPath := map[string]PhaseStat{}
	for _, st := range stats {
		byPath[st.Path] = st
	}
	study := byPath["study"]
	if study.Count != 1 || study.TotalNs != 100 || study.SelfNs != 100-30-20-40 {
		t.Errorf("study stat = %+v", study)
	}
	obsStat := byPath["study/observe"]
	if obsStat.Count != 2 || obsStat.TotalNs != 60 || obsStat.SelfNs != 50 {
		t.Errorf("observe stat = %+v", obsStat)
	}
	if obsStat.MinNs != 20 || obsStat.MaxNs != 40 {
		t.Errorf("observe min/max = %d/%d, want 20/40", obsStat.MinNs, obsStat.MaxNs)
	}
	if len(stats) != 4 {
		t.Fatalf("got %d stats, want 4", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Path >= stats[i].Path {
			t.Fatalf("stats not sorted by path: %q before %q", stats[i-1].Path, stats[i].Path)
		}
	}
}

func TestPhaseStatsSelfClampedAtZero(t *testing.T) {
	// Concurrent children can sum past the parent's wall-clock.
	recs := []SpanRecord{
		{ID: 1, Name: "study", Path: "study", DurNs: 10},
		{ID: 2, Parent: 1, Name: "observe", Path: "study/observe", DurNs: 9},
		{ID: 3, Parent: 1, Name: "observe", Path: "study/observe", DurNs: 9},
	}
	stats := PhaseStats(recs)
	for _, st := range stats {
		if st.Path == "study" && st.SelfNs != 0 {
			t.Fatalf("study self = %d, want clamped 0", st.SelfNs)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	o := New()
	ctx := o.Inject(context.Background())
	ctx, root := StartSpan(ctx, "study")
	_, child := StartSpan(ctx, "probe")
	child.Annotate("machine", "ARL_Opteron")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := o.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Tracer.Records()
	if len(got) != len(want) {
		t.Fatalf("round trip length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Path != want[i].Path || got[i].DurNs != want[i].DurNs {
			t.Errorf("record %d round trip mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
	if got[1].Attrs["machine"] != "ARL_Opteron" {
		t.Errorf("attrs lost in round trip: %+v", got[1].Attrs)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"id\":1}\nnot json\n")); err == nil {
		t.Fatal("want error for malformed span log line")
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("study_cells_completed_total").Add(4)
	r.Gauge("study_workers_busy").Add(3)
	r.Histogram("study_queue_wait_seconds").Observe(2 * time.Microsecond)
	r.Histogram("study_queue_wait_seconds").Observe(3 * time.Second)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE study_cells_completed_total counter",
		"study_cells_completed_total 4",
		"# TYPE study_workers_busy gauge",
		"study_workers_busy_peak 3",
		"# TYPE study_queue_wait_seconds histogram",
		"study_queue_wait_seconds_bucket{le=\"+Inf\"} 2",
		"study_queue_wait_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at the total count.
	if !strings.Contains(out, "study_queue_wait_seconds_bucket{le=\"1e-06\"} 0") {
		t.Errorf("prom histogram first bucket wrong:\n%s", out)
	}
}

func TestManifestComplete(t *testing.T) {
	m := NewManifest()
	m.Seed = "fnv1a-noise-amp=0.1"
	if err := m.Complete(); err != nil {
		t.Fatalf("fresh manifest incomplete: %v", err)
	}
	m.Seed = ""
	if err := m.Complete(); err == nil {
		t.Fatal("manifest without seed should be incomplete")
	}
	bad := Manifest{}
	if err := bad.Complete(); err == nil {
		t.Fatal("zero manifest should be incomplete")
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	m := NewManifest()
	m.Seed = "fnv1a-noise-amp=0.1"
	m.Options = map[string]any{"workers": 4}
	m.SpanFile = "spans.jsonl"
	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Complete(); err != nil {
		t.Fatalf("round-tripped manifest incomplete: %v", err)
	}
	if got.SpanFile != "spans.jsonl" || got.GoVersion != m.GoVersion {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestPromHandler: the /metrics scrape endpoint serves the same text
// exposition as WriteProm, with the Prometheus content type, and a nil
// registry serves an empty exposition instead of panicking.
func TestPromHandler(t *testing.T) {
	o := New()
	o.Metrics.Counter("predictd_requests_total").Add(3)
	o.Metrics.Gauge("predictd_inflight").Add(1)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	o.Metrics.PromHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	var want bytes.Buffer
	if err := o.Metrics.WriteProm(&want); err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != want.String() {
		t.Errorf("scrape body differs from WriteProm:\n%s\nvs\n%s", rec.Body.String(), want.String())
	}
	if !strings.Contains(rec.Body.String(), "predictd_requests_total 3") {
		t.Errorf("scrape missing counter sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	(*Registry)(nil).PromHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("nil registry scrape = %d %q, want empty 200", rec.Code, rec.Body.String())
	}
}
