package obs

import "sort"

// PhaseStat aggregates every span sharing one path into a flame-style
// summary row. TotalNs sums span durations; SelfNs subtracts the summed
// durations of direct children, clamped at zero — with concurrent
// children (the study worker pool) child time can exceed the parent's
// wall-clock, which is itself a signal of parallelism.
type PhaseStat struct {
	Path    string `json:"path"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	SelfNs  int64  `json:"self_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// sortRecords orders span records by start time, then ID.
func sortRecords(recs []SpanRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].StartNs != recs[j].StartNs {
			return recs[i].StartNs < recs[j].StartNs
		}
		return recs[i].ID < recs[j].ID
	})
}

// PhaseStats aggregates finished spans by path. Rows come back sorted
// lexicographically by path, which lays parents directly above their
// children ("study" before "study/observe" before "study/observe/exec").
func PhaseStats(records []SpanRecord) []PhaseStat {
	byPath := make(map[string]*PhaseStat)
	childNs := make(map[string]int64)
	byID := make(map[uint64]string, len(records))
	for _, rec := range records {
		byID[rec.ID] = rec.Path
		st, ok := byPath[rec.Path]
		if !ok {
			st = &PhaseStat{Path: rec.Path, MinNs: rec.DurNs, MaxNs: rec.DurNs}
			byPath[rec.Path] = st
		}
		st.Count++
		st.TotalNs += rec.DurNs
		if rec.DurNs < st.MinNs {
			st.MinNs = rec.DurNs
		}
		if rec.DurNs > st.MaxNs {
			st.MaxNs = rec.DurNs
		}
	}
	for _, rec := range records {
		if rec.Parent == 0 {
			continue
		}
		if parentPath, ok := byID[rec.Parent]; ok {
			childNs[parentPath] += rec.DurNs
		}
	}
	out := make([]PhaseStat, 0, len(byPath))
	for path, st := range byPath {
		st.SelfNs = st.TotalNs - childNs[path]
		if st.SelfNs < 0 {
			st.SelfNs = 0
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// PhaseStats aggregates the tracer's finished spans; nil reads empty.
func (t *Tracer) PhaseStats() []PhaseStat {
	return PhaseStats(t.Records())
}
