package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// AccessRecord is one served request in the structured access log: the
// operational view of a request, joinable against the span log by trace
// ID. One JSON line per request.
type AccessRecord struct {
	// TimeNs is the wall-clock completion time (Unix nanoseconds) — the
	// only wall timestamp in the pair of logs; span timestamps are
	// monotonic offsets from the tracer epoch.
	TimeNs int64 `json:"t_ns"`
	// Trace is the request's W3C trace ID — the join key to the span
	// log's root span for this request.
	Trace string `json:"trace"`
	// Endpoint is the server's short endpoint name ("predict", "rank",
	// "status", ...), matching the root span's name.
	Endpoint string `json:"endpoint"`
	// Status is the HTTP status code sent.
	Status int `json:"status"`
	// LatencyNs is the request's server-side latency in nanoseconds.
	LatencyNs int64 `json:"latency_ns"`
	// Outcome is the request's cache outcome when it computed something:
	// "cold" (this request led at least one computation), "coalesced"
	// (it waited on another request's in-flight computation), or
	// "cached" (every layer was an exact settled hit). Empty for
	// endpoints with nothing to cache and for failed requests.
	Outcome string `json:"outcome,omitempty"`
	// Shed names why admission refused the request ("queue_full" for
	// 429, "queue_deadline" for 503), empty when admitted.
	Shed string `json:"shed,omitempty"`
	// Bytes is the response body size in bytes (0 for a 304).
	Bytes int64 `json:"bytes"`
}

// AccessLog streams AccessRecords to a rotating JSONL file. A nil
// *AccessLog drops records, so the disabled path is one nil check.
type AccessLog struct {
	file *JSONLFile
}

// OpenAccessLog creates (truncating) a rotating access log at path;
// maxBytes <= 0 disables rotation.
func OpenAccessLog(path string, maxBytes int64) (*AccessLog, error) {
	f, err := OpenJSONLFile(path, maxBytes)
	if err != nil {
		return nil, err
	}
	return &AccessLog{file: f}, nil
}

// Write appends one record. Nil-safe.
func (l *AccessLog) Write(rec AccessRecord) error {
	if l == nil {
		return nil
	}
	return l.file.WriteRecord(rec)
}

// Close flushes and closes the log. Nil-safe.
func (l *AccessLog) Close() error {
	if l == nil {
		return nil
	}
	return l.file.Close()
}

// ReadAccessLog parses an access log produced by AccessLog.Write. Blank
// lines are skipped; any other malformed line is an error, so a torn
// tail is detected rather than silently dropped.
func ReadAccessLog(r io.Reader) ([]AccessRecord, error) {
	var out []AccessRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec AccessRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("access log line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
