package obs

import (
	"context"
	"strings"
	"testing"
)

// shardSpans runs a tiny parent/child span structure on a tracer with
// the given shard identity and returns its records.
func shardSpans(t *testing.T, name string, slot int) []SpanRecord {
	t.Helper()
	tr := NewTracer()
	tr.SetShard(name, slot)
	o := &Obs{Tracer: tr}
	ctx, root := StartSpan(o.Inject(context.Background()), "study")
	_, child := StartSpan(ctx, "observe")
	child.End()
	root.End()
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	return recs
}

func TestSetShardPrefixesIDsAndStampsRecords(t *testing.T) {
	recs := shardSpans(t, "shard3", 3)
	for _, rec := range recs {
		if rec.Shard != "shard3" {
			t.Errorf("span %d shard = %q, want shard3", rec.ID, rec.Shard)
		}
		if rec.ID>>48 != 4 {
			t.Errorf("span %d not in slot 4's id range", rec.ID)
		}
	}
}

func TestSetShardNoop(t *testing.T) {
	var nilTracer *Tracer
	nilTracer.SetShard("x", 0) // must not panic

	tr := NewTracer()
	tr.SetShard("x", -1)
	o := &Obs{Tracer: tr}
	_, s := StartSpan(o.Inject(context.Background()), "study")
	s.End()
	rec := tr.Records()[0]
	if rec.Shard != "" || rec.ID != 1 {
		t.Fatalf("negative slot changed identity: %+v", rec)
	}
}

func TestCheckShardedSpansAccepts(t *testing.T) {
	var spans []SpanRecord
	spans = append(spans, shardSpans(t, "shard0", 0)...)
	spans = append(spans, shardSpans(t, "shard1", 1)...)
	// A work stealer: same shard name, fresh slot.
	spans = append(spans, shardSpans(t, "shard0", 2)...)
	manifests := []Manifest{{Shard: "shard0"}, {Shard: "shard1"}, {Shard: "shard0"}}
	stats, err := CheckShardedSpans(spans, manifests)
	if err != nil {
		t.Fatalf("CheckShardedSpans: %v", err)
	}
	if stats.Spans != 6 || stats.Slots != 3 || stats.Shards["shard0"] != 4 || stats.Shards["shard1"] != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCheckShardedSpansRejections(t *testing.T) {
	s0 := shardSpans(t, "shard0", 0)
	s1 := shardSpans(t, "shard1", 1)
	m := []Manifest{{Shard: "shard0"}, {Shard: "shard1"}}

	cases := []struct {
		name  string
		spans []SpanRecord
		mans  []Manifest
		want  string
	}{
		{"duplicate ids", append(append([]SpanRecord{}, s0...), s0...), []Manifest{{Shard: "shard0"}}, "duplicate span id"},
		{"undeclared shard", s0, []Manifest{{Shard: "other"}}, "no manifest declares"},
		{"manifest without spans", s0, m, "no spans in the log"},
		{"empty log", nil, m, "empty"},
		{"unnamed manifest", s0, []Manifest{{}}, "no shard name"},
	}
	for _, tc := range cases {
		if _, err := CheckShardedSpans(tc.spans, tc.mans); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// No slot prefix: a worker that never called SetShard.
	bare := []SpanRecord{{ID: 1, Name: "study", Path: "study", Shard: "shard0"}}
	if _, err := CheckShardedSpans(bare, []Manifest{{Shard: "shard0"}}); err == nil || !strings.Contains(err.Error(), "slot prefix") {
		t.Errorf("bare ids: err = %v", err)
	}

	// Missing shard name on a span.
	anon := append([]SpanRecord{}, s0...)
	anon[0].Shard = ""
	if _, err := CheckShardedSpans(anon, []Manifest{{Shard: "shard0"}}); err == nil || !strings.Contains(err.Error(), "carries no shard name") {
		t.Errorf("anonymous span: err = %v", err)
	}

	// Cross-process parentage: a shard1 span claiming a shard0 parent.
	cross := append(append([]SpanRecord{}, s0...), s1...)
	for i := range cross {
		if cross[i].Shard == "shard1" && cross[i].Parent != 0 {
			cross[i].Parent = s0[0].ID
		}
	}
	if _, err := CheckShardedSpans(cross, m); err == nil || !strings.Contains(err.Error(), "crosses worker processes") {
		t.Errorf("cross parentage: err = %v", err)
	}

	// A slot shared by two shard names: a unique ID inside slot 1's
	// range, but claiming a different shard.
	shared := append(append([]SpanRecord{}, s0...),
		SpanRecord{ID: 1<<48 + 100, Name: "study", Path: "study", Shard: "shard1"})
	if _, err := CheckShardedSpans(shared, m); err == nil || !strings.Contains(err.Error(), "shared by shards") {
		t.Errorf("shared slot: err = %v", err)
	}
}
