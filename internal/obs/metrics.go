package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	c.Add(1)
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; a nil *Counter reads 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer level that can move both ways and remembers its
// peak (worker-pool occupancy, queue depth). A nil *Gauge is a no-op.
type Gauge struct {
	mu   sync.Mutex
	v    int64 // guarded by mu
	peak int64 // guarded by mu
}

// Add moves the level by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += delta
	if g.v > g.peak {
		g.peak = g.v
	}
}

// Set forces the level. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
	if v > g.peak {
		g.peak = v
	}
}

// Value returns the current level; a nil *Gauge reads 0.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Peak returns the highest level seen; a nil *Gauge reads 0.
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Histogram buckets durations on a fixed log2 scale: bucket i holds
// observations at or below histMinNs<<i nanoseconds, from 1µs up to
// ~134s, plus one overflow bucket. Fixed bounds keep Observe
// allocation-free and Merge a plain element-wise add.
const (
	histMinNs       = int64(1000)
	histBucketCount = 28
)

// Histogram counts duration observations in log-scale buckets. The zero
// value is ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	buckets [histBucketCount + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// bucketIndex returns the index of the first bucket whose upper bound
// holds ns, or the overflow index.
func bucketIndex(ns int64) int {
	bound := histMinNs
	for i := 0; i < histBucketCount; i++ {
		if ns <= bound {
			return i
		}
		bound <<= 1
	}
	return histBucketCount
}

// BucketBound returns bucket i's inclusive upper bound in nanoseconds,
// or -1 for the overflow bucket.
func BucketBound(i int) int64 {
	if i < 0 || i >= histBucketCount {
		return -1
	}
	return histMinNs << i
}

// Observe records one duration. Nil-safe and goroutine-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// StartTimer returns the start token for ObserveSince, or the zero time
// when h is nil — instrumented hot paths read no clock while disabled.
func (h *Histogram) StartTimer() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the time elapsed since a StartTimer token.
// Nil-safe; a zero token (disabled timer) records nothing.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}

// Merge folds other's observations into h. Nil-safe on both sides;
// goroutine-safe with respect to concurrent Observes on either.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := 0; i <= histBucketCount; i++ {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
}

// Count returns how many durations were observed; nil reads 0.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNs returns the total of all observed durations in nanoseconds; nil
// reads 0.
func (h *Histogram) SumNs() int64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

// Buckets returns a snapshot of the per-bucket counts (last element is
// the overflow bucket); nil reads all zeros.
func (h *Histogram) Buckets() [histBucketCount + 1]int64 {
	var out [histBucketCount + 1]int64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry names and hands out instruments. Get-or-create is the only
// mutation, so instruments can be fetched lazily from hot paths; all
// methods are nil-safe and return nil instruments on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}
