package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	traceID := NewTraceID()
	if len(traceID) != 32 {
		t.Fatalf("NewTraceID length %d, want 32", len(traceID))
	}
	h := FormatTraceparent(traceID, 0x1234)
	gotTrace, gotParent, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q does not parse", h)
	}
	if gotTrace != traceID || gotParent != "0000000000001234" {
		t.Errorf("parsed (%s, %s), want (%s, 0000000000001234)", gotTrace, gotParent, traceID)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // all-zero parent
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // wrong length
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestStartRequestSpan(t *testing.T) {
	// No tracer: nil span, context unchanged, everything downstream no-ops.
	ctx, s := StartRequestSpan(context.Background(), "predict", "")
	if s != nil {
		t.Fatal("tracerless StartRequestSpan returned a span")
	}
	if s.TraceID() != "" || s.Traceparent() != "" {
		t.Error("nil span leaks trace identity")
	}
	_ = ctx

	// Fresh trace: no incoming header.
	o := New()
	ctx, root := StartRequestSpan(o.Inject(context.Background()), "predict", "")
	if root.TraceID() == "" {
		t.Fatal("request span has no trace ID")
	}
	_, child := StartSpan(ctx, "compute")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %q differs from root %q", child.TraceID(), root.TraceID())
	}
	child.End()
	root.End()
	recs := o.Tracer.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Trace != root.TraceID() {
			t.Errorf("record %s trace %q, want %q", rec.Name, rec.Trace, root.TraceID())
		}
	}

	// Incoming traceparent: trace adopted, remote parent annotated.
	const in = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	_, joined := StartRequestSpan(o.Inject(context.Background()), "predict", in)
	if joined.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("joined trace %q, want the caller's", joined.TraceID())
	}
	if joined.Attr(AttrRemoteParent) != "00f067aa0ba902b7" {
		t.Errorf("remote parent %q, want caller's span ID", joined.Attr(AttrRemoteParent))
	}
	joined.End()

	// Batch spans (plain StartSpan roots) stay trace-free so batch logs
	// are byte-identical to pre-tracing ones.
	_, batch := StartSpan(o.Inject(context.Background()), "study")
	batch.End()
	var buf bytes.Buffer
	if err := o.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, `"name":"study"`) && strings.Contains(line, `"trace"`) {
			t.Errorf("batch span exported a trace field: %s", line)
		}
	}
}

// failSink fails every write.
type failSink struct{}

func (failSink) WriteSpan(SpanRecord) error { return errors.New("boom") }

// memSink buffers records.
type memSink struct{ recs []SpanRecord }

func (m *memSink) WriteSpan(rec SpanRecord) error {
	m.recs = append(m.recs, rec)
	return nil
}

func TestTracerSinkStreams(t *testing.T) {
	o := New()
	sink := &memSink{}
	o.Tracer.SetSink(sink)
	_, s := StartRequestSpan(o.Inject(context.Background()), "predict", "")
	s.End()
	if o.Tracer.Len() != 0 {
		t.Errorf("streaming tracer buffered %d spans, want 0", o.Tracer.Len())
	}
	if len(sink.recs) != 1 || sink.recs[0].Name != "predict" {
		t.Fatalf("sink got %+v, want one predict span", sink.recs)
	}

	o.Tracer.SetSink(failSink{})
	_, s = StartRequestSpan(o.Inject(context.Background()), "predict", "")
	s.End()
	if got := o.Tracer.SinkErrors(); got != 1 {
		t.Errorf("SinkErrors = %d, want 1", got)
	}
}

func TestJSONLFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	// Each record is ~90 bytes; cap at 256 so a handful of writes rotate.
	f, err := OpenJSONLFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.WriteSpan(SpanRecord{ID: uint64(i + 1), Name: "n", Path: "n", DurNs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Rotations() < 1 {
		t.Error("no rotation after exceeding maxBytes")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("second Close = %v, want idempotent nil", err)
	}
	if err := f.WriteRecord(SpanRecord{ID: 99}); err == nil {
		t.Error("write after close succeeded")
	}

	// Both generations together hold every record, all lines whole.
	var all []SpanRecord
	for _, p := range []string{path + ".1", path} {
		g, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := ReadJSONL(g)
		g.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		all = append(all, recs...)
	}
	// Rotation keeps only the newest two generations; everything present
	// must be whole and in order, ending at the last record written.
	if len(all) == 0 || all[len(all)-1].ID != 10 {
		t.Fatalf("generations end at %v, want record 10 last", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID != all[i-1].ID+1 {
			t.Fatalf("generation gap between %d and %d", all[i-1].ID, all[i].ID)
		}
	}
}

func TestAccessLogRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.jsonl")
	l, err := OpenAccessLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := AccessRecord{TimeNs: 42, Trace: "abc", Endpoint: "predict", Status: 200, LatencyNs: 7, Outcome: "cold", Bytes: 100}
	if err := l.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAccessLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != want {
		t.Errorf("round trip got %+v, want %+v", recs, want)
	}

	// A torn tail (half a JSON line) is an error, not a silent drop.
	if _, err := ReadAccessLog(strings.NewReader(`{"t_ns":1,"trace":"abc","endpoint":"pre`)); err == nil {
		t.Error("torn tail read back without error")
	}

	// Nil log drops records without error.
	var nilLog *AccessLog
	if err := nilLog.Write(want); err != nil {
		t.Errorf("nil AccessLog.Write = %v", err)
	}
	if err := nilLog.Close(); err != nil {
		t.Errorf("nil AccessLog.Close = %v", err)
	}
}

func TestRollingWindow(t *testing.T) {
	r := NewRolling(time.Second, 3)
	// guarded by nothing: the test owns the clock.
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }

	for i := 0; i < 100; i++ {
		r.Observe(time.Millisecond)
	}
	r.Observe(time.Second)
	snap := r.Snapshot()
	if snap.Count != 101 {
		t.Fatalf("count %d, want 101", snap.Count)
	}
	if snap.WindowSeconds != 3 {
		t.Errorf("window %v, want 3s", snap.WindowSeconds)
	}
	// p50 sits in the 1ms bucket (upper bound within 2x), p99 too
	// (rank 100 of 101); the single 1s outlier only shows at the max.
	if snap.P50Ns < time.Millisecond.Nanoseconds() || snap.P50Ns > 2*time.Millisecond.Nanoseconds() {
		t.Errorf("p50 %d outside [1ms, 2ms]", snap.P50Ns)
	}
	if snap.P99Ns > 2*time.Millisecond.Nanoseconds() {
		t.Errorf("p99 %d above 2ms despite 100/101 at 1ms", snap.P99Ns)
	}
	if snap.MeanNs <= time.Millisecond.Nanoseconds() {
		t.Errorf("mean %d not pulled up by the outlier", snap.MeanNs)
	}

	// Two shards later, the observations are still inside the window...
	clock = clock.Add(2 * time.Second)
	r.Observe(2 * time.Millisecond)
	if snap = r.Snapshot(); snap.Count != 102 {
		t.Errorf("count after 2s = %d, want 102", snap.Count)
	}
	// ...but once the window laps them, only fresh traffic remains.
	clock = clock.Add(3 * time.Second)
	if snap = r.Snapshot(); snap.Count != 0 {
		t.Errorf("count after lapping = %d, want 0", snap.Count)
	}

	var nilRolling *Rolling
	nilRolling.Observe(time.Second)
	if snap = nilRolling.Snapshot(); snap.Count != 0 {
		t.Errorf("nil Rolling snapshot %+v", snap)
	}
}

// serveLogs builds a minimal valid span/access pair: one cold request,
// one cached, one coalesced follower referencing the cold leader.
func serveLogs() ([]SpanRecord, []AccessRecord) {
	spans := []SpanRecord{
		{ID: 1, Trace: "aaa", Name: "predict", Path: "predict",
			Attrs: map[string]string{AttrEndpoint: "predict", AttrStatus: "200", AttrOutcome: "cold"}},
		{ID: 2, Parent: 1, Trace: "aaa", Name: "cell.compute", Path: "predict/cell.compute",
			Attrs: map[string]string{AttrOutcome: "cold"}},
		{ID: 3, Trace: "bbb", Name: "predict", Path: "predict",
			Attrs: map[string]string{AttrEndpoint: "predict", AttrStatus: "200", AttrOutcome: "cached"}},
		{ID: 4, Trace: "ccc", Name: "predict", Path: "predict",
			Attrs: map[string]string{AttrEndpoint: "predict", AttrStatus: "200", AttrOutcome: "coalesced"}},
		{ID: 5, Parent: 4, Trace: "ccc", Name: "cell.wait", Path: "predict/cell.wait",
			Attrs: map[string]string{AttrOutcome: "coalesced", AttrLeaderTrace: "aaa"}},
	}
	accs := []AccessRecord{
		{Trace: "aaa", Endpoint: "predict", Status: 200, Outcome: "cold"},
		{Trace: "bbb", Endpoint: "predict", Status: 200, Outcome: "cached"},
		{Trace: "ccc", Endpoint: "predict", Status: 200, Outcome: "coalesced"},
	}
	return spans, accs
}

func TestCheckServeLogs(t *testing.T) {
	spans, accs := serveLogs()
	stats, err := CheckServeLogs(spans, accs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AccessRecords != 3 || stats.RootSpans != 3 || stats.CoalescedSpans != 1 {
		t.Errorf("stats = %+v, want 3 records / 3 roots / 1 coalesced", stats)
	}
	for _, outcome := range []string{"cold", "cached", "coalesced"} {
		if stats.Outcomes[outcome] != 1 {
			t.Errorf("outcome %q count %d, want 1", outcome, stats.Outcomes[outcome])
		}
	}
	if got := fmt.Sprint(stats.OutcomeNames()); got != "[cached coalesced cold]" {
		t.Errorf("OutcomeNames() = %s", got)
	}
}

func TestCheckServeLogsRejects(t *testing.T) {
	breakers := []struct {
		name  string
		wreck func(spans []SpanRecord, accs []AccessRecord) ([]SpanRecord, []AccessRecord)
	}{
		{"duplicate span id", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			s[1].ID = s[0].ID
			return s, a
		}},
		{"unknown parent", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			s[1].Parent = 999
			return s, a
		}},
		{"child outside parent trace", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			s[1].Trace = "zzz"
			return s, a
		}},
		{"parent cycle", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			s = append(s, SpanRecord{ID: 10, Parent: 11, Trace: "aaa", Name: "x", Path: "x"},
				SpanRecord{ID: 11, Parent: 10, Trace: "aaa", Name: "y", Path: "y"})
			return s, a
		}},
		{"access record without trace", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			a[0].Trace = ""
			return s, a
		}},
		{"access record without root span", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			a[0].Trace = "nonesuch"
			return s, a
		}},
		{"access status mismatch", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			a[0].Status = 500
			return s, a
		}},
		{"coalesced span without leader", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			delete(s[4].Attrs, AttrLeaderTrace)
			return s, a
		}},
		{"coalesced leader trace unknown", func(s []SpanRecord, a []AccessRecord) ([]SpanRecord, []AccessRecord) {
			s[4].Attrs[AttrLeaderTrace] = "nonesuch"
			return s, a
		}},
	}
	for _, b := range breakers {
		spans, accs := serveLogs()
		spans, accs = b.wreck(spans, accs)
		if _, err := CheckServeLogs(spans, accs); err == nil {
			t.Errorf("%s: CheckServeLogs accepted", b.name)
		}
	}
}

func TestPromNameSanitizes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"predictd_inflight", "predictd_inflight"},
		{"a:b", "a:b"},
		{"9lives", "_9lives"},
		{"latency.ms", "latency_ms"},
		{"weird name/σ", "weird_name___"}, // σ is two UTF-8 bytes, each replaced
		{"", "_"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPromFloatSpecials(t *testing.T) {
	nan := 0.0
	if got := PromFloat(nan / nan); got != "NaN" {
		t.Errorf("NaN rendered %q", got)
	}
	if got := PromFloat(1 / nan); got != "+Inf" {
		t.Errorf("+Inf rendered %q", got)
	}
	if got := PromFloat(-1 / nan); got != "-Inf" {
		t.Errorf("-Inf rendered %q", got)
	}
	if got := PromFloat(0.25); got != "0.25" {
		t.Errorf("0.25 rendered %q", got)
	}
}

// TestWritePromConformance checks every exposition line against the text
// format grammar, with instrument names that need sanitizing and
// histogram buckets that must be cumulative.
func TestWritePromConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("latency.by-endpoint").Inc()
	reg.Gauge("9th_percentile").Set(3)
	h := reg.Histogram("predictd_predict_seconds")
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	name := `[a-zA-Z_:][a-zA-Z0-9_:]*`
	sampleRe := regexp.MustCompile(`^` + name + `(\{le="[^"]+"\})? (NaN|[+-]Inf|[-+0-9.e]+)$`)
	typeRe := regexp.MustCompile(`^# TYPE ` + name + ` (counter|gauge|histogram)$`)
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !typeRe.MatchString(line) {
				t.Errorf("malformed TYPE line %q", line)
			}
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
	out := buf.String()
	for _, want := range []string{"latency_by_endpoint 1", "_9th_percentile 3", `predictd_predict_seconds_bucket{le="+Inf"} 3`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative buckets: counts never decrease along le, ending at 3.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "predictd_predict_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 3 {
		t.Errorf("final cumulative bucket %d, want 3", prev)
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	SampleRuntime(reg)
	if reg.Gauge("runtime_goroutines").Value() < 1 {
		t.Error("runtime_goroutines gauge not set")
	}
	if reg.Gauge("runtime_heap_alloc_bytes").Value() <= 0 {
		t.Error("runtime_heap_alloc_bytes gauge not set")
	}
	SampleRuntime(nil) // nil-safe

	ctx, cancel := context.WithCancel(context.Background())
	stopped := StartRuntimeSampler(ctx, reg, time.Millisecond)
	cancel()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("sampler did not stop after cancellation")
	}
}
