package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// W3C trace-context (traceparent) support. A predictd request either
// carries an incoming `traceparent` header — in which case its spans
// join the caller's trace — or is assigned a fresh random trace ID. The
// format is the W3C one, version 00:
//
//	00-<32 lowercase hex trace-id>-<16 lowercase hex parent-id>-<2 hex flags>
//
// Span IDs inside a trace are the tracer's own uint64 span IDs rendered
// as 16 hex digits; they are unique per process, which is all the join
// in tracecheck -serve needs.

// AttrRemoteParent is the root-span annotation holding the parent span
// ID of an incoming traceparent, so an external caller's span tree can
// be stitched to ours.
const AttrRemoteParent = "remote_parent"

// traceFallback feeds trace IDs when crypto/rand fails (it effectively
// never does); a counter keeps them unique within the process.
var traceFallback atomic.Uint64

// NewTraceID returns a 32-hex-digit random trace ID, never all zeros.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%032x", traceFallback.Add(1))
	}
	if allZero(b[:]) {
		b[15] = 1
	}
	return hex.EncodeToString(b[:])
}

// FormatTraceparent renders a version-00 traceparent value from a trace
// ID and a process-local span ID, with the sampled flag set.
func FormatTraceparent(traceID string, spanID uint64) string {
	return fmt.Sprintf("00-%s-%016x-01", traceID, spanID)
}

// ParseTraceparent validates an incoming traceparent header value and
// returns its trace ID and parent span ID. Only version 00 with
// lowercase hex is accepted (the W3C grammar); anything else reports
// ok=false and the server starts a fresh trace instead of failing the
// request.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (parent) + 1 + 2 (flags).
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID, parentID = h[3:35], h[36:52]
	if !isLowerHex(traceID) || !isLowerHex(parentID) || !isLowerHex(h[53:]) {
		return "", "", false
	}
	if allHexZero(traceID) || allHexZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allHexZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// StartRequestSpan begins the root span of one server request. The
// incoming traceparent header value (may be "") is parsed; a valid one
// contributes the trace ID (and its parent span ID is kept as the
// AttrRemoteParent annotation), otherwise a fresh random trace ID is
// generated. Like StartSpan, a context with no tracer returns (ctx, nil)
// and every downstream call no-ops.
//
// The returned span's Traceparent() is the value to echo in the
// response header, and its TraceID() is what the access log records —
// the join key between the two logs.
func StartRequestSpan(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	o := From(ctx)
	if o == nil || o.Tracer == nil {
		return ctx, nil
	}
	s := o.Tracer.start(name, nil)
	if traceID, parentID, ok := ParseTraceparent(traceparent); ok {
		s.trace = traceID
		s.Annotate(AttrRemoteParent, parentID)
	} else {
		s.trace = NewTraceID()
	}
	return &spanCtx{Context: ctx, s: s}, s
}
