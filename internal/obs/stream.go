package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// JSONLFile is a goroutine-safe, line-oriented JSON writer with size
// rotation — the streaming counterpart of WriteJSONL for long-running
// servers, where spans and access records must leave the process as
// they happen instead of buffering until exit.
//
// Every record is written as one JSON line and flushed immediately, so
// a reader of the file (or a post-crash recovery) only ever sees whole
// lines plus at most one torn tail from a mid-write crash; a graceful
// Close never leaves one. When a write would push the file past
// maxBytes, the current file is renamed to <path>.1 (replacing any
// previous rotation) and a fresh file is started — a server under
// sustained load keeps at most two generations on disk.
type JSONLFile struct {
	mu        sync.Mutex
	path      string        // guarded by mu
	maxBytes  int64         // guarded by mu; <= 0 disables rotation
	f         *os.File      // guarded by mu
	w         *bufio.Writer // guarded by mu
	size      int64         // guarded by mu
	rotations int64         // guarded by mu
	closed    bool          // guarded by mu
}

// OpenJSONLFile creates (truncating) path for streaming records.
// maxBytes <= 0 disables rotation.
func OpenJSONLFile(path string, maxBytes int64) (*JSONLFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONLFile{path: path, maxBytes: maxBytes, f: f, w: bufio.NewWriter(f)}, nil
}

// WriteSpan implements SpanSink.
func (l *JSONLFile) WriteSpan(rec SpanRecord) error {
	return l.WriteRecord(rec)
}

// WriteRecord appends v as one JSON line and flushes it. Nil-safe: a
// nil *JSONLFile drops the record, so disabled logs cost one nil check.
func (l *JSONLFile) WriteRecord(v any) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("jsonl %s: write after close", l.path)
	}
	if l.maxBytes > 0 && l.size > 0 && l.size+int64(len(data)) > l.maxBytes {
		// Rotate: close the current generation as <path>.1 and start a
		// fresh file.
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		if err := os.Rename(l.path, l.path+".1"); err != nil {
			return err
		}
		f, err := os.Create(l.path)
		if err != nil {
			return err
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.size = 0
		l.rotations++
	}
	if _, err := l.w.Write(data); err != nil {
		return err
	}
	l.size += int64(len(data))
	return l.w.Flush()
}

// Rotations reports how many times the log has rolled over; nil reads 0.
func (l *JSONLFile) Rotations() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotations
}

// Close flushes and closes the current file. Nil-safe and idempotent.
func (l *JSONLFile) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	flushErr := l.w.Flush()
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
