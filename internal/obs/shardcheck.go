package obs

import (
	"fmt"
	"sort"
)

// ShardStats summarizes a validated multi-shard span log.
type ShardStats struct {
	// Spans is the number of span records checked.
	Spans int
	// Shards counts spans per shard name.
	Shards map[string]int
	// Slots is the number of distinct span-ID slots (coordinated
	// processes) seen across the log — at least one per shard name, more
	// when restarts or work stealers contributed spans.
	Slots int
}

// shardSlot extracts a span ID's process slot: SetShard offsets every ID
// by (slot+1) << 48, so the high 16 bits identify the producing process.
func shardSlot(id uint64) uint64 { return id >> 48 }

// CheckShardedSpans validates a concatenated multi-shard span log
// against the manifests of the workers that produced it:
//
//   - every span carries a non-empty shard name that matches some
//     manifest's shard field, and every manifest's shard produced at
//     least one span;
//   - span IDs are globally unique and slot-prefixed (SetShard), and a
//     slot is never shared by two shard names — concatenating any set of
//     worker logs cannot collide;
//   - parentage never crosses processes: a span's parent exists in the
//     log, lives in the same slot, and carries the same shard name.
func CheckShardedSpans(spans []SpanRecord, manifests []Manifest) (ShardStats, error) {
	stats := ShardStats{Shards: make(map[string]int)}
	if len(spans) == 0 {
		return stats, fmt.Errorf("span log is empty")
	}

	declared := make(map[string]bool, len(manifests))
	for _, m := range manifests {
		if m.Shard == "" {
			return stats, fmt.Errorf("manifest carries no shard name")
		}
		declared[m.Shard] = true
	}

	byID := make(map[uint64]SpanRecord, len(spans))
	slotShard := make(map[uint64]string)
	for _, s := range spans {
		stats.Spans++
		if s.ID == 0 {
			return stats, fmt.Errorf("span %q with zero id", s.Path)
		}
		if _, dup := byID[s.ID]; dup {
			return stats, fmt.Errorf("duplicate span id %d across shard logs (%q)", s.ID, s.Path)
		}
		byID[s.ID] = s
		if s.Shard == "" {
			return stats, fmt.Errorf("span %d (%q) carries no shard name", s.ID, s.Path)
		}
		if len(declared) > 0 && !declared[s.Shard] {
			return stats, fmt.Errorf("span %d names shard %q, which no manifest declares", s.ID, s.Shard)
		}
		slot := shardSlot(s.ID)
		if slot == 0 {
			return stats, fmt.Errorf("span %d (shard %q) has no slot prefix — its worker never called SetShard", s.ID, s.Shard)
		}
		if prev, ok := slotShard[slot]; ok && prev != s.Shard {
			return stats, fmt.Errorf("span-id slot %d is shared by shards %q and %q", slot, prev, s.Shard)
		}
		slotShard[slot] = s.Shard
		stats.Shards[s.Shard]++
	}
	stats.Slots = len(slotShard)

	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		parent, ok := byID[s.Parent]
		if !ok {
			return stats, fmt.Errorf("span %d (shard %q) has missing parent %d", s.ID, s.Shard, s.Parent)
		}
		if shardSlot(s.Parent) != shardSlot(s.ID) || parent.Shard != s.Shard {
			return stats, fmt.Errorf("span %d (shard %q) parents into span %d (shard %q): parentage crosses worker processes",
				s.ID, s.Shard, parent.ID, parent.Shard)
		}
	}

	var unseen []string
	for name := range declared {
		if stats.Shards[name] == 0 {
			unseen = append(unseen, name)
		}
	}
	if len(unseen) > 0 {
		sort.Strings(unseen)
		return stats, fmt.Errorf("manifests declare shards with no spans in the log: %v", unseen)
	}
	return stats, nil
}
