package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"hpcmetrics/internal/obs"
)

var errBoom = errors.New("boom")

// fastPolicy keeps test backoffs in the microsecond range.
func fastPolicy(attempts int) Policy {
	return Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestDoSucceedsFirstAttempt(t *testing.T) {
	attempts, err := Do(context.Background(), Policy{}, "site", func(context.Context) error { return nil })
	if err != nil || attempts != 1 {
		t.Errorf("Do = (%d, %v), want (1, nil)", attempts, err)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	attempts, err := Do(context.Background(), fastPolicy(5), "site", func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Errorf("Do = (%d, %v) after %d calls, want (3, nil) after 3", attempts, err, calls)
	}
}

func TestDoExhaustionReturnsLastError(t *testing.T) {
	attempts, err := Do(context.Background(), fastPolicy(3), "site", func(context.Context) error {
		return errBoom
	})
	if attempts != 3 || !errors.Is(err, errBoom) {
		t.Errorf("Do = (%d, %v), want (3, errBoom)", attempts, err)
	}
}

// TestDoPermanentFailsFast: the classifier's word is final — a
// non-retryable error ends the loop on attempt one.
func TestDoPermanentFailsFast(t *testing.T) {
	p := fastPolicy(5)
	p.Retryable = func(err error) bool { return !errors.Is(err, errBoom) }
	calls := 0
	attempts, err := Do(context.Background(), p, "site", func(context.Context) error {
		calls++
		return errBoom
	})
	if attempts != 1 || calls != 1 || !errors.Is(err, errBoom) {
		t.Errorf("Do = (%d, %v) after %d calls, want (1, errBoom) after 1", attempts, err, calls)
	}
}

// TestDoAttemptTimeoutRetries: a deadline expiry is always retryable,
// even under a classifier that rejects everything.
func TestDoAttemptTimeoutRetries(t *testing.T) {
	p := fastPolicy(2)
	p.AttemptTimeout = time.Millisecond
	p.Retryable = func(error) bool { return false }
	calls := 0
	attempts, err := Do(context.Background(), p, "site", func(actx context.Context) error {
		calls++
		<-actx.Done()
		return actx.Err()
	})
	if attempts != 2 || calls != 2 || !TimedOut(err) {
		t.Errorf("Do = (%d, %v) after %d calls, want (2, DeadlineExceeded) after 2", attempts, err, calls)
	}
}

func TestDoParentCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := Do(ctx, fastPolicy(3), "site", func(context.Context) error {
		t.Fatal("op ran under a dead parent")
		return nil
	})
	if attempts != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("Do = (%d, %v), want (0, context.Canceled)", attempts, err)
	}
}

// TestDoCancelMidBackoff: cancelling the parent during a backoff sleep
// returns promptly, and errors.Is finds both the attempt's failure and
// the cancellation.
func TestDoCancelMidBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	attempts, err := Do(ctx, p, "site", func(context.Context) error { return errBoom })
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancel took %v to surface, want prompt", el)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want both context.Canceled and errBoom", err)
	}
}

// TestDoParentCancelMidAttempt: when the parent dies during an attempt,
// the attempt's own error surfaces and no retry runs.
func TestDoParentCancelMidAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	attempts, err := Do(ctx, fastPolicy(3), "site", func(context.Context) error {
		calls++
		cancel()
		return errBoom
	})
	if attempts != 1 || calls != 1 || !errors.Is(err, errBoom) {
		t.Errorf("Do = (%d, %v) after %d calls, want (1, errBoom) after 1", attempts, err, calls)
	}
}

// TestBackoffDeterministicCappedJittered pins the backoff contract:
// same (policy, site, attempt) — same pause; doubling; cap respected
// including the 1.5x jitter ceiling; jitter keeps sites apart.
func TestBackoffDeterministicCappedJittered(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	if a, b := backoff(p, "site", 1), backoff(p, "site", 1); a != b {
		t.Errorf("backoff not deterministic: %v vs %v", a, b)
	}
	for attempt := 1; attempt <= 10; attempt++ {
		d := backoff(p, "site", attempt)
		if d < 0 || d >= time.Duration(1.5*float64(p.MaxDelay)) {
			t.Errorf("attempt %d backoff %v outside [0, 1.5*MaxDelay)", attempt, d)
		}
	}
	if backoff(p, "alpha", 1) == backoff(p, "beta", 1) {
		t.Error("jitter does not separate sites (possible, but with FNV vanishingly unlikely)")
	}
	j := jitter(7, "s", 3)
	if j < 0 || j >= 1 {
		t.Errorf("jitter = %v, want [0, 1)", j)
	}
}

// TestDoCounters: attempts, retries, timeouts, and give-ups land on the
// obs registry when the context carries one.
func TestDoCounters(t *testing.T) {
	o := obs.New()
	ctx := o.Inject(context.Background())
	_, err := Do(ctx, fastPolicy(3), "site", func(context.Context) error { return errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"retry_attempts_total": 3,
		"retry_retries_total":  2,
		"retry_giveups_total":  1,
		"retry_timeouts_total": 0,
	} {
		if got := o.Metrics.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
