// Package retry gives the study's per-cell work bounded, context-aware
// retries with capped exponential backoff and deterministic jitter.
//
// Every probe/observe/trace unit is an attemptable operation: transient
// failures (injected by internal/faults, or — on a real measurement
// fleet — flaky nodes) are retried a bounded number of times, while
// permanent failures (validation errors, job-too-large) fail fast
// through the caller's classifier. An attempt that outlives its
// per-attempt deadline is always worth retrying while the parent
// context is alive: a stalled run says nothing about the next one.
//
// Jitter is hashed from the policy seed and the operation's site string
// rather than drawn from a random source, so a chaos run backs off
// identically from run to run — determinism is a study invariant (see
// internal/analysis/detrand).
package retry

import (
	"context"
	"errors"
	"time"

	"hpcmetrics/internal/obs"
)

// Policy bounds and paces the attempts of one operation. The zero value
// is a single attempt with no deadline.
type Policy struct {
	// MaxAttempts bounds attempts; 0 or 1 means a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt, doubled per
	// retry up to MaxDelay. Zero defaults to 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero defaults to 1s.
	MaxDelay time.Duration
	// AttemptTimeout bounds each attempt via context.WithTimeout; 0
	// leaves attempts bounded only by the parent context.
	AttemptTimeout time.Duration
	// Seed feeds the deterministic backoff jitter.
	Seed uint64
	// Retryable classifies attempt errors; nil retries everything.
	// Attempt timeouts bypass it: they are always retryable while the
	// parent context is alive.
	Retryable func(error) bool
}

// TimedOut reports whether err is an attempt-deadline expiry — the
// signature of a stalled run reclaimed by Policy.AttemptTimeout.
func TimedOut(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// Do runs op under the policy until it succeeds, exhausts its attempt
// budget, fails permanently, or the parent context ends. It reports how
// many attempts ran alongside the final error; on exhaustion or a
// permanent failure that error is the last attempt's. When ctx carries
// an obs registry, attempts, retries, timeouts, and give-ups land on
// the retry_* counters.
func Do(ctx context.Context, p Policy, site string, op func(context.Context) error) (attempts int, err error) {
	budget := p.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	meter := obs.From(ctx).Meter()
	attemptsC := meter.Counter("retry_attempts_total")
	retriesC := meter.Counter("retry_retries_total")
	timeoutsC := meter.Counter("retry_timeouts_total")
	giveupsC := meter.Counter("retry_giveups_total")

	for attempt := 1; attempt <= budget; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return attempt - 1, cerr
		}
		attemptsC.Inc()
		err = runAttempt(ctx, p.AttemptTimeout, op)
		if err == nil {
			return attempt, nil
		}
		if ctx.Err() != nil {
			// The parent ended mid-attempt; nothing left to retry into.
			return attempt, err
		}
		if TimedOut(err) {
			timeoutsC.Inc()
		} else if p.Retryable != nil && !p.Retryable(err) {
			return attempt, err
		}
		if attempt == budget {
			break
		}
		retriesC.Inc()
		if serr := sleepCtx(ctx, backoff(p, site, attempt)); serr != nil {
			// Cancelled mid-backoff: surface both the attempt's failure
			// and the cancellation, so errors.Is finds either.
			return attempt, errors.Join(err, serr)
		}
	}
	giveupsC.Inc()
	return budget, err
}

// runAttempt runs one attempt under its own deadline, if any.
func runAttempt(ctx context.Context, timeout time.Duration, op func(context.Context) error) error {
	if timeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return op(actx)
}

// backoff returns the pause before the next attempt: capped exponential
// doubling scaled by a jitter factor in [0.5, 1.5) hashed from (seed,
// site, attempt). Same policy, same site, same attempt — same pause.
func backoff(p Policy, site string, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	return time.Duration(float64(d) * (0.5 + jitter(p.Seed, site, attempt)))
}

// jitter hashes (seed, site, attempt) to a uniform [0, 1) via FNV-1a —
// the same construction as the study's observation noise.
func jitter(seed uint64, site string, attempt int) float64 {
	h := uint64(14695981039346656037)
	for shift := 0; shift < 64; shift += 8 {
		h ^= (seed >> shift) & 0xff
		h *= 1099511628211
	}
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt)
	h *= 1099511628211
	return float64(h>>11) / float64(uint64(1)<<53)
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
