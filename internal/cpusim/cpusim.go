// Package cpusim models the processor-core time of a basic block.
//
// The model prices one loop iteration of a block by the classic
// three-bound formulation: issue throughput (how many instructions the
// core retires per cycle), floating-point dependency chains (an iteration
// whose FP operations form a serial chain cannot go faster than
// chain-length × FP latency, regardless of functional-unit count), and
// branch misprediction penalties. The block runs at the slowest bound.
//
// The dependency bound is the machine behaviour that the paper's Metric #9
// ("ENHANCED MAPS" plus static dependency analysis) exists to capture:
// ADI/SSOR-style recurrence loops fit in cache yet run far below cache
// bandwidth. cpusim gives the ground-truth executor that behaviour;
// the trace package's analyzer recovers the ILP-limited flag the way the
// paper's static binary analyzer does.
package cpusim

import (
	"fmt"

	"hpcmetrics/internal/machine"
)

// Work is the non-memory work of one basic-block iteration.
type Work struct {
	// Flops is floating-point operations per iteration.
	Flops float64
	// IntOps is non-FP, non-memory instructions per iteration (address
	// arithmetic, induction updates).
	IntOps float64
	// MemOps is memory instructions per iteration; they consume issue
	// slots here, while their data-access time is memsim's concern.
	MemOps float64
	// Branches is branch instructions per iteration.
	Branches float64
	// MispredictRate is the fraction of Branches that mispredict.
	MispredictRate float64
	// FPChainLen is the longest chain of dependent FP operations per
	// iteration; zero means fully parallel FP work.
	FPChainLen float64
}

// Validate reports structural problems in the work description.
func (w Work) Validate() error {
	switch {
	case w.Flops < 0 || w.IntOps < 0 || w.MemOps < 0 || w.Branches < 0:
		return fmt.Errorf("cpusim: negative operation count %+v", w)
	case w.MispredictRate < 0 || w.MispredictRate > 1:
		return fmt.Errorf("cpusim: mispredict rate %g outside [0,1]", w.MispredictRate)
	case w.FPChainLen < 0:
		return fmt.Errorf("cpusim: negative chain length %g", w.FPChainLen)
	case w.FPChainLen > w.Flops:
		return fmt.Errorf("cpusim: chain length %g exceeds flops %g", w.FPChainLen, w.Flops)
	}
	return nil
}

// Result is the priced core time of one iteration.
type Result struct {
	// Cycles is the iteration's core time.
	Cycles float64
	// ThroughputCycles is the issue/functional-unit bound alone.
	ThroughputCycles float64
	// DependencyCycles is the FP dependency-chain bound alone.
	DependencyCycles float64
	// BranchCycles is the misprediction penalty.
	BranchCycles float64
	// ILPLimited reports that the dependency bound dominated the
	// throughput bound — the property the study's static analyzer flags.
	ILPLimited bool
}

// Seconds converts the result to seconds on the machine.
func (r Result) Seconds(cfg *machine.Config) float64 {
	return r.Cycles / (cfg.ClockGHz * 1e9)
}

// Time prices one iteration of the block on the machine.
func Time(cfg *machine.Config, w Work) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	fpBound := w.Flops / cfg.FPPerCycle
	issueBound := (w.Flops + w.IntOps + w.MemOps + w.Branches) / cfg.IssueWidth
	throughput := fpBound
	if issueBound > throughput {
		throughput = issueBound
	}

	dependency := w.FPChainLen * cfg.FPLatencyCycles

	cycles := throughput
	ilpLimited := false
	if dependency > throughput {
		cycles = dependency
		ilpLimited = true
	}

	branch := w.Branches * w.MispredictRate * cfg.BranchMispredictPenaltyCycles
	cycles += branch

	return Result{
		Cycles:           cycles,
		ThroughputCycles: throughput,
		DependencyCycles: dependency,
		BranchCycles:     branch,
		ILPLimited:       ilpLimited,
	}, nil
}

// FlopRate returns the effective floating-point rate (FLOP/s) the block
// sustains on the machine, ignoring memory time.
func FlopRate(cfg *machine.Config, w Work) (float64, error) {
	res, err := Time(cfg, w)
	if err != nil {
		return 0, err
	}
	if res.Cycles == 0 {
		return 0, nil
	}
	return w.Flops / res.Cycles * cfg.ClockGHz * 1e9, nil
}
