package cpusim

import (
	"math"
	"testing"
	"testing/quick"

	"hpcmetrics/internal/machine"
)

func TestThroughputBound(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655) // 4 flops/cycle, issue 5
	w := Work{Flops: 8, IntOps: 1, MemOps: 1}
	res, err := Time(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// FP bound: 8/4 = 2 cycles; issue bound: 10/5 = 2; dependency 0.
	if math.Abs(res.Cycles-2) > 1e-12 {
		t.Fatalf("cycles = %g, want 2", res.Cycles)
	}
	if res.ILPLimited {
		t.Fatal("parallel block flagged ILP-limited")
	}
}

func TestDependencyBound(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655) // FP latency 6
	w := Work{Flops: 4, FPChainLen: 4}
	res, err := Time(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// Dependency: 4 * 6 = 24 cycles; throughput: 1 cycle.
	if math.Abs(res.Cycles-24) > 1e-12 {
		t.Fatalf("cycles = %g, want 24", res.Cycles)
	}
	if !res.ILPLimited {
		t.Fatal("serial chain not flagged ILP-limited")
	}
}

func TestBranchPenaltyAdds(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLXeon) // 20-cycle penalty
	base := Work{Flops: 10}
	branchy := Work{Flops: 10, Branches: 2, MispredictRate: 0.5}
	r0, err := Time(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Time(cfg, branchy)
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := 2 * 0.5 * 20.0
	// The branches also consume issue slots, so allow the issue-bound
	// delta on top of the misprediction penalty.
	if r1.Cycles < r0.Cycles+wantExtra {
		t.Fatalf("branch penalty missing: %g vs %g+%g", r1.Cycles, r0.Cycles, wantExtra)
	}
	if r1.BranchCycles != wantExtra {
		t.Fatalf("BranchCycles = %g, want %g", r1.BranchCycles, wantExtra)
	}
}

func TestFlopRatePeaksForParallelBlock(t *testing.T) {
	for _, name := range machine.Names() {
		cfg := machine.MustPreset(name)
		// Pure FP block with no dependencies and little issue overhead
		// should approach the machine peak.
		rate, err := FlopRate(cfg, Work{Flops: 100})
		if err != nil {
			t.Fatal(err)
		}
		peak := cfg.PeakGFlops() * 1e9
		if rate > peak*1.0001 {
			t.Errorf("%s: rate %g exceeds peak %g", name, rate, peak)
		}
		if rate < peak*0.5 {
			t.Errorf("%s: pure FP block rate %g far below peak %g", name, rate, peak)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Work{
		{Flops: -1},
		{IntOps: -1},
		{MemOps: -1},
		{Branches: -1},
		{Branches: 1, MispredictRate: 2},
		{FPChainLen: -1},
		{Flops: 2, FPChainLen: 3}, // chain longer than total FP work
	}
	cfg := machine.MustPreset(machine.ARLOpteron)
	for i, w := range bad {
		if _, err := Time(cfg, w); err == nil {
			t.Errorf("work %d accepted: %+v", i, w)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	cfg := machine.MustPreset(machine.ASCSC45) // 1 GHz
	res := Result{Cycles: 1e9}
	if got := res.Seconds(cfg); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("1e9 cycles at 1 GHz = %g s, want 1", got)
	}
}

// Property: time is monotone in every operation count.
func TestQuickMonotoneInWork(t *testing.T) {
	cfg := machine.MustPreset(machine.MHPCC690)
	f := func(flops, ints, mems, chain uint8) bool {
		w := Work{
			Flops:      float64(flops) + float64(chain), // keep chain <= flops
			IntOps:     float64(ints),
			MemOps:     float64(mems),
			FPChainLen: float64(chain),
		}
		r1, err := Time(cfg, w)
		if err != nil {
			return false
		}
		w2 := w
		w2.Flops += 1
		w2.IntOps += 1
		r2, err := Time(cfg, w2)
		if err != nil {
			return false
		}
		return r2.Cycles >= r1.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cycles are never below either individual bound.
func TestQuickCyclesDominateBounds(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLAltix)
	f := func(flops, chain, branches uint8) bool {
		fl := float64(flops) + 1
		ch := math.Min(float64(chain), fl)
		w := Work{Flops: fl, FPChainLen: ch, Branches: float64(branches), MispredictRate: 0.1}
		r, err := Time(cfg, w)
		if err != nil {
			return false
		}
		return r.Cycles >= r.ThroughputCycles && r.Cycles >= r.DependencyCycles &&
			r.Cycles >= r.BranchCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
