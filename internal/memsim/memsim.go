// Package memsim simulates a machine's memory hierarchy.
//
// A Simulator is built from a machine.Config and consumes a byte-address
// reference stream. It models:
//
//   - multi-level inclusive set-associative caches with LRU replacement
//     and write-allocate stores;
//   - a stride prefetcher trained on the miss stream (references whose
//     line fill the prefetcher predicted are "covered": they cost memory
//     bandwidth rather than exposed latency);
//   - a data TLB with CLOCK (second-chance) replacement;
//   - a timing model that prices each reference by the level that served
//     it — issue-limited at L1, bandwidth-limited when covered,
//     latency-limited (divided by the machine's memory-level parallelism)
//     when not — plus write-back traffic.
//
// This simulator is the "real machine" of the study: both the ground-truth
// application executor and the synthetic memory probes (STREAM, GUPS,
// MAPS) run on it, so observed times and probe rates are self-consistent,
// as they are on real hardware.
package memsim

import (
	"fmt"

	"hpcmetrics/internal/machine"
)

// cacheSet holds the lines of one set in MRU-first order.
type cacheSet struct {
	tags  []uint64
	dirty []bool
}

type cacheLevel struct {
	cfg      machine.CacheLevel
	sets     []cacheSet
	setMask  uint64
	ways     int
	lineShft uint
}

// Stats counts what happened to the reference stream.
type Stats struct {
	Refs   int64
	Stores int64
	// ServedBy[i] counts references served at cache level i; the final
	// element counts references served by main memory.
	ServedBy []int64
	// Covered[i] counts the ServedBy[i] references whose fill the
	// prefetcher had predicted (i >= 1; Covered[0] is always zero).
	Covered []int64
	// Writebacks counts dirty lines evicted from the outermost cache.
	Writebacks int64
	// TLBMisses counts data-TLB misses.
	TLBMisses int64
}

// MissRate returns the fraction of references served by main memory.
func (s Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.ServedBy[len(s.ServedBy)-1]) / float64(s.Refs)
}

// Simulator drives one processor's memory hierarchy.
type Simulator struct {
	cfg    *machine.Config
	levels []*cacheLevel
	pf     *prefetcher
	tlb    *tlb
	stats  Stats
}

// New builds a simulator for the machine. The config must validate.
func New(cfg *machine.Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("memsim: %w", err)
	}
	s := &Simulator{cfg: cfg}
	for _, lc := range cfg.Caches {
		lvl := &cacheLevel{cfg: lc, ways: lc.Assoc}
		if lvl.ways <= 0 {
			lvl.ways = int(lc.SizeBytes / lc.LineBytes) // fully associative
		}
		nSets := lc.SizeBytes / (lc.LineBytes * int64(lvl.ways))
		lvl.sets = make([]cacheSet, nSets)
		lvl.setMask = uint64(nSets - 1)
		for b := lc.LineBytes; b > 1; b >>= 1 {
			lvl.lineShft++
		}
		s.levels = append(s.levels, lvl)
	}
	s.pf = newPrefetcher(cfg.PrefetchStreams, cfg.PrefetchMaxStride)
	if cfg.TLBEntries > 0 {
		s.tlb = newTLB(cfg.TLBEntries, cfg.PageBytes)
	}
	s.stats = newStats(len(s.levels))
	return s, nil
}

func newStats(levels int) Stats {
	return Stats{
		ServedBy: make([]int64, levels+1),
		Covered:  make([]int64, levels+1),
	}
}

// Reset clears cache contents, prefetcher state, TLB, and statistics.
func (s *Simulator) Reset() {
	for _, lvl := range s.levels {
		for i := range lvl.sets {
			lvl.sets[i].tags = lvl.sets[i].tags[:0]
			lvl.sets[i].dirty = lvl.sets[i].dirty[:0]
		}
	}
	s.pf.reset()
	if s.tlb != nil {
		s.tlb.reset()
	}
	s.stats = newStats(len(s.levels))
}

// lookup probes one level; on hit the line moves to MRU position and dirty
// is ORed with store.
func (l *cacheLevel) lookup(addr uint64, store bool) bool {
	line := addr >> l.lineShft
	set := &l.sets[line&l.setMask]
	for i, tag := range set.tags {
		if tag == line {
			d := set.dirty[i] || store
			// Move to front (MRU).
			copy(set.tags[1:i+1], set.tags[:i])
			copy(set.dirty[1:i+1], set.dirty[:i])
			set.tags[0], set.dirty[0] = line, d
			return true
		}
	}
	return false
}

// fill inserts the line at MRU, evicting the LRU line if the set is full.
// It reports whether a dirty line was evicted.
func (l *cacheLevel) fill(addr uint64, store bool) (evictedDirty bool) {
	line := addr >> l.lineShft
	set := &l.sets[line&l.setMask]
	if len(set.tags) >= l.ways {
		last := len(set.tags) - 1
		evictedDirty = set.dirty[last]
		set.tags = set.tags[:last]
		set.dirty = set.dirty[:last]
	}
	set.tags = append(set.tags, 0)
	set.dirty = append(set.dirty, false)
	copy(set.tags[1:], set.tags)
	copy(set.dirty[1:], set.dirty)
	set.tags[0], set.dirty[0] = line, store
	return evictedDirty
}

// Access runs one reference through the hierarchy.
func (s *Simulator) Access(addr uint64, store bool) {
	s.stats.Refs++
	if store {
		s.stats.Stores++
	}
	if s.tlb != nil && !s.tlb.access(addr) {
		s.stats.TLBMisses++
	}

	served := len(s.levels) // memory unless a cache hits
	for i, lvl := range s.levels {
		if lvl.lookup(addr, store) {
			served = i
			break
		}
	}

	if served == 0 {
		s.stats.ServedBy[0]++
		return
	}

	// Miss in at least L1: train the prefetcher on the L1 miss-line stream
	// and ask whether this fill was predicted.
	covered := s.pf.observeMiss(addr >> s.levels[0].lineShft)
	s.stats.ServedBy[served]++
	if covered {
		s.stats.Covered[served]++
	}

	// Fill every level inside the serving one (inclusive hierarchy). When
	// memory served the reference this fills all cache levels.
	for i := served - 1; i >= 0; i-- {
		evictedDirty := s.levels[i].fill(addr, store)
		if evictedDirty && i == len(s.levels)-1 {
			s.stats.Writebacks++
		}
	}
}

// ResetStats clears the counters but keeps cache, prefetcher, and TLB
// state, so a warmed simulator can start a timed section.
func (s *Simulator) ResetStats() {
	s.stats = newStats(len(s.levels))
}

// Stats returns a copy of the accumulated counters.
func (s *Simulator) Stats() Stats {
	out := s.stats
	out.ServedBy = append([]int64(nil), s.stats.ServedBy...)
	out.Covered = append([]int64(nil), s.stats.Covered...)
	return out
}

// Machine returns the configuration the simulator was built from.
func (s *Simulator) Machine() *machine.Config { return s.cfg }
