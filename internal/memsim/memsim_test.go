package memsim

import (
	"testing"
	"testing/quick"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/machine"
)

func newSim(t *testing.T, name string) *Simulator {
	t.Helper()
	sim, err := New(machine.MustPreset(name))
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return sim
}

// tinyMachine returns a small, hand-checkable configuration: 2-line
// direct-mapped L1 over a 4-line L2.
func tinyMachine() *machine.Config {
	return &machine.Config{
		Name: "tiny", ClockGHz: 1, FPPerCycle: 1, FPLatencyCycles: 1,
		IssueWidth: 1, LoadStorePerCycle: 1, MaxOutstandingMisses: 1,
		Caches: []machine.CacheLevel{
			{Name: "L1", SizeBytes: 128, LineBytes: 64, Assoc: 1, LatencyCycles: 1, BandwidthBytesPerCycle: 8},
			{Name: "L2", SizeBytes: 256, LineBytes: 64, Assoc: 2, LatencyCycles: 4, BandwidthBytesPerCycle: 4},
		},
		MemLatencyNs: 100, MemBandwidthGBs: 1, PageBytes: 4096,
		MemLoadedFraction: 1, MemLoadedLatencyFactor: 1,
		CoresPerNode: 1, TotalProcs: 1,
		Net: machine.Network{LatencyUs: 1, BandwidthMBs: 100, NICsPerNode: 1},
	}
}

func TestColdMissThenHit(t *testing.T) {
	sim, err := New(tinyMachine())
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0, false) // cold: served by memory
	sim.Access(8, false) // same line: L1 hit
	st := sim.Stats()
	if st.ServedBy[0] != 1 {
		t.Errorf("L1 hits = %d, want 1", st.ServedBy[0])
	}
	if st.ServedBy[2] != 1 {
		t.Errorf("memory served = %d, want 1", st.ServedBy[2])
	}
}

func TestConflictEviction(t *testing.T) {
	// Direct-mapped 2-set L1 (64B lines): addresses 0 and 128 collide in
	// set 0; alternating between them always misses L1 but hits 2-way L2.
	sim, err := New(tinyMachine())
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0, false)
	sim.Access(128, false)
	sim.ResetStats()
	for i := 0; i < 10; i++ {
		sim.Access(0, false)
		sim.Access(128, false)
	}
	st := sim.Stats()
	if st.ServedBy[0] != 0 {
		t.Errorf("L1 hits = %d, want 0 (conflict)", st.ServedBy[0])
	}
	if st.ServedBy[1] != 20 {
		t.Errorf("L2 hits = %d, want 20", st.ServedBy[1])
	}
}

func TestLRUWithinSet(t *testing.T) {
	// L2 is 2-way with 2 sets; lines 0, 128, 256 all map to set 0.
	// Touch 0, 128, then 256 (evicts 0), then 0 again: must come from
	// memory, while 256 and 128 still hit.
	cfg := tinyMachine()
	cfg.Caches = cfg.Caches[1:] // L2 only for clarity
	cfg.Caches[0].Name = "L1"
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0, false)
	sim.Access(128, false)
	sim.Access(256, false) // evicts LRU line 0
	sim.ResetStats()
	sim.Access(128, false)
	sim.Access(256, false)
	st := sim.Stats()
	if st.ServedBy[0] != 2 {
		t.Fatalf("expected 128 and 256 resident, hits=%d", st.ServedBy[0])
	}
	sim.ResetStats()
	sim.Access(0, false)
	if st := sim.Stats(); st.ServedBy[1] != 1 {
		t.Fatalf("line 0 should have been evicted; memory served=%d", st.ServedBy[1])
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := tinyMachine()
	cfg.Caches = cfg.Caches[1:] // single level, 2 sets x 2 ways
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0, true)    // dirty line 0 in set 0
	sim.Access(128, false) // clean line in set 0
	sim.Access(256, false) // evicts LRU (line 0, dirty)
	st := sim.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestStoreHitMarksDirty(t *testing.T) {
	cfg := tinyMachine()
	cfg.Caches = cfg.Caches[1:]
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0, false) // clean fill
	sim.Access(0, true)  // store hit dirties it
	sim.Access(128, false)
	sim.Access(256, false) // evict line 0
	if st := sim.Stats(); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (store hit must dirty line)", st.Writebacks)
	}
}

func TestUnitStrideMostlyHits(t *testing.T) {
	sim := newSim(t, machine.ARLOpteron)
	spec := access.StreamSpec{WorkingSetBytes: 32 << 20, Mix: access.Mix{Unit: 1}, Seed: 1}
	res, err := sim.RunStream(spec, 100000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// 64B lines, 8B elements: 7/8 of unit-stride references hit L1.
	l1Frac := float64(res.Stats.ServedBy[0]) / float64(res.Refs)
	if l1Frac < 0.8 {
		t.Fatalf("unit stride L1 hit fraction = %g, want > 0.8", l1Frac)
	}
}

func TestUnitStrideMissesAreCovered(t *testing.T) {
	sim := newSim(t, machine.ARLOpteron)
	spec := access.StreamSpec{WorkingSetBytes: 64 << 20, Mix: access.Mix{Unit: 1}, Seed: 1}
	res, err := sim.RunStream(spec, 200000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Stats.ServedBy[len(res.Stats.ServedBy)-1]
	cov := res.Stats.Covered[len(res.Stats.Covered)-1]
	if mem == 0 {
		t.Fatal("expected memory traffic for 64MB working set")
	}
	if frac := float64(cov) / float64(mem); frac < 0.9 {
		t.Fatalf("prefetch coverage = %g, want > 0.9 for unit stride", frac)
	}
}

func TestRandomMissesAreNotCovered(t *testing.T) {
	sim := newSim(t, machine.ARLOpteron)
	spec := access.StreamSpec{WorkingSetBytes: 256 << 20, Mix: access.Mix{Random: 1}, Seed: 1}
	res, err := sim.RunStream(spec, 100000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Stats.ServedBy[len(res.Stats.ServedBy)-1]
	cov := res.Stats.Covered[len(res.Stats.Covered)-1]
	if mem < 50000 {
		t.Fatalf("random over 256MB should mostly miss; memory served = %d", mem)
	}
	if frac := float64(cov) / float64(mem); frac > 0.05 {
		t.Fatalf("prefetch coverage = %g for random stream, want ~0", frac)
	}
}

func TestSmallWorkingSetStaysInCache(t *testing.T) {
	sim := newSim(t, machine.NAVO655)
	spec := access.StreamSpec{WorkingSetBytes: 16 << 10, Mix: access.Mix{Unit: 1}, Seed: 1}
	res, err := sim.RunStream(spec, 100000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MissRate() > 0.01 {
		t.Fatalf("16KB working set miss rate = %g, want ~0", res.Stats.MissRate())
	}
}

func TestStreamFasterThanRandom(t *testing.T) {
	for _, name := range machine.Names() {
		cfg := machine.MustPreset(name)
		const ws = 128 << 20
		unit, err := SimulateStream(cfg, access.StreamSpec{WorkingSetBytes: ws, Mix: access.Mix{Unit: 1}, Seed: 1}, 100000, TimingOpts{})
		if err != nil {
			t.Fatal(err)
		}
		random, err := SimulateStream(cfg, access.StreamSpec{WorkingSetBytes: ws, Mix: access.Mix{Random: 1}, Seed: 1}, 100000, TimingOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if unit.BytesPerSec <= random.BytesPerSec {
			t.Errorf("%s: unit stride %.3g B/s not faster than random %.3g B/s",
				name, unit.BytesPerSec, random.BytesPerSec)
		}
	}
}

func TestCacheResidentFasterThanMemory(t *testing.T) {
	for _, name := range []string{machine.NAVO655, machine.ARLAltix, machine.ARLOpteron} {
		cfg := machine.MustPreset(name)
		small, err := SimulateStream(cfg, access.StreamSpec{WorkingSetBytes: 8 << 10, Mix: access.Mix{Unit: 1}, Seed: 1}, 100000, TimingOpts{})
		if err != nil {
			t.Fatal(err)
		}
		big, err := SimulateStream(cfg, access.StreamSpec{WorkingSetBytes: 256 << 20, Mix: access.Mix{Unit: 1}, Seed: 1}, 100000, TimingOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if small.BytesPerSec <= big.BytesPerSec {
			t.Errorf("%s: L1-resident %.3g B/s not faster than memory %.3g B/s",
				name, small.BytesPerSec, big.BytesPerSec)
		}
	}
}

func TestMLPCapSlowsRandomAccess(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLOpteron)
	spec := access.StreamSpec{WorkingSetBytes: 256 << 20, Mix: access.Mix{Random: 1}, Seed: 1}
	free, err := SimulateStream(cfg, spec, 50000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := SimulateStream(cfg, spec, 50000, TimingOpts{MLPCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Seconds <= free.Seconds {
		t.Fatalf("MLP cap did not slow random access: %g vs %g", capped.Seconds, free.Seconds)
	}
}

func TestTLBMissesOnHugeRandom(t *testing.T) {
	sim := newSim(t, machine.ARLXeon) // 64-entry TLB, 4K pages: 256KB reach
	spec := access.StreamSpec{WorkingSetBytes: 512 << 20, Mix: access.Mix{Random: 1}, Seed: 1}
	res, err := sim.RunStream(spec, 50000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(res.Stats.TLBMisses) / float64(res.Refs); frac < 0.5 {
		t.Fatalf("TLB miss fraction = %g over 512MB random, want > 0.5", frac)
	}
}

func TestResetClearsEverything(t *testing.T) {
	sim := newSim(t, machine.ARLOpteron)
	sim.Access(0, true)
	sim.Access(64, false)
	sim.Reset()
	st := sim.Stats()
	if st.Refs != 0 || st.Stores != 0 {
		t.Fatal("Reset left counters")
	}
	sim.Access(0, false)
	if st := sim.Stats(); st.ServedBy[len(st.ServedBy)-1] != 1 {
		t.Fatal("Reset left cache contents (expected cold miss)")
	}
}

func TestTimingPositive(t *testing.T) {
	sim := newSim(t, machine.MHPCCPower3)
	spec := access.StreamSpec{WorkingSetBytes: 1 << 20, Mix: access.Mix{Unit: 0.8, Random: 0.2}, Seed: 2}
	res, err := sim.RunStream(spec, 20000, TimingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 || res.BytesPerSec <= 0 {
		t.Fatalf("non-positive timing: %+v", res)
	}
}

// Property: references are conserved across the serving levels.
func TestQuickServedConservation(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655)
	f := func(wsKB uint16, seed uint16, mixSel uint8) bool {
		ws := int64(wsKB)%8192*1024 + 1024
		mixes := []access.Mix{
			{Unit: 1}, {Random: 1}, {Short: 1},
			{Unit: 0.5, Short: 0.25, Random: 0.25},
		}
		spec := access.StreamSpec{
			WorkingSetBytes: ws,
			Mix:             mixes[int(mixSel)%len(mixes)],
			Seed:            uint64(seed),
		}
		sim, err := New(cfg)
		if err != nil {
			return false
		}
		const n = 3000
		res, err := sim.RunStream(spec, n, TimingOpts{})
		if err != nil {
			return false
		}
		var sum int64
		for i, served := range res.Stats.ServedBy {
			if served < 0 || res.Stats.Covered[i] > served {
				return false
			}
			sum += served
		}
		return sum == n && res.Stats.Refs == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: growing every cache level never increases the memory-served
// count for the same stream (inclusion/monotonicity).
func TestQuickBiggerCacheNoWorse(t *testing.T) {
	f := func(wsKB uint16, seed uint16) bool {
		ws := int64(wsKB)%4096*1024 + 4096
		spec := access.StreamSpec{
			WorkingSetBytes: ws,
			Mix:             access.Mix{Unit: 0.6, Random: 0.4},
			Seed:            uint64(seed),
		}
		small := machine.MustPreset(machine.ARLOpteron)
		big := small.Clone()
		for i := range big.Caches {
			big.Caches[i].SizeBytes *= 4
		}
		run := func(cfg *machine.Config) (int64, bool) {
			sim, err := New(cfg)
			if err != nil {
				return 0, false
			}
			res, err := sim.RunStream(spec, 2000, TimingOpts{})
			if err != nil {
				return 0, false
			}
			return res.Stats.ServedBy[len(res.Stats.ServedBy)-1], true
		}
		memSmall, ok1 := run(small)
		memBig, ok2 := run(big)
		return ok1 && ok2 && memBig <= memSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsInvalidMachine(t *testing.T) {
	cfg := tinyMachine()
	cfg.ClockGHz = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid machine")
	}
}
