package memsim

import (
	"hpcmetrics/internal/access"
	"hpcmetrics/internal/machine"
)

// TimingOpts adjusts how raw counters are priced.
type TimingOpts struct {
	// MLPCap, when positive, caps the memory-level parallelism used to
	// overlap uncovered miss latency. Dependent access chains (pointer
	// chasing, recurrences through memory) cannot issue misses in
	// parallel; the ENHANCED MAPS probe and the ground-truth executor use
	// this to price such blocks. Zero means "machine limit".
	MLPCap float64
}

// Timing is the priced outcome of a simulated reference stream.
type Timing struct {
	Refs    int64
	Cycles  float64
	Seconds float64
	// BytesFromMemory is demand + write-back traffic at the memory bus.
	BytesFromMemory int64
	// BytesPerSec is the achieved data rate: useful payload
	// (Refs × element size) over elapsed time. This is what STREAM-style
	// probes report.
	BytesPerSec float64
	Stats       Stats
}

// CyclesPerRef returns average cycles per reference.
func (t Timing) CyclesPerRef() float64 {
	if t.Refs == 0 {
		return 0
	}
	return t.Cycles / float64(t.Refs)
}

// Timing prices the accumulated statistics under the machine's parameters.
//
// The model, per reference class (see package comment):
//
//	issue        every reference pays L1 issue/datapath throughput;
//	cache hit    served at level i>0: covered fills pay line/bandwidth,
//	             uncovered pay latency (MLP-overlapped);
//	memory       covered fills pay line/bandwidth, uncovered pay full
//	             memory latency divided by MLP; both are floored by the
//	             bus bandwidth of the bytes actually moved;
//	TLB          each miss pays the page-walk penalty, MLP-overlapped;
//	write-backs  pay memory bus bandwidth.
func (s *Simulator) Timing(opts TimingOpts) Timing {
	cfg := s.cfg
	st := s.Stats()
	nLevels := len(s.levels)

	mlp := cfg.MaxOutstandingMisses
	if opts.MLPCap > 0 && opts.MLPCap < mlp {
		mlp = opts.MLPCap
	}

	l1 := &s.levels[0].cfg
	issuePerRef := 1.0 / cfg.LoadStorePerCycle
	if dp := float64(access.ElemBytes) / l1.BandwidthBytesPerCycle; dp > issuePerRef {
		issuePerRef = dp
	}
	cycles := float64(st.Refs) * issuePerRef

	memBWBytesPerCycle := cfg.MemBandwidthGBs / cfg.ClockGHz // (GB/s)/(Gcyc/s)
	memLatCycles := cfg.MemLatencyNs * cfg.ClockGHz

	// Cache levels 1..n-1: filled from level i's own array.
	for i := 1; i < nLevels; i++ {
		lvl := &s.levels[i].cfg
		innerLine := float64(s.levels[i-1].cfg.LineBytes)
		covered := float64(st.Covered[i])
		uncovered := float64(st.ServedBy[i]) - covered
		cycles += covered * (innerLine / lvl.BandwidthBytesPerCycle)
		cycles += uncovered * (lvl.LatencyCycles / mlp)
	}

	// Memory-served references. Streaming (covered) fills move the
	// outermost cache's full line; demand (uncovered) fills and
	// write-backs move only the innermost line — outer caches are
	// sectored, and critical-word-first delivery means a random miss does
	// not pay for the whole outer line on the bus.
	llcLine := float64(s.levels[nLevels-1].cfg.LineBytes)
	// Demand fills deliver the critical 64-byte sector first; wide-line
	// machines do not pay their whole line on the bus per random miss.
	demandLine := float64(s.levels[0].cfg.LineBytes)
	if demandLine > 64 {
		demandLine = 64
	}
	memServed := st.ServedBy[nLevels]
	coveredMem := float64(st.Covered[nLevels])
	uncoveredMem := float64(memServed) - coveredMem

	covCycles := coveredMem * (llcLine / memBWBytesPerCycle)
	uncovLat := uncoveredMem * (memLatCycles / mlp)
	uncovBW := uncoveredMem * (demandLine / memBWBytesPerCycle)
	if uncovBW > uncovLat {
		uncovLat = uncovBW // latency model cannot beat the bus
	}
	cycles += covCycles + uncovLat

	// Write-backs consume bus bandwidth at demand granularity; the memory
	// controller's write buffering overlaps roughly half of that traffic
	// with demand fetches.
	cycles += 0.5 * float64(st.Writebacks) * (demandLine / memBWBytesPerCycle)

	// TLB page walks.
	if st.TLBMisses > 0 {
		cycles += float64(st.TLBMisses) * (cfg.TLBMissPenaltyNs * cfg.ClockGHz) / mlp
	}

	seconds := cycles / (cfg.ClockGHz * 1e9)
	bytesFromMem := int64(coveredMem*llcLine + (uncoveredMem+float64(st.Writebacks))*demandLine)
	out := Timing{
		Refs:            st.Refs,
		Cycles:          cycles,
		Seconds:         seconds,
		BytesFromMemory: bytesFromMem,
		Stats:           st,
	}
	if seconds > 0 {
		out.BytesPerSec = float64(st.Refs*access.ElemBytes) / seconds
	}
	return out
}

// RunStream drives n references from the spec through a fresh pass of the
// simulator (without resetting existing state) and returns the priced
// result for everything accumulated so far.
func (s *Simulator) RunStream(spec access.StreamSpec, n int, opts TimingOpts) (Timing, error) {
	stream, err := access.NewStream(spec)
	if err != nil {
		return Timing{}, err
	}
	for i := 0; i < n; i++ {
		ref := stream.Next()
		s.Access(ref.Addr, ref.Store)
	}
	return s.Timing(opts), nil
}

// SimulateStream is the one-shot convenience: fresh simulator, a warm-up
// quarter of the stream to reach steady state (discarded from the
// statistics, as in the real probes' untimed first pass), then n priced
// references.
func SimulateStream(cfg *machine.Config, spec access.StreamSpec, n int, opts TimingOpts) (Timing, error) {
	sim, err := New(cfg)
	if err != nil {
		return Timing{}, err
	}
	stream, err := access.NewStream(spec)
	if err != nil {
		return Timing{}, err
	}
	for i := 0; i < n/4; i++ {
		ref := stream.Next()
		sim.Access(ref.Addr, ref.Store)
	}
	sim.ResetStats()
	for i := 0; i < n; i++ {
		ref := stream.Next()
		sim.Access(ref.Addr, ref.Store)
	}
	return sim.Timing(opts), nil
}
