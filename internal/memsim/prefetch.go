package memsim

import "math/bits"

// prefetcher models a hardware stride prefetcher trained on the L1 miss
// stream, at line granularity. Each tracked stream remembers the last miss
// line and the stride between its last two misses. A miss that lands where
// a confident stream predicted is "covered": the fill was in flight before
// the demand reference, so the reference pays bandwidth, not latency.
type prefetcher struct {
	streams   []pfStream
	maxStride int64
	clock     uint64
}

type pfStream struct {
	lastLine   uint64
	stride     int64
	confidence int
	lastUsed   uint64
	valid      bool
}

// newPrefetcher returns a prefetcher with n stream slots; n == 0 yields a
// prefetcher that never covers (machines without hardware prefetch).
func newPrefetcher(n int, maxStride int64) *prefetcher {
	if maxStride < 1 {
		maxStride = 1
	}
	return &prefetcher{streams: make([]pfStream, n), maxStride: maxStride}
}

func (p *prefetcher) reset() {
	for i := range p.streams {
		p.streams[i] = pfStream{}
	}
	p.clock = 0
}

// observeMiss trains on one miss line and reports whether the miss was
// covered by an existing confident stream.
func (p *prefetcher) observeMiss(line uint64) bool {
	if len(p.streams) == 0 {
		return false
	}
	p.clock++

	// Match: a stream whose last line is within maxStride lines.
	for i := range p.streams {
		st := &p.streams[i]
		if !st.valid {
			continue
		}
		delta := int64(line) - int64(st.lastLine)
		if delta == 0 {
			st.lastUsed = p.clock
			return st.confidence >= 1 // re-miss on a tracked line: in flight
		}
		mag := delta
		if mag < 0 {
			mag = -mag
		}
		if mag > p.maxStride {
			continue
		}
		covered := st.confidence >= 1 && delta == st.stride
		if delta == st.stride {
			st.confidence++
		} else {
			st.stride = delta
			st.confidence = 0
		}
		st.lastLine = line
		st.lastUsed = p.clock
		return covered
	}

	// No match: claim the LRU slot for a potential new stream.
	lru, lruUsed := 0, ^uint64(0)
	for i := range p.streams {
		if !p.streams[i].valid {
			lru = i
			break
		}
		if p.streams[i].lastUsed < lruUsed {
			lru, lruUsed = i, p.streams[i].lastUsed
		}
	}
	p.streams[lru] = pfStream{lastLine: line, lastUsed: p.clock, valid: true}
	return false
}

// tlb models a data TLB as a set-associative translation cache (4-way,
// LRU within the set), which matches real D-TLB organizations and keeps
// the lookup a short array scan. Capacity is rounded up to the nearest
// 4-way power-of-two organization.
type tlb struct {
	sets     [][tlbWays]uint64 // page tags, MRU first; emptyPage = invalid
	setMask  uint64
	pageShft uint
}

const (
	tlbWays   = 4
	emptyPage = ^uint64(0)
)

func newTLB(entries int, pageBytes int64) *tlb {
	// Smallest power of two with nSets*tlbWays >= entries.
	nSets := 1
	if need := (entries + tlbWays - 1) / tlbWays; need > 1 {
		nSets = 1 << bits.Len(uint(need-1))
	}
	t := &tlb{
		sets:    make([][tlbWays]uint64, nSets),
		setMask: uint64(nSets - 1),
	}
	for b := pageBytes; b > 1; b >>= 1 {
		t.pageShft++
	}
	t.reset()
	return t
}

func (t *tlb) reset() {
	for i := range t.sets {
		for w := range t.sets[i] {
			t.sets[i][w] = emptyPage
		}
	}
}

// access reports whether the page is resident, inserting it if not.
func (t *tlb) access(addr uint64) bool {
	page := addr >> t.pageShft
	set := &t.sets[page&t.setMask]
	for w := 0; w < tlbWays; w++ {
		if set[w] == page {
			// Move to MRU.
			copy(set[1:w+1], set[:w])
			set[0] = page
			return true
		}
	}
	// Miss: insert at MRU, evicting the LRU way.
	copy(set[1:], set[:tlbWays-1])
	set[0] = page
	return false
}
