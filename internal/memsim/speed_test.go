package memsim

import (
	"testing"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/machine"
)

func BenchmarkAccessUnit(b *testing.B) {
	sim, _ := New(machine.MustPreset(machine.MHPCC690))
	stream, _ := access.NewStream(access.StreamSpec{WorkingSetBytes: 32 << 20, Mix: access.Mix{Unit: 1}, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := stream.Next()
		sim.Access(ref.Addr, ref.Store)
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	sim, _ := New(machine.MustPreset(machine.MHPCC690))
	stream, _ := access.NewStream(access.StreamSpec{WorkingSetBytes: 256 << 20, Mix: access.Mix{Random: 1}, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := stream.Next()
		sim.Access(ref.Addr, ref.Store)
	}
}
