package machine

import (
	"fmt"
	"sort"
)

// Preset names for the systems of the SC'05 study (paper Tables 1, 2, and
// 5). BaseSystemName is the NAVO p690 the paper uses as the tracing and
// normalization base; the other ten are the prediction targets.
const (
	ERDCOrigin3800 = "ERDC_O3800"
	MHPCCPower3    = "MHPCC_P3"
	NAVOPower3     = "NAVO_P3"
	ASCSC45        = "ASC_SC45"
	MHPCC690       = "MHPCC_690_1.3"
	ARL690         = "ARL_690_1.7"
	ARLXeon        = "ARL_Xeon"
	ARLAltix       = "ARL_Altix"
	NAVO655        = "NAVO_655"
	ARLOpteron     = "ARL_Opteron"

	BaseSystemName = "NAVO_690"
)

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// power4 builds the shared POWER4/POWER4+ core description used by the
// p690 and p655 presets; callers override memory and network.
func power4(name string, clock float64) *Config {
	return &Config{
		Name:                          name,
		Vendor:                        "IBM",
		ClockGHz:                      clock,
		FPPerCycle:                    4, // two FMA pipes
		FPLatencyCycles:               6,
		IssueWidth:                    5,
		LoadStorePerCycle:             2,
		BranchMispredictPenaltyCycles: 12,
		MaxOutstandingMisses:          8,
		PrefetchStreams:               8,
		PrefetchMaxStride:             2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 * kb, LineBytes: 128, Assoc: 2, LatencyCycles: 4, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 1 * mb, LineBytes: 128, Assoc: 8, LatencyCycles: 12, BandwidthBytesPerCycle: 10},
			{Name: "L3", SizeBytes: 16 * mb, LineBytes: 512, Assoc: 8, LatencyCycles: 100, BandwidthBytesPerCycle: 4},
		},
		MemLatencyNs:      280,
		MemBandwidthGBs:   1.7,
		MemLoadedFraction: 0.66, MemLoadedLatencyFactor: 1.15,
		PageBytes:          4096,
		TLBEntries:         512,
		TLBMissPenaltyNs:   120,
		CoresPerNode:       32,
		TotalProcs:         1408,
		MemOverlapFraction: 0.70,
		Net: Network{
			LatencyUs: 18, BandwidthMBs: 350, OverheadUs: 3,
			NICsPerNode: 4, Topology: TopologyColony, ContentionBeta: 0.12,
		},
	}
}

// power3 builds the POWER3-II description shared by the two P3 presets.
func power3(name string, procs int) *Config {
	return &Config{
		Name:                          name,
		Vendor:                        "IBM",
		ClockGHz:                      0.375,
		FPPerCycle:                    4, // two FMA pipes
		FPLatencyCycles:               4,
		IssueWidth:                    4,
		LoadStorePerCycle:             2,
		BranchMispredictPenaltyCycles: 5,
		MaxOutstandingMisses:          4,
		PrefetchStreams:               4,
		PrefetchMaxStride:             1,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 64 * kb, LineBytes: 128, Assoc: 128, LatencyCycles: 2, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 8 * mb, LineBytes: 128, Assoc: 1, LatencyCycles: 14, BandwidthBytesPerCycle: 8},
		},
		MemLatencyNs:      360,
		MemBandwidthGBs:   0.65,
		MemLoadedFraction: 0.70, MemLoadedLatencyFactor: 1.15,
		PageBytes:          4096,
		TLBEntries:         256,
		TLBMissPenaltyNs:   110,
		CoresPerNode:       8,
		TotalProcs:         procs,
		MemOverlapFraction: 0.60,
		Net: Network{
			LatencyUs: 20, BandwidthMBs: 350, OverheadUs: 4,
			NICsPerNode: 1, Topology: TopologyColony, ContentionBeta: 0.12,
		},
	}
}

// buildPresets constructs the full preset table. Parameters approximate
// public specifications of the real systems (see DESIGN.md §2); what the
// study needs is their diversity of balance, which these preserve.
func buildPresets() map[string]*Config {
	m := map[string]*Config{}

	m[ERDCOrigin3800] = &Config{
		Name:                          ERDCOrigin3800,
		Vendor:                        "SGI",
		ClockGHz:                      0.4,
		FPPerCycle:                    2, // R14000: one FMA pipe
		FPLatencyCycles:               4,
		IssueWidth:                    4,
		LoadStorePerCycle:             1,
		BranchMispredictPenaltyCycles: 6,
		MaxOutstandingMisses:          4,
		PrefetchStreams:               2,
		PrefetchMaxStride:             1,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 * kb, LineBytes: 32, Assoc: 2, LatencyCycles: 2, BandwidthBytesPerCycle: 8},
			{Name: "L2", SizeBytes: 8 * mb, LineBytes: 128, Assoc: 2, LatencyCycles: 16, BandwidthBytesPerCycle: 3.5},
		},
		MemLatencyNs:      390,
		MemBandwidthGBs:   0.55,
		MemLoadedFraction: 0.66, MemLoadedLatencyFactor: 1.15,
		PageBytes:          16 * kb,
		TLBEntries:         64,
		TLBMissPenaltyNs:   180,
		CoresPerNode:       4,
		TotalProcs:         504,
		MemOverlapFraction: 0.60,
		Net: Network{
			LatencyUs: 4, BandwidthMBs: 220, OverheadUs: 1.5,
			NICsPerNode: 1, Topology: TopologyNUMALink, ContentionBeta: 0.15,
		},
	}

	m[MHPCCPower3] = power3(MHPCCPower3, 736)
	navoP3 := power3(NAVOPower3, 928)
	navoP3.MemBandwidthGBs = 0.68 // newer memory parts than the MHPCC system
	m[NAVOPower3] = navoP3

	m[ASCSC45] = &Config{
		Name:                          ASCSC45,
		Vendor:                        "HP",
		ClockGHz:                      1.0,
		FPPerCycle:                    2, // EV68: add + multiply pipes
		FPLatencyCycles:               4,
		IssueWidth:                    4,
		LoadStorePerCycle:             2,
		BranchMispredictPenaltyCycles: 7,
		MaxOutstandingMisses:          8,
		PrefetchStreams:               4,
		PrefetchMaxStride:             1,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 64 * kb, LineBytes: 64, Assoc: 2, LatencyCycles: 3, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 8 * mb, LineBytes: 64, Assoc: 1, LatencyCycles: 20, BandwidthBytesPerCycle: 8},
		},
		MemLatencyNs:      190,
		MemBandwidthGBs:   1.15,
		MemLoadedFraction: 0.80, MemLoadedLatencyFactor: 1.15,
		PageBytes:          8 * kb,
		TLBEntries:         128,
		TLBMissPenaltyNs:   100,
		CoresPerNode:       4,
		TotalProcs:         472,
		MemOverlapFraction: 0.80,
		Net: Network{
			LatencyUs: 5, BandwidthMBs: 280, OverheadUs: 1.5,
			NICsPerNode: 1, Topology: TopologyFatTree, ContentionBeta: 0.15,
		},
	}

	// The NAVO p690 base system: same POWER4 family as the p690/p655
	// targets but a distinct installation — Federation-upgraded switch,
	// different memory configuration (fewer active memory cards per LPAR,
	// hence lower sustained bandwidth and slightly longer latency), and
	// larger partitions.
	p690Base := power4(BaseSystemName, 1.3)
	p690Base.Net.LatencyUs = 9
	p690Base.Net.BandwidthMBs = 1200
	p690Base.MemBandwidthGBs = 1.45
	p690Base.MemLatencyNs = 310
	p690Base.MemLoadedFraction = 0.60
	p690Base.PrefetchStreams = 6
	m[BaseSystemName] = p690Base

	mhpcc690 := power4(MHPCC690, 1.3)
	mhpcc690.TotalProcs = 320
	m[MHPCC690] = mhpcc690

	arl690 := power4(ARL690, 1.7)
	arl690.MemBandwidthGBs = 2.1
	arl690.MemLatencyNs = 260
	arl690.TotalProcs = 128
	arl690.Net = Network{
		LatencyUs: 8, BandwidthMBs: 1400, OverheadUs: 2,
		NICsPerNode: 2, Topology: TopologyFatTree, ContentionBeta: 0.2,
	}
	m[ARL690] = arl690

	m[ARLXeon] = &Config{
		Name:                          ARLXeon,
		Vendor:                        "LNX",
		ClockGHz:                      3.06,
		FPPerCycle:                    2, // SSE2
		FPLatencyCycles:               5,
		IssueWidth:                    3,
		LoadStorePerCycle:             1,
		BranchMispredictPenaltyCycles: 20,
		MaxOutstandingMisses:          8,
		PrefetchStreams:               8,
		PrefetchMaxStride:             2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 8 * kb, LineBytes: 64, Assoc: 4, LatencyCycles: 2, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 512 * kb, LineBytes: 128, Assoc: 8, LatencyCycles: 18, BandwidthBytesPerCycle: 10},
		},
		MemLatencyNs:      230,
		MemBandwidthGBs:   1.05, // dual CPUs share one front-side bus
		MemLoadedFraction: 0.72, MemLoadedLatencyFactor: 1.15,
		PageBytes:          4096,
		TLBEntries:         64,
		TLBMissPenaltyNs:   190,
		CoresPerNode:       2,
		TotalProcs:         256,
		MemOverlapFraction: 0.70,
		Net: Network{
			LatencyUs: 9, BandwidthMBs: 240, OverheadUs: 2.5,
			NICsPerNode: 1, Topology: TopologyClos, ContentionBeta: 0.2,
		},
	}

	m[ARLAltix] = &Config{
		Name:                          ARLAltix,
		Vendor:                        "SGI",
		ClockGHz:                      1.5,
		FPPerCycle:                    4, // Itanium2: two FMA units
		FPLatencyCycles:               4,
		IssueWidth:                    6,
		LoadStorePerCycle:             4, // FP loads served by L2 at high width
		BranchMispredictPenaltyCycles: 6,
		MaxOutstandingMisses:          16,
		PrefetchStreams:               4, // compiler-directed prefetch, modeled as streams
		PrefetchMaxStride:             2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 16 * kb, LineBytes: 64, Assoc: 4, LatencyCycles: 1, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 256 * kb, LineBytes: 128, Assoc: 8, LatencyCycles: 6, BandwidthBytesPerCycle: 32},
			{Name: "L3", SizeBytes: 12 * mb, LineBytes: 128, Assoc: 12, LatencyCycles: 15, BandwidthBytesPerCycle: 16},
		},
		MemLatencyNs:      120,
		MemBandwidthGBs:   1.55,
		MemLoadedFraction: 0.70, MemLoadedLatencyFactor: 1.15,
		PageBytes:          16 * kb,
		TLBEntries:         512,
		TLBMissPenaltyNs:   130,
		CoresPerNode:       2,
		TotalProcs:         256,
		MemOverlapFraction: 0.50, // in-order core
		Net: Network{
			LatencyUs: 2, BandwidthMBs: 900, OverheadUs: 1,
			NICsPerNode: 1, Topology: TopologyNUMALink, ContentionBeta: 0.12,
		},
	}

	p655 := power4(NAVO655, 1.7)
	p655.Name = NAVO655
	p655.MemBandwidthGBs = 2.3
	p655.MemLatencyNs = 250
	p655.MemLoadedFraction = 0.74
	p655.MemLoadedLatencyFactor = 1.15
	p655.CoresPerNode = 8 // p655 nodes: fewer cores contending per memory complex
	p655.TotalProcs = 2832
	p655.Caches[0].BandwidthBytesPerCycle = 32 // p655's faster L1 datapath
	p655.Net = Network{
		LatencyUs: 7, BandwidthMBs: 1400, OverheadUs: 2,
		NICsPerNode: 2, Topology: TopologyFatTree, ContentionBeta: 0.2,
	}
	m[NAVO655] = p655

	m[ARLOpteron] = &Config{
		Name:                          ARLOpteron,
		Vendor:                        "IBM",
		ClockGHz:                      2.2,
		FPPerCycle:                    2, // K8: add + multiply pipes
		FPLatencyCycles:               4,
		IssueWidth:                    3,
		LoadStorePerCycle:             2,
		BranchMispredictPenaltyCycles: 11,
		MaxOutstandingMisses:          8,
		PrefetchStreams:               8,
		PrefetchMaxStride:             1,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 64 * kb, LineBytes: 64, Assoc: 2, LatencyCycles: 3, BandwidthBytesPerCycle: 16},
			{Name: "L2", SizeBytes: 1 * mb, LineBytes: 64, Assoc: 16, LatencyCycles: 13, BandwidthBytesPerCycle: 8},
		},
		MemLatencyNs:      125, // integrated memory controller
		MemBandwidthGBs:   3.4,
		MemLoadedFraction: 0.88, MemLoadedLatencyFactor: 1.12,
		PageBytes:          4096,
		TLBEntries:         512,
		TLBMissPenaltyNs:   95,
		CoresPerNode:       2,
		TotalProcs:         2304,
		MemOverlapFraction: 0.80,
		Net: Network{
			LatencyUs: 8, BandwidthMBs: 245, OverheadUs: 2.5,
			NICsPerNode: 1, Topology: TopologyClos, ContentionBeta: 0.2,
		},
	}

	return m
}

var presets = buildPresets()

// studyTargets is the paper's Table 5 row order.
var studyTargets = []string{
	ERDCOrigin3800, MHPCCPower3, NAVOPower3, ASCSC45, MHPCC690,
	ARL690, ARLXeon, ARLAltix, NAVO655, ARLOpteron,
}

// Preset returns a deep copy of the named machine configuration.
func Preset(name string) (*Config, error) {
	cfg, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown preset %q (have %v)", name, Names())
	}
	return cfg.Clone(), nil
}

// MustPreset is Preset for static names; it panics on unknown names.
// The panic is by documented design (and deliberately kept by the PR-1
// panic audit): callers pass the package's own exported name constants,
// so an unknown name is a compile-time-adjacent mistake, and the
// error-returning path for dynamic names is Preset.
func MustPreset(name string) *Config {
	cfg, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Names returns all preset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StudyTargets returns fresh copies of the ten prediction-target systems in
// the paper's Table 5 order.
func StudyTargets() []*Config {
	out := make([]*Config, len(studyTargets))
	for i, name := range studyTargets {
		out[i] = presets[name].Clone()
	}
	return out
}

// Base returns a fresh copy of the base (tracing/normalization) system, the
// NAVO p690.
func Base() *Config { return presets[BaseSystemName].Clone() }
