package machine

import (
	"strings"
	"testing"
)

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range Names() {
		cfg := MustPreset(name)
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("no_such_machine"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestMustPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPreset did not panic on unknown name")
		}
	}()
	MustPreset("bogus")
}

func TestStudyTargetsOrderAndCount(t *testing.T) {
	targets := StudyTargets()
	if len(targets) != 10 {
		t.Fatalf("expected 10 study targets, got %d", len(targets))
	}
	want := []string{
		ERDCOrigin3800, MHPCCPower3, NAVOPower3, ASCSC45, MHPCC690,
		ARL690, ARLXeon, ARLAltix, NAVO655, ARLOpteron,
	}
	for i, cfg := range targets {
		if cfg.Name != want[i] {
			t.Errorf("target %d = %s, want %s", i, cfg.Name, want[i])
		}
	}
}

func TestBaseIsNotATarget(t *testing.T) {
	base := Base()
	if base.Name != BaseSystemName {
		t.Fatalf("base name = %s", base.Name)
	}
	for _, cfg := range StudyTargets() {
		if cfg.Name == base.Name {
			t.Fatalf("base system %s appears among targets", base.Name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustPreset(ARLOpteron)
	b := a.Clone()
	b.Caches[0].SizeBytes = 1 << 30
	if a.Caches[0].SizeBytes == b.Caches[0].SizeBytes {
		t.Fatal("Clone shares cache slice")
	}
}

func TestPresetReturnsFreshCopy(t *testing.T) {
	a := MustPreset(ARLXeon)
	a.ClockGHz = 99
	b := MustPreset(ARLXeon)
	if b.ClockGHz == 99 {
		t.Fatal("Preset returned shared state")
	}
}

func TestPeakGFlops(t *testing.T) {
	p655 := MustPreset(NAVO655)
	if got, want := p655.PeakGFlops(), 6.8; got != want {
		t.Errorf("p655 peak = %g, want %g", got, want)
	}
}

func TestCycleNs(t *testing.T) {
	cfg := MustPreset(ASCSC45) // 1 GHz
	if got := cfg.CycleNs(); got != 1.0 {
		t.Errorf("1 GHz cycle = %g ns, want 1", got)
	}
}

func TestNodes(t *testing.T) {
	cfg := MustPreset(ARLXeon) // 256 procs, 2 cores/node
	if got := cfg.Nodes(); got != 128 {
		t.Errorf("nodes = %d, want 128", got)
	}
	cfg.TotalProcs = 257
	if got := cfg.Nodes(); got != 129 {
		t.Errorf("nodes (round up) = %d, want 129", got)
	}
}

func TestCacheSets(t *testing.T) {
	l := CacheLevel{SizeBytes: 64 * kb, LineBytes: 64, Assoc: 2}
	if got := l.Sets(); got != 512 {
		t.Errorf("sets = %d, want 512", got)
	}
	full := CacheLevel{SizeBytes: 64 * kb, LineBytes: 64, Assoc: 0}
	if got := full.Sets(); got != 1 {
		t.Errorf("fully associative sets = %d, want 1", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty name", func(c *Config) { c.Name = " " }},
		{"zero clock", func(c *Config) { c.ClockGHz = 0 }},
		{"zero fp", func(c *Config) { c.FPPerCycle = 0 }},
		{"zero fp latency", func(c *Config) { c.FPLatencyCycles = 0 }},
		{"zero issue", func(c *Config) { c.IssueWidth = 0 }},
		{"zero ls", func(c *Config) { c.LoadStorePerCycle = 0 }},
		{"zero mlp", func(c *Config) { c.MaxOutstandingMisses = 0 }},
		{"zero mem latency", func(c *Config) { c.MemLatencyNs = 0 }},
		{"zero mem bw", func(c *Config) { c.MemBandwidthGBs = 0 }},
		{"bad page", func(c *Config) { c.PageBytes = 3000 }},
		{"negative tlb", func(c *Config) { c.TLBEntries = -1 }},
		{"zero cores", func(c *Config) { c.CoresPerNode = 0 }},
		{"zero procs", func(c *Config) { c.TotalProcs = 0 }},
		{"bad overlap", func(c *Config) { c.MemOverlapFraction = 1.5 }},
		{"zero loaded fraction", func(c *Config) { c.MemLoadedFraction = 0 }},
		{"loaded fraction above 1", func(c *Config) { c.MemLoadedFraction = 1.2 }},
		{"loaded latency below 1", func(c *Config) { c.MemLoadedLatencyFactor = 0.8 }},
		{"no caches", func(c *Config) { c.Caches = nil }},
		{"shrinking caches", func(c *Config) { c.Caches[1].SizeBytes = c.Caches[0].SizeBytes }},
		{"bad line", func(c *Config) { c.Caches[0].LineBytes = 48 }},
		{"bad net latency", func(c *Config) { c.Net.LatencyUs = 0 }},
		{"bad net bw", func(c *Config) { c.Net.BandwidthMBs = -1 }},
		{"no nics", func(c *Config) { c.Net.NICsPerNode = 0 }},
		{"bad beta", func(c *Config) { c.Net.ContentionBeta = 2 }},
	}
	for _, tc := range mutations {
		cfg := MustPreset(ARLOpteron)
		tc.mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken config", tc.name)
		}
	}
}

func TestTopologyString(t *testing.T) {
	cases := map[Topology]string{
		TopologyFatTree:  "fat-tree",
		TopologyNUMALink: "numalink",
		TopologyClos:     "clos",
		TopologyColony:   "colony",
		Topology(42):     "topology(42)",
	}
	for topo, want := range cases {
		if got := topo.String(); got != want {
			t.Errorf("Topology(%d).String() = %q, want %q", int(topo), got, want)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := MustPreset(ARLAltix).String()
	if !strings.Contains(s, ARLAltix) || !strings.Contains(s, "numalink") {
		t.Errorf("String() = %q, missing name or topology", s)
	}
}

func TestLoadedView(t *testing.T) {
	cfg := MustPreset(ARLXeon)
	loaded := cfg.Loaded()
	if loaded.MemBandwidthGBs >= cfg.MemBandwidthGBs {
		t.Fatal("loaded bandwidth not reduced")
	}
	if loaded.MemLatencyNs <= cfg.MemLatencyNs {
		t.Fatal("loaded latency not increased")
	}
	// Applying the loaded view twice must be a no-op.
	twice := loaded.Loaded()
	if twice.MemBandwidthGBs != loaded.MemBandwidthGBs || twice.MemLatencyNs != loaded.MemLatencyNs {
		t.Fatal("Loaded not idempotent")
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded view invalid: %v", err)
	}
}

func TestPresetDiversity(t *testing.T) {
	// The study depends on the targets spanning different balances; guard
	// that the flop:bandwidth ratio varies by at least 4x across targets.
	minRatio, maxRatio := 1e300, 0.0
	for _, cfg := range StudyTargets() {
		r := cfg.PeakGFlops() / cfg.MemBandwidthGBs
		if r < minRatio {
			minRatio = r
		}
		if r > maxRatio {
			maxRatio = r
		}
	}
	if maxRatio/minRatio < 4 {
		t.Errorf("machine balance spread %.2fx too small for the study", maxRatio/minRatio)
	}
}
