// Package machine describes the hardware systems under study.
//
// A Config captures everything the simulators need to stand in for one of
// the paper's HPC systems: processor clock and issue resources, the cache
// hierarchy, main-memory latency and bandwidth, and the interconnect.
// The package also ships presets for the eleven systems of the SC'05 study
// (ten prediction targets plus the NAVO p690 base system).
//
// Unit conventions: clock in GHz, latencies in nanoseconds or cycles as
// named, bandwidths in bytes/second unless the field name says otherwise,
// sizes in bytes.
package machine

import (
	"errors"
	"fmt"
	"strings"
)

// CacheLevel describes one level of a set-associative cache.
type CacheLevel struct {
	Name          string  // "L1", "L2", "L3"
	SizeBytes     int64   // total capacity
	LineBytes     int64   // cache line size
	Assoc         int     // ways; Assoc == 0 means fully associative
	LatencyCycles float64 // load-to-use latency on a hit
	// BandwidthBytesPerCycle bounds sustained transfer from this level to
	// the core when streaming (hits at this level).
	BandwidthBytesPerCycle float64
}

// Sets returns the number of sets in the cache.
func (c CacheLevel) Sets() int64 {
	ways := int64(c.Assoc)
	if ways <= 0 { // fully associative
		return 1
	}
	return c.SizeBytes / (c.LineBytes * ways)
}

// Validate reports structural problems in the level description.
func (c CacheLevel) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache %s: non-positive size %d", c.Name, c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a positive power of two", c.Name, c.LineBytes)
	case c.SizeBytes%c.LineBytes != 0:
		return fmt.Errorf("cache %s: size %d not a multiple of line %d", c.Name, c.SizeBytes, c.LineBytes)
	case c.Assoc < 0:
		return fmt.Errorf("cache %s: negative associativity", c.Name)
	case c.Assoc > 0 && c.SizeBytes%(c.LineBytes*int64(c.Assoc)) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	case c.LatencyCycles <= 0:
		return fmt.Errorf("cache %s: non-positive latency", c.Name)
	case c.BandwidthBytesPerCycle <= 0:
		return fmt.Errorf("cache %s: non-positive bandwidth", c.Name)
	}
	if c.Assoc > 0 {
		sets := c.Sets()
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
		}
	}
	return nil
}

// Topology identifies the broad interconnect family, used by netsim to pick
// a contention model.
type Topology int

const (
	// TopologyFatTree approximates Quadrics/Federation-class switched fabrics.
	TopologyFatTree Topology = iota
	// TopologyNUMALink approximates SGI's low-latency directory fabrics.
	TopologyNUMALink
	// TopologyClos approximates Myrinet Clos networks.
	TopologyClos
	// TopologyColony approximates the IBM SP Colony switch.
	TopologyColony
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case TopologyFatTree:
		return "fat-tree"
	case TopologyNUMALink:
		return "numalink"
	case TopologyClos:
		return "clos"
	case TopologyColony:
		return "colony"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// Network describes the interconnect as the LogGP-style parameters netsim
// consumes, plus node-level NIC sharing information.
type Network struct {
	LatencyUs      float64 // end-to-end small-message latency, microseconds
	BandwidthMBs   float64 // per-link large-message bandwidth, MB/s (1e6)
	OverheadUs     float64 // per-message CPU send/recv overhead, microseconds
	NICsPerNode    int     // independent injection ports per node
	Topology       Topology
	ContentionBeta float64 // extra serialization per contending stream [0,1]
}

// Validate reports structural problems in the network description.
func (n Network) Validate() error {
	switch {
	case n.LatencyUs <= 0:
		return errors.New("network: non-positive latency")
	case n.BandwidthMBs <= 0:
		return errors.New("network: non-positive bandwidth")
	case n.OverheadUs < 0:
		return errors.New("network: negative overhead")
	case n.NICsPerNode <= 0:
		return errors.New("network: need at least one NIC per node")
	case n.ContentionBeta < 0 || n.ContentionBeta > 1:
		return errors.New("network: contention beta outside [0,1]")
	}
	return nil
}

// Config is a complete machine description.
type Config struct {
	Name     string
	Vendor   string
	ClockGHz float64

	// FPPerCycle is the peak floating-point results per cycle per processor
	// (e.g. 4 for POWER4's two FMA units).
	FPPerCycle float64
	// FPLatencyCycles is the latency of a dependent FP operation, which
	// bounds dependency-chain-limited loops.
	FPLatencyCycles float64
	// IssueWidth bounds total instructions issued per cycle.
	IssueWidth float64
	// LoadStorePerCycle bounds memory instructions issued per cycle.
	LoadStorePerCycle float64
	// BranchMispredictPenaltyCycles is charged per mispredicted branch.
	BranchMispredictPenaltyCycles float64
	// MaxOutstandingMisses is the memory-level parallelism the core can
	// sustain (MSHRs); it converts miss latency into random-access
	// throughput.
	MaxOutstandingMisses float64
	// PrefetchStreams is how many concurrent strided streams the hardware
	// prefetcher tracks; 0 disables prefetching.
	PrefetchStreams int
	// PrefetchMaxStride is the largest element stride (in cache lines) the
	// prefetcher recognizes.
	PrefetchMaxStride int64

	Caches []CacheLevel

	MemLatencyNs    float64 // load-to-use main memory latency, idle node
	MemBandwidthGBs float64 // per-processor sustainable bandwidth, GB/s (1e9), idle node
	// MemLoadedFraction is the fraction of the idle per-processor memory
	// bandwidth that survives when every core of the node is active.
	// Single-CPU probes (STREAM, GUPS, MAPS) see idle-node numbers;
	// production runs pack the node and see the loaded ones. The gap is
	// machine-specific: an integrated memory controller barely degrades,
	// a 32-way shared fabric degrades a lot.
	MemLoadedFraction float64
	// MemLoadedLatencyFactor scales memory latency under full-node load.
	MemLoadedLatencyFactor float64
	PageBytes              int64   // virtual memory page size
	TLBEntries             int     // data TLB entries; 0 disables TLB modeling
	TLBMissPenaltyNs       float64 // page-walk cost
	CoresPerNode           int
	TotalProcs             int
	MemOverlapFraction     float64 // fraction of FP work that can hide under memory time [0,1]

	Net Network
}

// CycleNs returns the duration of one processor cycle in nanoseconds.
func (c *Config) CycleNs() float64 { return 1.0 / c.ClockGHz }

// PeakGFlops returns the peak floating-point rate in GFLOP/s per processor.
func (c *Config) PeakGFlops() float64 { return c.ClockGHz * c.FPPerCycle }

// Validate reports structural problems in the configuration.
func (c *Config) Validate() error {
	switch {
	case strings.TrimSpace(c.Name) == "":
		return errors.New("machine: empty name")
	case c.ClockGHz <= 0:
		return fmt.Errorf("machine %s: non-positive clock", c.Name)
	case c.FPPerCycle <= 0:
		return fmt.Errorf("machine %s: non-positive FP width", c.Name)
	case c.FPLatencyCycles <= 0:
		return fmt.Errorf("machine %s: non-positive FP latency", c.Name)
	case c.IssueWidth <= 0:
		return fmt.Errorf("machine %s: non-positive issue width", c.Name)
	case c.LoadStorePerCycle <= 0:
		return fmt.Errorf("machine %s: non-positive load/store width", c.Name)
	case c.MaxOutstandingMisses <= 0:
		return fmt.Errorf("machine %s: non-positive MLP", c.Name)
	case c.MemLatencyNs <= 0:
		return fmt.Errorf("machine %s: non-positive memory latency", c.Name)
	case c.MemBandwidthGBs <= 0:
		return fmt.Errorf("machine %s: non-positive memory bandwidth", c.Name)
	case c.MemLoadedFraction <= 0 || c.MemLoadedFraction > 1:
		return fmt.Errorf("machine %s: loaded bandwidth fraction %g outside (0,1]", c.Name, c.MemLoadedFraction)
	case c.MemLoadedLatencyFactor < 1:
		return fmt.Errorf("machine %s: loaded latency factor %g below 1", c.Name, c.MemLoadedLatencyFactor)
	case c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return fmt.Errorf("machine %s: page size %d not a positive power of two", c.Name, c.PageBytes)
	case c.TLBEntries < 0:
		return fmt.Errorf("machine %s: negative TLB entries", c.Name)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("machine %s: non-positive cores per node", c.Name)
	case c.TotalProcs <= 0:
		return fmt.Errorf("machine %s: non-positive processor count", c.Name)
	case c.MemOverlapFraction < 0 || c.MemOverlapFraction > 1:
		return fmt.Errorf("machine %s: overlap fraction outside [0,1]", c.Name)
	case len(c.Caches) == 0:
		return fmt.Errorf("machine %s: no cache levels", c.Name)
	}
	var prev int64
	for i, lvl := range c.Caches {
		if err := lvl.Validate(); err != nil {
			return fmt.Errorf("machine %s: %w", c.Name, err)
		}
		if lvl.SizeBytes <= prev {
			return fmt.Errorf("machine %s: cache level %d (%s) not larger than inner level", c.Name, i, lvl.Name)
		}
		prev = lvl.SizeBytes
	}
	if err := c.Net.Validate(); err != nil {
		return fmt.Errorf("machine %s: %w", c.Name, err)
	}
	return nil
}

// Nodes returns the number of nodes implied by TotalProcs and CoresPerNode,
// rounded up.
func (c *Config) Nodes() int {
	return (c.TotalProcs + c.CoresPerNode - 1) / c.CoresPerNode
}

// Clone returns a deep copy of the configuration, so presets can be
// modified without aliasing.
func (c *Config) Clone() *Config {
	out := *c
	out.Caches = append([]CacheLevel(nil), c.Caches...)
	return &out
}

// Loaded returns the machine as a fully packed production run sees it:
// per-processor memory bandwidth reduced to the loaded fraction and
// latency stretched by the loaded factor. The loaded view keeps fraction 1
// and factor 1 so applying it twice is harmless.
func (c *Config) Loaded() *Config {
	out := c.Clone()
	out.MemBandwidthGBs *= c.MemLoadedFraction
	out.MemLatencyNs *= c.MemLoadedLatencyFactor
	out.MemLoadedFraction = 1
	out.MemLoadedLatencyFactor = 1
	return out
}

// String returns a one-line summary of the machine.
func (c *Config) String() string {
	return fmt.Sprintf("%s (%.3g GHz, %.3g GF/s peak, %d caches, %s)",
		c.Name, c.ClockGHz, c.PeakGFlops(), len(c.Caches), c.Net.Topology)
}
