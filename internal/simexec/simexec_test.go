package simexec

import (
	"errors"
	"testing"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/workload"
)

func testApp(procs int) *workload.App {
	return &workload.App{
		Name: "exec", Case: "test", Procs: procs, RuntimeImbalance: 1.1,
		Blocks: []workload.Block{
			{
				Name: "compute",
				Work: cpusim.Work{Flops: 40, IntOps: 8, MemOps: 12, FPChainLen: 3},
				Stream: access.StreamSpec{
					WorkingSetBytes: 4 << 20,
					Mix:             access.Mix{Unit: 0.8, Random: 0.2},
					Seed:            11,
				},
				Iters: 5000,
			},
			{
				Name: "solve",
				Work: cpusim.Work{Flops: 24, IntOps: 4, MemOps: 8, FPChainLen: 12},
				Stream: access.StreamSpec{
					WorkingSetBytes: 512 << 10,
					Mix:             access.Mix{Unit: 1},
					Seed:            12,
				},
				Iters:           4000,
				DependentMemory: true,
			},
		},
		Comm: []netsim.Event{
			{Op: netsim.OpPointToPoint, Bytes: 8192, Count: 100},
			{Op: netsim.OpAllReduce, Bytes: 8, Count: 50},
		},
	}
}

func TestExecuteBasics(t *testing.T) {
	res, err := Execute(machine.MustPreset(machine.NAVO655), testApp(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.ComputeSeconds <= 0 || res.CommSeconds <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	if len(res.Blocks) != 2 {
		t.Fatalf("%d block results", len(res.Blocks))
	}
	// Imbalance must inflate the total.
	want := (res.ComputeSeconds + res.CommSeconds) * 1.1
	if diff := res.Seconds - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("imbalance not applied: %g vs %g", res.Seconds, want)
	}
}

func TestExecuteTooLarge(t *testing.T) {
	cfg := machine.MustPreset(machine.ARL690) // 128 procs
	_, err := Execute(cfg, testApp(256))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExecuteRejectsInvalid(t *testing.T) {
	app := testApp(8)
	app.Blocks[0].Iters = -1
	if _, err := Execute(machine.Base(), app); err == nil {
		t.Fatal("accepted invalid app")
	}
	bad := machine.Base()
	bad.Caches = nil
	if _, err := Execute(bad, testApp(8)); err == nil {
		t.Fatal("accepted invalid machine")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLXeon)
	a, err := Execute(cfg, testApp(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(cfg, testApp(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Fatalf("non-deterministic: %g vs %g", a.Seconds, b.Seconds)
	}
}

func TestDependentBlockSlowerThanEquivalentFree(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLOpteron)
	app := testApp(8)
	dep, err := Execute(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	app2 := testApp(8)
	app2.Blocks[1].DependentMemory = false
	app2.Blocks[1].Work.FPChainLen = 0
	free, err := Execute(cfg, app2)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Blocks[1].Seconds <= free.Blocks[1].Seconds {
		t.Fatalf("dependent block %g not slower than free %g",
			dep.Blocks[1].Seconds, free.Blocks[1].Seconds)
	}
}

func TestFasterMachineFasterRun(t *testing.T) {
	app := testApp(16)
	slow, err := Execute(machine.MustPreset(machine.MHPCCPower3), app)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Execute(machine.MustPreset(machine.ARLOpteron), app)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Seconds >= slow.Seconds {
		t.Fatalf("Opteron %g not faster than P3 %g", fast.Seconds, slow.Seconds)
	}
}

func TestLoadedMemorySlowsRuns(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLAltix)
	loadedRun, err := Execute(cfg, testApp(8))
	if err != nil {
		t.Fatal(err)
	}
	ideal := cfg.Clone()
	ideal.MemLoadedFraction = 1
	ideal.MemLoadedLatencyFactor = 1
	idealRun, err := Execute(ideal, testApp(8))
	if err != nil {
		t.Fatal(err)
	}
	if loadedRun.Seconds <= idealRun.Seconds {
		t.Fatalf("loaded run %g not slower than idle-memory run %g",
			loadedRun.Seconds, idealRun.Seconds)
	}
}

func TestMoreRanksMoreCommTime(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655)
	small, err := Execute(cfg, testApp(16))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Execute(cfg, testApp(256))
	if err != nil {
		t.Fatal(err)
	}
	if big.CommSeconds <= small.CommSeconds {
		t.Fatalf("allreduce time did not grow with ranks: %g vs %g",
			big.CommSeconds, small.CommSeconds)
	}
}

func TestSampleSizePolicy(t *testing.T) {
	unitSpec := func(ws int64) access.StreamSpec {
		return access.StreamSpec{WorkingSetBytes: ws, Mix: access.Mix{Unit: 1}}
	}
	if got := SampleSize(unitSpec(1 << 10)); got != 60_000 {
		t.Errorf("floor = %d", got)
	}
	if got := SampleSize(unitSpec(8 << 20)); got != 1_500_000 {
		t.Errorf("ceiling = %d", got)
	}
	if got := SampleSize(unitSpec(1 << 30)); got != 400_000 {
		t.Errorf("huge = %d", got)
	}
	randomSpec := access.StreamSpec{WorkingSetBytes: 1 << 30, Mix: access.Mix{Random: 1}}
	if got := SampleSize(randomSpec); got != 500_000 {
		t.Errorf("random = %d", got)
	}
}

func TestObservedOrderingMatchesPaperExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a study workload on three machines")
	}
	// The paper's appendix shows the Opteron fastest and the P3s/O3800
	// slowest on nearly every test case; the simulated testbed must
	// preserve that.
	tc, err := apps.Lookup("avus", "standard")
	if err != nil {
		t.Fatal(err)
	}
	app, err := tc.Instance(64)
	if err != nil {
		t.Fatal(err)
	}
	opteron, err := Execute(machine.MustPreset(machine.ARLOpteron), app)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Execute(machine.MustPreset(machine.MHPCCPower3), app)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Execute(machine.Base(), app)
	if err != nil {
		t.Fatal(err)
	}
	if !(opteron.Seconds < base.Seconds && base.Seconds < p3.Seconds) {
		t.Fatalf("ordering violated: opteron %.0f, base %.0f, p3 %.0f",
			opteron.Seconds, base.Seconds, p3.Seconds)
	}
}
