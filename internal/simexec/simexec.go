// Package simexec is the study's stand-in for running an application on a
// real machine: the ground-truth executor.
//
// It executes a workload.App on a machine at full model fidelity — every
// basic block's address stream is simulated through the machine's cache
// hierarchy (memsim), its processor work is priced with dependency-chain
// and branch effects (cpusim), memory and compute overlap according to the
// core's decoupling ability, communication is priced with NIC contention
// (netsim), and untraceable load imbalance inflates the result. The
// prediction metrics (internal/metrics) never see most of this detail;
// the gap between their coarse models and this executor is exactly the
// prediction error the paper measures.
//
// Observed times-to-solution (the analogs of the paper's Appendix tables
// 6-10) come from Execute.
package simexec

import (
	"context"
	"errors"
	"fmt"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/memsim"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/workload"
)

// ErrTooLarge reports that the job needs more processors than the machine
// has. The study records such cells as missing, like the blank entries in
// the paper's appendix.
var ErrTooLarge = errors.New("simexec: job exceeds machine size")

// DependentMLP is the memory-level parallelism available to blocks whose
// loads feed a serial dependence chain: out-of-order runahead exposes a
// little overlap, but nothing like the machine's full miss capacity.
const DependentMLP = 2

// BlockResult is the priced execution of one basic block.
type BlockResult struct {
	Name string
	// CPUSeconds is the core-side time (dependency/issue/branch bound).
	CPUSeconds float64
	// MemSeconds is the memory-hierarchy time.
	MemSeconds float64
	// Seconds is the overlap-combined block time.
	Seconds float64
	// ILPLimited reports whether the dependency bound dominated.
	ILPLimited bool
	// MemCyclesPerRef is the sampled cache-simulation price.
	MemCyclesPerRef float64
}

// Result is the priced execution of a whole application run on one rank,
// scaled to the job's critical path.
type Result struct {
	App     string
	Case    string
	Procs   int
	Machine string
	// ComputeSeconds is the per-rank block total.
	ComputeSeconds float64
	// CommSeconds is the per-rank communication total.
	CommSeconds float64
	// Seconds is the observed wall-clock stand-in:
	// (compute + comm) x runtime imbalance.
	Seconds float64
	Blocks  []BlockResult
}

// SampleSize picks how many references to simulate for a stream: enough
// passes over the working set to reach steady-state cache residency,
// bounded for simulation cost. Two shortcuts keep the study tractable
// without hurting fidelity: working sets beyond every study machine's
// outermost cache need no wrapping (their steady-state rates emerge within
// a short stream), and essentially-random streams converge as soon as the
// TLB and caches are warm regardless of footprint.
func SampleSize(spec access.StreamSpec) int {
	const (
		floor        = 60_000
		ceiling      = 1_500_000
		hugeWS       = 48 << 20
		hugeSample   = 400_000
		randomSample = 500_000
	)
	n := 3 * spec.WorkingSetBytes / 8
	if n < floor {
		n = floor
	}
	if spec.Mix.Random > 0.9 && n > randomSample {
		return randomSample
	}
	if spec.WorkingSetBytes > hugeWS {
		return hugeSample
	}
	if n > ceiling {
		return ceiling
	}
	return int(n)
}

// Execute runs the app on the machine and returns the priced result.
func Execute(cfg *machine.Config, app *workload.App) (*Result, error) {
	return ExecuteContext(context.Background(), cfg, app)
}

// ExecuteContext is Execute with cancellation: the study's parallel
// harness runs many executions concurrently and must be able to abandon
// in-flight work. The context is consulted between basic blocks — the
// unit of simulation cost — so cancellation takes effect within one
// block's cache-stream sample. The same boundary is the
// faults.PointExecBlock injection point, keyed by (machine, app).
func ExecuteContext(ctx context.Context, cfg *machine.Config, app *workload.App) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "exec")
	defer span.End()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("simexec: %w", err)
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("simexec: %w", err)
	}
	if span != nil {
		span.Annotate("machine", cfg.Name)
		span.Annotate("app", app.ID())
	}
	if app.Procs > cfg.TotalProcs {
		return nil, fmt.Errorf("%w: %s needs %d procs, %s has %d",
			ErrTooLarge, app.ID(), app.Procs, cfg.Name, cfg.TotalProcs)
	}

	// Production runs pack every core of a node, so each rank sees the
	// loaded memory system — unlike the idle-node single-CPU probes.
	cfg = cfg.Loaded()

	res := &Result{App: app.Name, Case: app.Case, Procs: app.Procs, Machine: cfg.Name}
	hz := cfg.ClockGHz * 1e9

	for i := range app.Blocks {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("simexec: %s: %w", app.ID(), err)
		}
		if err := faults.Hit(ctx, faults.PointExecBlock, cfg.Name, app.ID()); err != nil {
			return nil, fmt.Errorf("simexec: %s on %s: %w", app.ID(), cfg.Name, err)
		}
		blk := &app.Blocks[i]
		br, err := executeBlock(cfg, blk, hz)
		if err != nil {
			return nil, fmt.Errorf("simexec: %s/%s: %w", app.ID(), blk.Name, err)
		}
		res.Blocks = append(res.Blocks, br)
		res.ComputeSeconds += br.Seconds
	}

	net, err := netsim.New(cfg, app.Procs)
	if err != nil {
		return nil, fmt.Errorf("simexec: %w", err)
	}
	res.CommSeconds = net.Time(app.Comm)

	res.Seconds = (res.ComputeSeconds + res.CommSeconds) * app.RuntimeImbalance
	return res, nil
}

func executeBlock(cfg *machine.Config, blk *workload.Block, hz float64) (BlockResult, error) {
	opts := memsim.TimingOpts{}
	if blk.DependentMemory {
		opts.MLPCap = DependentMLP
	}
	sample := SampleSize(blk.Stream)
	memT, err := memsim.SimulateStream(cfg, blk.Stream, sample, opts)
	if err != nil {
		return BlockResult{}, err
	}
	memCyclesPerIter := memT.CyclesPerRef() * blk.Work.MemOps

	// Memory-instruction issue slots are charged by memsim's datapath
	// term; pricing them again in the core model would double-count.
	coreWork := blk.Work
	coreWork.MemOps = 0
	cpu, err := cpusim.Time(cfg, coreWork)
	if err != nil {
		return BlockResult{}, err
	}

	perIter := combineOverlap(cpu.Cycles, memCyclesPerIter, cfg.MemOverlapFraction)
	total := perIter * blk.Iters

	return BlockResult{
		Name:            blk.Name,
		CPUSeconds:      cpu.Cycles * blk.Iters / hz,
		MemSeconds:      memCyclesPerIter * blk.Iters / hz,
		Seconds:         total / hz,
		ILPLimited:      cpu.ILPLimited,
		MemCyclesPerRef: memT.CyclesPerRef(),
	}, nil
}

// combineOverlap merges compute and memory cycles: the longer component
// always shows; a fraction of the shorter hides beneath it according to
// the core's ability to overlap independent work.
func combineOverlap(cpu, mem, overlap float64) float64 {
	longer, shorter := cpu, mem
	if mem > cpu {
		longer, shorter = mem, cpu
	}
	return longer + (1-overlap)*shorter
}
