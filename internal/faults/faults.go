// Package faults injects deterministic failures into the study pipeline.
//
// The paper's 150-observation grid was gathered on ten production DoD
// systems where individual runs fail, stall, and vary; a harness that
// claims to tolerate those failures must be testable under them. An
// Injector carries a seed and a rule set; pipeline stages call Hit at
// named injection points — between simulated basic blocks, between probe
// steps, between traced blocks — and receive a transient error, a
// context-aware latency stall, a permanent error, or nothing. Whether a
// given (point, site, sub) identity is armed is a pure function of the
// seed and the identity, never of scheduling or wall-clock time, so a
// chaos run injects the same faults at any worker count.
//
// Like internal/obs, the disabled path is free: with no Injector in the
// context, Hit returns nil without allocating, so a clean study's output
// stays byte-identical to the Table 4 golden.
package faults

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpcmetrics/internal/obs"
)

// Kind is a class of injected fault.
type Kind int

const (
	// Transient is a retryable failure: the hit returns ErrTransient for
	// the first Rule.Burst hits of an armed identity, then heals — the
	// model of a flaky node that succeeds on re-submission.
	Transient Kind = iota
	// Stall delays the hit by Rule.Stall without failing it, honoring
	// context cancellation — the model of a wedged run that only a
	// deadline can reclaim.
	Stall
	// Permanent fails every hit of an armed identity with ErrPermanent —
	// the model of a broken (machine, application) pairing that no retry
	// fixes.
	Permanent
)

// String names the kind as it appears in rule specs and metric names.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Stall:
		return "stall"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "stall":
		return Stall, nil
	case "permanent":
		return Permanent, nil
	default:
		return 0, fmt.Errorf("faults: unknown kind %q (want transient, stall, or permanent)", s)
	}
}

// Sentinel errors carried (via %w) by every injected failure, so retry
// classifiers can tell a healing fault from a permanent one.
var (
	ErrTransient = errors.New("faults: injected transient fault")
	ErrPermanent = errors.New("faults: injected permanent fault")
)

// The named injection points. Each pairs with a (site, sub) identity:
// the machine and application for executor blocks, the machine and step
// name for probes, the application and block name for tracing.
const (
	PointExecBlock  = "simexec.block"
	PointProbeStep  = "probes.step"
	PointTraceBlock = "trace.block"
)

// Points lists every injection point, in pipeline order.
func Points() []string {
	return []string{PointExecBlock, PointProbeStep, PointTraceBlock}
}

// Rule arms one fault at one injection point.
type Rule struct {
	// Point is the injection point (PointExecBlock, ...).
	Point string
	// Kind is what happens on an armed hit.
	Kind Kind
	// Rate is the fraction of (site, sub) identities armed, in [0, 1]:
	// 1 arms every identity, 0.5 a deterministic half of them.
	Rate float64
	// Burst is how many hits fire before a Transient or Stall identity
	// heals; 0 or less means 1. Permanent rules ignore Burst.
	Burst int
	// Stall is the delay for Kind Stall.
	Stall time.Duration
	// Match, when non-empty, additionally restricts the rule to
	// identities whose site or sub contains it as a substring.
	Match string
}

// hitID identifies one (rule, identity) pair for burst counting.
type hitID struct {
	rule int
	site string
	sub  string
}

// Injector evaluates a rule set at every Hit. The zero value and nil are
// both valid, disabled injectors.
type Injector struct {
	seed  uint64
	rules []Rule

	mu    sync.Mutex
	hits  map[hitID]int // guarded by mu
	fired [3]int64      // guarded by mu; indexed by Kind
}

// New builds an injector from a jitter seed and a rule set. No rules
// means nothing ever fires.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules, hits: make(map[hitID]int)}
}

// Fingerprint canonically encodes the injector's seed and rule set, in
// rule order. Whether and where faults fire is a pure function of both,
// so two injectors with equal fingerprints perturb a deterministic run
// identically — the study's checkpoint journal records the fingerprint
// to reject resuming under a different chaos configuration. Nil-safe: a
// nil (disarmed) injector reports the empty string, distinct from any
// armed one.
func (in *Injector) Fingerprint() string {
	if in == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", in.seed)
	for _, r := range in.rules {
		fmt.Fprintf(&b, ",%s:%s:%g:%d:%s:%s", r.Kind, r.Point, r.Rate, r.Burst, r.Stall, r.Match)
	}
	return b.String()
}

// Fired reports how many faults of one kind have been injected.
func (in *Injector) Fired(k Kind) int64 {
	if in == nil || k < Transient || k > Permanent {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[k]
}

// faultCtx carries the injector down the pipeline. A dedicated carrier
// type (rather than context.WithValue) keeps Inject to one allocation
// and lets From type-switch without touching unrelated values.
type faultCtx struct {
	context.Context
	in *Injector
}

type ctxKey struct{}

// Value satisfies context.Context, answering only our key.
func (c *faultCtx) Value(key any) any {
	if _, ok := key.(ctxKey); ok {
		return c.in
	}
	return c.Context.Value(key)
}

// Inject returns a context carrying the injector. Nil-safe: a nil
// injector returns ctx unchanged, so the disabled path threads nothing.
func (in *Injector) Inject(ctx context.Context) context.Context {
	if in == nil {
		return ctx
	}
	return &faultCtx{Context: ctx, in: in}
}

// From extracts the injector from ctx, or nil. The lookup allocates
// nothing: ctxKey is zero-size, so boxing it costs no heap.
func From(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Hit evaluates the injection point against the context's injector:
// nil when no injector is armed for (point, site, sub), an error
// wrapping ErrTransient or ErrPermanent when one fires, or the
// context's error if an armed stall is cancelled mid-sleep. With no
// injector in ctx this is a free no-op — no allocation, no lock.
func Hit(ctx context.Context, point, site, sub string) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	return in.hit(ctx, point, site, sub)
}

func (in *Injector) hit(ctx context.Context, point, site, sub string) error {
	for ri := range in.rules {
		r := &in.rules[ri]
		if r.Point != point {
			continue
		}
		if r.Match != "" && !strings.Contains(site, r.Match) && !strings.Contains(sub, r.Match) {
			continue
		}
		if !in.armed(ri, point, site, sub) {
			continue
		}
		n := in.countHit(ri, site, sub)
		burst := r.Burst
		if burst <= 0 {
			burst = 1
		}
		switch r.Kind {
		case Transient:
			if n <= burst {
				in.record(ctx, Transient)
				return fmt.Errorf("%w at %s (%s/%s, hit %d)", ErrTransient, point, site, sub, n)
			}
		case Stall:
			if n <= burst {
				in.record(ctx, Stall)
				if err := sleepCtx(ctx, r.Stall); err != nil {
					return err
				}
			}
		case Permanent:
			in.record(ctx, Permanent)
			return fmt.Errorf("%w at %s (%s/%s)", ErrPermanent, point, site, sub)
		}
	}
	return nil
}

// armed decides — purely from the seed, the rule index, and the identity
// — whether this rule fires at this identity. FNV-1a, like the study's
// observation noise, so chaos runs are reproducible bit for bit.
func (in *Injector) armed(ri int, point, site, sub string) bool {
	r := &in.rules[ri]
	if r.Rate <= 0 {
		return false
	}
	if r.Rate >= 1 {
		return true
	}
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	for shift := 0; shift < 64; shift += 8 {
		h ^= (in.seed >> shift) & 0xff
		h *= 1099511628211
	}
	h ^= uint64(ri)
	h *= 1099511628211
	mix(point)
	mix(site)
	mix(sub)
	u := float64(h>>11) / float64(uint64(1)<<53) // uniform [0,1)
	return u < r.Rate
}

// countHit returns this identity's 1-based hit count under one rule.
func (in *Injector) countHit(ri int, site, sub string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	id := hitID{rule: ri, site: site, sub: sub}
	in.hits[id]++
	return in.hits[id]
}

// record tallies a fired fault, both on the injector and — when the
// context carries an obs registry — on the faults_injected_* counters.
func (in *Injector) record(ctx context.Context, k Kind) {
	in.mu.Lock()
	in.fired[k]++
	in.mu.Unlock()
	meter := obs.From(ctx).Meter()
	meter.Counter("faults_injected_total").Inc()
	meter.Counter("faults_injected_" + k.String() + "_total").Inc()
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ParseRules parses the -faults CLI grammar: comma-separated rules of
// the form
//
//	kind:point:rate[:burst[:stall[:match]]]
//
// e.g. "transient:simexec.block:1:2" (every executor identity fails
// twice, then heals) or "stall:probes.step:0.5:1:30s:ARL" (half the
// ARL probe steps stall once for 30s).
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	known := make(map[string]bool)
	for _, p := range Points() {
		known[p] = true
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 || len(fields) > 6 {
			return nil, fmt.Errorf("faults: rule %q: want kind:point:rate[:burst[:stall[:match]]]", part)
		}
		kind, err := ParseKind(fields[0])
		if err != nil {
			return nil, err
		}
		if !known[fields[1]] {
			return nil, fmt.Errorf("faults: rule %q: unknown point %q (want one of %s)",
				part, fields[1], strings.Join(Points(), ", "))
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faults: rule %q: rate %q must be a number in [0, 1]", part, fields[2])
		}
		r := Rule{Kind: kind, Point: fields[1], Rate: rate}
		if len(fields) > 3 && fields[3] != "" {
			r.Burst, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("faults: rule %q: bad burst %q", part, fields[3])
			}
		}
		if len(fields) > 4 && fields[4] != "" {
			r.Stall, err = time.ParseDuration(fields[4])
			if err != nil {
				return nil, fmt.Errorf("faults: rule %q: bad stall %q", part, fields[4])
			}
		}
		if len(fields) > 5 {
			r.Match = fields[5]
		}
		if kind == Stall && r.Stall <= 0 {
			return nil, fmt.Errorf("faults: rule %q: stall kind needs a positive stall duration", part)
		}
		rules = append(rules, r)
	}
	return rules, nil
}
