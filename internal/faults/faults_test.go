package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestHitDisabledPathAllocationFree pins the free disabled path: with no
// injector in the context, Hit must not allocate — a clean study pays
// nothing for carrying the injection points.
func TestHitDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if err := Hit(ctx, PointExecBlock, "ARL_Opteron", "avus-standard"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled Hit allocates %.1f objects per call, want 0", allocs)
	}
}

func TestHitNilInjectorAndNoRules(t *testing.T) {
	if err := Hit(context.Background(), PointExecBlock, "a", "b"); err != nil {
		t.Errorf("Hit without injector = %v, want nil", err)
	}
	var nilIn *Injector
	ctx := nilIn.Inject(context.Background())
	if From(ctx) != nil {
		t.Error("nil injector must inject nothing")
	}
	in := New(1)
	ctx = in.Inject(context.Background())
	if err := Hit(ctx, PointExecBlock, "a", "b"); err != nil {
		t.Errorf("Hit with empty rule set = %v, want nil", err)
	}
}

// TestTransientBurstHeals: an armed transient identity fails Burst times
// and then succeeds forever — the retry loop's healing model.
func TestTransientBurstHeals(t *testing.T) {
	in := New(7, Rule{Point: PointExecBlock, Kind: Transient, Rate: 1, Burst: 2})
	ctx := in.Inject(context.Background())
	for i := 1; i <= 2; i++ {
		err := Hit(ctx, PointExecBlock, "sys", "app")
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("hit %d = %v, want ErrTransient", i, err)
		}
	}
	if err := Hit(ctx, PointExecBlock, "sys", "app"); err != nil {
		t.Errorf("hit 3 = %v, want healed (nil)", err)
	}
	if got := in.Fired(Transient); got != 2 {
		t.Errorf("Fired(Transient) = %d, want 2", got)
	}
	// A different identity has its own burst counter.
	if err := Hit(ctx, PointExecBlock, "sys2", "app"); !errors.Is(err, ErrTransient) {
		t.Errorf("fresh identity = %v, want ErrTransient", err)
	}
}

func TestPermanentAlwaysFires(t *testing.T) {
	in := New(1, Rule{Point: PointProbeStep, Kind: Permanent, Rate: 1})
	ctx := in.Inject(context.Background())
	for i := 0; i < 3; i++ {
		if err := Hit(ctx, PointProbeStep, "sys", "stream"); !errors.Is(err, ErrPermanent) {
			t.Fatalf("hit %d = %v, want ErrPermanent", i+1, err)
		}
	}
	if got := in.Fired(Permanent); got != 3 {
		t.Errorf("Fired(Permanent) = %d, want 3", got)
	}
}

// TestStallHonorsContext: a stall sleeps, but an already-cancelled
// context reclaims it immediately with the context's error.
func TestStallHonorsContext(t *testing.T) {
	in := New(1, Rule{Point: PointTraceBlock, Kind: Stall, Rate: 1, Stall: time.Hour})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := in.Inject(cctx)
	start := time.Now()
	err := Hit(ctx, PointTraceBlock, "app", "block")
	if !errors.Is(err, context.Canceled) {
		t.Errorf("stalled hit under cancelled ctx = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancelled stall took %v, want immediate", el)
	}
	if got := in.Fired(Stall); got != 1 {
		t.Errorf("Fired(Stall) = %d, want 1", got)
	}
}

func TestStallShortSleepSucceeds(t *testing.T) {
	in := New(1, Rule{Point: PointTraceBlock, Kind: Stall, Rate: 1, Stall: time.Millisecond})
	ctx := in.Inject(context.Background())
	if err := Hit(ctx, PointTraceBlock, "app", "block"); err != nil {
		t.Errorf("short stall = %v, want nil", err)
	}
}

// TestMatchRestrictsRule: Match gates on site-or-sub substring.
func TestMatchRestrictsRule(t *testing.T) {
	in := New(1, Rule{Point: PointExecBlock, Kind: Permanent, Rate: 1, Match: "ARL"})
	ctx := in.Inject(context.Background())
	if err := Hit(ctx, PointExecBlock, "ARL_Opteron", "avus"); !errors.Is(err, ErrPermanent) {
		t.Errorf("matching site = %v, want ErrPermanent", err)
	}
	if err := Hit(ctx, PointExecBlock, "MHPCC_P3", "avus"); err != nil {
		t.Errorf("non-matching identity = %v, want nil", err)
	}
	if err := Hit(ctx, PointExecBlock, "MHPCC_P3", "ARL-like-app"); !errors.Is(err, ErrPermanent) {
		t.Errorf("matching sub = %v, want ErrPermanent", err)
	}
}

// TestArmedDeterministicAndFractional: arming is a pure function of
// (seed, rule, identity); rate 0 never fires, rate 1 always fires, and a
// fractional rate arms a stable strict subset.
func TestArmedDeterministicAndFractional(t *testing.T) {
	sites := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
		"k", "l", "m", "n", "o", "p", "q", "r", "s", "t"}
	count := func(seed uint64, rate float64) int {
		in := New(seed, Rule{Point: PointExecBlock, Kind: Permanent, Rate: rate})
		ctx := in.Inject(context.Background())
		n := 0
		for _, s := range sites {
			if Hit(ctx, PointExecBlock, s, "app") != nil {
				n++
			}
		}
		return n
	}
	if got := count(1, 0); got != 0 {
		t.Errorf("rate 0 armed %d identities, want 0", got)
	}
	if got := count(1, 1); got != len(sites) {
		t.Errorf("rate 1 armed %d identities, want %d", got, len(sites))
	}
	half := count(1, 0.5)
	if half == 0 || half == len(sites) {
		t.Errorf("rate 0.5 armed %d of %d identities, want a strict subset", half, len(sites))
	}
	if again := count(1, 0.5); again != half {
		t.Errorf("same seed armed %d then %d identities, want deterministic", half, again)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("transient:simexec.block:1:2, stall:probes.step:0.5:1:30s:ARL")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: Transient, Point: PointExecBlock, Rate: 1, Burst: 2},
		{Kind: Stall, Point: PointProbeStep, Rate: 0.5, Burst: 1, Stall: 30 * time.Second, Match: "ARL"},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{
		"bogus:simexec.block:1",       // unknown kind
		"transient:nowhere:1",         // unknown point
		"transient:simexec.block:2",   // rate out of range
		"transient:simexec.block",     // too few fields
		"stall:probes.step:1",         // stall without duration
		"transient:simexec.block:1:x", // bad burst
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) = nil error, want failure", bad)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Transient, Stall, Permanent} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("flaky"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}

// TestFingerprintDistinguishesPlans: the fingerprint feeding the study's
// checkpoint options tag must separate every distinct fault plan — seed,
// rule set, and rule parameters — and be stable for identical plans.
func TestFingerprintDistinguishesPlans(t *testing.T) {
	if got := (*Injector)(nil).Fingerprint(); got != "" {
		t.Errorf("nil injector fingerprint = %q, want empty", got)
	}
	rule := Rule{Point: PointExecBlock, Kind: Transient, Rate: 0.5, Burst: 2}
	same1 := New(7, rule).Fingerprint()
	same2 := New(7, rule).Fingerprint()
	if same1 != same2 {
		t.Errorf("identical plans fingerprint differently: %q vs %q", same1, same2)
	}
	distinct := map[string]string{
		"seed":     New(8, rule).Fingerprint(),
		"no rules": New(7).Fingerprint(),
		"kind":     New(7, Rule{Point: PointExecBlock, Kind: Permanent, Rate: 0.5, Burst: 2}).Fingerprint(),
		"rate":     New(7, Rule{Point: PointExecBlock, Kind: Transient, Rate: 1, Burst: 2}).Fingerprint(),
		"stall":    New(7, Rule{Point: PointExecBlock, Kind: Stall, Rate: 0.5, Stall: time.Second}).Fingerprint(),
		"match":    New(7, Rule{Point: PointExecBlock, Kind: Transient, Rate: 0.5, Burst: 2, Match: "avus"}).Fingerprint(),
	}
	for field, fp := range distinct {
		if fp == same1 {
			t.Errorf("changing %s left the fingerprint at %q", field, fp)
		}
	}
}
