package workload

import (
	"strings"
	"testing"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/netsim"
)

func validBlock(name string) Block {
	return Block{
		Name: name,
		Work: cpusim.Work{Flops: 10, MemOps: 5},
		Stream: access.StreamSpec{
			WorkingSetBytes: 1 << 20,
			Mix:             access.Mix{Unit: 1},
		},
		Iters: 100,
	}
}

func validApp() *App {
	return &App{
		Name: "demo", Case: "standard", Procs: 8,
		Blocks:           []Block{validBlock("a"), validBlock("b")},
		Comm:             []netsim.Event{{Op: netsim.OpAllReduce, Bytes: 8, Count: 10}},
		RuntimeImbalance: 1.0,
	}
}

func TestValidAppPasses(t *testing.T) {
	if err := validApp().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppID(t *testing.T) {
	if got := validApp().ID(); got != "demo-standard" {
		t.Fatalf("ID = %q", got)
	}
}

func TestAppValidationFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*App)
		want string
	}{
		{"unnamed", func(a *App) { a.Name = "" }, "unnamed"},
		{"bad procs", func(a *App) { a.Procs = 0 }, "procs"},
		{"no blocks", func(a *App) { a.Blocks = nil }, "no blocks"},
		{"duplicate block", func(a *App) { a.Blocks[1].Name = "a" }, "duplicate"},
		{"negative comm", func(a *App) { a.Comm[0].Count = -1 }, "negative comm"},
		{"imbalance below 1", func(a *App) { a.RuntimeImbalance = 0.9 }, "imbalance"},
		{"unnamed block", func(a *App) { a.Blocks[0].Name = "" }, "unnamed"},
		{"zero iters", func(a *App) { a.Blocks[0].Iters = 0 }, "iterations"},
		{"no memory ops", func(a *App) { a.Blocks[0].Work.MemOps = 0 }, "memory"},
		{"bad work", func(a *App) { a.Blocks[0].Work.Flops = -1 }, "negative"},
		{"bad stream", func(a *App) { a.Blocks[0].Stream.Mix = access.Mix{} }, "mix"},
	}
	for _, tc := range cases {
		app := validApp()
		tc.mut(app)
		err := app.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestBlockCounts(t *testing.T) {
	b := validBlock("x")
	if got := b.FlopCount(); got != 1000 {
		t.Errorf("FlopCount = %g, want 1000", got)
	}
	if got := b.MemRefCount(); got != 500 {
		t.Errorf("MemRefCount = %g, want 500", got)
	}
}

func TestAppTotals(t *testing.T) {
	app := validApp()
	if got := app.TotalFlops(); got != 2000 {
		t.Errorf("TotalFlops = %g, want 2000", got)
	}
	if got := app.TotalMemRefs(); got != 1000 {
		t.Errorf("TotalMemRefs = %g, want 1000", got)
	}
}
