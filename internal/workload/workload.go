// Package workload defines the shape of an application as the study sees
// it: a set of basic blocks, each with per-iteration processor work and a
// memory-reference pattern, plus a per-rank MPI event profile.
//
// An App is fully instantiated for a (test case, processor count) pair —
// iteration counts and working sets already reflect the domain
// decomposition. The apps package builds these; the simexec package
// executes them at full fidelity ("the real machine"); the trace package
// observes them the way MetaSim Tracer and MPIDTRACE observe real codes.
package workload

import (
	"fmt"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/netsim"
)

// Block is one basic block (loop nest) of an application.
type Block struct {
	// Name identifies the block in traces and reports.
	Name string
	// Work is the processor work of one iteration. Work.MemOps must equal
	// the number of references the Stream contributes per iteration.
	Work cpusim.Work
	// Stream describes the block's memory-reference pattern; its
	// WorkingSetBytes reflects the per-rank footprint after decomposition.
	Stream access.StreamSpec
	// Iters is the number of iterations one rank executes over the whole
	// run (all timesteps).
	Iters float64
	// DependentMemory marks blocks whose loads feed a serial dependence
	// chain (recurrences through memory): the core cannot overlap their
	// cache misses, so the executor caps memory-level parallelism.
	DependentMemory bool
}

// Validate reports structural problems in the block.
func (b *Block) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: unnamed block")
	}
	if err := b.Work.Validate(); err != nil {
		return fmt.Errorf("workload block %s: %w", b.Name, err)
	}
	if err := b.Stream.Validate(); err != nil {
		return fmt.Errorf("workload block %s: %w", b.Name, err)
	}
	if b.Work.MemOps <= 0 {
		return fmt.Errorf("workload block %s: blocks must reference memory (MemOps=%g)", b.Name, b.Work.MemOps)
	}
	if b.Iters <= 0 {
		return fmt.Errorf("workload block %s: non-positive iterations %g", b.Name, b.Iters)
	}
	return nil
}

// FlopCount returns total floating-point operations for the rank.
func (b *Block) FlopCount() float64 { return b.Work.Flops * b.Iters }

// MemRefCount returns total memory references for the rank.
func (b *Block) MemRefCount() float64 { return b.Work.MemOps * b.Iters }

// App is an application instantiated at a processor count.
type App struct {
	// Name is the application ("avus", "hycom", ...).
	Name string
	// Case is the test case ("standard", "large").
	Case string
	// Procs is the MPI rank count the instance was decomposed for.
	Procs int
	// Blocks are the basic blocks one rank executes.
	Blocks []Block
	// Comm is the per-rank MPI event profile for the whole run.
	Comm []netsim.Event
	// RuntimeImbalance inflates the observed (ground-truth) runtime for
	// load imbalance the tracer cannot see (AMR, irregular partitions).
	// 1.0 means perfectly balanced. Predictors never see this field;
	// that is deliberate — it is a real, untraceable error source.
	RuntimeImbalance float64
}

// ID returns the "name-case" identifier used in reports.
func (a *App) ID() string { return a.Name + "-" + a.Case }

// Validate reports structural problems in the app.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: unnamed app")
	}
	if a.Procs < 1 {
		return fmt.Errorf("workload %s: non-positive procs %d", a.ID(), a.Procs)
	}
	if len(a.Blocks) == 0 {
		return fmt.Errorf("workload %s: no blocks", a.ID())
	}
	seen := map[string]bool{}
	for i := range a.Blocks {
		if err := a.Blocks[i].Validate(); err != nil {
			return err
		}
		if seen[a.Blocks[i].Name] {
			return fmt.Errorf("workload %s: duplicate block %s", a.ID(), a.Blocks[i].Name)
		}
		seen[a.Blocks[i].Name] = true
	}
	for _, ev := range a.Comm {
		if ev.Count < 0 || ev.Bytes < 0 {
			return fmt.Errorf("workload %s: negative comm event %+v", a.ID(), ev)
		}
	}
	if a.RuntimeImbalance < 1 {
		return fmt.Errorf("workload %s: imbalance %g below 1", a.ID(), a.RuntimeImbalance)
	}
	return nil
}

// TotalFlops returns the rank's floating-point operation count.
func (a *App) TotalFlops() float64 {
	var sum float64
	for i := range a.Blocks {
		sum += a.Blocks[i].FlopCount()
	}
	return sum
}

// TotalMemRefs returns the rank's memory reference count.
func (a *App) TotalMemRefs() float64 {
	var sum float64
	for i := range a.Blocks {
		sum += a.Blocks[i].MemRefCount()
	}
	return sum
}
