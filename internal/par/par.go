// Package par is the module's shared ctx-aware fan-out: an indexed,
// bounded worker pool extracted from the study harness so the serving
// layer (internal/predictor, cmd/predictd) runs its concurrent work on
// the same vetted machinery as the batch study.
//
// Determinism comes from indexed slots: each worker writes only to its
// own index, so a caller's aggregation order — and therefore any output
// bytes derived from it — does not depend on scheduling. The pool
// reports itself through the context's obs registry under a caller-
// chosen metric prefix, so the study's and the server's pools stay
// distinguishable in one registry.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"hpcmetrics/internal/obs"
)

// job is one unit of ForEachIndexed work; enq carries the enqueue time
// only when queue-wait tracking is on, so the disabled path stamps
// nothing.
type job struct {
	i   int
	enq time.Time
}

// ForEachIndexed runs work(ctx, i) for every i in [0, n) on a worker
// pool bounded by workers (0 means GOMAXPROCS). On failure every worker
// error is reported, joined lowest index first, so a multi-item failure
// is fully visible; remaining work is cancelled. A cancelled ctx stops
// dispatch and is returned as ctx.Err().
//
// When ctx carries an obs registry, the pool reports itself under
// prefix: the <prefix>_workers_busy gauge tracks occupancy (its peak is
// the effective parallelism), <prefix>_queue_wait_seconds records how
// long each job sat between enqueue and pickup, and <prefix>_jobs_total
// counts dispatches.
func ForEachIndexed(ctx context.Context, n, workers int, prefix string, work func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	meter := obs.From(ctx).Meter()
	busy := meter.Gauge(prefix + "_workers_busy")
	qwait := meter.Histogram(prefix + "_queue_wait_seconds")
	jobsTotal := meter.Counter(prefix + "_jobs_total")
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		jobs = make(chan job)
		errs = make([]error, n)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case j, ok := <-jobs:
					if !ok {
						return
					}
					qwait.ObserveSince(j.enq)
					jobsTotal.Inc()
					busy.Add(1)
					err := work(ctx, j.i)
					busy.Add(-1)
					if err != nil {
						errs[j.i] = err
						cancel()
					}
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		j := job{i: i, enq: qwait.StartTimer()}
		select {
		case <-ctx.Done():
			break feed
		case jobs <- j:
		}
	}
	close(jobs)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return ctx.Err()
}
