// Package probes implements the study's synthetic benchmarks, executed
// against the simulated machine so probe rates and observed application
// times are self-consistent (the property the paper's methodology relies
// on).
//
//   - HPL: a DGEMM-like blocked kernel; its flop rate is the
//     per-processor Rmax used by every predictive metric.
//   - STREAM: unit-stride triad from main memory (bytes/second).
//   - GUPS: random updates over a region far exceeding every cache
//     (references/second).
//   - MAPS (the MEMBENCH sweep): STREAM- and GUPS-style kernels at many
//     working-set sizes, yielding bandwidth-versus-size curves that
//     resolve L1/L2/L3/memory (paper Figure 1).
//   - ENHANCED MAPS: the same sweep with a data dependence induced in the
//     inner loop — each element feeds a serial FP chain and misses cannot
//     overlap — measuring the machine's dependency-limited memory rates.
//   - NETBENCH: ping-pong latency and bandwidth plus a reference
//     allreduce, from the interconnect model.
package probes

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/cpusim"
	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/memsim"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/simexec"
)

// Curve is a probe rate as a function of working-set size.
type Curve struct {
	SizesBytes []int64   // ascending
	RefsPerSec []float64 // rate at each size
}

// At returns the rate for a working set, interpolating linearly in
// log(size) and clamping beyond the measured range.
func (c Curve) At(ws int64) float64 {
	n := len(c.SizesBytes)
	if n == 0 {
		return 0
	}
	if ws <= c.SizesBytes[0] {
		return c.RefsPerSec[0]
	}
	if ws >= c.SizesBytes[n-1] {
		return c.RefsPerSec[n-1]
	}
	i := sort.Search(n, func(i int) bool { return c.SizesBytes[i] >= ws })
	lo, hi := i-1, i
	x0, x1 := math.Log(float64(c.SizesBytes[lo])), math.Log(float64(c.SizesBytes[hi]))
	t := (math.Log(float64(ws)) - x0) / (x1 - x0)
	return c.RefsPerSec[lo]*(1-t) + c.RefsPerSec[hi]*t
}

// Validate reports structural problems in the curve.
func (c Curve) Validate() error {
	if len(c.SizesBytes) != len(c.RefsPerSec) {
		return fmt.Errorf("probes: curve has %d sizes, %d rates", len(c.SizesBytes), len(c.RefsPerSec))
	}
	for i := 1; i < len(c.SizesBytes); i++ {
		if c.SizesBytes[i] <= c.SizesBytes[i-1] {
			return fmt.Errorf("probes: curve sizes not ascending at %d", i)
		}
	}
	for i, r := range c.RefsPerSec {
		if r <= 0 {
			return fmt.Errorf("probes: non-positive rate %g at size %d", r, c.SizesBytes[i])
		}
	}
	return nil
}

// NetResults is what NETBENCH reports.
type NetResults struct {
	// LatencySeconds is the zero-byte ping-pong one-way time.
	LatencySeconds float64
	// BandwidthBytesPerSec is the asymptotic large-message rate.
	BandwidthBytesPerSec float64
	// AllReduce8At64 is an 8-byte allreduce across 64 ranks (or the
	// machine's full size if smaller) — the all_reduce score the balanced
	// rating uses.
	AllReduce8At64 float64
}

// Results bundles every probe for one machine.
type Results struct {
	Machine string
	// HPLFlopsPerSec is the per-processor Rmax.
	HPLFlopsPerSec float64
	// StreamBytesPerSec is the STREAM triad bandwidth.
	StreamBytesPerSec float64
	// GUPSRefsPerSec is the random-update rate.
	GUPSRefsPerSec float64
	// MAPSUnit and MAPSRandom are the MEMBENCH bandwidth-vs-size curves.
	MAPSUnit, MAPSRandom Curve
	// DepUnit and DepRandom are the ENHANCED MAPS dependency curves.
	DepUnit, DepRandom Curve
	// Net is the NETBENCH result.
	Net NetResults
	// OverlapFraction is the measured compute/memory overlap capability,
	// a machine property the convolver needs (the real framework derives
	// it from probe combinations).
	OverlapFraction float64
}

// StreamRefsPerSec converts the STREAM bandwidth to references/second.
func (r *Results) StreamRefsPerSec() float64 {
	return r.StreamBytesPerSec / access.ElemBytes
}

// MAPSSizes is the working-set sweep of the MEMBENCH MAPS probe.
var MAPSSizes = []int64{
	8 << 10, 32 << 10, 128 << 10, 512 << 10,
	2 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20,
}

const (
	streamWS = 64 << 20  // STREAM runs from main memory on every target
	gupsWS   = 256 << 20 // GUPS table exceeds every cache by far
)

// HPL measures the per-processor Rmax: a blocked DGEMM whose working set
// sits in cache and whose FP work has ample instruction-level parallelism.
// Unlike the single-CPU memory probes, HPL is a parallel benchmark — every
// core runs, so its memory traffic sees the loaded node.
func HPL(cfg *machine.Config) (float64, error) {
	cfg = cfg.Loaded()
	work := cpusim.Work{Flops: 64, IntOps: 8, FPChainLen: 2}
	cpu, err := cpusim.Time(cfg, work)
	if err != nil {
		return 0, err
	}
	// Register- and L1-blocked DGEMM: few memory instructions per flop,
	// and the active panels fit the innermost cache.
	const memOps = 12
	spec := access.StreamSpec{
		WorkingSetBytes:  24 << 10,
		Mix:              access.Mix{Unit: 0.9, Short: 0.1},
		ShortStrideElems: 2,
		StoreFraction:    0.25,
		Seed:             0xD6E3,
	}
	memT, err := memsim.SimulateStream(cfg, spec, simexec.SampleSize(spec), memsim.TimingOpts{})
	if err != nil {
		return 0, err
	}
	memCycles := memT.CyclesPerRef() * memOps
	perIter := combine(cpu.Cycles, memCycles, cfg.MemOverlapFraction)
	return work.Flops / perIter * cfg.ClockGHz * 1e9, nil
}

// STREAM measures unit-stride main-memory bandwidth (triad: two loads and
// one store per element).
func STREAM(cfg *machine.Config) (float64, error) {
	spec := access.StreamSpec{
		WorkingSetBytes: streamWS,
		Mix:             access.Mix{Unit: 1},
		StoreFraction:   1.0 / 3.0,
		Seed:            0x57EA,
	}
	t, err := memsim.SimulateStream(cfg, spec, simexec.SampleSize(spec), memsim.TimingOpts{})
	if err != nil {
		return 0, err
	}
	return t.BytesPerSec, nil
}

// GUPS measures random-access update throughput (references/second).
func GUPS(cfg *machine.Config) (float64, error) {
	spec := access.StreamSpec{
		WorkingSetBytes: gupsWS,
		Mix:             access.Mix{Random: 1},
		StoreFraction:   0.5, // read-modify-write
		Seed:            0x9B5,
	}
	t, err := memsim.SimulateStream(cfg, spec, simexec.SampleSize(spec), memsim.TimingOpts{})
	if err != nil {
		return 0, err
	}
	if t.Seconds == 0 {
		return 0, fmt.Errorf("probes: GUPS measured zero time on %s", cfg.Name)
	}
	return float64(t.Refs) / t.Seconds, nil
}

// MAPSKind selects the access pattern of a MAPS sweep.
type MAPSKind int

const (
	// MAPSUnitStride sweeps the STREAM-style kernel.
	MAPSUnitStride MAPSKind = iota
	// MAPSRandomStride sweeps the GUPS-style kernel.
	MAPSRandomStride
)

// MAPS measures references/second at each working-set size. With dependent
// true it induces a serial data dependence in the inner loop (ENHANCED
// MAPS): misses cannot overlap and every element feeds an FP-latency
// chain.
func MAPS(cfg *machine.Config, kind MAPSKind, sizes []int64, dependent bool) (Curve, error) {
	if len(sizes) == 0 {
		sizes = MAPSSizes
	}
	curve := Curve{SizesBytes: append([]int64(nil), sizes...)}
	for _, ws := range sizes {
		rate, err := mapsPoint(cfg, kind, ws, dependent)
		if err != nil {
			return Curve{}, err
		}
		curve.RefsPerSec = append(curve.RefsPerSec, rate)
	}
	return curve, curve.Validate()
}

func mapsPoint(cfg *machine.Config, kind MAPSKind, ws int64, dependent bool) (float64, error) {
	spec := access.StreamSpec{
		WorkingSetBytes: ws,
		StoreFraction:   0.25,
		Seed:            0x3A95 ^ uint64(ws),
	}
	switch kind {
	case MAPSUnitStride:
		spec.Mix = access.Mix{Unit: 1}
	case MAPSRandomStride:
		spec.Mix = access.Mix{Random: 1}
	default:
		return 0, fmt.Errorf("probes: unknown MAPS kind %d", kind)
	}
	opts := memsim.TimingOpts{}
	if dependent {
		opts.MLPCap = simexec.DependentMLP
	}
	t, err := memsim.SimulateStream(cfg, spec, simexec.SampleSize(spec), opts)
	if err != nil {
		return 0, err
	}
	cycles := t.Cycles
	if dependent {
		// Each element feeds a dependent FP operation that cannot retire
		// before the load and cannot overlap the next element.
		cycles += float64(t.Refs) * cfg.FPLatencyCycles
	}
	seconds := cycles / (cfg.ClockGHz * 1e9)
	if seconds == 0 {
		return 0, fmt.Errorf("probes: MAPS point %d measured zero time", ws)
	}
	return float64(t.Refs) / seconds, nil
}

// Netbench measures ping-pong latency and bandwidth between two ranks and
// a reference 8-byte allreduce.
func Netbench(cfg *machine.Config) (NetResults, error) {
	pair, err := netsim.New(cfg, min(2, cfg.TotalProcs))
	if err != nil {
		return NetResults{}, err
	}
	lat := pair.PointToPoint(0)
	const big = 4 << 20
	bw := float64(big) / (pair.PointToPoint(big) - lat)

	arProcs := 64
	if cfg.TotalProcs < arProcs {
		arProcs = cfg.TotalProcs
	}
	arModel, err := netsim.New(cfg, arProcs)
	if err != nil {
		return NetResults{}, err
	}
	return NetResults{
		LatencySeconds:       lat,
		BandwidthBytesPerSec: bw,
		AllReduce8At64:       arModel.AllReduce(8),
	}, nil
}

// Measure runs the full probe suite on one machine.
func Measure(cfg *machine.Config) (*Results, error) {
	return MeasureContext(context.Background(), cfg)
}

// MeasureContext is Measure with cancellation and tracing: the study
// harness probes machines concurrently, so the context is consulted
// between probes, and the whole suite is one "probe" span when the
// context carries a tracer.
func MeasureContext(ctx context.Context, cfg *machine.Config) (*Results, error) {
	_, span := obs.StartSpan(ctx, "probe")
	defer span.End()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("probes: %w", err)
	}
	span.Annotate("machine", cfg.Name)
	res := &Results{Machine: cfg.Name, OverlapFraction: cfg.MemOverlapFraction}

	steps := []struct {
		name string
		run  func() error
	}{
		{"hpl", func() (err error) { res.HPLFlopsPerSec, err = HPL(cfg); return err }},
		{"stream", func() (err error) { res.StreamBytesPerSec, err = STREAM(cfg); return err }},
		{"gups", func() (err error) { res.GUPSRefsPerSec, err = GUPS(cfg); return err }},
		{"maps-unit", func() (err error) { res.MAPSUnit, err = MAPS(cfg, MAPSUnitStride, nil, false); return err }},
		{"maps-random", func() (err error) { res.MAPSRandom, err = MAPS(cfg, MAPSRandomStride, nil, false); return err }},
		{"dep-unit", func() (err error) { res.DepUnit, err = MAPS(cfg, MAPSUnitStride, nil, true); return err }},
		{"dep-random", func() (err error) { res.DepRandom, err = MAPS(cfg, MAPSRandomStride, nil, true); return err }},
		{"netbench", func() (err error) { res.Net, err = Netbench(cfg); return err }},
	}
	for _, step := range steps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("probes: %s: %w", cfg.Name, err)
		}
		if err := faults.Hit(ctx, faults.PointProbeStep, cfg.Name, step.name); err != nil {
			return nil, fmt.Errorf("probes: %s/%s: %w", cfg.Name, step.name, err)
		}
		if err := step.run(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func combine(cpu, mem, overlap float64) float64 {
	longer, shorter := cpu, mem
	if mem > cpu {
		longer, shorter = mem, cpu
	}
	return longer + (1-overlap)*shorter
}
