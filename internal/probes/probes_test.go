package probes

import (
	"math"
	"testing"
	"testing/quick"

	"hpcmetrics/internal/machine"
)

func TestCurveAt(t *testing.T) {
	c := Curve{
		SizesBytes: []int64{1024, 4096, 16384},
		RefsPerSec: []float64{100, 50, 10},
	}
	if got := c.At(512); got != 100 {
		t.Errorf("below range = %g, want clamp to 100", got)
	}
	if got := c.At(1 << 20); got != 10 {
		t.Errorf("above range = %g, want clamp to 10", got)
	}
	if got := c.At(4096); got != 50 {
		t.Errorf("exact point = %g, want 50", got)
	}
	// Log-interpolated midpoint between 1024 and 4096 is 2048.
	if got := c.At(2048); math.Abs(got-75) > 1e-9 {
		t.Errorf("midpoint = %g, want 75", got)
	}
	var empty Curve
	if got := empty.At(100); got != 0 {
		t.Errorf("empty curve = %g", got)
	}
}

func TestCurveValidate(t *testing.T) {
	good := Curve{SizesBytes: []int64{1, 2}, RefsPerSec: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Curve{
		{SizesBytes: []int64{1}, RefsPerSec: []float64{1, 2}},    // length mismatch
		{SizesBytes: []int64{2, 1}, RefsPerSec: []float64{1, 2}}, // not ascending
		{SizesBytes: []int64{1, 2}, RefsPerSec: []float64{1, 0}}, // non-positive rate
		{SizesBytes: []int64{1, 1}, RefsPerSec: []float64{1, 2}}, // duplicate size
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestHPLBelowPeakAboveHalf(t *testing.T) {
	for _, name := range machine.Names() {
		cfg := machine.MustPreset(name)
		rate, err := HPL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		peak := cfg.PeakGFlops() * 1e9
		if rate > peak {
			t.Errorf("%s: HPL %g exceeds peak %g", name, rate, peak)
		}
		if rate < 0.4*peak {
			t.Errorf("%s: HPL %g below 40%% of peak %g", name, rate, peak)
		}
	}
}

func TestSTREAMBelowSpecBandwidth(t *testing.T) {
	for _, name := range machine.Names() {
		cfg := machine.MustPreset(name)
		bw, err := STREAM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bw <= 0 || bw > cfg.MemBandwidthGBs*1e9 {
			t.Errorf("%s: STREAM %g outside (0, %g]", name, bw, cfg.MemBandwidthGBs*1e9)
		}
	}
}

func TestGUPSWellBelowSTREAMRefRate(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655)
	gups, err := GUPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := STREAM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gups >= stream/8 {
		t.Fatalf("GUPS %g not below STREAM ref rate %g", gups, stream/8)
	}
}

func TestMAPSMonotoneDecreasing(t *testing.T) {
	// Bandwidth can only fall (or hold) as the working set grows through
	// the cache levels.
	cfg := machine.MustPreset(machine.ARLAltix)
	for _, kind := range []MAPSKind{MAPSUnitStride, MAPSRandomStride} {
		curve, err := MAPS(cfg, kind, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(curve.RefsPerSec); i++ {
			// Allow 10% measurement wiggle between adjacent points.
			if curve.RefsPerSec[i] > curve.RefsPerSec[i-1]*1.10 {
				t.Errorf("kind %d: rate rose from %g to %g at size %d",
					kind, curve.RefsPerSec[i-1], curve.RefsPerSec[i], curve.SizesBytes[i])
			}
		}
	}
}

func TestMAPSEndpointsAgreeWithSTREAMAndGUPS(t *testing.T) {
	// The paper: "the lower right-hand portion of each unit-stride MAPS
	// curve corresponds to the STREAM score" (and random/GUPS likewise).
	cfg := machine.MustPreset(machine.ARLOpteron)
	unit, err := MAPS(cfg, MAPSUnitStride, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := STREAM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := unit.RefsPerSec[len(unit.RefsPerSec)-1] * 8
	if ratio := last / stream; ratio < 0.6 || ratio > 1.6 {
		t.Errorf("MAPS tail %g vs STREAM %g (ratio %g)", last, stream, ratio)
	}

	random, err := MAPS(cfg, MAPSRandomStride, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	gups, err := GUPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastR := random.RefsPerSec[len(random.RefsPerSec)-1]
	if ratio := lastR / gups; ratio < 0.4 || ratio > 2.5 {
		t.Errorf("random MAPS tail %g vs GUPS %g (ratio %g)", lastR, gups, ratio)
	}
}

func TestEnhancedMAPSSlower(t *testing.T) {
	cfg := machine.MustPreset(machine.NAVO655)
	std, err := MAPS(cfg, MAPSUnitStride, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := MAPS(cfg, MAPSUnitStride, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range std.RefsPerSec {
		if dep.RefsPerSec[i] >= std.RefsPerSec[i] {
			t.Errorf("dependency curve not slower at size %d: %g vs %g",
				std.SizesBytes[i], dep.RefsPerSec[i], std.RefsPerSec[i])
		}
	}
}

func TestMAPSRejectsUnknownKind(t *testing.T) {
	if _, err := MAPS(machine.Base(), MAPSKind(99), []int64{8192}, false); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestNetbench(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLAltix)
	nr, err := Netbench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nr.LatencySeconds <= 0 || nr.BandwidthBytesPerSec <= 0 || nr.AllReduce8At64 <= 0 {
		t.Fatalf("degenerate netbench: %+v", nr)
	}
	// The measured ping-pong bandwidth cannot exceed the link speed.
	if nr.BandwidthBytesPerSec > cfg.Net.BandwidthMBs*1e6*1.01 {
		t.Fatalf("bandwidth %g exceeds link %g", nr.BandwidthBytesPerSec, cfg.Net.BandwidthMBs*1e6)
	}
}

func TestMeasureComplete(t *testing.T) {
	pr, err := Measure(machine.MustPreset(machine.ASCSC45))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Machine != machine.ASCSC45 {
		t.Errorf("machine name %q", pr.Machine)
	}
	if pr.HPLFlopsPerSec <= 0 || pr.StreamBytesPerSec <= 0 || pr.GUPSRefsPerSec <= 0 {
		t.Fatal("missing scalar probes")
	}
	for _, c := range []Curve{pr.MAPSUnit, pr.MAPSRandom, pr.DepUnit, pr.DepRandom} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(c.SizesBytes) != len(MAPSSizes) {
			t.Fatalf("curve has %d points, want %d", len(c.SizesBytes), len(MAPSSizes))
		}
	}
	if pr.OverlapFraction <= 0 {
		t.Fatal("missing overlap fraction")
	}
	if pr.StreamRefsPerSec() != pr.StreamBytesPerSec/8 {
		t.Fatal("StreamRefsPerSec conversion wrong")
	}
}

func TestMeasureRejectsInvalidMachine(t *testing.T) {
	cfg := machine.Base()
	cfg.TotalProcs = 0
	if _, err := Measure(cfg); err == nil {
		t.Fatal("accepted invalid machine")
	}
}

func TestProbesDeterministic(t *testing.T) {
	cfg := machine.MustPreset(machine.ARLXeon)
	a, err := STREAM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := STREAM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("STREAM not deterministic: %g vs %g", a, b)
	}
}

// Property: curve interpolation stays within the bracketing values.
func TestQuickCurveInterpolationBounded(t *testing.T) {
	c := Curve{
		SizesBytes: []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22},
		RefsPerSec: []float64{400, 150, 40, 12},
	}
	f := func(wsRaw uint32) bool {
		ws := int64(wsRaw)%(1<<23) + 1
		v := c.At(ws)
		return v >= 12 && v <= 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps MAPS on three machines")
	}
	// Paper Figure 1's qualitative content: the p655 leads from L1, and
	// the Opteron leads from main memory.
	p655, err := MAPS(machine.MustPreset(machine.NAVO655), MAPSUnitStride, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	altix, err := MAPS(machine.MustPreset(machine.ARLAltix), MAPSUnitStride, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	opteron, err := MAPS(machine.MustPreset(machine.ARLOpteron), MAPSUnitStride, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	first, last := 0, len(MAPSSizes)-1
	if !(p655.RefsPerSec[first] > altix.RefsPerSec[first]) {
		t.Errorf("p655 L1 rate %g not above Altix %g", p655.RefsPerSec[first], altix.RefsPerSec[first])
	}
	if !(opteron.RefsPerSec[last] > p655.RefsPerSec[last] &&
		opteron.RefsPerSec[last] > altix.RefsPerSec[last]) {
		t.Errorf("Opteron memory rate %g not best (p655 %g, altix %g)",
			opteron.RefsPerSec[last], p655.RefsPerSec[last], altix.RefsPerSec[last])
	}
}
