package report

import (
	"strings"
	"testing"

	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/study"
)

// fixture builds a miniature study result by hand: two target systems, one
// application at two CPU counts, two metrics' worth of predictions.
func fixture() *study.Results {
	k32 := study.Key{App: "avus", Case: "standard", Procs: 32}
	k64 := study.Key{App: "avus", Case: "standard", Procs: 64}
	mkProbes := func(name string, hpl float64) *probes.Results {
		return &probes.Results{
			Machine:           name,
			HPLFlopsPerSec:    hpl,
			StreamBytesPerSec: 1e9,
			GUPSRefsPerSec:    1e7,
			MAPSUnit: probes.Curve{
				SizesBytes: []int64{8 << 10, 64 << 20},
				RefsPerSec: []float64{4e8, 1e8},
			},
			Net: probes.NetResults{LatencySeconds: 1e-5, BandwidthBytesPerSec: 3e8, AllReduce8At64: 1e-4},
		}
	}
	res := &study.Results{
		BaseName:    "BASE",
		TargetNames: []string{"SYS_A", "SYS_B"},
		Cells:       []study.Key{k32, k64},
		Probes: map[string]*probes.Results{
			"BASE":  mkProbes("BASE", 2e9),
			"SYS_A": mkProbes("SYS_A", 4e9),
			"SYS_B": mkProbes("SYS_B", 1e9),
		},
		Observed: map[study.Key]map[string]float64{
			k32: {"SYS_A": 500, "SYS_B": 2100},
			k64: {"SYS_A": 260}, // SYS_B missing at 64 CPUs
		},
		BaseTimes: map[study.Key]float64{k32: 1000, k64: 520},
	}
	for metricID := 1; metricID <= 9; metricID++ {
		for _, k := range res.Cells {
			for name, actual := range res.Observed[k] {
				pred := actual * (1 + 0.1*float64(metricID%3))
				res.Predictions = append(res.Predictions, study.Prediction{
					MetricID: metricID, Key: k, Machine: name,
					Predicted: pred, Actual: actual,
					SignedErr: (pred - actual) / actual * 100,
				})
			}
		}
	}
	return res
}

func TestTableString(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "22"}, {"333", "4"}},
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Fatalf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
}

// TestTableRaggedRows is a regression test: a row with more cells than
// columns used to panic String() with index out of range, and CSV emitted
// records narrower than the header.
func TestTableRaggedRows(t *testing.T) {
	tab := &Table{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1"}, {"1", "2", "3"}},
	}
	s := tab.String() // must not panic
	if !strings.Contains(s, "3") {
		t.Errorf("extra cell dropped from render:\n%s", s)
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if want := []string{"a,b", "1,", "1,2,3"}; len(lines) != len(want) {
		t.Fatalf("csv lines %q", lines)
	} else {
		for i := range want {
			if lines[i] != want[i] {
				t.Errorf("csv line %d = %q, want %q", i, lines[i], want[i])
			}
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Columns: []string{"x", "y"},
		Rows:    [][]string{{"a,b", `quote"d`}},
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"quote""d"`) {
		t.Errorf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("header missing: %q", csv)
	}
}

func TestTable4(t *testing.T) {
	tab := Table4(fixture())
	if len(tab.Rows) != 9 {
		t.Fatalf("Table 4 has %d rows, want 9", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1-S" || tab.Rows[8][0] != "9-P" {
		t.Fatalf("row labels wrong: %v ... %v", tab.Rows[0], tab.Rows[8])
	}
	// metric 3 (id%3==0) has zero error in the fixture.
	if tab.Rows[2][2] != "0" {
		t.Errorf("metric 3 mean = %s, want 0", tab.Rows[2][2])
	}
}

func TestTable5(t *testing.T) {
	tab := Table5(fixture())
	if len(tab.Rows) != 3 { // two systems + OVERALL
		t.Fatalf("Table 5 has %d rows", len(tab.Rows))
	}
	if tab.Rows[2][0] != "OVERALL" {
		t.Fatalf("last row %v", tab.Rows[2])
	}
}

func TestFigure(t *testing.T) {
	fs, err := Figure(fixture(), "avus-standard")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Procs) != 2 || fs.Procs[0] != 32 || fs.Procs[1] != 64 {
		t.Fatalf("procs %v", fs.Procs)
	}
	if len(fs.Errors[0]) != 9 {
		t.Fatalf("metric columns %d", len(fs.Errors[0]))
	}
	tab := fs.Table()
	if len(tab.Rows) != 2 {
		t.Fatalf("figure table rows %d", len(tab.Rows))
	}
	if _, err := Figure(fixture(), "nonesuch"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFigureNumber(t *testing.T) {
	if got := FigureNumber("avus-standard"); got != 3 {
		t.Errorf("avus-standard figure %d, want 3", got)
	}
	if got := FigureNumber("rfcth-standard"); got != 7 {
		t.Errorf("rfcth figure %d, want 7", got)
	}
	if got := FigureNumber("nope"); got != 0 {
		t.Errorf("unknown figure %d", got)
	}
}

func TestObservedTableShowsMissingCells(t *testing.T) {
	tab, err := ObservedTable(fixture(), "avus-standard")
	if err != nil {
		t.Fatal(err)
	}
	// SYS_B row must contain "--" for the missing 64-CPU cell.
	var sysB []string
	for _, row := range tab.Rows {
		if row[0] == "SYS_B" {
			sysB = row
		}
	}
	if sysB == nil {
		t.Fatal("SYS_B row missing")
	}
	if sysB[2] != "--" {
		t.Fatalf("missing cell rendered as %q, want --", sysB[2])
	}
	if sysB[1] != "2100" {
		t.Fatalf("observed cell %q", sysB[1])
	}
	if _, err := ObservedTable(fixture(), "zzz"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestMAPSCurveTable(t *testing.T) {
	res := fixture()
	tab := MAPSCurveTable([]*probes.Results{res.Probes["SYS_A"], res.Probes["SYS_B"]})
	if len(tab.Columns) != 3 {
		t.Fatalf("columns %v", tab.Columns)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d, want one per sweep size", len(tab.Rows))
	}
	if tab.Rows[0][0] != "8KB" || tab.Rows[1][0] != "64MB" {
		t.Fatalf("size labels %v / %v", tab.Rows[0][0], tab.Rows[1][0])
	}
	empty := MAPSCurveTable(nil)
	if len(empty.Rows) != 0 {
		t.Fatal("empty input produced rows")
	}
}

func TestProbeTable(t *testing.T) {
	tab := ProbeTable(fixture())
	if len(tab.Rows) != 3 { // base + two targets
		t.Fatalf("probe rows %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "BASE" {
		t.Fatalf("first row %v", tab.Rows[0])
	}
}

func TestBalancedTable(t *testing.T) {
	res := fixture()
	res.Balanced.FixedWeights = [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	res.Balanced.OptWeights = [3]float64{0.05, 0.5, 0.45}
	tab := BalancedTable(res)
	if len(tab.Rows) != 2 {
		t.Fatalf("balanced rows %d", len(tab.Rows))
	}
	if tab.Rows[1][1] != "5%" || tab.Rows[1][2] != "50%" {
		t.Fatalf("optimized weights row %v", tab.Rows[1])
	}
}

func TestRanking(t *testing.T) {
	got := Ranking(fixture())
	// SYS_A is ~2x faster than base, SYS_B ~2x slower.
	if len(got) != 2 || got[0] != "SYS_A" || got[1] != "SYS_B" {
		t.Fatalf("ranking %v", got)
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int64]string{512: "512B", 8 << 10: "8KB", 2 << 20: "2MB"}
	for in, want := range cases {
		if got := formatSize(in); got != want {
			t.Errorf("formatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestCorrelationTable(t *testing.T) {
	tab, err := CorrelationTable(fixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("correlation rows %d", len(tab.Rows))
	}
	// The fixture's predictions are exact multiples of the actuals, so
	// every metric correlates perfectly.
	for _, row := range tab.Rows {
		if row[2] != "1.000" || row[3] != "1.000" {
			t.Fatalf("fixture correlation row %v, want perfect", row)
		}
	}
}
