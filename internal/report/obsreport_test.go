package report

import (
	"reflect"
	"testing"
	"time"

	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/study"
)

// TestPhaseTableGolden pins the flame summary byte-for-byte over a
// synthetic span log with fixed durations: the -trace table is
// deterministic modulo the timestamps themselves.
func TestPhaseTableGolden(t *testing.T) {
	recs := []obs.SpanRecord{
		{ID: 1, Name: "study", Path: "study", StartNs: 0, DurNs: 10_000_000_000},
		{ID: 2, Parent: 1, Name: "observe", Path: "study/observe", StartNs: 1_000_000_000, DurNs: 3_000_000_000},
		{ID: 3, Parent: 1, Name: "observe", Path: "study/observe", StartNs: 4_000_000_000, DurNs: 3_000_000_000},
		{ID: 4, Parent: 2, Name: "trace", Path: "study/observe/trace", StartNs: 1_500_000_000, DurNs: 1_000_000_000},
	}
	got := PhaseTable(obs.PhaseStats(recs)).CSV()
	want := "Phase,Count,Total(s),Self(s),Self(%)\n" +
		"study,1,10.000,4.000,40.0\n" +
		"  observe,2,6.000,5.000,50.0\n" +
		"    trace,1,1.000,1.000,10.0\n"
	if got != want {
		t.Errorf("PhaseTable CSV = \n%s\nwant:\n%s", got, want)
	}
}

// TestPhaseTableMergesShardLogs feeds PhaseTable the concatenation of
// two shard workers' span logs — slot-prefixed IDs, per-shard roots —
// and pins the merged flame summary: paths aggregate across shards (one
// row per path, counts and totals summed), and parent lookups stay
// inside each worker's ID slot.
func TestPhaseTableMergesShardLogs(t *testing.T) {
	slot := func(n uint64) uint64 { return n << 48 }
	recs := []obs.SpanRecord{
		{ID: slot(1) + 1, Name: "study", Path: "study", DurNs: 10_000_000_000, Shard: "shard0"},
		{ID: slot(1) + 2, Parent: slot(1) + 1, Name: "observe", Path: "study/observe", DurNs: 4_000_000_000, Shard: "shard0"},
		{ID: slot(2) + 1, Name: "study", Path: "study", DurNs: 10_000_000_000, Shard: "shard1"},
		{ID: slot(2) + 2, Parent: slot(2) + 1, Name: "observe", Path: "study/observe", DurNs: 6_000_000_000, Shard: "shard1"},
	}
	got := PhaseTable(obs.PhaseStats(recs)).CSV()
	want := "Phase,Count,Total(s),Self(s),Self(%)\n" +
		"study,2,20.000,10.000,50.0\n" +
		"  observe,2,10.000,10.000,50.0\n"
	if got != want {
		t.Errorf("merged PhaseTable CSV = \n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryTableGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cells_total").Add(6)
	r.Gauge("workers_busy").Add(3)
	r.Gauge("workers_busy").Add(-2)
	r.Histogram("wait_seconds").Observe(250 * time.Millisecond)
	r.Histogram("wait_seconds").Observe(750 * time.Millisecond)
	got := RegistryTable(r.Snapshot()).CSV()
	want := "Metric,Kind,Value\n" +
		"cells_total,counter,6\n" +
		"workers_busy,gauge,1 (peak 3)\n" +
		"wait_seconds,histogram,n=2 mean=0.500000s sum=1.000s\n"
	if got != want {
		t.Errorf("RegistryTable CSV = \n%s\nwant:\n%s", got, want)
	}
}

func TestSkipTable(t *testing.T) {
	res := fixture()
	k := res.Cells[1]
	res.Skips = map[study.Key]map[string]study.Skip{
		k: {"SYS_B": {Reason: study.SkipTooLarge, Detail: "64 cpus exceed system size", Attempts: 1}},
	}
	tab := SkipTable(res)
	if len(tab.Rows) != 1 {
		t.Fatalf("skip rows = %d, want 1", len(tab.Rows))
	}
	want := []string{k.String(), "SYS_B", "job-too-large", "1", "64 cpus exceed system size"}
	if !reflect.DeepEqual(tab.Rows[0], want) {
		t.Errorf("skip row = %v, want %v", tab.Rows[0], want)
	}
}

// TestObservedTableMarksErrors distinguishes the paper's expected blanks
// (job too large, rendered "--") from observations lost to a failure
// (rendered "ERR").
func TestObservedTableMarksErrors(t *testing.T) {
	res := fixture()
	k := res.Cells[1]
	res.Skips = map[study.Key]map[string]study.Skip{
		k: {"SYS_B": {Reason: study.SkipError, Detail: "simulated exec fault"}},
	}
	tab, err := ObservedTable(res, "avus-standard")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] != "SYS_B" {
			continue
		}
		if got := row[len(row)-1]; got != "ERR" {
			t.Errorf("SYS_B @ 64 CPUs renders %q, want ERR", got)
		}
		return
	}
	t.Fatal("no SYS_B row in observed table")
}
