package report

import (
	"fmt"
	"strings"

	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/study"
)

// PhaseTable renders the flame-style per-phase summary of a traced run:
// one row per span path, indented by depth, with total time (sum over
// all spans on that path), self time (total minus direct children), and
// self time as a share of the run's root total. With a parallel worker
// pool, children's summed time can exceed the parent's wall-clock — the
// Total column then reads as aggregate work, not elapsed time.
func PhaseTable(stats []obs.PhaseStat) *Table {
	t := &Table{
		Title:   "Per-phase time (flame summary)",
		Columns: []string{"Phase", "Count", "Total(s)", "Self(s)", "Self(%)"},
	}
	var rootNs int64
	for _, st := range stats {
		if !strings.Contains(st.Path, "/") {
			rootNs += st.TotalNs
		}
	}
	for _, st := range stats {
		depth := strings.Count(st.Path, "/")
		name := st.Path
		if i := strings.LastIndex(st.Path, "/"); i >= 0 {
			name = st.Path[i+1:]
		}
		selfPct := 0.0
		if rootNs > 0 {
			selfPct = float64(st.SelfNs) / float64(rootNs) * 100
		}
		t.Rows = append(t.Rows, []string{
			strings.Repeat("  ", depth) + name,
			fmt.Sprintf("%d", st.Count),
			fmt.Sprintf("%.3f", float64(st.TotalNs)/1e9),
			fmt.Sprintf("%.3f", float64(st.SelfNs)/1e9),
			fmt.Sprintf("%.1f", selfPct),
		})
	}
	return t
}

// RegistryTable renders a metrics-registry snapshot: counters, gauges
// (with peaks), and histograms (count, mean, max bucket bound reached).
func RegistryTable(snap obs.Snapshot) *Table {
	t := &Table{
		Title:   "Run metrics",
		Columns: []string{"Metric", "Kind", "Value"},
	}
	for _, c := range snap.Counters {
		t.Rows = append(t.Rows, []string{c.Name, "counter", fmt.Sprintf("%d", c.Value)})
	}
	for _, g := range snap.Gauges {
		t.Rows = append(t.Rows, []string{
			g.Name, "gauge", fmt.Sprintf("%d (peak %d)", g.Value, g.Peak),
		})
	}
	for _, h := range snap.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.SumNs) / float64(h.Count) / 1e9
		}
		t.Rows = append(t.Rows, []string{
			h.Name, "histogram",
			fmt.Sprintf("n=%d mean=%.6fs sum=%.3fs", h.Count, mean, float64(h.SumNs)/1e9),
		})
	}
	return t
}

// SkipTable is the appendix-style skip report: every absent observation
// with its reason and how many attempts the harness spent on it, so a
// cell that failed after three retries is distinguishable from one that
// failed fast. Too-large cells are the paper's expected blanks; error
// and timeout rows are observations the run lost to a real failure or a
// reclaimed stall.
func SkipTable(res *study.Results) *Table {
	t := &Table{
		Title:   "Skipped observations",
		Columns: []string{"Cell", "System", "Reason", "Attempts", "Detail"},
	}
	for _, key := range res.Cells {
		for _, name := range res.TargetNames {
			s, ok := res.SkipFor(key, name)
			if !ok {
				continue
			}
			t.Rows = append(t.Rows, []string{
				key.String(), name, string(s.Reason), fmt.Sprintf("%d", s.Attempts), s.Detail,
			})
		}
	}
	return t
}
