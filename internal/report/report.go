// Package report renders study results as the paper's tables and figures:
// aligned ASCII tables for terminals, CSV for plotting, and series data
// for the per-application figures. Every table and figure of the paper's
// evaluation section has a renderer here.
package report

import (
	"fmt"
	"sort"
	"strings"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/study"
)

// Table is a generic rendered table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// normalized pads row with empty cells up to the table's column count.
// Extra cells beyond the columns are kept: both renderers print ragged
// rows rather than panic or silently drop data.
func (t *Table) normalized(row []string) []string {
	if len(row) >= len(t.Columns) {
		return row
	}
	out := make([]string, len(t.Columns))
	copy(out, row)
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell) // ragged extra: no column to align to
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(t.normalized(row))
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted). Rows narrower than the header are padded with
// empty cells so every record has at least the header's field count.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(t.normalized(row))
	}
	return b.String()
}

// Table4 renders the paper's Table 4: average absolute error and standard
// deviation per metric.
func Table4(res *study.Results) *Table {
	t := &Table{
		Title:   "Table 4. Error assessment: metric results vs application run time",
		Columns: []string{"# & Type", "Metric", "AvgAbsErr(%)", "StdDev(%)"},
	}
	for _, m := range metrics.All() {
		s := res.MetricSummary(m.ID)
		t.Rows = append(t.Rows, []string{
			m.Label(), m.Name,
			fmt.Sprintf("%.0f", s.MeanAbs), fmt.Sprintf("%.0f", s.StdAbs),
		})
	}
	return t
}

// Table5 renders the paper's Table 5: per-system average absolute error
// for each metric, with the overall row.
func Table5(res *study.Results) *Table {
	t := &Table{
		Title:   "Table 5. System-specific average absolute percent error",
		Columns: []string{"System", "1", "2", "3", "4", "5", "6", "7", "8", "9"},
	}
	for _, name := range res.TargetNames {
		row := []string{name}
		for id := 1; id <= 9; id++ {
			row = append(row, fmt.Sprintf("%.0f", res.SystemSummary(name, id).MeanAbs))
		}
		t.Rows = append(t.Rows, row)
	}
	overall := []string{"OVERALL"}
	for id := 1; id <= 9; id++ {
		overall = append(overall, fmt.Sprintf("%.0f", res.MetricSummary(id).MeanAbs))
	}
	t.Rows = append(t.Rows, overall)
	return t
}

// FigureSeries is the data behind one of the paper's bar figures: for each
// CPU count of one application, the mean absolute error of each metric.
type FigureSeries struct {
	AppID  string
	Procs  []int
	Errors [][]float64 // [cpuIndex][metricIndex 0..8]
}

// Figure returns the per-application error assessment (paper Figures 3-7).
func Figure(res *study.Results, appID string) (*FigureSeries, error) {
	cells := res.AppCells(appID)
	if len(cells) == 0 {
		return nil, fmt.Errorf("report: no cells for app %q", appID)
	}
	fs := &FigureSeries{AppID: appID}
	for _, key := range cells {
		fs.Procs = append(fs.Procs, key.Procs)
		var row []float64
		for id := 1; id <= 9; id++ {
			row = append(row, res.CellSummary(key, id).MeanAbs)
		}
		fs.Errors = append(fs.Errors, row)
	}
	return fs, nil
}

// FigureNumber returns the paper's figure number for an application's
// error assessment (Figures 3-7 in registry order), or 0 if unknown.
func FigureNumber(appID string) int {
	for i, tc := range apps.Registry() {
		if tc.ID() == appID {
			return 3 + i
		}
	}
	return 0
}

// Table renders the figure series as a table (the figures are bar charts
// of exactly these numbers).
func (fs *FigureSeries) Table() *Table {
	title := fmt.Sprintf("Error assessment for %s", fs.AppID)
	if n := FigureNumber(fs.AppID); n > 0 {
		title = fmt.Sprintf("Figure %d. Graphical error assessment for %s", n, fs.AppID)
	}
	t := &Table{
		Title:   title,
		Columns: []string{"CPUs", "1-S", "2-S", "3-S", "4-P", "5-P", "6-P", "7-P", "8-P", "9-P"},
	}
	for i, procs := range fs.Procs {
		row := []string{fmt.Sprintf("%d", procs)}
		for _, e := range fs.Errors[i] {
			row = append(row, fmt.Sprintf("%.0f", e))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ObservedTable renders one application's observed times-to-solution — the
// analogs of the paper's Appendix tables 6-10. Missing cells (jobs larger
// than the machine) render as "--", like the paper's blanks; cells lost
// to a real execution failure render as "ERR", cells whose attempts all
// outlived the cell deadline as "T/O" (see SkipTable for the details).
func ObservedTable(res *study.Results, appID string) (*Table, error) {
	cells := res.AppCells(appID)
	if len(cells) == 0 {
		return nil, fmt.Errorf("report: no cells for app %q", appID)
	}
	cols := []string{"Machine"}
	for _, key := range cells {
		cols = append(cols, fmt.Sprintf("%d-CPUs", key.Procs))
	}
	t := &Table{
		Title:   fmt.Sprintf("%s observed times-to-solution (s)", appID),
		Columns: cols,
	}
	for _, name := range res.TargetNames {
		row := []string{name}
		for _, key := range cells {
			if v, ok := res.Observed[key][name]; ok {
				row = append(row, fmt.Sprintf("%.0f", v))
			} else if s, ok := res.SkipFor(key, name); ok && s.Reason == study.SkipError {
				row = append(row, "ERR")
			} else if ok && s.Reason == study.SkipTimeout {
				row = append(row, "T/O")
			} else {
				row = append(row, "--")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// MAPSCurveTable renders unit-stride MAPS bandwidth versus working-set
// size for a set of systems — the data behind the paper's Figure 1.
func MAPSCurveTable(results []*probes.Results) *Table {
	t := &Table{
		Title:   "Figure 1. Unit-stride memory bandwidth (GB/s) vs working-set size",
		Columns: []string{"Size"},
	}
	for _, pr := range results {
		t.Columns = append(t.Columns, pr.Machine)
	}
	if len(results) == 0 {
		return t
	}
	for i, size := range results[0].MAPSUnit.SizesBytes {
		row := []string{formatSize(size)}
		for _, pr := range results {
			row = append(row, fmt.Sprintf("%.2f", pr.MAPSUnit.RefsPerSec[i]*8/1e9))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ProbeTable summarizes the probe suite across machines.
func ProbeTable(res *study.Results) *Table {
	t := &Table{
		Title: "Synthetic probe results",
		Columns: []string{
			"Machine", "HPL(GF/s)", "STREAM(GB/s)", "GUPS(Mref/s)",
			"NetLat(us)", "NetBW(MB/s)", "AllReduce64(us)",
		},
	}
	names := append([]string{res.BaseName}, res.TargetNames...)
	for _, name := range names {
		pr := res.Probes[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", pr.HPLFlopsPerSec/1e9),
			fmt.Sprintf("%.2f", pr.StreamBytesPerSec/1e9),
			fmt.Sprintf("%.1f", pr.GUPSRefsPerSec/1e6),
			fmt.Sprintf("%.1f", pr.Net.LatencySeconds*1e6),
			fmt.Sprintf("%.0f", pr.Net.BandwidthBytesPerSec/1e6),
			fmt.Sprintf("%.1f", pr.Net.AllReduce8At64*1e6),
		})
	}
	return t
}

// BalancedTable renders the balanced-rating side experiment.
func BalancedTable(res *study.Results) *Table {
	t := &Table{
		Title:   "Balanced rating (HPL / STREAM / all_reduce)",
		Columns: []string{"Weighting", "HPL", "STREAM", "all_reduce", "AvgAbsErr(%)", "StdDev(%)"},
	}
	b := res.Balanced
	t.Rows = append(t.Rows, []string{
		"fixed",
		fmt.Sprintf("%.0f%%", b.FixedWeights[0]*100),
		fmt.Sprintf("%.0f%%", b.FixedWeights[1]*100),
		fmt.Sprintf("%.0f%%", b.FixedWeights[2]*100),
		fmt.Sprintf("%.0f", b.FixedSummary.MeanAbs),
		fmt.Sprintf("%.0f", b.FixedSummary.StdAbs),
	})
	t.Rows = append(t.Rows, []string{
		"optimized",
		fmt.Sprintf("%.0f%%", b.OptWeights[0]*100),
		fmt.Sprintf("%.0f%%", b.OptWeights[1]*100),
		fmt.Sprintf("%.0f%%", b.OptWeights[2]*100),
		fmt.Sprintf("%.0f", b.OptSummary.MeanAbs),
		fmt.Sprintf("%.0f", b.OptSummary.StdAbs),
	})
	return t
}

// Ranking returns system names ordered best-first by mean observed time
// ratio to the base across all cells where the system was observed — the
// "application ranking" the paper's introduction motivates.
func Ranking(res *study.Results) []string {
	type score struct {
		name string
		mean float64
	}
	var scores []score
	for _, name := range res.TargetNames {
		var sum float64
		var n int
		for _, key := range res.Cells {
			if v, ok := res.Observed[key][name]; ok {
				sum += v / res.BaseTimes[key]
				n++
			}
		}
		if n > 0 {
			scores = append(scores, score{name, sum / float64(n)})
		}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].mean < scores[j].mean })
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.name
	}
	return out
}

func formatSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// CorrelationTable renders prediction-vs-observed correlation per metric —
// the "correlation of each estimator to true performance" the paper's
// introduction promises to determine.
func CorrelationTable(res *study.Results) (*Table, error) {
	t := &Table{
		Title:   "Correlation of each metric's predictions with true performance",
		Columns: []string{"# & Type", "Metric", "Pearson r", "Spearman rho"},
	}
	for _, m := range metrics.All() {
		c, err := res.MetricCorrelation(m.ID)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Label(), m.Name,
			fmt.Sprintf("%.3f", c.Pearson), fmt.Sprintf("%.3f", c.Spearman),
		})
	}
	return t, nil
}
