// Package study orchestrates the full SC'05 reproduction: probe every
// system, observe every (application, processor count, system) cell with
// the ground-truth executor, trace every application instance on the base
// system, apply all nine metrics plus the balanced rating, and aggregate
// errors into the paper's tables and figures.
//
// The paper's grid is 5 test cases × 3 processor counts × 10 target
// systems = 150 observations and 9 × 150 = 1,350 predictions; cells whose
// processor count exceeds a machine's size are recorded as missing, like
// the blank entries in the paper's appendix.
package study

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/simexec"
	"hpcmetrics/internal/stats"
	"hpcmetrics/internal/trace"
)

// Key identifies one (application, case, processor count) cell.
type Key struct {
	App   string
	Case  string
	Procs int
}

// String formats the key as "app-case@procs".
func (k Key) String() string { return fmt.Sprintf("%s-%s@%d", k.App, k.Case, k.Procs) }

// AppID returns "app-case".
func (k Key) AppID() string { return k.App + "-" + k.Case }

// Prediction is one of the study's 1,350 predictions.
type Prediction struct {
	MetricID  int
	Key       Key
	Machine   string
	Predicted float64 // seconds
	Actual    float64 // seconds
	SignedErr float64 // Equation 2, percent
}

// BalancedResult is the IDC balanced-rating side experiment.
type BalancedResult struct {
	FixedWeights   stats.Weights3
	FixedSummary   stats.Summary
	OptWeights     stats.Weights3
	OptSummary     stats.Summary
	FixedPredicted []Prediction // MetricID 0: fixed weights
}

// Results is everything the study produced.
type Results struct {
	BaseName    string
	TargetNames []string // paper Table 5 order
	Cells       []Key    // 15 cells in paper order
	Probes      map[string]*probes.Results
	Observed    map[Key]map[string]float64 // seconds per machine; absent if the job does not fit
	BaseTimes   map[Key]float64
	Traces      map[Key]*trace.Trace
	Predictions []Prediction
	Balanced    BalancedResult
}

// NoiseAmplitude is the deterministic stand-in for run-to-run variability
// of real observed times (OS jitter, placement, I/O): every recorded
// observation is scaled by a factor in [1-amp, 1+amp] hashed from its
// (cell, machine) identity. The paper's observed times carry such noise
// inherently; without it, a target machine that happens to resemble the
// base would be predicted with implausibly perfect accuracy.
const NoiseAmplitude = 0.10

// observationNoise returns the deterministic noise factor for one cell on
// one machine.
func observationNoise(key Key, machineName string) float64 {
	var h uint64 = 1469598103934665603 // FNV-1a over "cell|machine"
	for _, s := range []string{key.String(), "|", machineName} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	u := float64(h>>11) / float64(uint64(1)<<53) // uniform [0,1)
	return 1 + NoiseAmplitude*(2*u-1)
}

// Options configures a run. The ablation switches exist to quantify how
// much each model ingredient contributes to the study's error structure
// (DESIGN.md calls these out); all are off for the paper reproduction.
type Options struct {
	// Progress, when non-nil, receives one line per completed stage.
	Progress io.Writer
	// Apps, when non-empty, restricts the study to the named test cases
	// ("avus-standard", ...) — handy for quick partial studies.
	Apps []string
	// DisableNoise turns off the deterministic observation noise.
	DisableNoise bool
	// IdleMemory runs applications on idle-node memory, removing the
	// probe-vs-production loaded-memory gap.
	IdleMemory bool
	// NoDependencyFlags blinds the static analyzer, so Metric #9
	// degenerates to Metric #8.
	NoDependencyFlags bool
}

func (o Options) wantsApp(id string) bool {
	if len(o.Apps) == 0 {
		return true
	}
	for _, a := range o.Apps {
		if a == id {
			return true
		}
	}
	return false
}

func (o Options) noise(key Key, machineName string) float64 {
	if o.DisableNoise {
		return 1
	}
	return observationNoise(key, machineName)
}

// idle returns the machine with its loaded-memory gap removed, for the
// IdleMemory ablation.
func idle(cfg *machine.Config) *machine.Config {
	out := cfg.Clone()
	out.MemLoadedFraction = 1
	out.MemLoadedLatencyFactor = 1
	return out
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Run executes the full study.
func Run(opts Options) (*Results, error) {
	base := machine.Base()
	targets := machine.StudyTargets()

	res := &Results{
		BaseName:  base.Name,
		Probes:    make(map[string]*probes.Results),
		Observed:  make(map[Key]map[string]float64),
		BaseTimes: make(map[Key]float64),
		Traces:    make(map[Key]*trace.Trace),
	}
	for _, t := range targets {
		res.TargetNames = append(res.TargetNames, t.Name)
	}

	// Stage 1: probe all machines (base + targets).
	all := append([]*machine.Config{base}, targets...)
	for _, cfg := range all {
		pr, err := probes.Measure(cfg)
		if err != nil {
			return nil, fmt.Errorf("study: probing %s: %w", cfg.Name, err)
		}
		res.Probes[cfg.Name] = pr
		opts.logf("probed %s (HPL %.2f GF/s, STREAM %.2f GB/s)", cfg.Name,
			pr.HPLFlopsPerSec/1e9, pr.StreamBytesPerSec/1e9)
	}

	execTarget := func(cfg *machine.Config) *machine.Config {
		if opts.IdleMemory {
			return idle(cfg)
		}
		return cfg
	}

	// Stage 2: instantiate cells, observe ground truth, trace on base.
	for _, tc := range apps.Registry() {
		if !opts.wantsApp(tc.ID()) {
			continue
		}
		for _, procs := range tc.CPUCounts {
			key := Key{App: tc.Name, Case: tc.Case, Procs: procs}
			res.Cells = append(res.Cells, key)
			app, err := tc.Instance(procs)
			if err != nil {
				return nil, fmt.Errorf("study: %s: %w", key, err)
			}

			baseRun, err := simexec.Execute(execTarget(base), app)
			if err != nil {
				return nil, fmt.Errorf("study: base run %s: %w", key, err)
			}
			res.BaseTimes[key] = baseRun.Seconds * opts.noise(key, base.Name)

			tr, err := trace.Collect(base, app)
			if err != nil {
				return nil, fmt.Errorf("study: tracing %s: %w", key, err)
			}
			if opts.NoDependencyFlags {
				for i := range tr.Blocks {
					tr.Blocks[i].ILPLimited = false
				}
			}
			res.Traces[key] = tr

			obs := make(map[string]float64, len(targets))
			for _, cfg := range targets {
				run, err := simexec.Execute(execTarget(cfg), app)
				if errors.Is(err, simexec.ErrTooLarge) {
					continue // missing cell, like the paper's blanks
				}
				if err != nil {
					return nil, fmt.Errorf("study: observing %s on %s: %w", key, cfg.Name, err)
				}
				obs[cfg.Name] = run.Seconds * opts.noise(key, cfg.Name)
			}
			res.Observed[key] = obs
			opts.logf("observed %s on %d systems (base %.0f s)", key, len(obs), baseRun.Seconds)
		}
	}

	// Stage 3: the 9 × 150 predictions.
	basePr := res.Probes[res.BaseName]
	for _, m := range metrics.All() {
		for _, key := range res.Cells {
			for _, name := range res.TargetNames {
				actual, ok := res.Observed[key][name]
				if !ok {
					continue
				}
				pred, err := m.Predict(metrics.Context{
					Trace:       res.Traces[key],
					Base:        basePr,
					Target:      res.Probes[name],
					BaseSeconds: res.BaseTimes[key],
				})
				if err != nil {
					return nil, fmt.Errorf("study: metric %s on %s/%s: %w", m.Label(), key, name, err)
				}
				res.Predictions = append(res.Predictions, Prediction{
					MetricID:  m.ID,
					Key:       key,
					Machine:   name,
					Predicted: pred,
					Actual:    actual,
					SignedErr: metrics.SignedError(pred, actual),
				})
			}
		}
		opts.logf("metric %s done", m.Label())
	}

	// Stage 4: balanced rating (fixed and optimized weights).
	if err := res.runBalanced(); err != nil {
		return nil, err
	}
	opts.logf("balanced rating: fixed %.0f%%, optimized %.0f%% at weights %.2v",
		res.Balanced.FixedSummary.MeanAbs, res.Balanced.OptSummary.MeanAbs, res.Balanced.OptWeights)

	return res, nil
}

func (r *Results) runBalanced() error {
	pool := make([]*probes.Results, 0, len(r.TargetNames))
	for _, name := range r.TargetNames {
		pool = append(pool, r.Probes[name])
	}
	basePr := r.Probes[r.BaseName]

	var obs []metrics.RatingObservation
	for _, key := range r.Cells {
		for _, name := range r.TargetNames {
			actual, ok := r.Observed[key][name]
			if !ok {
				continue
			}
			obs = append(obs, metrics.RatingObservation{
				Base: basePr, Target: r.Probes[name],
				BaseSeconds: r.BaseTimes[key], ActualSeconds: actual,
			})
		}
	}

	fixed, err := metrics.NewRating(pool, metrics.EqualWeights)
	if err != nil {
		return fmt.Errorf("study: %w", err)
	}
	var fixedErrs []float64
	for _, key := range r.Cells {
		for _, name := range r.TargetNames {
			actual, ok := r.Observed[key][name]
			if !ok {
				continue
			}
			pred, err := fixed.Predict(basePr, r.Probes[name], r.BaseTimes[key])
			if err != nil {
				return fmt.Errorf("study: %w", err)
			}
			signed := metrics.SignedError(pred, actual)
			fixedErrs = append(fixedErrs, signed)
			r.Balanced.FixedPredicted = append(r.Balanced.FixedPredicted, Prediction{
				Key: key, Machine: name, Predicted: pred, Actual: actual, SignedErr: signed,
			})
		}
	}
	r.Balanced.FixedWeights = metrics.EqualWeights
	r.Balanced.FixedSummary = stats.Summarize(fixedErrs)

	w, _, err := metrics.OptimizeRating(pool, obs, 0.05)
	if err != nil {
		return fmt.Errorf("study: %w", err)
	}
	r.Balanced.OptWeights = w
	opt, err := metrics.NewRating(pool, w)
	if err != nil {
		return fmt.Errorf("study: %w", err)
	}
	var optErrs []float64
	for _, o := range obs {
		pred, err := opt.Predict(o.Base, o.Target, o.BaseSeconds)
		if err != nil {
			return fmt.Errorf("study: %w", err)
		}
		optErrs = append(optErrs, metrics.SignedError(pred, o.ActualSeconds))
	}
	r.Balanced.OptSummary = stats.Summarize(optErrs)
	return nil
}

// --- Aggregations ---

// MetricSummary returns the paper's Table 4 row for one metric.
func (r *Results) MetricSummary(metricID int) stats.Summary {
	var errs []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID {
			errs = append(errs, p.SignedErr)
		}
	}
	return stats.Summarize(errs)
}

// SystemSummary returns the paper's Table 5 cell: mean |error| for one
// (system, metric) pair.
func (r *Results) SystemSummary(system string, metricID int) stats.Summary {
	var errs []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID && p.Machine == system {
			errs = append(errs, p.SignedErr)
		}
	}
	return stats.Summarize(errs)
}

// CellSummary returns the mean |error| for one (cell, metric) pair across
// systems — one bar of the paper's Figures 3-7.
func (r *Results) CellSummary(key Key, metricID int) stats.Summary {
	var errs []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID && p.Key == key {
			errs = append(errs, p.SignedErr)
		}
	}
	return stats.Summarize(errs)
}

// AppCells returns the study cells of one application in CPU-count order.
func (r *Results) AppCells(appID string) []Key {
	var out []Key
	for _, k := range r.Cells {
		if k.AppID() == appID {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Procs < out[j].Procs })
	return out
}

// ObservationCount returns how many (cell, system) observations exist.
func (r *Results) ObservationCount() int {
	var n int
	for _, obs := range r.Observed {
		n += len(obs)
	}
	return n
}

// --- Shared singleton ---

var (
	sharedOnce sync.Once
	sharedRes  *Results
	sharedErr  error
)

// Shared runs the full study once per process and caches the outcome.
// Tests, benchmarks, and report generators all share it.
func Shared() (*Results, error) {
	sharedOnce.Do(func() {
		sharedRes, sharedErr = Run(Options{})
	})
	return sharedRes, sharedErr
}

// Correlation is the paper's Section 1 framing ("the correlation of each
// estimator to true performance data"): how well one metric's predictions
// track the observed runtimes across the whole study.
type Correlation struct {
	MetricID int
	N        int
	// Pearson correlates predicted and actual seconds linearly.
	Pearson float64
	// Spearman correlates their ranks — the system-ranking question.
	Spearman float64
}

// MetricCorrelation computes prediction-vs-actual correlation for one
// metric over every observed cell.
func (r *Results) MetricCorrelation(metricID int) (Correlation, error) {
	var pred, actual []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID {
			pred = append(pred, p.Predicted)
			actual = append(actual, p.Actual)
		}
	}
	pe, err := stats.Pearson(pred, actual)
	if err != nil {
		return Correlation{}, fmt.Errorf("study: metric %d: %w", metricID, err)
	}
	sp, err := stats.Spearman(pred, actual)
	if err != nil {
		return Correlation{}, fmt.Errorf("study: metric %d: %w", metricID, err)
	}
	return Correlation{MetricID: metricID, N: len(pred), Pearson: pe, Spearman: sp}, nil
}
