// Package study orchestrates the full SC'05 reproduction: probe every
// system, observe every (application, processor count, system) cell with
// the ground-truth executor, trace every application instance on the base
// system, apply all nine metrics plus the balanced rating, and aggregate
// errors into the paper's tables and figures.
//
// The paper's grid is 5 test cases × 3 processor counts × 10 target
// systems = 150 observations and 9 × 150 = 1,350 predictions; cells whose
// processor count exceeds a machine's size are recorded as missing, like
// the blank entries in the paper's appendix.
package study

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/par"
	"hpcmetrics/internal/persist"
	"hpcmetrics/internal/predictor"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/retry"
	"hpcmetrics/internal/simexec"
	"hpcmetrics/internal/stats"
	"hpcmetrics/internal/trace"
)

// Key identifies one (application, case, processor count) cell.
type Key struct {
	App   string
	Case  string
	Procs int
}

// String formats the key as "app-case@procs".
func (k Key) String() string { return fmt.Sprintf("%s-%s@%d", k.App, k.Case, k.Procs) }

// AppID returns "app-case".
func (k Key) AppID() string { return k.App + "-" + k.Case }

// Prediction is one of the study's 1,350 predictions.
type Prediction struct {
	MetricID  int
	Key       Key
	Machine   string
	Predicted float64 // seconds
	Actual    float64 // seconds
	SignedErr float64 // Equation 2, percent
}

// BalancedResult is the IDC balanced-rating side experiment.
type BalancedResult struct {
	FixedWeights   stats.Weights3
	FixedSummary   stats.Summary
	OptWeights     stats.Weights3
	OptSummary     stats.Summary
	FixedPredicted []Prediction // MetricID 0: fixed weights
}

// SkipReason classifies why a (cell, system) observation is absent.
type SkipReason string

const (
	// SkipTooLarge marks a cell whose processor count exceeds the
	// machine's size — the paper's blank appendix entries.
	SkipTooLarge SkipReason = "job-too-large"
	// SkipError marks a cell whose target execution failed; the study
	// records the failure and carries on with the remaining cells.
	SkipError SkipReason = "error"
	// SkipTimeout marks a cell whose attempts all outlived
	// Options.CellTimeout — a stalled run reclaimed by its deadline.
	SkipTimeout SkipReason = "timeout"
)

// Skip records why one (cell, system) observation is missing.
type Skip struct {
	Reason SkipReason
	Detail string
	// Attempts is how many attempts ran before the study gave up, so a
	// cell that failed after three retries is distinguishable from one
	// that failed fast. 0 on records predating attempt tracking.
	Attempts int
}

// Results is everything the study produced.
type Results struct {
	BaseName    string
	TargetNames []string // paper Table 5 order
	Cells       []Key    // 15 cells in paper order
	Probes      map[string]*probes.Results
	Observed    map[Key]map[string]float64 // seconds per machine; absent if the job does not fit
	Skips       map[Key]map[string]Skip    // why each absent observation is absent
	BaseTimes   map[Key]float64
	Traces      map[Key]*trace.Trace
	Predictions []Prediction
	Balanced    BalancedResult
	// Quarantined and MissingShards describe what a CheckpointDir merge
	// had to route around: shard journals excluded as corrupt or
	// unreadable, and slice indexes no journal covered. Their units were
	// recomputed by this run, so the results themselves are whole.
	Quarantined   []persist.Quarantined
	MissingShards []int
}

// SkipFor returns the skip record for one (cell, system) pair, if any.
func (r *Results) SkipFor(key Key, system string) (Skip, bool) {
	s, ok := r.Skips[key][system]
	return s, ok
}

// SkipCounts tallies skips by reason across the whole grid.
func (r *Results) SkipCounts() map[SkipReason]int {
	out := make(map[SkipReason]int)
	for _, byMachine := range r.Skips {
		for _, s := range byMachine {
			out[s.Reason]++
		}
	}
	return out
}

// NoiseAmplitude is the deterministic stand-in for run-to-run variability
// of real observed times (OS jitter, placement, I/O): every recorded
// observation is scaled by a factor in [1-amp, 1+amp] hashed from its
// (cell, machine) identity. The paper's observed times carry such noise
// inherently; without it, a target machine that happens to resemble the
// base would be predicted with implausibly perfect accuracy.
const NoiseAmplitude = 0.10

// observationNoise returns the deterministic noise factor for one cell on
// one machine.
func observationNoise(key Key, machineName string) float64 {
	var h uint64 = 1469598103934665603 // FNV-1a over "cell|machine"
	for _, s := range []string{key.String(), "|", machineName} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	u := float64(h>>11) / float64(uint64(1)<<53) // uniform [0,1)
	return 1 + NoiseAmplitude*(2*u-1)
}

// Options configures a run. The ablation switches exist to quantify how
// much each model ingredient contributes to the study's error structure
// (DESIGN.md calls these out); all are off for the paper reproduction.
type Options struct {
	// Progress, when non-nil, receives one line per completed stage.
	// Parallel stages emit their per-item lines in completion order;
	// each line's content is deterministic, the interleaving is not.
	Progress io.Writer
	// Apps, when non-empty, restricts the study to the named test cases
	// ("avus-standard", ...) — handy for quick partial studies.
	Apps []string
	// Targets, when non-empty, restricts the prediction targets to the
	// named preset systems (paper Table 5 names, e.g. "ARL_Opteron").
	// With Apps this carves the -short and benchmark slices.
	Targets []string
	// Workers bounds the harness's worker pool; 0 means GOMAXPROCS.
	// Results are byte-identical at any worker count: every stage writes
	// into indexed slots, so scheduling never reorders aggregation.
	Workers int
	// DisableNoise turns off the deterministic observation noise.
	DisableNoise bool
	// IdleMemory runs applications on idle-node memory, removing the
	// probe-vs-production loaded-memory gap.
	IdleMemory bool
	// NoDependencyFlags blinds the static analyzer, so Metric #9
	// degenerates to Metric #8.
	NoDependencyFlags bool
	// Obs, when non-nil, collects spans and metrics for the run: every
	// phase becomes a span, and the worker pool reports occupancy, queue
	// wait, and cell completion/skip counters. Nil disables collection
	// with no per-cell allocations, keeping output byte-identical.
	Obs *obs.Obs
	// CellTimeout bounds each attempt of a probe/trace/observe unit: a
	// stalled simulation is reclaimed at the deadline and the attempt
	// retried (see MaxAttempts) or recorded as SkipTimeout. 0 leaves
	// attempts bounded only by the run's context.
	CellTimeout time.Duration
	// MaxAttempts is the per-unit attempt budget: transient failures
	// and attempt timeouts are retried with capped exponential backoff
	// and deterministic jitter until the budget is exhausted. 0 or 1
	// means a single attempt — the pre-robustness behavior.
	MaxAttempts int
	// Faults, when non-nil, arms the pipeline's deterministic fault
	// injector — the chaos harness. Nil injects nothing and costs
	// nothing on the hot path, keeping output byte-identical.
	Faults *faults.Injector
	// CheckpointPath, when non-empty, journals every completed probe
	// and observed cell through the persist checkpoint format, so a
	// cancelled or crashed study can pick up where it left off.
	CheckpointPath string
	// Resume loads an existing CheckpointPath journal and skips the
	// units it already holds instead of starting fresh. The journal's
	// options tag must match this run's options.
	Resume bool
	// Shard, when enabled, restricts this run to one slice of the
	// machine×app grid — the distributed study's worker role. See Shard.
	Shard Shard
	// CheckpointDir, when non-empty, resumes from a *directory* of shard
	// journals instead of a single file: the journals are merged
	// (first-record-wins dedup, cross-shard tag consistency enforced,
	// corrupt journals quarantined — see persist.MergeCheckpoints) and
	// the run replays the merged units, recomputing whatever the shards
	// never finished. Mutually exclusive with CheckpointPath and Shard.
	CheckpointDir string
}

// Shard restricts a study run to one slice of the machine×app grid: the
// worker with Index of Count processes every grid unit u (probe index
// in base+targets order; cell index in paper order) with
// u % Count == Index. The shard identity is folded into the checkpoint
// options tag, so a shard journal can never be resumed into — or merged
// as — the wrong slice. A sharded run stops after observation (stages 1
// and 2): predictions and the balanced rating belong to the merge run,
// which computes them from the merged journals.
type Shard struct {
	Index int
	Count int
	// Name labels this shard's journal, span log, and manifest; empty
	// defaults to "shard<Index>".
	Name string
	// Tail reverses the order this worker *processes* its cells (paper
	// order is preserved everywhere in the results). A work stealer runs
	// the victim's slice tail-first, so the two processes converge on
	// the middle instead of re-doing the same prefix. Tail is not part
	// of the options tag: processing order never changes what a record
	// holds.
	Tail bool
}

// Enabled reports whether the spec names a real slice.
func (s Shard) Enabled() bool { return s.Count > 1 }

// Label returns the shard's name, defaulting to "shard<Index>".
func (s Shard) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("shard%d", s.Index)
}

func (s Shard) validate() error {
	switch {
	case s.Count == 0 && s.Index == 0 && s.Name == "" && !s.Tail:
		return nil // zero value: sharding off
	case s.Count < 2:
		return fmt.Errorf("study: shard count %d, want at least 2", s.Count)
	case s.Index < 0 || s.Index >= s.Count:
		return fmt.Errorf("study: shard index %d outside [0,%d)", s.Index, s.Count)
	case strings.Contains(s.Name, ";"):
		return fmt.Errorf("study: shard name %q must not contain ';'", s.Name)
	}
	return nil
}

// owns reports whether grid unit i belongs to this shard.
func (s Shard) owns(i int) bool { return !s.Enabled() || i%s.Count == s.Index }

// spec converts to the persist layer's shard identity.
func (s Shard) spec() persist.ShardSpec {
	if !s.Enabled() {
		return persist.ShardSpec{}
	}
	return persist.ShardSpec{Index: s.Index, Count: s.Count, Name: s.Label()}
}

func (o Options) wantsApp(id string) bool {
	if len(o.Apps) == 0 {
		return true
	}
	for _, a := range o.Apps {
		if a == id {
			return true
		}
	}
	return false
}

func (o Options) noise(key Key, machineName string) float64 {
	if o.DisableNoise {
		return 1
	}
	return observationNoise(key, machineName)
}

// retryPolicy is the per-unit policy every probe/trace/observe cell
// runs under. Backoff pacing is fixed; the budget and deadline come
// from the options.
func (o Options) retryPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts:    o.MaxAttempts,
		AttemptTimeout: o.CellTimeout,
		BaseDelay:      20 * time.Millisecond,
		MaxDelay:       time.Second,
		Retryable:      retryableErr,
	}
}

// retryableErr classifies unit errors: in a deterministic simulator only
// an injected transient fault heals on re-attempt — job-too-large,
// validation failures, and model errors would fail identically again.
// Attempt timeouts are classified inside retry.Do and always retry.
func retryableErr(err error) bool { return errors.Is(err, faults.ErrTransient) }

// skipReasonFor classifies a unit failure for Results.Skips.
func skipReasonFor(err error) SkipReason {
	if retry.TimedOut(err) {
		return SkipTimeout
	}
	return SkipError
}

// optionsTag fingerprints every option that changes what a cell record
// holds, so a resume into a different grid — or under a different
// ablation, fault configuration, retry budget, or attempt deadline —
// fails loudly instead of splicing incompatible results together.
// Attempts and timeout are included because they shape the journaled
// records too: a cell skipped under a tight budget would otherwise be
// replayed verbatim into a run whose budget would have let it succeed.
// Options that only affect scheduling or reporting (Workers, Progress,
// Obs, the checkpoint controls themselves) stay out, so a resume may
// freely change them.
func (o Options) optionsTag() string {
	return persist.ShardTag(o.baseTag(), o.Shard.spec())
}

// baseTag is the options tag without the shard component — the part
// every shard of one campaign shares, and what MergeCheckpoints checks
// journals against.
func (o Options) baseTag() string {
	return fmt.Sprintf("apps=%s;targets=%s;noise=%t;idle=%t;nodeps=%t;attempts=%d;timeout=%s;faults=%s",
		strings.Join(o.Apps, ","), strings.Join(o.Targets, ","),
		o.DisableNoise, o.IdleMemory, o.NoDependencyFlags,
		o.MaxAttempts, o.CellTimeout, o.Faults.Fingerprint())
}

// idle returns the machine with its loaded-memory gap removed, for the
// IdleMemory ablation.
func idle(cfg *machine.Config) *machine.Config {
	out := cfg.Clone()
	out.MemLoadedFraction = 1
	out.MemLoadedLatencyFactor = 1
	return out
}

// studyTargets resolves the prediction-target set: the full paper grid,
// or the Options.Targets subset in the order given.
func (o Options) studyTargets() ([]*machine.Config, error) {
	all := machine.StudyTargets()
	if len(o.Targets) == 0 {
		return all, nil
	}
	byName := make(map[string]*machine.Config, len(all))
	for _, cfg := range all {
		byName[cfg.Name] = cfg
	}
	out := make([]*machine.Config, 0, len(o.Targets))
	for _, name := range o.Targets {
		cfg, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("study: unknown target system %q", name)
		}
		out = append(out, cfg)
	}
	return out, nil
}

// progressLog serializes progress lines from concurrent workers. A nil
// *progressLog (no sink configured) makes logf a no-op, so call sites
// stay unconditional.
type progressLog struct {
	mu sync.Mutex
	w  io.Writer // guarded by mu
}

func newProgressLog(w io.Writer) *progressLog {
	if w == nil {
		return nil
	}
	return &progressLog{w: w}
}

func (l *progressLog) logf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format+"\n", args...)
}

// engine is the shared compute facade (internal/predictor): the study,
// the predict CLI, and the predictd server all run their probe,
// execution, trace, and metric computations through the same Engine, so
// a number produced by any one of them is byte-identical to the others'.
var engine predictor.Engine

// forEachIndexed is the study's view of the shared ctx-aware worker pool
// (internal/par), reporting under the study_* metric names: the
// study_workers_busy gauge tracks occupancy (its peak is the effective
// parallelism), study_queue_wait_seconds records how long each job sat
// between enqueue and pickup, and study_jobs_total counts dispatches.
func forEachIndexed(ctx context.Context, n, workers int, work func(ctx context.Context, i int) error) error {
	return par.ForEachIndexed(ctx, n, workers, "study", work)
}

// Run executes the full study.
func Run(opts Options) (*Results, error) {
	return RunContext(context.Background(), opts)
}

// RunContext executes the full study under ctx: probing, observation, and
// tracing fan out over a GOMAXPROCS-bounded worker pool, and cancelling
// ctx abandons in-flight simulation promptly (the executor consults the
// context between basic blocks). Output is byte-identical to a sequential
// run — see Options.Workers.
func RunContext(ctx context.Context, opts Options) (*Results, error) {
	if err := opts.Shard.validate(); err != nil {
		return nil, err
	}
	if opts.CheckpointDir != "" {
		if opts.CheckpointPath != "" {
			return nil, fmt.Errorf("study: CheckpointDir and CheckpointPath are mutually exclusive")
		}
		if opts.Shard.Enabled() {
			return nil, fmt.Errorf("study: a sharded run journals one slice (CheckpointPath); merging a CheckpointDir is the unsharded merge run's job")
		}
	}
	ctx = opts.Obs.Inject(ctx)
	ctx = opts.Faults.Inject(ctx)
	ctx, studySpan := obs.StartSpan(ctx, "study")
	defer studySpan.End()
	base := machine.Base()
	targets, err := opts.studyTargets()
	if err != nil {
		return nil, err
	}
	plog := newProgressLog(opts.Progress)
	meter := opts.Obs.Meter()

	res := &Results{
		BaseName:  base.Name,
		Probes:    make(map[string]*probes.Results),
		Observed:  make(map[Key]map[string]float64),
		Skips:     make(map[Key]map[string]Skip),
		BaseTimes: make(map[Key]float64),
		Traces:    make(map[Key]*trace.Trace),
	}
	for _, t := range targets {
		res.TargetNames = append(res.TargetNames, t.Name)
	}

	// The checkpoint journal, when configured: every completed probe and
	// cell is appended, and with Resume the journaled units are replayed
	// instead of re-executed. With CheckpointDir the journal is instead
	// the memory-only merge of a shard campaign: journaled units replay,
	// quarantined or missing shards' units recompute, and the shard
	// files stay the durable artifact. Nil stays a no-op throughout.
	var cp *persist.Checkpoint
	switch {
	case opts.CheckpointDir != "":
		merged, err := persist.MergeCheckpoints(opts.CheckpointDir, opts.baseTag())
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
		res.Quarantined = merged.Quarantined
		res.MissingShards = merged.MissingShards
		for _, q := range merged.Quarantined {
			plog.logf("quarantined shard journal %s: %s", q.Path, q.Reason)
		}
		if len(merged.MissingShards) > 0 {
			plog.logf("no journal covers shard slice(s) %v; recomputing their units", merged.MissingShards)
		}
		cp, err = persist.SeedCheckpoint("", opts.baseTag(), merged.Records)
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
		plog.logf("merged %d shard journals (%d units)", len(merged.Journals), cp.Len())
	case opts.CheckpointPath != "" && opts.Resume:
		cp, err = persist.OpenCheckpoint(opts.CheckpointPath, opts.optionsTag())
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
	case opts.CheckpointPath != "":
		cp, err = persist.CreateCheckpoint(opts.CheckpointPath, opts.optionsTag())
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
	}
	rp := opts.retryPolicy()
	resumed := meter.Counter("study_checkpoint_resumed_total")

	// Stage 1: probe all machines (base + targets), one pool job each.
	// Probes are load-bearing for every later prediction, so a probe
	// that fails after its retry budget is a clean study error, not a
	// skip — but a checkpointed probe is never re-measured. A shard
	// worker probes only its owned machine indexes: probes feed stages 3
	// and 4, which belong to the merge run, and observation (stage 2)
	// runs on machine configs, not probe results.
	all := append([]*machine.Config{base}, targets...)
	prs := make([]*probes.Results, len(all))
	err = forEachIndexed(ctx, len(all), opts.Workers, func(ctx context.Context, i int) error {
		if !opts.Shard.owns(i) {
			return nil
		}
		name := all[i].Name
		if rec, ok := cp.Lookup(persist.StageProbe, name); ok && rec.Probes != nil {
			prs[i] = rec.Probes
			resumed.Inc()
			plog.logf("resumed probe %s from checkpoint", name)
			return nil
		}
		var pr *probes.Results
		_, err := retry.Do(ctx, rp, "probe|"+name, func(ctx context.Context) error {
			var err error
			pr, err = engine.Probes(ctx, all[i])
			return err
		})
		if err != nil {
			return fmt.Errorf("study: probing %s: %w", name, err)
		}
		prs[i] = pr
		if err := cp.Append(persist.CellRecord{Stage: persist.StageProbe, Key: name, Probes: pr}); err != nil {
			return fmt.Errorf("study: %w", err)
		}
		plog.logf("probed %s (HPL %.2f GF/s, STREAM %.2f GB/s)", name,
			pr.HPLFlopsPerSec/1e9, pr.StreamBytesPerSec/1e9)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cfg := range all {
		if prs[i] != nil {
			res.Probes[cfg.Name] = prs[i]
		}
	}

	execTarget := func(cfg *machine.Config) *machine.Config {
		if opts.IdleMemory {
			return idle(cfg)
		}
		return cfg
	}

	// Stage 2: instantiate cells, observe ground truth, trace on base.
	// Each cell is one pool job; slots keep aggregation in paper order no
	// matter which worker finishes first.
	type cellJob struct {
		key   Key
		tc    apps.TestCase
		procs int
	}
	type cellOut struct {
		baseSeconds float64
		tr          *trace.Trace
		obs         map[string]float64
		skips       map[string]Skip
	}
	// recordFromCell / cellFromRecord move one completed cell in and out
	// of the checkpoint journal. JSON round-trips float64 exactly, so a
	// resumed run's numbers are bit-identical to an uninterrupted one.
	recordFromCell := func(key Key, out cellOut) persist.CellRecord {
		rec := persist.CellRecord{
			Stage: persist.StageCell, Key: key.String(),
			BaseSeconds: out.baseSeconds, Trace: out.tr, Observed: out.obs,
		}
		for name, s := range out.skips {
			if rec.Skips == nil {
				rec.Skips = make(map[string]persist.CheckpointSkip, len(out.skips))
			}
			rec.Skips[name] = persist.CheckpointSkip{Reason: string(s.Reason), Detail: s.Detail, Attempts: s.Attempts}
		}
		return rec
	}
	cellFromRecord := func(rec persist.CellRecord) cellOut {
		out := cellOut{baseSeconds: rec.BaseSeconds, tr: rec.Trace, obs: rec.Observed}
		if out.tr != nil && out.obs == nil {
			// A completed cell always has an observation map, even when
			// every target skipped; JSON omits empty maps.
			out.obs = map[string]float64{}
		}
		for name, s := range rec.Skips {
			if out.skips == nil {
				out.skips = make(map[string]Skip, len(rec.Skips))
			}
			out.skips[name] = Skip{Reason: SkipReason(s.Reason), Detail: s.Detail, Attempts: s.Attempts}
		}
		return out
	}
	var cellJobs []cellJob
	for _, tc := range apps.Registry() {
		if !opts.wantsApp(tc.ID()) {
			continue
		}
		for _, procs := range tc.CPUCounts {
			key := Key{App: tc.Name, Case: tc.Case, Procs: procs}
			res.Cells = append(res.Cells, key)
			cellJobs = append(cellJobs, cellJob{key: key, tc: tc, procs: procs})
		}
	}
	completed := meter.Counter("study_cells_completed_total")
	skippedTooLarge := meter.Counter("study_cells_skipped_toolarge_total")
	skippedError := meter.Counter("study_cells_skipped_error_total")
	skippedTimeout := meter.Counter("study_cells_skipped_timeout_total")
	countSkip := func(reason SkipReason, n int64) {
		switch reason {
		case SkipTooLarge:
			skippedTooLarge.Add(n)
		case SkipTimeout:
			skippedTimeout.Add(n)
		default:
			skippedError.Add(n)
		}
	}
	// order maps pool-job position to cell index: a shard worker runs
	// only its owned slice, and a work stealer (Shard.Tail) walks that
	// slice back to front so victim and stealer meet in the middle
	// instead of re-doing the same prefix. Results stay in paper order
	// regardless — slots are indexed by cell, not by processing position.
	var order []int
	for i := range cellJobs {
		if opts.Shard.owns(i) {
			order = append(order, i)
		}
	}
	if opts.Shard.Tail {
		for a, b := 0, len(order)-1; a < b; a, b = a+1, b-1 {
			order[a], order[b] = order[b], order[a]
		}
	}
	slots := make([]cellOut, len(cellJobs))
	err = forEachIndexed(ctx, len(order), opts.Workers, func(ctx context.Context, j int) error {
		i := order[j]
		job := cellJobs[i]
		key := job.key
		ctx, cell := obs.StartSpan(ctx, "observe")
		defer cell.End()
		if cell != nil {
			cell.Annotate("cell", key.String())
		}
		if rec, ok := cp.Lookup(persist.StageCell, key.String()); ok {
			slots[i] = cellFromRecord(rec)
			resumed.Inc()
			if cell != nil {
				cell.Annotate("resumed", "checkpoint")
			}
			plog.logf("resumed %s from checkpoint (%d observations)", key, len(slots[i].obs))
			return nil
		}
		app, err := job.tc.Instance(job.procs)
		if err != nil {
			return fmt.Errorf("study: %s: %w", key, err)
		}

		// Every unit below (base run, trace, per-target observation) is
		// one retryable attempt sequence under the options' budget and
		// deadline; retries counts the extras for the cell's span.
		var retries int
		runUnit := func(site string, op func(context.Context) error) (int, error) {
			attempts, err := retry.Do(ctx, rp, site, op)
			if attempts > 1 {
				retries += attempts - 1
			}
			return attempts, err
		}

		var out cellOut
		// cellFailed downgrades a base/trace failure to a full row of
		// skips: without them no target can be predicted, but losing one
		// cell's row must not lose the run. Parent cancellation still
		// aborts.
		cellFailed := func(attempts int, err error) error {
			if ctx.Err() != nil {
				return fmt.Errorf("study: %s: %w", key, err)
			}
			reason := skipReasonFor(err)
			out = cellOut{skips: make(map[string]Skip, len(targets))}
			for _, cfg := range targets {
				out.skips[cfg.Name] = Skip{Reason: reason, Detail: err.Error(), Attempts: attempts}
			}
			countSkip(reason, int64(len(targets)))
			plog.logf("cell %s failed after %d attempts: %v", key, attempts, err)
			return nil
		}

		var baseRun *simexec.Result
		attempts, err := runUnit("base|"+key.String(), func(ctx context.Context) error {
			r, err := engine.Execute(ctx, execTarget(base), app)
			baseRun = r
			return err
		})
		failed := err != nil
		if failed {
			if aerr := cellFailed(attempts, err); aerr != nil {
				return aerr
			}
		}
		if !failed {
			var tr *trace.Trace
			attempts, err = runUnit("trace|"+key.String(), func(ctx context.Context) error {
				t, err := engine.Trace(ctx, base, app)
				tr = t
				return err
			})
			if err != nil {
				failed = true
				if aerr := cellFailed(attempts, err); aerr != nil {
					return aerr
				}
			} else {
				if opts.NoDependencyFlags {
					for i := range tr.Blocks {
						tr.Blocks[i].ILPLimited = false
					}
				}
				out.baseSeconds = baseRun.Seconds * opts.noise(key, base.Name)
				out.tr = tr
			}
		}
		if !failed {
			out.obs = make(map[string]float64, len(targets))
			for _, cfg := range targets {
				var run *simexec.Result
				attempts, err := runUnit("observe|"+key.String()+"|"+cfg.Name, func(ctx context.Context) error {
					r, err := engine.Execute(ctx, execTarget(cfg), app)
					run = r
					return err
				})
				switch {
				case errors.Is(err, simexec.ErrTooLarge):
					// Missing cell, like the paper's blanks.
					if out.skips == nil {
						out.skips = make(map[string]Skip)
					}
					out.skips[cfg.Name] = Skip{Reason: SkipTooLarge, Detail: err.Error(), Attempts: attempts}
					skippedTooLarge.Inc()
					continue
				case err != nil:
					if ctx.Err() != nil {
						return fmt.Errorf("study: observing %s on %s: %w", key, cfg.Name, err)
					}
					// A real per-target failure loses one observation, not
					// the run: record it so reports can show ERR, and audit
					// the grid via Results.Skips.
					reason := skipReasonFor(err)
					if out.skips == nil {
						out.skips = make(map[string]Skip)
					}
					out.skips[cfg.Name] = Skip{Reason: reason, Detail: err.Error(), Attempts: attempts}
					countSkip(reason, 1)
					plog.logf("observation %s on %s failed after %d attempts: %v", key, cfg.Name, attempts, err)
					continue
				}
				out.obs[cfg.Name] = run.Seconds * opts.noise(key, cfg.Name)
				completed.Inc()
			}
		}
		if cell != nil && retries > 0 {
			cell.Annotate("retries", strconv.Itoa(retries))
		}
		slots[i] = out
		if err := cp.Append(recordFromCell(key, out)); err != nil {
			return fmt.Errorf("study: %w", err)
		}
		if !failed {
			plog.logf("observed %s on %d systems (base %.0f s)", key, len(out.obs), baseRun.Seconds)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, job := range cellJobs {
		if !opts.Shard.owns(i) {
			continue
		}
		if slots[i].tr != nil {
			res.BaseTimes[job.key] = slots[i].baseSeconds
			res.Traces[job.key] = slots[i].tr
		}
		res.Observed[job.key] = slots[i].obs
		if len(slots[i].skips) > 0 {
			res.Skips[job.key] = slots[i].skips
		}
	}

	// A shard worker stops here: its journal is the product. Predictions
	// and the balanced rating need the whole grid, so they belong to the
	// merge run, which recomputes them from the merged journals.
	if opts.Shard.Enabled() {
		plog.logf("shard %s (%d/%d) observed its slice: %d/%d cells, %d probes",
			opts.Shard.Label(), opts.Shard.Index, opts.Shard.Count, len(order), len(cellJobs), len(res.Probes))
		return res, nil
	}

	// Stage 3: the 9 × 150 predictions.
	basePr := res.Probes[res.BaseName]
	for _, m := range metrics.All() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
		mctx, mspan := obs.StartSpan(ctx, "predict")
		if mspan != nil {
			mspan.Annotate("metric", m.Label())
		}
		predictLatency := meter.Histogram(fmt.Sprintf("study_predict_seconds_metric_%02d", m.ID))
		for _, key := range res.Cells {
			for _, name := range res.TargetNames {
				actual, ok := res.Observed[key][name]
				if !ok {
					continue
				}
				t0 := predictLatency.StartTimer()
				pred, err := engine.PredictMetric(mctx, m, metrics.Context{
					Trace:       res.Traces[key],
					Base:        basePr,
					Target:      res.Probes[name],
					BaseSeconds: res.BaseTimes[key],
				})
				predictLatency.ObserveSince(t0)
				if err != nil {
					mspan.End()
					return nil, fmt.Errorf("study: metric %s on %s/%s: %w", m.Label(), key, name, err)
				}
				res.Predictions = append(res.Predictions, Prediction{
					MetricID:  m.ID,
					Key:       key,
					Machine:   name,
					Predicted: pred,
					Actual:    actual,
					SignedErr: metrics.SignedError(pred, actual),
				})
			}
		}
		mspan.End()
		plog.logf("metric %s done", m.Label())
	}

	// Stage 4: balanced rating (fixed and optimized weights).
	_, balSpan := obs.StartSpan(ctx, "balanced")
	if err := res.runBalanced(); err != nil {
		balSpan.End()
		return nil, err
	}
	balSpan.End()
	plog.logf("balanced rating: fixed %.0f%%, optimized %.0f%% at weights %.2v",
		res.Balanced.FixedSummary.MeanAbs, res.Balanced.OptSummary.MeanAbs, res.Balanced.OptWeights)

	return res, nil
}

func (r *Results) runBalanced() error {
	pool := make([]*probes.Results, 0, len(r.TargetNames))
	for _, name := range r.TargetNames {
		pool = append(pool, r.Probes[name])
	}
	basePr := r.Probes[r.BaseName]

	var obs []metrics.RatingObservation
	for _, key := range r.Cells {
		for _, name := range r.TargetNames {
			actual, ok := r.Observed[key][name]
			if !ok {
				continue
			}
			obs = append(obs, metrics.RatingObservation{
				Base: basePr, Target: r.Probes[name],
				BaseSeconds: r.BaseTimes[key], ActualSeconds: actual,
			})
		}
	}

	fixed, err := metrics.NewRating(pool, metrics.EqualWeights)
	if err != nil {
		return fmt.Errorf("study: %w", err)
	}
	var fixedErrs []float64
	for _, key := range r.Cells {
		for _, name := range r.TargetNames {
			actual, ok := r.Observed[key][name]
			if !ok {
				continue
			}
			pred, err := fixed.Predict(basePr, r.Probes[name], r.BaseTimes[key])
			if err != nil {
				return fmt.Errorf("study: %w", err)
			}
			signed := metrics.SignedError(pred, actual)
			fixedErrs = append(fixedErrs, signed)
			r.Balanced.FixedPredicted = append(r.Balanced.FixedPredicted, Prediction{
				Key: key, Machine: name, Predicted: pred, Actual: actual, SignedErr: signed,
			})
		}
	}
	r.Balanced.FixedWeights = metrics.EqualWeights
	r.Balanced.FixedSummary = stats.Summarize(fixedErrs)

	w, _, err := metrics.OptimizeRating(pool, obs, 0.05)
	if err != nil {
		return fmt.Errorf("study: %w", err)
	}
	r.Balanced.OptWeights = w
	opt, err := metrics.NewRating(pool, w)
	if err != nil {
		return fmt.Errorf("study: %w", err)
	}
	var optErrs []float64
	for _, o := range obs {
		pred, err := opt.Predict(o.Base, o.Target, o.BaseSeconds)
		if err != nil {
			return fmt.Errorf("study: %w", err)
		}
		optErrs = append(optErrs, metrics.SignedError(pred, o.ActualSeconds))
	}
	r.Balanced.OptSummary = stats.Summarize(optErrs)
	return nil
}

// --- Aggregations ---

// MetricSummary returns the paper's Table 4 row for one metric.
func (r *Results) MetricSummary(metricID int) stats.Summary {
	var errs []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID {
			errs = append(errs, p.SignedErr)
		}
	}
	return stats.Summarize(errs)
}

// SystemSummary returns the paper's Table 5 cell: mean |error| for one
// (system, metric) pair.
func (r *Results) SystemSummary(system string, metricID int) stats.Summary {
	var errs []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID && p.Machine == system {
			errs = append(errs, p.SignedErr)
		}
	}
	return stats.Summarize(errs)
}

// CellSummary returns the mean |error| for one (cell, metric) pair across
// systems — one bar of the paper's Figures 3-7.
func (r *Results) CellSummary(key Key, metricID int) stats.Summary {
	var errs []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID && p.Key == key {
			errs = append(errs, p.SignedErr)
		}
	}
	return stats.Summarize(errs)
}

// AppCells returns the study cells of one application in CPU-count order.
func (r *Results) AppCells(appID string) []Key {
	var out []Key
	for _, k := range r.Cells {
		if k.AppID() == appID {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Procs < out[j].Procs })
	return out
}

// ObservationCount returns how many (cell, system) observations exist.
func (r *Results) ObservationCount() int {
	var n int
	for _, obs := range r.Observed {
		n += len(obs)
	}
	return n
}

// --- Shared singleton ---

var (
	sharedOnce sync.Once
	sharedRes  *Results
	sharedErr  error
)

// Shared runs the full study once per process and caches the outcome.
// Tests, benchmarks, and report generators all share it.
func Shared() (*Results, error) {
	sharedOnce.Do(func() {
		sharedRes, sharedErr = Run(Options{})
	})
	return sharedRes, sharedErr
}

// Correlation is the paper's Section 1 framing ("the correlation of each
// estimator to true performance data"): how well one metric's predictions
// track the observed runtimes across the whole study.
type Correlation struct {
	MetricID int
	N        int
	// Pearson correlates predicted and actual seconds linearly.
	Pearson float64
	// Spearman correlates their ranks — the system-ranking question.
	Spearman float64
}

// MetricCorrelation computes prediction-vs-actual correlation for one
// metric over every observed cell.
func (r *Results) MetricCorrelation(metricID int) (Correlation, error) {
	var pred, actual []float64
	for _, p := range r.Predictions {
		if p.MetricID == metricID {
			pred = append(pred, p.Predicted)
			actual = append(actual, p.Actual)
		}
	}
	pe, err := stats.Pearson(pred, actual)
	if err != nil {
		return Correlation{}, fmt.Errorf("study: metric %d: %w", metricID, err)
	}
	sp, err := stats.Spearman(pred, actual)
	if err != nil {
		return Correlation{}, fmt.Errorf("study: metric %d: %w", metricID, err)
	}
	return Correlation{MetricID: metricID, N: len(pred), Pearson: pe, Spearman: sp}, nil
}
