package study

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/persist"
)

func TestShardValidateAndOwns(t *testing.T) {
	if err := (Shard{}).validate(); err != nil {
		t.Fatalf("zero shard: %v", err)
	}
	if (Shard{}).Enabled() {
		t.Fatal("zero shard claims enabled")
	}
	for _, bad := range []Shard{
		{Count: 1, Index: 0, Name: "x"}, // count too small but fields set
		{Count: 3, Index: 3},
		{Count: 3, Index: -1},
		{Count: 2, Index: 0, Name: "a;b"},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("shard %+v validated", bad)
		}
	}
	s := Shard{Index: 1, Count: 3}
	if s.Label() != "shard1" {
		t.Fatalf("Label = %q", s.Label())
	}
	for i := 0; i < 9; i++ {
		if got, want := s.owns(i), i%3 == 1; got != want {
			t.Errorf("owns(%d) = %t", i, got)
		}
	}
	if !(Shard{}).owns(7) {
		t.Fatal("disabled shard must own everything")
	}
}

// shardOpts returns the chaos slice restricted to one shard, journaling
// into dir.
func shardOpts(dir string, index, count int) Options {
	o := chaosSlice()
	o.Shard = Shard{Index: index, Count: count}
	o.CheckpointPath = filepath.Join(dir, o.Shard.Label()+".ckpt")
	return o
}

// TestShardedStudyMergesBitIdentical is the tentpole invariant: two
// shard workers each observe half the grid into their own journals, and
// the merge run reconstructs results deeply identical to a clean
// single-process run — without re-executing a single journaled cell.
// Then the chaos variants: a stealer journal duplicating half of shard0
// must dedup harmlessly, and a mid-file-corrupted shard journal must be
// quarantined by name while the merge recomputes its units to the same
// bits.
func TestShardedStudyMergesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sharded study; skipped in -short")
	}
	clean, err := Run(chaosSlice())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for index := 0; index < 2; index++ {
		res, err := Run(shardOpts(dir, index, 2))
		if err != nil {
			t.Fatalf("shard %d: %v", index, err)
		}
		if len(res.Predictions) != 0 {
			t.Fatalf("shard %d computed predictions; that is the merge run's job", index)
		}
	}

	merged := chaosSlice()
	merged.CheckpointDir = dir
	merged.Obs = obs.New()
	mres, err := Run(merged)
	if err != nil {
		t.Fatalf("merge run: %v", err)
	}
	if n := execSpanCount(merged.Obs); n != 0 {
		t.Fatalf("merge run re-executed %d cells; every unit was journaled", n)
	}
	assertSameResults(t, clean, mres)
	if len(mres.Quarantined) != 0 || len(mres.MissingShards) != 0 {
		t.Fatalf("clean merge reported quarantined=%v missing=%v", mres.Quarantined, mres.MissingShards)
	}

	// A work stealer's journal: same slice identity, overlapping records.
	// First-record-wins dedup must make the duplication invisible.
	src, err := os.ReadFile(filepath.Join(dir, "shard0.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard0-steal.ckpt"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	sres, err := Run(merged)
	if err != nil {
		t.Fatalf("merge with stealer journal: %v", err)
	}
	assertSameResults(t, clean, sres)

	// Corrupt shard0's journal mid-file (records stranded beyond the bad
	// line) and drop the stealer copy: the merge must quarantine it by
	// name, report slice 0 missing, recompute its units, and still land
	// on the same bits.
	if err := os.Remove(filepath.Join(dir, "shard0-steal.ckpt")); err != nil {
		t.Fatal(err)
	}
	corrupt := corruptMidFile(t, filepath.Join(dir, "shard0.ckpt"))
	qopts := chaosSlice()
	qopts.CheckpointDir = dir
	qres, err := Run(qopts)
	if err != nil {
		t.Fatalf("merge with corrupt journal: %v", err)
	}
	if len(qres.Quarantined) != 1 || qres.Quarantined[0].Path != corrupt {
		t.Fatalf("quarantined = %+v, want %s", qres.Quarantined, corrupt)
	}
	if len(qres.MissingShards) != 1 || qres.MissingShards[0] != 0 {
		t.Fatalf("missing shards = %v, want [0]", qres.MissingShards)
	}
	assertSameResults(t, clean, qres)
}

// corruptMidFile flips a checksum digit on the journal's second record
// line, leaving intact records stranded after it, and returns path.
func corruptMidFile(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	if len(lines) < 5 { // header + >=3 records + trailing newline
		t.Fatalf("journal too small to corrupt mid-file: %d lines", len(lines))
	}
	s := lines[2]
	i := strings.Index(s, `"crc":"`) + len(`"crc":"`)
	flip := byte('0')
	if s[i] == '0' {
		flip = 'f'
	}
	lines[2] = s[:i] + string(flip) + s[i+1:]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func assertSameResults(t *testing.T, want, got *Results) {
	t.Helper()
	if !reflect.DeepEqual(want.Observed, got.Observed) {
		t.Fatal("observed times differ from the clean run")
	}
	if !reflect.DeepEqual(want.BaseTimes, got.BaseTimes) {
		t.Fatal("base times differ from the clean run")
	}
	if !reflect.DeepEqual(want.Predictions, got.Predictions) {
		t.Fatal("predictions differ from the clean run")
	}
	if !reflect.DeepEqual(want.Balanced, got.Balanced) {
		t.Fatal("balanced rating differs from the clean run")
	}
	if !reflect.DeepEqual(want.Skips, got.Skips) {
		t.Fatal("skips differ from the clean run")
	}
}

// TestShardJournalRejectsWrongSlice: a shard journal must never be
// resumable into a different slice — the shard identity is part of the
// options tag.
func TestShardJournalRejectsWrongSlice(t *testing.T) {
	dir := t.TempDir()
	right := shardOpts(dir, 0, 2)
	tag := right.optionsTag()
	if _, err := persist.CreateCheckpoint(right.CheckpointPath, tag); err != nil {
		t.Fatal(err)
	}

	wrong := right
	wrong.Shard.Index = 1
	wrong.Resume = true
	if _, err := Run(wrong); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("wrong-slice resume = %v, want different-options rejection", err)
	}

	// Sanity: the tag carries the shard suffix the persist layer parses.
	base, spec, sharded := persist.SplitShardTag(tag)
	if !sharded || spec.Index != 0 || spec.Count != 2 || base != right.baseTag() {
		t.Fatalf("SplitShardTag(%q) = %q %+v %t", tag, base, spec, sharded)
	}
}

// TestMergeRejectsMixedFaultPlans: journals from campaigns with
// different fault plans (or retry/timeout budgets — both live in the
// base tag) must not merge.
func TestMergeRejectsMixedFaultPlans(t *testing.T) {
	dir := t.TempDir()
	plain := chaosSlice()
	faulty := chaosSlice()
	faulty.MaxAttempts = 4
	faulty.Faults = faults.New(1, faults.Rule{
		Point: faults.PointExecBlock, Kind: faults.Transient, Rate: 1, Burst: 2,
	})

	for index, o := range []Options{plain, faulty} {
		o.Shard = Shard{Index: index, Count: 2}
		tag := o.optionsTag()
		if _, err := persist.CreateCheckpoint(filepath.Join(dir, o.Shard.Label()+".ckpt"), tag); err != nil {
			t.Fatal(err)
		}
	}

	merged := plain
	merged.CheckpointDir = dir
	if _, err := Run(merged); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("mixed-fault-plan merge = %v, want different-options rejection", err)
	}
}

func TestCheckpointDirOptionConflicts(t *testing.T) {
	o := chaosSlice()
	o.CheckpointDir = t.TempDir()
	o.CheckpointPath = filepath.Join(o.CheckpointDir, "x.ckpt")
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("dir+path = %v", err)
	}

	o = chaosSlice()
	o.CheckpointDir = t.TempDir()
	o.Shard = Shard{Index: 0, Count: 2}
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "merge run") {
		t.Fatalf("dir+shard = %v", err)
	}
}
