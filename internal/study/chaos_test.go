package study

// Chaos tests: the study harness under deterministic fault injection.
// Every assertion is about convergence — a transient storm must retry to
// the same bytes a clean run produces, a permanent fault must cost its
// cells and nothing else, a stall must be reclaimed by the deadline, and
// a killed run must resume from its checkpoint without re-executing —
// never about retry ordering, which is scheduling-dependent.

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/persist"
)

// chaosSlice is a 1-app × 2-machine slice: big enough to exercise every
// pipeline stage, small enough for -short and -race.
func chaosSlice() Options {
	return Options{
		Apps:    []string{"avus-standard"},
		Targets: []string{"ARL_Opteron", "MHPCC_P3"},
	}
}

// TestStudyTransientStormConverges: with every executor identity failing
// twice before healing, a study with a retry budget completes and its
// results are deeply identical to a clean run's — chaos must be
// invisible in the output, not just survived.
func TestStudyTransientStormConverges(t *testing.T) {
	clean, err := Run(chaosSlice())
	if err != nil {
		t.Fatal(err)
	}

	opts := chaosSlice()
	opts.MaxAttempts = 4
	opts.Faults = faults.New(1, faults.Rule{
		Point: faults.PointExecBlock, Kind: faults.Transient, Rate: 1, Burst: 2,
	})
	opts.Obs = obs.New()
	stormy, err := Run(opts)
	if err != nil {
		t.Fatalf("study did not survive the transient storm: %v", err)
	}

	if fired := opts.Faults.Fired(faults.Transient); fired == 0 {
		t.Fatal("no transient faults fired; the storm never happened")
	}
	if len(stormy.Skips) != 0 {
		t.Errorf("transient storm left %d skip cells, want none (all faults heal)", len(stormy.Skips))
	}
	if !reflect.DeepEqual(clean.Observed, stormy.Observed) {
		t.Error("Observed differs between clean and stormy runs")
	}
	if !reflect.DeepEqual(clean.BaseTimes, stormy.BaseTimes) {
		t.Error("BaseTimes differs between clean and stormy runs")
	}
	if !reflect.DeepEqual(clean.Predictions, stormy.Predictions) {
		t.Error("Predictions differ between clean and stormy runs")
	}
	if got := opts.Obs.Metrics.Counter("retry_retries_total").Value(); got == 0 {
		t.Error("retry_retries_total = 0 despite injected transients")
	}
	if a, r := opts.Obs.Metrics.Counter("retry_attempts_total").Value(),
		opts.Obs.Metrics.Counter("retry_retries_total").Value(); r > a {
		t.Errorf("retries (%d) exceed attempts (%d)", r, a)
	}
}

// TestStudyPermanentFaultSkipsNotCrashes: a permanent fault on one
// target costs exactly that target's observations — recorded as skips
// with their attempt count — and never the run.
func TestStudyPermanentFaultSkipsNotCrashes(t *testing.T) {
	opts := chaosSlice()
	opts.MaxAttempts = 4
	opts.Faults = faults.New(1, faults.Rule{
		Point: faults.PointExecBlock, Kind: faults.Permanent, Rate: 1, Match: "ARL_Opteron",
	})
	opts.Obs = obs.New()
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("permanent fault crashed the harness: %v", err)
	}

	for _, key := range res.Cells {
		s, ok := res.SkipFor(key, "ARL_Opteron")
		if !ok {
			t.Errorf("%s on ARL_Opteron: no skip recorded", key)
			continue
		}
		if s.Reason != SkipError {
			t.Errorf("%s skip reason = %q, want %q", key, s.Reason, SkipError)
		}
		// The classifier must fail fast: a permanent fault never earns the
		// transient budget's extra attempts.
		if s.Attempts != 1 {
			t.Errorf("%s skip attempts = %d, want 1 (permanent fails fast)", key, s.Attempts)
		}
		if !strings.Contains(s.Detail, "injected permanent fault") {
			t.Errorf("%s skip detail %q does not name the fault", key, s.Detail)
		}
		if _, observed := res.Observed[key]["ARL_Opteron"]; observed {
			t.Errorf("%s observed on ARL_Opteron despite its skip", key)
		}
		if _, observed := res.Observed[key]["MHPCC_P3"]; !observed {
			t.Errorf("%s lost its MHPCC_P3 observation to another target's fault", key)
		}
	}
	if got := opts.Obs.Metrics.Counter("study_cells_skipped_error_total").Value(); got != int64(len(res.Cells)) {
		t.Errorf("error-skip counter = %d, want %d", got, len(res.Cells))
	}
	// Predictions still flow from the surviving target.
	if len(res.Predictions) == 0 {
		t.Error("no predictions despite a healthy second target")
	}
}

// TestStudyStallReclaimedByDeadline: a stalled execution outlives every
// attempt's CellTimeout and is recorded as a timeout skip with its full
// attempt count — the deadline, not the stall, decides when it ends.
func TestStudyStallReclaimedByDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out per-attempt deadlines")
	}
	opts := Options{
		Apps:        []string{"avus-standard"},
		Targets:     []string{"ARL_Opteron", "MHPCC_P3"},
		MaxAttempts: 2,
		// The slowest real unit (the MHPCC_P3 probe) takes ~2.5s; 12s of
		// deadline never clips real work but reclaims the 10-minute stall.
		CellTimeout: 12 * time.Second,
	}
	// The stall dwarfs the deadline, and the burst is high enough that
	// every retry stalls again — only the deadline ends these attempts.
	opts.Faults = faults.New(1, faults.Rule{
		Point: faults.PointExecBlock, Kind: faults.Stall, Rate: 1,
		Burst: 100, Stall: 10 * time.Minute, Match: "ARL_Opteron",
	})
	opts.Obs = obs.New()

	start := time.Now()
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("stalled study did not complete: %v", err)
	}
	// 3 cells × 2 attempts × 2s deadline plus real work; an un-reclaimed
	// stall would take 10 minutes.
	if elapsed := time.Since(start); elapsed > 5*time.Minute {
		t.Errorf("study took %v; stalls were not reclaimed by the deadline", elapsed)
	}
	for _, key := range res.Cells {
		s, ok := res.SkipFor(key, "ARL_Opteron")
		if !ok {
			t.Errorf("%s on ARL_Opteron: no skip recorded", key)
			continue
		}
		if s.Reason != SkipTimeout {
			t.Errorf("%s skip reason = %q, want %q", key, s.Reason, SkipTimeout)
		}
		if s.Attempts != 2 {
			t.Errorf("%s skip attempts = %d, want the full budget of 2", key, s.Attempts)
		}
		if _, observed := res.Observed[key]["MHPCC_P3"]; !observed {
			t.Errorf("%s lost its MHPCC_P3 observation to the ARL stall", key)
		}
	}
	if got := opts.Obs.Metrics.Counter("study_cells_skipped_timeout_total").Value(); got != int64(len(res.Cells)) {
		t.Errorf("timeout-skip counter = %d, want %d", got, len(res.Cells))
	}
	if got := opts.Obs.Metrics.Counter("retry_timeouts_total").Value(); got < int64(2*len(res.Cells)) {
		t.Errorf("retry_timeouts_total = %d, want at least %d (every attempt timed out)", got, 2*len(res.Cells))
	}
}

// execSpanCount reads how many study/observe/exec spans a traced run
// emitted — the direct measure of re-executed simulation work.
func execSpanCount(o *obs.Obs) int64 {
	for _, st := range o.Tracer.PhaseStats() {
		if st.Path == "study/observe/exec" {
			return st.Count
		}
	}
	return 0
}

// TestStudyCheckpointResume kills a study mid-run and resumes it: the
// resumed run must skip the checkpointed work (fewer exec spans, resumed
// counter up) and produce results deeply identical to an uninterrupted
// run — JSON round-trips float64 exactly, so not one bit may move.
func TestStudyCheckpointResume(t *testing.T) {
	slice := Options{
		Apps:    []string{"avus-standard"},
		Targets: []string{"ARL_Opteron"},
		Workers: 1, // deterministic cell order, so the cancel point is stable
	}

	full := slice
	full.Obs = obs.New()
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	fullExec := execSpanCount(full.Obs)
	if fullExec == 0 {
		t.Fatal("reference run emitted no exec spans")
	}

	// Run B: same options, checkpointed, killed from its own progress
	// stream as soon as the first cell lands in the journal (the append
	// happens before the "observed" line).
	path := filepath.Join(t.TempDir(), "study.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := slice
	killed.CheckpointPath = path
	killed.Progress = &cancelOnObserve{cancel: cancel}
	if _, err := RunContext(ctx, killed); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want context.Canceled", err)
	}

	// Run C: resume. It must finish, match the uninterrupted run exactly,
	// and measurably not repeat the journaled work.
	resumedOpts := slice
	resumedOpts.CheckpointPath = path
	resumedOpts.Resume = true
	resumedOpts.Obs = obs.New()
	resumedRes, err := Run(resumedOpts)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	if !reflect.DeepEqual(fullRes.Observed, resumedRes.Observed) {
		t.Error("Observed differs between uninterrupted and resumed runs")
	}
	if !reflect.DeepEqual(fullRes.BaseTimes, resumedRes.BaseTimes) {
		t.Error("BaseTimes differs between uninterrupted and resumed runs")
	}
	if !reflect.DeepEqual(fullRes.Predictions, resumedRes.Predictions) {
		t.Error("Predictions differ between uninterrupted and resumed runs")
	}
	if !reflect.DeepEqual(fullRes.Balanced, resumedRes.Balanced) {
		t.Error("Balanced rating differs between uninterrupted and resumed runs")
	}

	if got := resumedOpts.Obs.Metrics.Counter("study_checkpoint_resumed_total").Value(); got < 3 {
		t.Errorf("resumed counter = %d, want >= 3 (two probes and at least one cell)", got)
	}
	resumedExec := execSpanCount(resumedOpts.Obs)
	if resumedExec >= fullExec {
		t.Errorf("resumed run executed %d cells vs %d uninterrupted; checkpointed work was repeated",
			resumedExec, fullExec)
	}
}

// TestStudyResumeRejectsDifferentOptions: a checkpoint journals its
// study's options fingerprint; resuming into a different grid must fail
// loudly instead of splicing incompatible results.
func TestStudyResumeRejectsDifferentOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt")
	a := Options{Apps: []string{"avus-standard"}, Targets: []string{"ARL_Opteron"}, CheckpointPath: path}
	if _, err := Run(a); err != nil {
		t.Fatal(err)
	}
	b := Options{Apps: []string{"rfcth-standard"}, Targets: []string{"ARL_Opteron"}, CheckpointPath: path, Resume: true}
	if _, err := Run(b); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Errorf("resume into a different grid returned %v, want an options-tag error", err)
	}
}

// TestStudyResumeRejectsDifferentFaultSeed: the options fingerprint must
// cover the fault plan — resuming a fault-injected study under a
// different seed would splice cells from two different experiments into
// one results table. The checkpoint header is written directly (no study
// run needed: the rejection happens at journal open, before any cell
// computes), which keeps this test cheap enough for the race suite.
func TestStudyResumeRejectsDifferentFaultSeed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt")
	a := Options{
		Apps: []string{"avus-standard"}, Targets: []string{"ARL_Opteron"},
		CheckpointPath: path, Faults: faults.New(1),
	}
	if _, err := persist.CreateCheckpoint(path, a.optionsTag()); err != nil {
		t.Fatal(err)
	}
	b := a
	b.Faults = faults.New(2)
	b.Resume = true
	if _, err := Run(b); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Errorf("resume under a different fault seed returned %v, want an options-tag error", err)
	}
	rule := faults.Rule{Point: faults.PointExecBlock, Kind: faults.Transient, Rate: 1}
	c := a
	c.Faults = faults.New(1, rule)
	c.Resume = true
	if _, err := Run(c); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Errorf("resume under an added fault rule returned %v, want an options-tag error", err)
	}
	// The identical fault plan opens the journal cleanly (full-resume
	// round-trips are covered by TestStudyCheckpointResume).
	if _, err := persist.OpenCheckpoint(path, a.optionsTag()); err != nil {
		t.Errorf("identical fault plan rejected at journal open: %v", err)
	}
}

// TestForEachIndexedJoinsAllErrors: a multi-worker failure reports every
// worker's error (satellite of the robustness PR) — errors.Is finds each
// one, and the joined message lists the lowest index first.
func TestForEachIndexedJoinsAllErrors(t *testing.T) {
	errA := errors.New("index 0 failed")
	errB := errors.New("index 1 failed")
	var barrier sync.WaitGroup
	barrier.Add(2)
	err := forEachIndexed(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		barrier.Done()
		barrier.Wait()
		if i == 0 {
			return errA
		}
		return errB
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("err = %v, want both worker errors joined", err)
	}
	msg := err.Error()
	if strings.Index(msg, "index 0") > strings.Index(msg, "index 1") {
		t.Errorf("joined message %q does not list the lowest index first", msg)
	}
}
