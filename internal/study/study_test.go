package study

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcmetrics/internal/obs"
)

// sliceOptions is the 2-app × 2-machine study slice used by the -short
// race path, the cancellation tests, and cmd/benchstudy.
func sliceOptions() Options {
	return Options{
		Apps:    []string{"avus-standard", "rfcth-standard"},
		Targets: []string{"ARL_Opteron", "MHPCC_P3"},
	}
}

// The full study runs once per process via Shared(); every test here reads
// from that single run. This is the repository's primary integration test:
// it exercises machines, probes, workloads, the executor, the tracer, the
// convolver, all nine metrics, and the balanced rating together.

func sharedOrSkip(t *testing.T) *Results {
	t.Helper()
	if testing.Short() {
		t.Skip("full study skipped in -short mode")
	}
	res, err := Shared()
	if err != nil {
		t.Fatalf("study failed: %v", err)
	}
	return res
}

func TestStudyDimensions(t *testing.T) {
	res := sharedOrSkip(t)
	if len(res.Cells) != 15 {
		t.Errorf("cells = %d, want 15 (5 test cases x 3 CPU counts)", len(res.Cells))
	}
	if len(res.TargetNames) != 10 {
		t.Errorf("targets = %d, want 10", len(res.TargetNames))
	}
	if len(res.Probes) != 11 {
		t.Errorf("probe suites = %d, want 11 (base + 10 targets)", len(res.Probes))
	}
	obs := res.ObservationCount()
	// The paper reports 150 observations; our grid loses a few cells to
	// machines smaller than the job, like the paper's blank entries.
	if obs < 135 || obs > 150 {
		t.Errorf("observations = %d, want 135..150", obs)
	}
	if got, want := len(res.Predictions), 9*obs; got != want {
		t.Errorf("predictions = %d, want %d (9 x observations)", got, want)
	}
}

func TestMissingCellsMatchMachineSizes(t *testing.T) {
	res := sharedOrSkip(t)
	// ARL_690_1.7 has 128 processors: AVUS large at 256 and 384 cannot
	// run there (the paper's appendix shows the same blanks).
	k256 := Key{App: "avus", Case: "large", Procs: 256}
	k384 := Key{App: "avus", Case: "large", Procs: 384}
	if _, ok := res.Observed[k256]["ARL_690_1.7"]; ok {
		t.Error("avus-large@256 observed on a 128-processor machine")
	}
	if _, ok := res.Observed[k384]["ARL_Altix"]; ok {
		t.Error("avus-large@384 observed on a 256-processor machine")
	}
	// And every cell that fits is present.
	if _, ok := res.Observed[k384]["NAVO_655"]; !ok {
		t.Error("avus-large@384 missing on the 2832-processor p655")
	}
}

func TestMetric4ReducesToMetric1(t *testing.T) {
	res := sharedOrSkip(t)
	// Paper Table 4: the convolver with FP-only rates must reproduce the
	// simple HPL ratio exactly, cell by cell.
	type cellKey struct {
		k Key
		m string
	}
	m1 := map[cellKey]float64{}
	for _, p := range res.Predictions {
		if p.MetricID == 1 {
			m1[cellKey{p.Key, p.Machine}] = p.Predicted
		}
	}
	for _, p := range res.Predictions {
		if p.MetricID != 4 {
			continue
		}
		want := m1[cellKey{p.Key, p.Machine}]
		if math.Abs(p.Predicted-want) > 1e-6*want {
			t.Fatalf("%s on %s: metric4 %g != metric1 %g", p.Key, p.Machine, p.Predicted, want)
		}
	}
}

func TestHPLIsTheWorstMetric(t *testing.T) {
	res := sharedOrSkip(t)
	hpl := res.MetricSummary(1).MeanAbs
	for id := 2; id <= 9; id++ {
		if id == 4 {
			continue // identical to 1 by construction
		}
		if s := res.MetricSummary(id).MeanAbs; s >= hpl {
			t.Errorf("metric %d (%.0f%%) not better than HPL (%.0f%%)", id, s, hpl)
		}
	}
}

func TestTracedMetricsBeatSimpleAverage(t *testing.T) {
	res := sharedOrSkip(t)
	// The paper's headline: trace-convolution metrics (#6-#9) predict
	// with ~80% accuracy and beat the simple metrics overall.
	simple := (res.MetricSummary(1).MeanAbs + res.MetricSummary(2).MeanAbs +
		res.MetricSummary(3).MeanAbs) / 3
	for id := 6; id <= 9; id++ {
		s := res.MetricSummary(id).MeanAbs
		if s >= simple {
			t.Errorf("metric %d (%.0f%%) not better than the simple-metric mean (%.0f%%)", id, s, simple)
		}
		if s > 25 {
			t.Errorf("metric %d error %.0f%% above the ~80%%-accuracy band", id, s)
		}
	}
}

func TestAllPredictionsFinite(t *testing.T) {
	res := sharedOrSkip(t)
	for _, p := range res.Predictions {
		if p.Predicted <= 0 || math.IsNaN(p.Predicted) || math.IsInf(p.Predicted, 0) {
			t.Fatalf("bad prediction %+v", p)
		}
		if p.Actual <= 0 {
			t.Fatalf("bad actual %+v", p)
		}
	}
}

func TestBalancedRating(t *testing.T) {
	res := sharedOrSkip(t)
	b := res.Balanced
	if b.FixedSummary.N == 0 || b.OptSummary.N == 0 {
		t.Fatal("balanced rating did not run")
	}
	// Optimized weights cannot be worse than fixed weights on the same
	// objective.
	if b.OptSummary.MeanAbs > b.FixedSummary.MeanAbs+1e-9 {
		t.Errorf("optimized %.1f%% worse than fixed %.1f%%",
			b.OptSummary.MeanAbs, b.FixedSummary.MeanAbs)
	}
	var sum float64
	for _, w := range b.OptWeights {
		if w < 0 {
			t.Errorf("negative weight %v", b.OptWeights)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights %v do not sum to 1", b.OptWeights)
	}
	// As in the paper, the fixed equal weighting must not significantly
	// beat the best simple metric.
	best := math.Min(res.MetricSummary(2).MeanAbs, res.MetricSummary(3).MeanAbs)
	if b.FixedSummary.MeanAbs < best*0.8 {
		t.Errorf("fixed balanced rating (%.0f%%) significantly beats best simple metric (%.0f%%), contradicting the paper",
			b.FixedSummary.MeanAbs, best)
	}
}

func TestObservedTimesInPaperRange(t *testing.T) {
	res := sharedOrSkip(t)
	// Times-to-solution should be hours-scale like the appendix tables,
	// not milliseconds or weeks.
	for key, obs := range res.Observed {
		for name, v := range obs {
			if v < 10 || v > 2e5 {
				t.Errorf("%s on %s: observed %.3g s out of plausible range", key, name, v)
			}
		}
	}
}

func TestOpteronFastestP3SlowestOverall(t *testing.T) {
	res := sharedOrSkip(t)
	means := map[string]float64{}
	for _, name := range res.TargetNames {
		var sum float64
		var n int
		for _, key := range res.Cells {
			if v, ok := res.Observed[key][name]; ok {
				sum += v / res.BaseTimes[key]
				n++
			}
		}
		means[name] = sum / float64(n)
	}
	if means["ARL_Opteron"] >= means["MHPCC_P3"] {
		t.Errorf("Opteron (%.2f) not faster than P3 (%.2f) relative to base",
			means["ARL_Opteron"], means["MHPCC_P3"])
	}
}

func TestAggregationHelpers(t *testing.T) {
	res := sharedOrSkip(t)
	s := res.MetricSummary(6)
	if s.N == 0 || s.MeanAbs <= 0 {
		t.Fatalf("MetricSummary degenerate: %+v", s)
	}
	sys := res.SystemSummary(res.TargetNames[0], 6)
	if sys.N != 15 && sys.N != 14 && sys.N != 13 { // cells observed on that system
		t.Errorf("SystemSummary N = %d", sys.N)
	}
	cells := res.AppCells("avus-standard")
	if len(cells) != 3 || cells[0].Procs != 32 {
		t.Fatalf("AppCells = %v", cells)
	}
	cell := res.CellSummary(cells[0], 9)
	if cell.N == 0 {
		t.Fatal("CellSummary empty")
	}
}

// TestStudySliceShort runs the 2-machine × 2-app slice in every mode,
// including -short: it is the fast path that keeps the parallel harness
// (pool, slots, cancellation plumbing) exercised under `go test -race
// -short ./...` without the full study's wall-clock.
func TestStudySliceShort(t *testing.T) {
	opts := sliceOptions()
	opts.Obs = obs.New()
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Errorf("cells = %d, want 6 (2 test cases x 3 CPU counts)", len(res.Cells))
	}
	if len(res.TargetNames) != 2 {
		t.Errorf("targets = %d, want 2", len(res.TargetNames))
	}
	if len(res.Probes) != 3 {
		t.Errorf("probe suites = %d, want 3 (base + 2 targets)", len(res.Probes))
	}
	obs := res.ObservationCount()
	if got, want := len(res.Predictions), 9*obs; got != want {
		t.Errorf("predictions = %d, want %d (9 x observations)", got, want)
	}
	for _, p := range res.Predictions {
		if p.Predicted <= 0 || math.IsNaN(p.Predicted) || math.IsInf(p.Predicted, 0) {
			t.Fatalf("bad prediction %+v", p)
		}
	}

	// The run was traced: every pipeline phase must appear in the span
	// tree, with counts tied to the slice's shape.
	counts := map[string]int64{}
	for _, st := range opts.Obs.Tracer.PhaseStats() {
		counts[st.Path] = st.Count
	}
	wantCounts := map[string]int64{
		"study":               1,
		"study/probe":         3, // base + 2 targets
		"study/observe":       6, // one per cell
		"study/observe/trace": 6,
		"study/observe/exec":  18, // per cell: base + 2 targets
		"study/predict":       9,  // one per metric
		"study/balanced":      1,
	}
	for path, want := range wantCounts {
		if counts[path] != want {
			t.Errorf("span count %s = %d, want %d", path, counts[path], want)
		}
	}
	if counts["study/predict/convolve"] == 0 {
		t.Error("no convolve spans under study/predict")
	}
	completed := opts.Obs.Metrics.Counter("study_cells_completed_total").Value()
	if got, want := completed, int64(res.ObservationCount()); got != want {
		t.Errorf("completed counter = %d, want %d (one per observation)", got, want)
	}
	if n := opts.Obs.Metrics.Counter("study_cells_skipped_toolarge_total").Value(); n != 0 {
		t.Errorf("too-large counter = %d, want 0 (every slice cell fits)", n)
	}
	if len(res.Skips) != 0 {
		t.Errorf("slice recorded %d skip cells, want none", len(res.Skips))
	}
}

// TestStudySkipReasons runs a slice whose target is smaller than two of
// the app's CPU counts: both absent cells must be recorded as
// job-too-large skips (the paper's expected blanks), not errors.
func TestStudySkipReasons(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an extra study slice")
	}
	opts := Options{
		Apps:    []string{"avus-large"},
		Targets: []string{"ARL_690_1.7"}, // 128 procs: avus-large@256/384 cannot fit
		Obs:     obs.New(),
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SkipCounts()[SkipTooLarge]; got != 2 {
		t.Errorf("too-large skips = %d, want 2", got)
	}
	if got := res.SkipCounts()[SkipError]; got != 0 {
		t.Errorf("error skips = %d, want 0", got)
	}
	for _, procs := range []int{256, 384} {
		key := Key{App: "avus", Case: "large", Procs: procs}
		s, ok := res.SkipFor(key, "ARL_690_1.7")
		if !ok {
			t.Errorf("no skip recorded for %s", key)
			continue
		}
		if s.Reason != SkipTooLarge || !strings.Contains(s.Detail, "exceeds machine size") {
			t.Errorf("skip for %s = %+v, want job-too-large", key, s)
		}
		if _, observed := res.Observed[key]["ARL_690_1.7"]; observed {
			t.Errorf("%s observed despite its skip", key)
		}
	}
	if got := opts.Obs.Metrics.Counter("study_cells_skipped_toolarge_total").Value(); got != 2 {
		t.Errorf("too-large counter = %d, want 2", got)
	}
	if got := opts.Obs.Metrics.Counter("study_cells_completed_total").Value(); got != 1 {
		t.Errorf("completed counter = %d, want 1 (only the 128-CPU cell fits)", got)
	}
}

// TestParallelMatchesSequential pins the harness's determinism contract:
// a single-worker run and a parallel run of the same slice are deeply
// identical, so the Table 4 bytes cannot depend on scheduling.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the slice study twice")
	}
	seq := sliceOptions()
	seq.Workers = 1
	par := sliceOptions()
	par.Workers = 4

	seqRes, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes.Predictions, parRes.Predictions) {
		t.Error("Predictions differ between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(seqRes.BaseTimes, parRes.BaseTimes) {
		t.Error("BaseTimes differ between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(seqRes.Observed, parRes.Observed) {
		t.Error("Observed differ between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(seqRes.Balanced, parRes.Balanced) {
		t.Error("Balanced rating differs between Workers=1 and Workers=4")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, sliceOptions())
	if res != nil {
		t.Error("cancelled study returned results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancelOnObserve cancels the study from inside its own progress stream,
// as soon as the first cell completes — a deterministic mid-study cancel.
type cancelOnObserve struct {
	mu     sync.Mutex
	cancel context.CancelFunc
}

func (c *cancelOnObserve) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if strings.Contains(string(p), "observed ") {
		c.cancel()
	}
	return len(p), nil
}

func TestRunContextCancelMidStudy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := sliceOptions()
	sink := &cancelOnObserve{cancel: cancel}
	opts.Progress = sink

	start := time.Now()
	res, err := RunContext(ctx, opts)
	if res != nil {
		t.Error("cancelled study returned results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Promptness: the harness must abandon the remaining five cells, not
	// finish them. One cell of this slice simulates in a few seconds, so
	// well under the cost of the full slice is a safe bound.
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("cancelled study took %v; cancellation is not prompt", elapsed)
	}
}

func TestUnknownTargetRejected(t *testing.T) {
	opts := sliceOptions()
	opts.Targets = []string{"NO_SUCH_MACHINE"}
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown target name accepted")
	}
}

func TestObservationNoiseProperties(t *testing.T) {
	k := Key{App: "a", Case: "b", Procs: 8}
	n1 := observationNoise(k, "m1")
	n2 := observationNoise(k, "m1")
	if n1 != n2 {
		t.Fatal("noise not deterministic")
	}
	if n1 < 1-NoiseAmplitude || n1 > 1+NoiseAmplitude {
		t.Fatalf("noise %g outside band", n1)
	}
	if observationNoise(k, "m2") == n1 {
		t.Fatal("noise identical across machines")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{App: "avus", Case: "large", Procs: 384}
	if k.String() != "avus-large@384" || k.AppID() != "avus-large" {
		t.Fatalf("key formatting: %s / %s", k, k.AppID())
	}
}

func TestMetricCorrelations(t *testing.T) {
	res := sharedOrSkip(t)
	// Every metric should correlate positively (machines differ by up to
	// an order of magnitude, which even HPL partially tracks), and the
	// trace-convolution metrics must track performance essentially
	// monotonically.
	var hplRho, bestRho float64
	for id := 1; id <= 9; id++ {
		c, err := res.MetricCorrelation(id)
		if err != nil {
			t.Fatalf("metric %d: %v", id, err)
		}
		if c.N < 100 {
			t.Fatalf("metric %d correlation over %d points", id, c.N)
		}
		if c.Pearson <= 0 || c.Spearman <= 0 {
			t.Errorf("metric %d anticorrelated: r=%.2f rho=%.2f", id, c.Pearson, c.Spearman)
		}
		switch id {
		case 1:
			hplRho = c.Spearman
		case 9:
			bestRho = c.Spearman
			if c.Spearman < 0.9 {
				t.Errorf("metric 9 rank correlation %.2f below 0.9", c.Spearman)
			}
		}
	}
	if bestRho <= hplRho {
		t.Errorf("metric 9 (rho %.2f) does not rank systems better than HPL (rho %.2f)",
			bestRho, hplRho)
	}
}

func TestAblationOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a partial study")
	}
	// A filtered, noise-free, dependency-blind study: cheap (one test
	// case) and checks all three ablation switches.
	res, err := Run(Options{
		Apps:              []string{"rfcth-standard"},
		DisableNoise:      true,
		NoDependencyFlags: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("filtered study has %d cells, want 3", len(res.Cells))
	}
	for _, tr := range res.Traces {
		for _, bt := range tr.Blocks {
			if bt.ILPLimited {
				t.Fatal("dependency flags present despite NoDependencyFlags")
			}
		}
	}
	// With identical traces for metrics 8 and 9, their predictions match.
	type ck struct {
		k Key
		m string
	}
	m8 := map[ck]float64{}
	for _, p := range res.Predictions {
		if p.MetricID == 8 {
			m8[ck{p.Key, p.Machine}] = p.Predicted
		}
	}
	for _, p := range res.Predictions {
		if p.MetricID == 9 && math.Abs(p.Predicted-m8[ck{p.Key, p.Machine}]) > 1e-9 {
			t.Fatal("metric 9 differs from metric 8 with dependency flags ablated")
		}
	}
}

func TestIdleMemoryAblationChangesObservations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a partial study")
	}
	loaded, err := Run(Options{Apps: []string{"overflow2-standard"}, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := Run(Options{Apps: []string{"overflow2-standard"}, DisableNoise: true, IdleMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{App: "overflow2", Case: "standard", Procs: 48}
	for _, name := range loaded.TargetNames {
		l, okL := loaded.Observed[key][name]
		i, okI := idle.Observed[key][name]
		if okL != okI {
			t.Fatalf("%s: observation presence differs", name)
		}
		if okL && i >= l {
			t.Errorf("%s: idle-memory run %g not faster than loaded %g", name, i, l)
		}
	}
}

func TestForEachIndexedZeroItems(t *testing.T) {
	called := false
	err := forEachIndexed(context.Background(), 0, 4, func(ctx context.Context, i int) error {
		called = true
		return nil
	})
	if err != nil {
		t.Fatalf("n=0 returned %v", err)
	}
	if called {
		t.Fatal("work called with no items")
	}
}

func TestForEachIndexedMoreWorkersThanItems(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	counts := make([]int, n)
	err := forEachIndexed(context.Background(), n, 16, func(ctx context.Context, i int) error {
		mu.Lock()
		counts[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachIndexedParentCancelMidFeed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	err := forEachIndexed(ctx, 100, 1, func(ctx context.Context, i int) error {
		ran++
		if i == 2 {
			cancel() // parent cancellation arrives while the feed loop runs
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= 100 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestForEachIndexedLowestErrorWins(t *testing.T) {
	errA := errors.New("index 0 failed")
	errB := errors.New("index 1 failed")
	// A barrier holds both workers until each has its job, so both errors
	// are in flight concurrently; the lowest index must still win.
	var barrier sync.WaitGroup
	barrier.Add(2)
	err := forEachIndexed(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		barrier.Done()
		barrier.Wait()
		if i == 0 {
			return errA
		}
		return errB
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the index-0 error", err)
	}
}
